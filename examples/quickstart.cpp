// Quickstart: generate a CER-like dataset, train the KLD detector for one
// consumer, inject an Integrated ARIMA attack, and watch the detector catch
// what the related-work detectors miss.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "attack/integrated_arima_attack.h"
#include "common/rng.h"
#include "core/arima_detector.h"
#include "core/integrated_arima_detector.h"
#include "core/kld_detector.h"
#include "datagen/generator.h"
#include "meter/weekly_stats.h"
#include "pricing/billing.h"
#include "pricing/tariff.h"

using namespace fdeta;

int main() {
  // A small population: 40 consumers, 30 weeks of half-hour readings.
  const meter::Dataset dataset = datagen::small_dataset(40, 30, /*seed=*/42);
  const meter::TrainTestSplit split{.train_weeks = 24, .test_weeks = 6};

  const auto summary = meter::summarize(dataset);
  std::printf("dataset: %zu consumers (%zu residential, %zu SME, %zu other), "
              "%zu weeks, mean demand %.2f kW\n",
              dataset.consumer_count(), summary.residential, summary.sme,
              summary.unclassified, dataset.week_count(), summary.mean_kw);

  // Pick one consumer and train the three detectors on her first 24 weeks.
  const meter::ConsumerSeries& victim = dataset.consumer(3);
  const auto train = split.train(victim);

  core::ArimaDetector arima;
  arima.fit(train);
  core::IntegratedArimaDetector integrated;
  integrated.fit(train);
  core::KldDetector kld({.bins = 10, .significance = 0.05});
  kld.fit(train);

  // Mallory (an insider on the AMI) over-reports this victim's next week
  // using the Integrated ARIMA attack: truncated-normal readings inside the
  // ARIMA confidence band whose weekly mean/variance match history.
  Rng rng(7);
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  attack::IntegratedAttackConfig cfg;
  cfg.over_report = true;
  const auto attack_week = attack::integrated_arima_attack_vector(
      arima.model(), history, wstats, kSlotsPerWeek, rng, cfg);

  const auto clean_week = split.test_week(victim, 0);
  const auto tou = pricing::nightsaver();
  const KWh stolen = pricing::energy_under_reported(attack_week, clean_week);
  const Dollars billed_to_victim =
      pricing::neighbor_loss(clean_week, attack_week, tou);

  std::printf("\nconsumer %u, attacked week: %.0f kWh would be billed to the "
              "victim ($%.2f)\n",
              victim.id, stolen, billed_to_victim);

  const auto verdict = [](bool flagged) { return flagged ? "FLAGGED" : "missed"; };
  std::printf("\n%-28s clean week   attack week\n", "detector");
  std::printf("%-28s %-12s %s\n", "ARIMA (ref [2])",
              verdict(arima.flag_week(clean_week)),
              verdict(arima.flag_week(attack_week)));
  std::printf("%-28s %-12s %s\n", "Integrated ARIMA (ref [2])",
              verdict(integrated.flag_week(clean_week)),
              verdict(integrated.flag_week(attack_week)));
  std::printf("%-28s %-12s %s\n", "KLD (this paper)",
              verdict(kld.flag_week(clean_week)),
              verdict(kld.flag_week(attack_week)));

  std::printf("\nKLD score: clean %.3f vs attack %.3f (threshold %.3f)\n",
              kld.score(clean_week), kld.score(attack_week), kld.threshold());
  return 0;
}
