// Utility-side monitoring: the full F-DETA pipeline over an AMI population.
//
// A population of smart meters streams readings to the head-end over the
// simulated AMI network; an insider (Mallory) tampers with two streams in
// flight - over-reporting a victim (Attack Class 1B) and under-reporting
// herself (2A/2B).  The utility's five-step F-DETA pipeline then scores the
// week, classifies suspects vs victims, consults the evidence calendar, and
// launches a topology investigation.
//
// Run: ./build/examples/utility_monitoring

#include <cstdio>

#include "ami/network.h"
#include "attack/integrated_arima_attack.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "pricing/tariff.h"
#include "datagen/generator.h"
#include "meter/weekly_stats.h"
#include "timeseries/arima.h"

using namespace fdeta;

int main() {
  const std::size_t consumers = 20;
  const meter::TrainTestSplit split{.train_weeks = 24, .test_weeks = 6};
  const meter::Dataset actual = datagen::small_dataset(consumers, 30, 2016);
  const std::size_t attacked_week = split.train_weeks;  // first test week

  std::printf("== F-DETA utility monitoring: %zu consumers, week %zu ==\n\n",
              consumers, attacked_week);

  // --- Mallory prepares her injections (she replicates the utility models).
  const std::size_t victim = 4;    // neighbor whose meter she over-reports
  const std::size_t mallory = 11;  // her own meter, under-reported
  auto forge = [&](std::size_t consumer, bool over) {
    const auto& series = actual.consumer(consumer);
    const auto train = split.train(series);
    const auto model = ts::ArimaModel::fit(train, {});
    const auto wstats = meter::weekly_stats(train);
    Rng rng(99 + consumer);
    attack::IntegratedAttackConfig cfg;
    cfg.over_report = over;
    return attack::integrated_arima_attack_vector(
        model, train.subspan(train.size() - 2 * kSlotsPerWeek), wstats,
        kSlotsPerWeek, rng, cfg);
  };

  // --- The AMI reporting plane with man-in-the-middle interceptors.
  ami::MeterNetwork network(actual);
  const SlotIndex week_start = attacked_week * kSlotsPerWeek;
  network.add_interceptor(
      ami::replace_interceptor(victim, week_start, forge(victim, true)));
  network.add_interceptor(
      ami::replace_interceptor(mallory, week_start, forge(mallory, false)));

  ami::HeadEnd head_end(consumers, actual.slot_count());
  network.transmit(head_end, 0, actual.slot_count());
  std::printf("AMI transmission: %zu messages, %zu tampered in flight\n",
              network.messages_sent(), network.messages_tampered());

  // Assemble the head-end's reported dataset D'.
  std::vector<meter::ConsumerSeries> reported_series;
  for (std::size_t c = 0; c < consumers; ++c) {
    meter::ConsumerSeries s;
    s.id = actual.consumer(c).id;
    s.type = actual.consumer(c).type;
    s.readings = head_end.consumer_readings(c);
    reported_series.push_back(std::move(s));
  }
  const meter::Dataset reported(std::move(reported_series));

  // --- The utility runs the five-step pipeline.
  core::PipelineConfig config;
  config.split = split;
  config.kld = {.bins = 10, .significance = 0.10};
  core::FdetaPipeline pipeline(config);
  pipeline.fit(actual);  // training span is attack-free (Section VIII-A)

  core::EvidenceCalendar calendar;  // no excusing events this week
  const auto topology = grid::Topology::single_feeder(consumers, 0.0);
  const auto report = pipeline.evaluate_week(actual, reported, attacked_week,
                                             calendar, &topology);

  std::printf("\n%-8s %-14s %-20s %10s %10s\n", "meter", "type", "verdict",
              "KLD", "threshold");
  for (const auto& v : report.verdicts) {
    const auto idx = reported.index_of(v.id).value();
    std::printf("%-8u %-14s %-20s %10.3f %10.3f%s\n", v.id,
                std::string(to_string(reported.consumer(idx).type)).c_str(),
                core::to_string(v.status), v.kld_score, v.kld_threshold,
                idx == victim    ? "   <- 1B victim"
                : idx == mallory ? "   <- Mallory (2A/2B)"
                                 : "");
  }

  // The written artifact the revenue-protection team receives.
  std::printf("\n%s", core::render_report(report, actual, reported,
                                           attacked_week,
                                           pricing::nightsaver())
                           .c_str());
  return 0;
}
