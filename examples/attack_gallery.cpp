// A gallery of all seven attack classes (Section VI) instantiated on the
// same neighborhood, with the money flows and balance-check outcomes that
// define the taxonomy.
//
// Run: ./build/examples/attack_gallery

#include <cstdio>
#include <vector>

#include "attack/attack_class.h"
#include "attack/injector.h"
#include "grid/balance.h"
#include "pricing/billing.h"
#include "pricing/tariff.h"

using namespace fdeta;

namespace {

std::vector<Kw> typical_week(double level) {
  std::vector<Kw> week(kSlotsPerWeek);
  for (std::size_t t = 0; t < week.size(); ++t) {
    week[t] = level * (hour_of_day(t) >= 9.0 ? 1.4 : 0.6);
  }
  return week;
}

}  // namespace

int main() {
  const auto mallory_week = typical_week(1.0);
  const std::vector<std::vector<Kw>> neighbor_weeks{typical_week(1.8),
                                                    typical_week(1.2)};
  const auto topology = grid::Topology::single_feeder(3, 0.0);
  const auto tou = pricing::nightsaver();

  std::printf("== Attack gallery: Mallory (1 kW avg) and two neighbors ==\n");
  std::printf("\n%4s %18s %16s %16s %16s\n", "cls", "balance check",
              "Mallory profit", "utility loss", "neighbors' loss");

  for (const auto cls : attack::kAllAttackClasses) {
    const auto s =
        attack::make_scenario(cls, mallory_week, neighbor_weeks, 0.8);

    // Does the root balance check survive the whole week?
    bool circumvented = true;
    for (std::size_t t = 0; t < mallory_week.size() && circumvented; ++t) {
      std::vector<Kw> actual(3), reported(3);
      for (std::size_t c = 0; c < 3; ++c) {
        actual[c] = s.actual[c][t];
        reported[c] = s.reported[c][t];
      }
      if (grid::run_balance_checks(topology, actual, reported, {}, 1e-9)
              .failed(topology.root())) {
        circumvented = false;
      }
    }

    // Money flows under the paper's TOU scheme.
    const double mallory_profit = pricing::attacker_profit(
        s.mallory_actual(), s.mallory_reported(), tou);
    double neighbors_loss = 0.0;
    for (std::size_t n = 1; n < s.actual.size(); ++n) {
      neighbors_loss +=
          pricing::neighbor_loss(s.actual[n], s.reported[n], tou);
    }
    // What the utility under-collects across the whole neighborhood.
    double utility_loss = 0.0;
    for (std::size_t c = 0; c < s.actual.size(); ++c) {
      utility_loss += pricing::attacker_profit(s.actual[c], s.reported[c], tou);
    }

    std::printf("%4s %18s %15.2f$ %15.2f$ %15.2f$\n",
                std::string(attack::name(cls)).c_str(),
                circumvented ? "CIRCUMVENTED" : "fails -> located",
                mallory_profit, utility_loss, neighbors_loss);
  }

  std::printf("\nreading the table:\n");
  std::printf("  - A-classes fail the balance check: the utility can locate "
              "the feeder and inspect (Section V-C).\n");
  std::printf("  - B-classes pass every check; the loss lands on the "
              "neighbors, not the utility (Proposition 2).\n");
  std::printf("  - 3A/3B shift load on paper only: the utility and "
              "neighbors lose nothing on energy, Mallory still profits from "
              "the tariff spread.\n");
  std::printf("  - 4B victims are billed for their baseline while actually "
              "curtailed: utility whole, neighbors pay.\n");
  return 0;
}
