// Weather-aware monitoring: why F-DETA's step 4 (external evidence) exists.
//
// A cold snap hits the service area during the same week Mallory runs an
// Integrated-ARIMA theft.  Without evidence handling, the utility would
// chase dozens of weather-driven false positives; with the severe-weather
// event on the calendar, honest households are excused while the thief -
// whose anomaly is *not* explained by the weather direction - still stands
// out to the investigator reviewing the excused list.
//
// Run: ./build/examples/weather_aware_monitoring

#include <algorithm>
#include <cstdio>

#include "attack/integrated_arima_attack.h"
#include "attack/injector.h"
#include "core/pipeline.h"
#include "datagen/generator.h"
#include "datagen/weather.h"
#include "meter/weekly_stats.h"
#include "timeseries/arima.h"

using namespace fdeta;

int main() {
  const std::size_t consumers = 24;
  const std::size_t weeks = 40;
  const meter::TrainTestSplit split{.train_weeks = 34, .test_weeks = 6};
  const std::size_t event_week = 36;

  // Weather with a -9C snap in week 36, coupled into every household.
  Rng wrng(31337);
  const std::vector<datagen::WeatherEvent> events{
      {.first_slot = event_week * kSlotsPerWeek,
       .last_slot = (event_week + 1) * kSlotsPerWeek - 1,
       .delta_c = -9.0}};
  const auto temperature = datagen::generate_temperature(
      weeks * kSlotsPerWeek, datagen::WeatherConfig{}, wrng, events);

  auto actual = datagen::small_dataset(consumers, weeks, 31337);
  Rng trng(99);
  for (std::size_t c = 0; c < consumers; ++c) {
    datagen::ThermalResponse response;
    response.heating_kw_per_c = 0.04 + 0.05 * trng.uniform();
    datagen::apply_weather(actual.consumer(c).readings, temperature,
                           response);
  }

  // Mallory (consumer 9) under-reports during the snap week - cover traffic.
  const std::size_t mallory = 9;
  const auto& series = actual.consumer(mallory);
  const auto train = split.train(series);
  const auto model = ts::ArimaModel::fit(train, {});
  const auto wstats = meter::weekly_stats(train);
  Rng arng(5);
  attack::IntegratedAttackConfig acfg;
  acfg.over_report = false;
  attack::WeekInjection inj;
  inj.consumer_index = mallory;
  inj.week = event_week;
  inj.reported_week = attack::integrated_arima_attack_vector(
      model, train.subspan(train.size() - 2 * kSlotsPerWeek), wstats,
      kSlotsPerWeek, arng, acfg);
  const auto reported = attack::apply_injections(actual, {inj});

  core::PipelineConfig config;
  config.split = split;
  config.kld = {.bins = 10, .significance = 0.10};
  core::FdetaPipeline pipeline(config);
  pipeline.fit(actual);

  const core::EvidenceCalendar no_calendar;
  core::EvidenceCalendar calendar;
  calendar.add({.first_week = event_week,
                .last_week = event_week,
                .kind = core::EvidenceKind::kSevereWeather,
                .description = "-9C cold snap"});

  const auto bare =
      pipeline.evaluate_week(actual, reported, event_week, no_calendar);
  const auto informed =
      pipeline.evaluate_week(actual, reported, event_week, calendar);

  std::size_t bare_anomalies = 0;
  for (const auto& v : bare.verdicts) {
    if (v.status != core::VerdictStatus::kNormal) ++bare_anomalies;
  }
  std::printf("cold-snap week without evidence handling: %zu of %zu meters "
              "anomalous (an investigation avalanche)\n\n",
              bare_anomalies, consumers);

  std::printf("with the severe-weather event on the calendar:\n");
  std::printf("%-8s %-20s %10s   %s\n", "meter", "verdict", "KLD", "note");
  for (std::size_t c = 0; c < consumers; ++c) {
    const auto& v = informed.verdicts[c];
    if (v.status == core::VerdictStatus::kNormal) continue;
    const char* note = "";
    if (c == mallory) {
      note = "<- Mallory: LOW during a cold snap - weather cannot "
             "explain under-consumption";
    }
    std::printf("%-8u %-20s %10.3f   %s\n", v.id, core::to_string(v.status),
                v.kld_score, note);
  }
  // A snap week is also ideal COVER for under-reporting: Mallory's forged
  // low readings masquerade as an ordinary quiet week, so her own stream may
  // not even be flagged.  The investigator's weather-adjusted triage closes
  // that hole: during a cold snap everyone's consumption ratio
  // (week mean / training median mean) moves UP together, so the meters with
  // the LOWEST ratios are the ones the weather cannot explain.
  std::printf("\nweather-adjusted triage (week mean / training median), "
              "lowest first:\n");
  std::vector<std::pair<double, std::size_t>> ratios;
  for (std::size_t c = 0; c < consumers; ++c) {
    const auto week = reported.consumer(c).week(event_week);
    double week_mean = 0.0;
    for (double x : week) week_mean += x;
    week_mean /= static_cast<double>(week.size());
    const auto train_c = split.train(actual.consumer(c));
    const auto ws = meter::weekly_stats(train_c);
    std::vector<double> means = ws.means;
    std::nth_element(means.begin(), means.begin() + means.size() / 2,
                     means.end());
    ratios.emplace_back(week_mean / means[means.size() / 2], c);
  }
  std::sort(ratios.begin(), ratios.end());
  for (std::size_t rank = 0; rank < 3; ++rank) {
    const auto [ratio, c] = ratios[rank];
    std::printf("  #%zu meter %u ratio %.2f%s\n", rank + 1,
                reported.consumer(c).id, ratio,
                c == mallory ? "   <- Mallory (everyone else moved UP)" : "");
  }
  return 0;
}
