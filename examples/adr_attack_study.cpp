// A walkthrough of Attack Class 4B: stealing power through a neighbor's
// Automated Demand Response interface (Section VI-B; quantitative study is
// this repository's extension of the paper's future work).
//
// Run: ./build/examples/adr_attack_study

#include <cstdio>

#include "attack/adr_attack.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "pricing/billing.h"
#include "pricing/elasticity.h"

using namespace fdeta;

int main() {
  // One victim household with an ADR interface under real-time pricing.
  Rng rng(4242);
  const auto rtp =
      pricing::RealTimePricing::simulate(kSlotsPerWeek, /*base=*/0.20, rng);
  const auto dataset = datagen::small_dataset(1, 1, 4242);
  const auto& baseline = dataset.consumer(0).readings;  // one week

  std::printf("== Attack Class 4B: the ADR price-inflation attack ==\n\n");
  std::printf("victim: ADR-equipped household, own-elasticity 0.8, "
              "baseline %.1f kWh/week\n",
              pricing::energy(baseline));

  for (const double inflation : {1.1, 1.25, 1.5, 2.0}) {
    attack::AdrAttackConfig cfg;
    cfg.price_inflation = inflation;
    cfg.elasticity = 0.8;
    const auto r = attack::launch_adr_attack(baseline, rtp, 0, cfg);

    std::printf("\nprice inflation %.2fx:\n", inflation);
    std::printf("  energy freed for Mallory: %7.1f kWh "
                "(victim curtails to %.1f kWh)\n",
                r.energy_stolen,
                pricing::energy(baseline) - r.energy_stolen);
    std::printf("  victim's real loss (eq. 10):        $%7.2f\n",
                r.victim_loss);
    std::printf("  victim's PERCEIVED saving (eq. 11): $%7.2f  "
                "(he believes the forged high price and thinks he saved)\n",
                r.victim_perceived_benefit);
  }

  std::printf("\nwhy the balance check cannot help (Section VI-B): Mallory "
              "consumes exactly the curtailed power, the victim's meter "
              "reports his baseline, so every node's energy balance holds "
              "while money flows from the victim to Mallory.\n");
  std::printf("defense: the price-conditioned KLD detector "
              "(bench/ext_adr_attack evaluates it on a population).\n");
  return 0;
}
