// Investigating electricity theft through the distribution-grid topology
// (Sections V and VI of the paper).
//
// Walks through: (1) a Fig.-1-style line tap - the meter is honest but blind
// to what is tapped upstream of it; (2) balance checks localising an A-class
// attack; (3) a B-class attack that circumvents every local balance check;
// (4) the Case 1 / Case 2 investigation procedures and their cost.
//
// Run: ./build/examples/theft_investigation

#include <algorithm>
#include <cstdio>

#include "attack/propositions.h"
#include "common/rng.h"
#include "grid/balance.h"
#include "grid/investigate.h"
#include "grid/topology.h"

using namespace fdeta;

int main() {
  std::printf("== Part 1: the line tap (Fig. 1) ==\n");
  {
    // Mallory taps the line upstream of her meter: the meter truthfully
    // measures only the downstream load, so reported < consumed without any
    // cyber compromise - Proposition 1's under-report witness.
    const Kw downstream_load = 1.2;
    const Kw tapped_load = 0.8;
    const std::vector<Kw> actual{downstream_load + tapped_load};
    const std::vector<Kw> reported{downstream_load};  // honest meter
    const auto witness = attack::proposition1_witness(actual, reported);
    std::printf("  consumed %.1f kW, meter reports %.1f kW -> "
                "Proposition 1 witness at slot %zu\n",
                actual[0], reported[0], *witness);
  }

  // A three-feeder radial grid (Fig. 2 style).
  grid::Topology grid_topology;
  std::vector<grid::NodeId> feeders;
  for (int f = 0; f < 3; ++f) {
    const auto feeder = grid_topology.add_internal(grid_topology.root());
    grid_topology.add_loss(feeder, 0.02);
    for (int c = 0; c < 4; ++c) {
      grid_topology.add_consumer(feeder,
                                 static_cast<meter::ConsumerId>(1000 + 4 * f + c));
    }
    feeders.push_back(feeder);
  }
  std::vector<Kw> actual(12);
  for (std::size_t i = 0; i < 12; ++i) actual[i] = 0.5 + 0.1 * i;

  std::printf("\n== Part 2: A-class attack fails the balance check ==\n");
  {
    std::vector<Kw> reported = actual;
    reported[5] *= 0.3;  // consumer 1005 under-reports (Attack Class 2A)
    const auto outcome =
        grid::run_balance_checks(grid_topology, actual, reported);
    std::printf("  failing balance meters:");
    for (const auto id : outcome.failing_nodes()) {
      std::printf(" node %d (depth %d)", id, grid_topology.depth(id));
    }
    const auto result = grid::investigate_case1(grid_topology, outcome);
    std::printf("\n  Case 1 localisation -> feeder node %d, inspect meters:",
                result.localized_node);
    for (const std::size_t s : result.suspects) {
      std::printf(" %u", 1000 + static_cast<unsigned>(s));
    }
    std::printf("\n");
  }

  std::printf("\n== Part 3: B-class attack circumvents the balance check "
              "==\n");
  {
    std::vector<Kw> reported = actual;
    reported[5] -= 0.3;  // Mallory under-reports...
    reported[6] += 0.3;  // ...and over-reports a same-feeder neighbor (2B)
    const auto outcome =
        grid::run_balance_checks(grid_topology, actual, reported);
    std::printf("  failing balance meters: %zu (every check passes!)\n",
                outcome.failing_nodes().size());
    std::vector<std::span<const Kw>> na{std::span<const Kw>(&actual[6], 1)};
    std::vector<std::span<const Kw>> nr{std::span<const Kw>(&reported[6], 1)};
    const auto witness = attack::proposition2_witness(na, nr);
    std::printf("  but Proposition 2 holds: neighbor 1006 is over-reported "
                "(%s) -> only data-driven detection can catch this\n",
                witness ? "witness found" : "no witness?");
  }

  std::printf("\n== Part 4: investigation cost at scale ==\n");
  {
    Rng rng(7);
    const auto big = grid::Topology::random_radial(1000, 4, rng, 0.0);
    std::vector<Kw> big_actual(1000, 1.0);
    std::vector<Kw> big_reported = big_actual;
    big_reported[777] *= 0.25;
    const auto pruned = grid::investigate_case2(big, big_actual, big_reported);
    const auto full =
        grid::investigate_exhaustive(big, big_actual, big_reported);
    std::printf("  1000 consumers, 1 thief: Case 2 BFS used %zu portable "
                "checks vs %zu exhaustive; thief in suspect set: %s\n",
                pruned.checks_performed, full.checks_performed,
                std::find(pruned.suspects.begin(), pruned.suspects.end(),
                          777u) != pruned.suspects.end()
                    ? "yes"
                    : "no");
  }
  return 0;
}
