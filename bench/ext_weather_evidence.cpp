// Extension: weather-driven false positives and the evidence calendar
// (step 4 of the F-DETA process, Section VII).
//
// A severe cold snap in the test period lifts the whole population's
// consumption simultaneously; a per-consumer anomaly detector flags many
// honest households that week.  Without step 4 those false positives would
// trigger investigations (which the paper's Metric-1 penalty prices as
// total detector failure); with a weather event recorded in the evidence
// calendar, the verdicts are downgraded to "excused" instead.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "datagen/weather.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 120);
  const std::size_t weeks = 40;
  const meter::TrainTestSplit split{.train_weeks = 34, .test_weeks = 6};
  const std::size_t snap_week = 36;  // second test week

  // Weather: one series for the whole service area, cold snap in week 36.
  Rng wrng(scale.seed + 5);
  datagen::WeatherConfig wconfig;
  const std::vector<datagen::WeatherEvent> events{
      {.first_slot = snap_week * kSlotsPerWeek,
       .last_slot = (snap_week + 1) * kSlotsPerWeek - 1,
       .delta_c = -9.0}};
  const auto temperature = datagen::generate_temperature(
      weeks * kSlotsPerWeek, wconfig, wrng, events);
  const auto temperature_normal = datagen::generate_temperature(
      weeks * kSlotsPerWeek, wconfig, wrng = Rng(scale.seed + 5), {});

  // Population with thermal response on top of the behavioural base load.
  auto dataset = datagen::small_dataset(consumers, weeks, scale.seed);
  Rng trng(scale.seed + 9);
  for (std::size_t c = 0; c < consumers; ++c) {
    datagen::ThermalResponse response;
    response.heating_kw_per_c = 0.04 + 0.05 * trng.uniform();
    datagen::apply_weather(dataset.consumer(c).readings, temperature,
                           response);
  }

  core::PipelineConfig config;
  config.split = split;
  config.kld = {.bins = 10, .significance = 0.10};
  core::FdetaPipeline pipeline(config);
  pipeline.fit(dataset);

  const core::EvidenceCalendar empty;
  core::EvidenceCalendar calendar;
  calendar.add({.first_week = snap_week,
                .last_week = snap_week,
                .kind = core::EvidenceKind::kSevereWeather,
                .description = "-9C cold snap"});

  std::printf("Weather-driven false positives and step 4 (evidence), "
              "%zu consumers\n\n",
              consumers);
  std::printf("%8s %14s %14s %14s\n", "week", "anomalous", "w/ calendar",
              "excused");
  for (std::size_t w = split.train_weeks; w < weeks; ++w) {
    const auto bare = pipeline.evaluate_week(dataset, dataset, w, empty);
    const auto informed = pipeline.evaluate_week(dataset, dataset, w,
                                                 calendar);
    std::size_t anomalous = 0, remaining = 0, excused = 0;
    for (std::size_t c = 0; c < consumers; ++c) {
      if (bare.verdicts[c].status != core::VerdictStatus::kNormal) {
        ++anomalous;
      }
      switch (informed.verdicts[c].status) {
        case core::VerdictStatus::kExcused: ++excused; break;
        case core::VerdictStatus::kNormal: break;
        default: ++remaining;
      }
    }
    std::printf("%8zu %14zu %14zu %14zu%s\n", w, anomalous, remaining,
                excused, w == snap_week ? "   <- cold snap" : "");
  }

  std::printf("\nthe snap week's population-wide flags collapse to "
              "'excused' once the severe-weather event is on the calendar; "
              "other weeks are untouched - step 4 absorbs correlated "
              "environment anomalies without blunting the detector.\n");
  (void)temperature_normal;
  return 0;
}
