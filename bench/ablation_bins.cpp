// Ablation A: the effect of the histogram bin count B on the KLD detector.
//
// Section VIII-D: "we used 10 bins.  Fewer bins produce more false negatives
// and fewer false positives.  The impact of the number of bins on the
// results is a study to be included in extensions of this paper."  This
// bench is that study: detection rate (true positives on Integrated-ARIMA
// 1B vectors) and false-positive rate (on clean test weeks) as B sweeps.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 150);
  const std::size_t vectors = std::min<std::size_t>(scale.vectors, 10);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};

  std::printf("Ablation A: KLD bin count (B), %zu consumers, %zu vectors, "
              "alpha = 5%%\n",
              consumers, vectors);

  std::vector<bench::ConsumerArtifacts> artifacts(consumers);
  parallel_for(consumers, [&](std::size_t i) {
    artifacts[i] =
        bench::make_artifacts(dataset.consumer(i), split, vectors, scale.seed);
  });

  std::printf("%6s %14s %14s\n", "bins", "detection%", "false-pos%");
  for (const std::size_t bins : {2, 5, 10, 20, 40, 80}) {
    std::size_t detected = 0, total_attacks = 0;
    std::size_t fps = 0, total_clean = 0;
    for (std::size_t i = 0; i < consumers; ++i) {
      core::KldDetector kld({.bins = bins, .significance = 0.05});
      kld.fit(artifacts[i].train);
      for (const auto& v : artifacts[i].attack_vectors) {
        if (kld.flag_week(v)) ++detected;
        ++total_attacks;
      }
      // False positives over every clean test week.
      for (std::size_t w = 0; w < split.test_weeks; ++w) {
        if (kld.flag_week(split.test_week(dataset.consumer(i), w))) ++fps;
        ++total_clean;
      }
    }
    std::printf("%6zu %13.1f%% %13.1f%%\n", bins,
                100.0 * detected / static_cast<double>(total_attacks),
                100.0 * fps / static_cast<double>(total_clean));
  }
  return 0;
}
