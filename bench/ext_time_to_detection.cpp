// Extension: time-to-detection via the sliding week vector (Section VII-D).
//
// The paper argues the week-long window does NOT mean week-long latency:
// the week vector is primed with trusted history and each new reading
// replaces one slot, so "if the week vector contains sufficiently anomalous
// readings right at the beginning, it may appear anomalous before a full
// week of new data has been collected" (the ref [3] methodology).  This
// bench measures the latency distribution for the 1B and 2A/2B Integrated
// ARIMA attacks.

#include <algorithm>
#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"
#include "core/time_to_detection.h"
#include "stats/quantile.h"

using namespace fdeta;

namespace {

void report(const char* label, std::vector<double>& latencies,
            std::size_t undetected, std::size_t total) {
  if (latencies.empty()) {
    std::printf("%-22s no detections out of %zu consumers\n", label, total);
    return;
  }
  std::sort(latencies.begin(), latencies.end());
  const double med = stats::quantile_sorted(latencies, 0.5);
  const double p90 = stats::quantile_sorted(latencies, 0.9);
  std::printf("%-22s median %5.1f h   90th pct %6.1f h   max %6.1f h   "
              "undetected %zu/%zu\n",
              label, med * kHoursPerSlot, p90 * kHoursPerSlot,
              latencies.back() * kHoursPerSlot, undetected, total);
}

}  // namespace

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 200);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};

  std::printf("Time-to-detection (sliding week vector), %zu consumers, "
              "KLD B = 10, alpha = 10%%\n",
              consumers);
  std::printf("upper bound by construction: one week = 168 h\n\n");

  std::vector<std::optional<std::size_t>> lat_over(consumers);
  std::vector<std::optional<std::size_t>> lat_under(consumers);
  std::vector<char> skipped(consumers, 0);

  parallel_for(consumers, [&](std::size_t i) {
    try {
      const auto& series = dataset.consumer(i);
      const auto artifacts = bench::make_artifacts(series, split,
                                                   /*vectors=*/1, scale.seed);
      core::KldDetector kld({.bins = 10, .significance = 0.10});
      kld.fit(artifacts.train);
      // Trusted reference: the last training week.
      const std::span<const Kw> reference{
          artifacts.train.data() + artifacts.train.size() - kSlotsPerWeek,
          static_cast<std::size_t>(kSlotsPerWeek)};

      lat_over[i] = core::time_to_detection(kld, reference,
                                            artifacts.attack_vectors.front());

      // Under-report vector (2A/2B) built the same way.
      core::ArimaDetector arima;
      arima.fit(artifacts.train);
      const std::span<const Kw> train_span = artifacts.train;
      const auto history =
          train_span.subspan(train_span.size() - 2 * kSlotsPerWeek);
      const auto wstats = meter::weekly_stats(train_span);
      Rng rng = Rng(scale.seed).spawn(series.id + 1000000);
      attack::IntegratedAttackConfig cfg;
      cfg.over_report = false;
      const auto under = attack::integrated_arima_attack_vector(
          arima.model(), history, wstats, kSlotsPerWeek, rng, cfg);
      lat_under[i] = core::time_to_detection(kld, reference, under);
    } catch (const std::exception&) {
      skipped[i] = 1;
    }
  });

  std::vector<double> over, under;
  std::size_t over_miss = 0, under_miss = 0, total = 0;
  for (std::size_t i = 0; i < consumers; ++i) {
    if (skipped[i]) continue;
    ++total;
    if (lat_over[i]) {
      over.push_back(static_cast<double>(*lat_over[i]));
    } else {
      ++over_miss;
    }
    if (lat_under[i]) {
      under.push_back(static_cast<double>(*lat_under[i]));
    } else {
      ++under_miss;
    }
  }
  report("1B (over-report):", over, over_miss, total);
  report("2A/2B (under-report):", under, under_miss, total);
  std::printf("\nlitigation framing (Section VII-D): even the worst case is "
              "bounded by one week; fines typically exceed a week of stolen "
              "electricity.\n");
  return 0;
}
