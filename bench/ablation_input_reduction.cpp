// Ablation: input reduction for the lightweight KLD detector (kld-lite).
//
// The reduced-input family scores a week from k << 336 selected slots (top
// training variance), trading recall for a 336/k cut in per-week input and
// histogram work - the knob that matters when the scoring plane must follow
// meters onto constrained collectors.  This bench sweeps k and reports the
// operating point (detection rate on Integrated-ARIMA 1B vectors,
// false-positive rate on clean test weeks) next to the full-input KLD row
// (k = 336), answering the design question "how small can k get before the
// operating point degrades?".  The committed numbers live in EXPERIMENTS.md.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/reduced_kld_detector.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 150);
  const std::size_t vectors = std::min<std::size_t>(scale.vectors, 10);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};

  std::printf(
      "Ablation: reduced-input KLD (k selected slots of %d), %zu consumers, "
      "%zu vectors, B = 10, alpha = 5%%\n",
      kSlotsPerWeek, consumers, vectors);

  std::vector<bench::ConsumerArtifacts> artifacts(consumers);
  parallel_for(consumers, [&](std::size_t i) {
    artifacts[i] =
        bench::make_artifacts(dataset.consumer(i), split, vectors, scale.seed);
  });

  std::printf("%6s %10s %14s %14s\n", "k", "input", "detection%",
              "false-pos%");
  for (const std::size_t k : {std::size_t{336}, std::size_t{168},
                              std::size_t{96}, std::size_t{48},
                              std::size_t{24}, std::size_t{12}}) {
    std::size_t detected = 0, total_attacks = 0;
    std::size_t fps = 0, total_clean = 0;
    for (std::size_t i = 0; i < consumers; ++i) {
      core::ReducedKldDetectorConfig config;
      config.selected_slots = k;
      config.kld = {.bins = 10, .significance = 0.05};
      core::ReducedKldDetector lite(config);
      lite.fit(artifacts[i].train);
      for (const auto& v : artifacts[i].attack_vectors) {
        if (lite.flag_week(v)) ++detected;
        ++total_attacks;
      }
      for (std::size_t w = 0; w < split.test_weeks; ++w) {
        if (lite.flag_week(split.test_week(dataset.consumer(i), w))) ++fps;
        ++total_clean;
      }
    }
    std::printf("%6zu %9.1f%% %13.1f%% %13.1f%%\n", k,
                100.0 * static_cast<double>(k) /
                    static_cast<double>(kSlotsPerWeek),
                100.0 * detected / static_cast<double>(total_attacks),
                100.0 * fps / static_cast<double>(total_clean));
  }
  return 0;
}
