// Reproduces Fig. 4: the KLD detector's internals for one consumer.
//   (a) the X distribution (all training readings), the X_1 distribution
//       (first training week), and the Attack-Class-1B week's distribution,
//       over the same frozen 10-bin edges;
//   (b) the KLD distribution {K_i} with its 90th and 95th percentile
//       thresholds and the attack week's divergence K_A.
//
// The paper reports, for its Consumer 1330: attack K = 0.765 vs a 95th
// percentile of 0.144 - the attack divergence is several times the
// threshold.  The same relationship must hold here.

#include <cstdio>

#include "attack/integrated_arima_attack.h"
#include "bench/bench_util.h"
#include "core/arima_detector.h"
#include "core/kld_detector.h"
#include "meter/weekly_stats.h"
#include "stats/quantile.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const auto dataset = datagen::small_dataset(40, 74, scale.seed);
  const auto& series = dataset.consumer(3);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};
  const auto train = split.train(series);

  core::KldDetector kld({.bins = 10, .significance = 0.05});
  kld.fit(train);

  // Build the 1B attack week.
  core::ArimaDetector arima;
  arima.fit(train);
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  Rng rng(scale.seed + 1);
  attack::IntegratedAttackConfig cfg;
  cfg.over_report = true;
  const auto attack_week = attack::integrated_arima_attack_vector(
      arima.model(), history, wstats, kSlotsPerWeek, rng, cfg);

  const auto& hist = kld.histogram();
  const auto& x_dist = kld.baseline_distribution();
  const auto x1 = series.week(0);
  const auto x1_dist = hist.probabilities(x1);
  const auto attack_dist = hist.probabilities(attack_week);

  std::printf("# Fig. 4(a): distributions over frozen bin edges, "
              "consumer %u\n", series.id);
  std::printf("bin,edge_lo,edge_hi,p_X,p_X1,p_attack1B\n");
  for (std::size_t j = 0; j < hist.bin_count(); ++j) {
    std::printf("%zu,%.4f,%.4f,%.4f,%.4f,%.4f\n", j, hist.edges()[j],
                hist.edges()[j + 1], x_dist[j], x1_dist[j], attack_dist[j]);
  }

  const auto& k = kld.training_divergences();
  const double p90 = stats::percentile(k, 90.0);
  const double p95 = stats::percentile(k, 95.0);
  const double k_attack = kld.score(attack_week);

  std::printf("\n# Fig. 4(b): KLD distribution over training weeks\n");
  std::printf("week,K_i\n");
  for (std::size_t i = 0; i < k.size(); ++i) {
    std::printf("%zu,%.6f\n", i, k[i]);
  }
  std::printf("\n# thresholds and attack divergence\n");
  std::printf("90th percentile: %.4f bits\n", p90);
  std::printf("95th percentile: %.4f bits\n", p95);
  std::printf("K_1 (first training week): %.4f bits\n", k.front());
  std::printf("K_A (Attack Class 1B week): %.4f bits\n", k_attack);
  std::printf("paper analogue: K_A 0.765 vs 95th pct 0.144 (factor %.1fx); "
              "measured factor %.1fx\n",
              0.765 / 0.144, k_attack / p95);
  return 0;
}
