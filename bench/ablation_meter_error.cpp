// Ablation D: robustness to smart-meter measurement error (Section VII-A).
//
// The paper assumes accurate measurements, citing ref [11]'s envelope
// (99.91% of readings within +/-0.5%, 99.96% within +/-2%), and concludes an
// attacker "cannot leverage measurement errors ... to steal a significant
// amount of electricity".  This bench (a) trains and evaluates the KLD
// detector through progressively scaled error envelopes, and (b) quantifies
// the maximum energy an attacker could skim by always erring on the meter's
// tolerant side.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"
#include "meter/measurement_error.h"
#include "pricing/billing.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 100);
  const std::size_t vectors = std::min<std::size_t>(scale.vectors, 5);
  const auto truth = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};

  std::printf("Ablation D: measurement-error robustness, %zu consumers, "
              "KLD B = 10, alpha = 5%%\n\n",
              consumers);
  std::printf("%12s %14s %14s %22s\n", "error scale", "detection%",
              "false-pos%", "skimmable energy");

  for (const double error_scale : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    meter::MeterAccuracyModel model;
    model.scale = error_scale;
    Rng rng(scale.seed + 17);
    const auto measured =
        error_scale == 0.0
            ? truth
            : meter::apply_measurement_error(truth, model, rng);

    std::size_t detected = 0, total_attacks = 0, fps = 0, total_clean = 0;
    double skim_kwh = 0.0;
    std::vector<std::size_t> det(consumers, 0), att(consumers, 0),
        fp(consumers, 0), cl(consumers, 0);
    std::vector<double> skim(consumers, 0.0);
    std::vector<char> skipped(consumers, 0);

    parallel_for(consumers, [&](std::size_t i) {
      try {
        const auto& series = measured.consumer(i);
        const auto artifacts =
            bench::make_artifacts(series, split, vectors, scale.seed);
        core::KldDetector kld({.bins = 10, .significance = 0.05});
        kld.fit(artifacts.train);
        for (const auto& v : artifacts.attack_vectors) {
          if (kld.flag_week(v)) ++det[i];
          ++att[i];
        }
        for (std::size_t w = 0; w < split.test_weeks; ++w) {
          if (kld.flag_week(split.test_week(series, w))) ++fp[i];
          ++cl[i];
        }
        // Skim: report every reading at the bottom of the tight tolerance
        // band - indistinguishable from metering error by definition.
        skim[i] = pricing::energy(split.test_week(truth.consumer(i), 0)) *
                  model.tight_fraction * error_scale;
      } catch (const std::exception&) {
        skipped[i] = 1;
      }
    });
    for (std::size_t i = 0; i < consumers; ++i) {
      if (skipped[i]) continue;
      detected += det[i];
      total_attacks += att[i];
      fps += fp[i];
      total_clean += cl[i];
      skim_kwh += skim[i];
    }

    std::printf("%11.1fx %13.1f%% %13.1f%% %15.1f kWh/wk\n", error_scale,
                total_attacks
                    ? 100.0 * detected / static_cast<double>(total_attacks)
                    : 0.0,
                total_clean ? 100.0 * fps / static_cast<double>(total_clean)
                            : 0.0,
                skim_kwh);
  }

  std::printf("\nat the ref [11] envelope (1x) the detector is calibrated "
              "through the noise, and the skimmable energy (always-low "
              "within tolerance) stays negligible next to the hundreds of "
              "kWh/week the 1B attacks move - the paper's assumption "
              "holds.\n");
  return 0;
}
