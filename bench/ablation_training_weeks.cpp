// Ablation C: sensitivity of the KLD detector to the training-set length M.
//
// The paper trains on 60 weeks; utilities deploying fresh meters have less
// history.  This bench re-fits the detector on progressively shorter
// training windows (always ending at week 60, so the test weeks are fixed)
// and reports detection / false-positive rates.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 150);
  const std::size_t vectors = std::min<std::size_t>(scale.vectors, 10);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};

  std::printf("Ablation C: training weeks (M), %zu consumers, %zu vectors, "
              "B = 10, alpha = 5%%\n",
              consumers, vectors);

  std::vector<bench::ConsumerArtifacts> artifacts(consumers);
  parallel_for(consumers, [&](std::size_t i) {
    artifacts[i] =
        bench::make_artifacts(dataset.consumer(i), split, vectors, scale.seed);
  });

  std::printf("%8s %14s %14s\n", "weeks", "detection%", "false-pos%");
  for (const std::size_t weeks : {8, 12, 20, 30, 45, 60}) {
    std::size_t detected = 0, total_attacks = 0;
    std::size_t fps = 0, total_clean = 0;
    for (std::size_t i = 0; i < consumers; ++i) {
      // Train on the LAST `weeks` weeks of the 60-week training span.
      const auto& full = artifacts[i].train;
      const std::span<const Kw> window{
          full.data() + (60 - weeks) * kSlotsPerWeek, weeks * kSlotsPerWeek};
      core::KldDetector kld({.bins = 10, .significance = 0.05});
      kld.fit(window);
      for (const auto& v : artifacts[i].attack_vectors) {
        if (kld.flag_week(v)) ++detected;
        ++total_attacks;
      }
      for (std::size_t w = 0; w < split.test_weeks; ++w) {
        if (kld.flag_week(split.test_week(dataset.consumer(i), w))) ++fps;
        ++total_clean;
      }
    }
    std::printf("%8zu %13.1f%% %13.1f%%\n", weeks,
                100.0 * detected / static_cast<double>(total_attacks),
                100.0 * fps / static_cast<double>(total_clean));
  }
  return 0;
}
