// Reproduces the substance of Fig. 2 (radial topology as an n-ary tree with
// additive demands and loss leaves) and quantifies the Section V-C
// investigation-cost argument: the tree-pruning portable-meter search
// (Case 2) versus the O(N) exhaustive sweep.

#include <algorithm>
#include <cstdio>

#include "common/env.h"
#include "common/rng.h"
#include "grid/balance.h"
#include "grid/investigate.h"
#include "grid/topology.h"

using namespace fdeta;

int main() {
  // Fig. 2's example: root N1 -> {N2, N3, L1}, N3 -> {C4, C5, L3}.
  std::printf("=== Fig. 2: radial topology, demand additivity (eq. 4) ===\n");
  {
    grid::Topology t;
    const auto n2 = t.add_internal(t.root());
    const auto n3 = t.add_internal(t.root());
    t.add_loss(t.root(), 0.04);  // L1
    t.add_consumer(n2, 1001);    // C1
    t.add_consumer(n2, 1002);    // C2
    t.add_consumer(n2, 1003);    // C3
    t.add_loss(n2, 0.03);        // L2
    t.add_consumer(n3, 1004);    // C4
    t.add_consumer(n3, 1005);    // C5
    t.add_loss(n3, 0.03);        // L3

    const std::vector<Kw> demand{1.2, 0.8, 2.0, 1.5, 0.5};
    const auto node_kw = t.node_demands(demand);
    std::printf("  D_N2 = %.4f kW (C1+C2+C3 + L2)\n", node_kw[n2]);
    std::printf("  D_N3 = %.4f kW (C4+C5 + L3)\n", node_kw[n3]);
    std::printf("  D_N1 = %.4f kW (N2+N3 + L1)\n", node_kw[t.root()]);
  }

  // Investigation-cost sweep over growing populations.
  std::printf("\n=== Section V-C: investigation cost, Case 2 vs exhaustive "
              "===\n");
  std::printf("%10s %10s %14s %14s %8s\n", "consumers", "tree depth",
              "case2 checks", "exhaustive", "found");
  const std::size_t sizes[] = {50, 100, 200, 500, 1000, 2000};
  for (const std::size_t n : sizes) {
    Rng rng(n);
    const auto t = grid::Topology::random_radial(n, 4, rng, 0.0);
    std::vector<Kw> actual(n);
    for (std::size_t i = 0; i < n; ++i) actual[i] = 0.5 + 0.001 * i;
    std::vector<Kw> reported = actual;
    const std::size_t thief = n / 3;
    reported[thief] *= 0.4;  // Attack Class 2A from the wire

    const auto pruned = grid::investigate_case2(t, actual, reported);
    const auto full = grid::investigate_exhaustive(t, actual, reported);

    int depth = 0;
    for (std::size_t i = 0; i < n; ++i) {
      depth = std::max(depth, t.depth(t.consumer_leaf(i)));
    }
    const bool found =
        std::find(pruned.suspects.begin(), pruned.suspects.end(), thief) !=
        pruned.suspects.end();
    std::printf("%10zu %10d %14zu %14zu %8s\n", n, depth,
                pruned.checks_performed, full.checks_performed,
                found ? "yes" : "NO");
  }

  // Section VI-A: how many balance meters Mallory must compromise to hide
  // an A-class theft from every metered ancestor (root excluded: trusted).
  std::printf("\n=== Section VI-A: meters on Mallory's path to the root "
              "===\n");
  std::printf("%10s %18s %18s\n", "consumers", "balanced tree",
              "linear feeder");
  for (const std::size_t n : {64, 256, 1024, 4096}) {
    Rng rng2(n);
    const auto balanced = grid::Topology::random_radial(n, 4, rng2, 0.0);
    // Linear feeder: a chain of internal nodes, one consumer per node.
    grid::Topology chain;
    grid::NodeId cur = chain.root();
    for (std::size_t i = 0; i < n; ++i) {
      chain.add_consumer(cur, static_cast<meter::ConsumerId>(1000 + i));
      if (i + 1 < n) cur = chain.add_internal(cur);
    }
    const auto b = grid::meters_to_compromise(balanced, n / 2, {0});
    const auto l = grid::meters_to_compromise(chain, n - 1, {0});
    std::printf("%10zu %18zu %18zu\n", n, b.size(), l.size());
  }

  // Balance-check + alarm rules demo (Section V-B).
  std::printf("\n=== Section V-B: W-event consistency alarms ===\n");
  {
    grid::Topology t;
    const auto n1 = t.add_internal(t.root());
    const auto n2 = t.add_internal(t.root());
    t.add_consumer(n1, 1000);
    t.add_consumer(n1, 1001);
    t.add_consumer(n2, 1002);
    const std::vector<Kw> actual{1.0, 2.0, 3.0};
    std::vector<Kw> reported = actual;
    reported[0] = 0.2;  // theft under n1

    const auto honest = grid::run_balance_checks(t, actual, reported);
    std::printf("  trusted meters: failing nodes =");
    for (auto id : honest.failing_nodes()) std::printf(" %d", id);
    std::printf(" (root + n1, consistent; no alarm)\n");

    const auto comp =
        grid::run_balance_checks(t, actual, reported, {t.root()});
    const auto alarms = grid::inconsistent_meter_alarms(t, comp);
    std::printf("  compromised ROOT meter: alarms =");
    for (auto id : alarms) std::printf(" %d", id);
    std::printf(" (child fails while parent passes => investigate)\n");
  }
  return 0;
}
