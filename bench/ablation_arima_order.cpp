// Ablation E: sensitivity to the ARIMA model order (the paper's ref [2]
// does not publish its order).  Sweeps plain and seasonal orders and
// reports the fitted residual scale (CI width), the Integrated-ARIMA-attack
// theft it permits, and whether the qualitative conclusion (KLD catches
// what the ARIMA family misses) is order-invariant.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/integrated_arima_detector.h"
#include "core/kld_detector.h"
#include "pricing/billing.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 80);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};
  const auto tou = pricing::nightsaver();

  struct OrderCase {
    const char* label;
    ts::ArimaOrder order;
  };
  const OrderCase cases[] = {
      {"AR(1)", {.p = 1, .d = 0, .q = 0}},
      {"ARMA(3,1)  [default]", {.p = 3, .d = 0, .q = 1}},
      {"ARIMA(3,1,1)", {.p = 3, .d = 1, .q = 1}},
      {"SARMA(3,1)x(1)_48", {.p = 3, .d = 0, .q = 1, .sp = 1, .season = 48}},
      {"SARMA(2,0)x(2)_48", {.p = 2, .d = 0, .q = 0, .sp = 2, .season = 48}},
  };

  std::printf("Ablation E: ARIMA order sweep, %zu consumers, 1B Integrated "
              "attack (1 vector)\n\n",
              consumers);
  std::printf("%-22s %12s %14s %14s %14s\n", "model", "mean sigma",
              "theft kWh/wk", "ARIMA-det %", "KLD-det %");

  for (const auto& c : cases) {
    std::vector<double> sigma(consumers, 0.0);
    std::vector<double> theft(consumers, 0.0);
    std::vector<char> arima_det(consumers, 0), kld_det(consumers, 0),
        skipped(consumers, 0);

    parallel_for(consumers, [&](std::size_t i) {
      try {
        const auto& series = dataset.consumer(i);
        const auto train = split.train(series);
        const auto clean = split.test_week(series, 0);

        core::ArimaDetectorConfig acfg;
        acfg.order = c.order;
        core::ArimaDetector arima(acfg);
        arima.fit(train);
        core::KldDetector kld({.bins = 10, .significance = 0.05});
        kld.fit(train);

        sigma[i] = std::sqrt(arima.model().sigma2());

        const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
        const auto wstats = meter::weekly_stats(train);
        Rng rng = Rng(scale.seed).spawn(series.id);
        attack::IntegratedAttackConfig ia;
        ia.over_report = true;
        ia.z = 1.96;
        const auto v = attack::integrated_arima_attack_vector(
            arima.model(), history, wstats, kSlotsPerWeek, rng, ia);

        theft[i] = std::max(0.0, pricing::energy(v) - pricing::energy(clean));
        arima_det[i] = arima.flag_week(v) ? 1 : 0;
        kld_det[i] = kld.flag_week(v) ? 1 : 0;
      } catch (const std::exception&) {
        skipped[i] = 1;
      }
    });

    double sig = 0.0, kwh = 0.0;
    std::size_t n = 0, a = 0, k = 0;
    for (std::size_t i = 0; i < consumers; ++i) {
      if (skipped[i]) continue;
      ++n;
      sig += sigma[i];
      kwh += theft[i];
      a += arima_det[i];
      k += kld_det[i];
    }
    if (n == 0) continue;
    std::printf("%-22s %11.3f %14.0f %13.1f%% %13.1f%%\n", c.label,
                sig / static_cast<double>(n), kwh,
                100.0 * a / static_cast<double>(n),
                100.0 * k / static_cast<double>(n));
  }

  std::printf("\ntighter models (seasonal terms) shrink sigma and therefore "
              "the CI the attacker may ride: the permitted theft falls with "
              "model quality, while the KLD detector's verdicts stay high "
              "regardless of the order - the paper's conclusion is "
              "order-invariant.\n");
  return 0;
}
