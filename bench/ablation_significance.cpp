// Ablation B: significance-level sweep for the KLD detector (ROC-style).
//
// The paper evaluates alpha = 5% and 10% (Table II) and notes the trade-off:
// a more aggressive boundary detects more attacks but pays in false
// positives (Section VII-D, VIII-E).  This bench sweeps alpha across
// 1%..25% and reports both rates.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 150);
  const std::size_t vectors = std::min<std::size_t>(scale.vectors, 10);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};

  std::printf("Ablation B: KLD significance sweep, %zu consumers, "
              "%zu vectors, B = 10\n",
              consumers, vectors);

  std::vector<bench::ConsumerArtifacts> artifacts(consumers);
  parallel_for(consumers, [&](std::size_t i) {
    artifacts[i] =
        bench::make_artifacts(dataset.consumer(i), split, vectors, scale.seed);
  });

  std::printf("%8s %14s %14s\n", "alpha", "detection%", "false-pos%");
  for (const double alpha : {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25}) {
    std::size_t detected = 0, total_attacks = 0;
    std::size_t fps = 0, total_clean = 0;
    for (std::size_t i = 0; i < consumers; ++i) {
      core::KldDetector kld({.bins = 10, .significance = alpha});
      kld.fit(artifacts[i].train);
      for (const auto& v : artifacts[i].attack_vectors) {
        if (kld.flag_week(v)) ++detected;
        ++total_attacks;
      }
      for (std::size_t w = 0; w < split.test_weeks; ++w) {
        if (kld.flag_week(split.test_week(dataset.consumer(i), w))) ++fps;
        ++total_clean;
      }
    }
    std::printf("%7.0f%% %13.1f%% %13.1f%%\n", 100.0 * alpha,
                100.0 * detected / static_cast<double>(total_attacks),
                100.0 * fps / static_cast<double>(total_clean));
  }
  return 0;
}
