// Reproduces Table II: Metric 1 - percentage of consumers for whom each
// detector successfully detected the attack (no false negatives on any of
// the 50 injected vectors, no false positive on the clean week).
//
// Paper reference values (CER data, 500 consumers):
//   detector                     1B      2A/2B   3A/3B
//   ARIMA                        0%      0%      0%
//   Integrated ARIMA             0.6%    10.8%   0%
//   KLD (5% significance)        90.3%   72.6%   72.8%
//   KLD (10% significance)       88.9%   83.6%   79.8%
//
// Scale with FDETA_CONSUMERS / FDETA_VECTORS (defaults 500 / 50).

#include <cstdio>

#include "bench/bench_util.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const auto dataset = bench::paper_dataset(scale);
  const auto config = bench::paper_eval_config(scale);

  std::printf("Table II reproduction: %zu consumers, %zu attack vectors\n",
              dataset.consumer_count(), config.attack_vectors);
  const auto result = core::run_evaluation(dataset, config);
  std::printf("evaluated %zu consumers (%zu skipped as degenerate)\n",
              result.evaluated_count(),
              result.consumers.size() - result.evaluated_count());

  bench::print_header(
      "Table II: Metric 1 - % of consumers with the attack detected");
  std::printf("%-34s %8s %8s %8s\n", "Electricity Theft Detector", "1B",
              "2A/2B", "3A/3B");
  for (std::size_t d = 0; d < core::kDetectorCount; ++d) {
    const auto kind = static_cast<core::DetectorKind>(d);
    std::printf("%-34s %7.1f%% %7.1f%% %7.1f%%\n", core::to_string(kind),
                result.metric1_percent(kind, core::AttackKind::k1B),
                result.metric1_percent(kind, core::AttackKind::k2A2B),
                result.metric1_percent(kind, core::AttackKind::k3A3B));
  }
  return 0;
}
