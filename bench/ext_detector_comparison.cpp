// Extension: an extended detector panel beyond the paper's Table II - adds
// the PCA detector of ref [3] (same research group) and a weekly-profile
// z-score baseline in the spirit of ref [20], alongside the paper's four.
//
// Attacks: the same three realizations as Table II plus the combined 2B+3B
// attack (swap + shave) the paper anticipates in Section VIII-F3.

#include <cstdio>
#include <memory>

#include "attack/combined_attack.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/conditioned_kld_detector.h"
#include "core/cusum_detector.h"
#include "core/integrated_arima_detector.h"
#include "core/kld_detector.h"
#include "core/pca_detector.h"
#include "core/profile_detector.h"
#include "pricing/billing.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 200);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};
  const auto tou = pricing::nightsaver();

  constexpr std::size_t kDetectors = 8;
  constexpr std::size_t kAttacks = 4;
  const char* detector_names[kDetectors] = {
      "ARIMA (ref [2])",      "Integrated ARIMA (ref [2])",
      "KLD 5% (paper)",       "Conditioned KLD 5% (paper)",
      "PCA (ref [3])",        "Weekly profile (ref [20] style)",
      "CUSUM baseline",       "EWMA baseline"};
  const char* attack_names[kAttacks] = {"1B", "2A/2B", "3A/3B", "2B+3B"};

  // detected[d][a], fp[d] counters.
  std::vector<std::array<std::array<std::size_t, kAttacks>, kDetectors>>
      detected_per_consumer(consumers);
  std::vector<std::array<std::size_t, kDetectors>> fp_per_consumer(consumers);
  std::vector<char> skipped(consumers, 0);

  parallel_for(consumers, [&](std::size_t i) {
    try {
      const auto& series = dataset.consumer(i);
      const auto train = split.train(series);
      const auto clean = split.test_week(series, 0);

      core::ArimaDetector arima;
      arima.fit(train);
      core::IntegratedArimaDetector integrated;
      integrated.fit(train);
      core::KldDetector kld({.bins = 10, .significance = 0.05});
      kld.fit(train);
      core::ConditionedKldDetectorConfig cc;
      cc.bins = 10;
      cc.significance = 0.05;
      cc.slot_group = core::tou_slot_groups(tou);
      core::ConditionedKldDetector ckld(cc);
      ckld.fit(train);
      core::PcaDetector pca({.explained_fraction = 0.80, .significance = 0.05});
      pca.fit(train);
      core::ProfileDetector profile;
      profile.fit(train);
      core::CusumDetector cusum;
      cusum.fit(train);
      core::EwmaDetector ewma;
      ewma.fit(train);
      const core::Detector* detectors[kDetectors] = {
          &arima, &integrated, &kld, &ckld, &pca, &profile, &cusum, &ewma};

      // Attacks.
      const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
      const auto wstats = meter::weekly_stats(train);
      Rng rng = Rng(scale.seed).spawn(series.id);
      attack::IntegratedAttackConfig over;
      over.over_report = true;
      attack::IntegratedAttackConfig under;
      under.over_report = false;
      attack::OptimalSwapConfig swap_cfg;
      swap_cfg.violation_budget = arima.violation_threshold();
      attack::CombinedAttackConfig combined_cfg;
      combined_cfg.swap = swap_cfg;

      std::array<std::vector<Kw>, kAttacks> attacks;
      attacks[0] = attack::integrated_arima_attack_vector(
          arima.model(), history, wstats, kSlotsPerWeek, rng, over);
      attacks[1] = attack::integrated_arima_attack_vector(
          arima.model(), history, wstats, kSlotsPerWeek, rng, under);
      attacks[2] = attack::optimal_swap_attack(clean, tou, 0, &arima.model(),
                                               history, swap_cfg)
                       .reported;
      attacks[3] = attack::combined_swap_under_report(
                       clean, tou, arima.model(), history, wstats,
                       combined_cfg)
                       .reported;

      for (std::size_t d = 0; d < kDetectors; ++d) {
        fp_per_consumer[i][d] = detectors[d]->flag_week(clean) ? 1 : 0;
        for (std::size_t a = 0; a < kAttacks; ++a) {
          detected_per_consumer[i][d][a] =
              detectors[d]->flag_week(attacks[a]) ? 1 : 0;
        }
      }
    } catch (const std::exception&) {
      skipped[i] = 1;
    }
  });

  std::size_t evaluated = 0;
  std::array<std::array<std::size_t, kAttacks>, kDetectors> detected{};
  std::array<std::size_t, kDetectors> fps{};
  for (std::size_t i = 0; i < consumers; ++i) {
    if (skipped[i]) continue;
    ++evaluated;
    for (std::size_t d = 0; d < kDetectors; ++d) {
      fps[d] += fp_per_consumer[i][d];
      for (std::size_t a = 0; a < kAttacks; ++a) {
        detected[d][a] += detected_per_consumer[i][d][a];
      }
    }
  }

  std::printf("Extended detector panel: %zu consumers (single vector per "
              "attack, alpha = 5%%)\n\n",
              evaluated);
  std::printf("%-34s %8s %8s %8s %8s %8s\n", "detector", "1B", "2A/2B",
              "3A/3B", "2B+3B", "FP");
  for (std::size_t d = 0; d < kDetectors; ++d) {
    std::printf("%-34s", detector_names[d]);
    for (std::size_t a = 0; a < kAttacks; ++a) {
      std::printf(" %7.1f%%",
                  100.0 * detected[d][a] / static_cast<double>(evaluated));
    }
    std::printf(" %7.1f%%\n", 100.0 * fps[d] / static_cast<double>(evaluated));
  }
  std::printf("\nnotes: (a) the conditioned KLD dominates on the ordering "
              "attacks (3A/3B, 2B+3B) as Section VIII-F3 predicts;\n"
              "(b) PCA sees shape, KLD sees distribution - together they "
              "cover both anomaly families;\n"
              "(c) attacks were tuned against the ARIMA-family detectors "
              "only, so the panel shows transferability, not worst case.\n");
  (void)attack_names;
  return 0;
}
