// Extension: multiple simultaneous attackers (the paper's conclusion lists
// "account for the presence of multiple attackers" as planned future work).
//
// k attackers on one feeder each run the Integrated-ARIMA 1B attack against
// disjoint victims in the same week.  We measure (a) how per-victim KLD
// detection scales with k (each victim's stream is judged independently, so
// it should not degrade), and (b) what the balance layer sees when the
// attackers do / do not coordinate the neighbor compensation.

#include <cstdio>

#include "attack/collusion.h"
#include "attack/injector.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"
#include "grid/balance.h"
#include "grid/hierarchy/feeder_monitor.h"
#include "stats/descriptive.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 120);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};
  const std::size_t attacked_week = split.train_weeks;

  // Pre-fit detectors and pre-generate per-consumer 1B vectors.
  std::vector<core::KldDetector> detectors(
      consumers, core::KldDetector({.bins = 10, .significance = 0.10}));
  std::vector<std::vector<Kw>> vectors(consumers);
  std::vector<char> usable(consumers, 1);
  parallel_for(consumers, [&](std::size_t i) {
    try {
      const auto artifacts = bench::make_artifacts(dataset.consumer(i), split,
                                                   /*vectors=*/1, scale.seed);
      detectors[i].fit(artifacts.train);
      vectors[i] = artifacts.attack_vectors.front();
    } catch (const std::exception&) {
      usable[i] = 0;
    }
  });

  const auto topology = grid::Topology::single_feeder(consumers, 0.0);

  std::printf("Multiple simultaneous 1B attackers, %zu consumers on one "
              "feeder, KLD alpha = 10%%\n\n",
              consumers);
  std::printf("%10s %18s %22s %22s\n", "attackers", "victims detected",
              "root check (coord.)", "root check (uncoord.)");

  for (const std::size_t k : {1, 2, 5, 10, 25, 50}) {
    if (k > consumers / 2) break;
    // Victims are the first k usable consumers.
    std::vector<attack::WeekInjection> injections;
    for (std::size_t i = 0; i < consumers && injections.size() < k; ++i) {
      if (!usable[i] || vectors[i].empty()) continue;
      injections.push_back({i, attacked_week, vectors[i]});
    }
    const auto reported = attack::apply_injections(dataset, injections);

    std::size_t detected = 0;
    for (const auto& inj : injections) {
      if (detectors[inj.consumer_index].flag_week(
              reported.consumer(inj.consumer_index).week(attacked_week))) {
        ++detected;
      }
    }

    // Balance view at the attacked week (average demands).  Coordinated:
    // the attackers consume exactly what the victims are over-billed for,
    // so actual totals rise to match reported.  Uncoordinated: the books
    // do not add up and the trusted root meter sees it.
    std::vector<Kw> actual_avg(consumers), reported_avg(consumers);
    for (std::size_t i = 0; i < consumers; ++i) {
      actual_avg[i] = stats::mean(dataset.consumer(i).week(attacked_week));
      reported_avg[i] = stats::mean(reported.consumer(i).week(attacked_week));
    }
    const auto uncoordinated =
        grid::run_balance_checks(topology, actual_avg, reported_avg, {}, 1e-6);

    std::vector<Kw> coordinated_actual = actual_avg;
    // Each attacker's actual consumption absorbs her victim's over-report.
    double absorbed = 0.0;
    for (const auto& inj : injections) {
      absorbed += reported_avg[inj.consumer_index] -
                  actual_avg[inj.consumer_index];
    }
    // Mallory sits at the last leaf and soaks up the total.
    coordinated_actual[consumers - 1] += absorbed;
    const auto coordinated = grid::run_balance_checks(
        topology, coordinated_actual, reported_avg, {}, 1e-6);

    std::printf("%10zu %11zu/%zu %27s %22s\n", injections.size(), detected,
                injections.size(),
                coordinated.failed(topology.root()) ? "FAILS" : "passes",
                uncoordinated.failed(topology.root()) ? "FAILS" : "passes");
  }

  std::printf("\nper-victim detection is independent of k (the KLD detector "
              "judges each stream separately), so the data-driven layer "
              "scales to multiple attackers; the balance layer only helps "
              "when attackers fail to coordinate consumption with their "
              "over-reports.\n");

  // Collusion sweep: k siblings under the deepest shared transformer each
  // shave a sub-threshold sliver of the attacked week (attack/collusion.h).
  // Per-consumer KLD sees (almost) nothing; the feeder hierarchy layer
  // aggregates the joint residual up the radial tree and localises the
  // group.
  fdeta::Rng topo_rng(scale.seed);
  const auto radial =
      grid::Topology::random_radial(consumers, 4, topo_rng, 0.02);
  hierarchy::FeederConfig feeder_config;
  hierarchy::FeederMonitor feeder(radial, feeder_config);
  feeder.fit(dataset, split);

  std::printf("\nColluding sibling groups, %.0f%% shave each, week %zu\n\n",
              100.0 * 0.03, attacked_week);
  std::printf("%10s %18s %14s %10s %12s\n", "colluders", "flagged (KLD)",
              "feeder alerts", "groups", "localized");
  for (const std::size_t k : {2, 4, 8, 16}) {
    if (k > consumers) break;
    const auto scenario = attack::make_collusion_scenario(
        radial, dataset, k, /*shave_fraction=*/0.03, attacked_week);
    const auto reported = attack::apply_injections(dataset,
                                                   scenario.injections);

    std::size_t flagged_individually = 0;
    std::vector<unsigned char> flagged(consumers, 0);
    for (const std::size_t i : scenario.consumers) {
      if (!usable[i]) continue;
      if (detectors[i].flag_week(
              reported.consumer(i).week(attacked_week))) {
        flagged[i] = 1;
        ++flagged_individually;
      }
    }

    const auto report =
        feeder.evaluate_week(dataset, reported, attacked_week, flagged);
    std::size_t localized = 0;
    for (const auto& group : report.collusion) {
      for (const std::size_t member : group.consumers) {
        for (const std::size_t colluder : scenario.consumers) {
          if (member == colluder) ++localized;
        }
      }
    }
    std::printf("%10zu %14zu/%zu %14zu %10zu %9zu/%zu\n", k,
                flagged_individually, k, report.alert_count(),
                report.collusion.size(), localized, k);
  }

  std::printf("\nthe feeder layer closes the collusion gap: each colluder "
              "stays under the per-consumer threshold, but the shaves add "
              "up at the shared transformer, where the balance-mode "
              "residual is exact and the aggregate detector fires.\n");
  return 0;
}
