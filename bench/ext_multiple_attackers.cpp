// Extension: multiple simultaneous attackers (the paper's conclusion lists
// "account for the presence of multiple attackers" as planned future work).
//
// k attackers on one feeder each run the Integrated-ARIMA 1B attack against
// disjoint victims in the same week.  We measure (a) how per-victim KLD
// detection scales with k (each victim's stream is judged independently, so
// it should not degrade), and (b) what the balance layer sees when the
// attackers do / do not coordinate the neighbor compensation.

#include <cstdio>

#include "attack/injector.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/kld_detector.h"
#include "grid/balance.h"
#include "stats/descriptive.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 120);
  const auto dataset = datagen::small_dataset(consumers, 74, scale.seed);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};
  const std::size_t attacked_week = split.train_weeks;

  // Pre-fit detectors and pre-generate per-consumer 1B vectors.
  std::vector<core::KldDetector> detectors(
      consumers, core::KldDetector({.bins = 10, .significance = 0.10}));
  std::vector<std::vector<Kw>> vectors(consumers);
  std::vector<char> usable(consumers, 1);
  parallel_for(consumers, [&](std::size_t i) {
    try {
      const auto artifacts = bench::make_artifacts(dataset.consumer(i), split,
                                                   /*vectors=*/1, scale.seed);
      detectors[i].fit(artifacts.train);
      vectors[i] = artifacts.attack_vectors.front();
    } catch (const std::exception&) {
      usable[i] = 0;
    }
  });

  const auto topology = grid::Topology::single_feeder(consumers, 0.0);

  std::printf("Multiple simultaneous 1B attackers, %zu consumers on one "
              "feeder, KLD alpha = 10%%\n\n",
              consumers);
  std::printf("%10s %18s %22s %22s\n", "attackers", "victims detected",
              "root check (coord.)", "root check (uncoord.)");

  for (const std::size_t k : {1, 2, 5, 10, 25, 50}) {
    if (k > consumers / 2) break;
    // Victims are the first k usable consumers.
    std::vector<attack::WeekInjection> injections;
    for (std::size_t i = 0; i < consumers && injections.size() < k; ++i) {
      if (!usable[i] || vectors[i].empty()) continue;
      injections.push_back({i, attacked_week, vectors[i]});
    }
    const auto reported = attack::apply_injections(dataset, injections);

    std::size_t detected = 0;
    for (const auto& inj : injections) {
      if (detectors[inj.consumer_index].flag_week(
              reported.consumer(inj.consumer_index).week(attacked_week))) {
        ++detected;
      }
    }

    // Balance view at the attacked week (average demands).  Coordinated:
    // the attackers consume exactly what the victims are over-billed for,
    // so actual totals rise to match reported.  Uncoordinated: the books
    // do not add up and the trusted root meter sees it.
    std::vector<Kw> actual_avg(consumers), reported_avg(consumers);
    for (std::size_t i = 0; i < consumers; ++i) {
      actual_avg[i] = stats::mean(dataset.consumer(i).week(attacked_week));
      reported_avg[i] = stats::mean(reported.consumer(i).week(attacked_week));
    }
    const auto uncoordinated =
        grid::run_balance_checks(topology, actual_avg, reported_avg, {}, 1e-6);

    std::vector<Kw> coordinated_actual = actual_avg;
    // Each attacker's actual consumption absorbs her victim's over-report.
    double absorbed = 0.0;
    for (const auto& inj : injections) {
      absorbed += reported_avg[inj.consumer_index] -
                  actual_avg[inj.consumer_index];
    }
    // Mallory sits at the last leaf and soaks up the total.
    coordinated_actual[consumers - 1] += absorbed;
    const auto coordinated = grid::run_balance_checks(
        topology, coordinated_actual, reported_avg, {}, 1e-6);

    std::printf("%10zu %11zu/%zu %27s %22s\n", injections.size(), detected,
                injections.size(),
                coordinated.failed(topology.root()) ? "FAILS" : "passes",
                uncoordinated.failed(topology.root()) ? "FAILS" : "passes");
  }

  std::printf("\nper-victim detection is independent of k (the KLD detector "
              "judges each stream separately), so the data-driven layer "
              "scales to multiple attackers; the balance layer only helps "
              "when attackers fail to coordinate consumption with their "
              "over-reports.\n");
  return 0;
}
