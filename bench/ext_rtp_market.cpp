// Extension: Attack Class 4B inside a clearing real-time market.
//
// Section VII-A: studying 4B "would also require the simulation of a
// real-time electricity market".  Here the RTP prices are not an exogenous
// stream but the fixed point of supply meeting price-responsive demand
// (src/market).  The attack inflates the price signal seen by a set of
// victims' ADR interfaces; their withdrawal moves the *true* clearing price
// down for everyone - a market externality the exogenous-price study cannot
// show.

#include <cstdio>

#include "bench/bench_util.h"
#include "market/clearing.h"
#include "pricing/billing.h"
#include "stats/descriptive.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 60);
  const std::size_t slots = kSlotsPerWeek;
  const auto dataset = datagen::small_dataset(consumers, 1, scale.seed);

  std::vector<std::vector<Kw>> baselines;
  baselines.reserve(consumers);
  for (const auto& c : dataset.consumers()) baselines.push_back(c.readings);
  const std::vector<double> elasticities(consumers, 0.8);

  // Supply sized so the honest market clears near the 0.20 $/kWh reference.
  double mean_total = 0.0;
  for (std::size_t t = 0; t < slots; ++t) {
    for (const auto& b : baselines) mean_total += b[t];
  }
  mean_total /= static_cast<double>(slots);
  market::SupplyCurve supply;
  supply.base = 0.10;
  supply.slope = 0.10 / std::max(mean_total, 1.0);

  std::printf("4B in a clearing RTP market: %zu participants, mean honest "
              "load %.1f kW\n\n",
              consumers, mean_total);

  std::vector<double> honest_distortion(consumers, 1.0);
  const auto honest = market::run_market(baselines, elasticities,
                                         honest_distortion, supply, 0.20);

  std::printf("%10s %16s %16s %16s %16s\n", "victims", "mean price",
              "victims kWh", "freed kWh/wk", "others' bill");
  for (const std::size_t victims : {0, 1, 5, 15, 30}) {
    if (victims > consumers / 2) break;
    std::vector<double> distortion(consumers, 1.0);
    for (std::size_t v = 0; v < victims; ++v) distortion[v] = 1.5;
    const auto run = market::run_market(baselines, elasticities, distortion,
                                        supply, 0.20);

    const double mean_price = stats::mean(run.prices);
    double victim_kwh = 0.0, victim_honest_kwh = 0.0;
    for (std::size_t v = 0; v < victims; ++v) {
      victim_kwh += pricing::energy(run.consumption[v]);
      victim_honest_kwh += pricing::energy(honest.consumption[v]);
    }
    // Power freed for Mallory = what the victims no longer draw.
    const double freed = victim_honest_kwh - victim_kwh;
    // Everyone else's bill at the cleared prices.
    double others_bill = 0.0;
    for (std::size_t c = victims; c < consumers; ++c) {
      for (std::size_t t = 0; t < slots; ++t) {
        others_bill += run.prices[t] * run.consumption[c][t] * kHoursPerSlot;
      }
    }
    std::printf("%10zu %15.4f$ %15.1f %16.1f %15.2f$\n", victims, mean_price,
                victim_kwh, freed, others_bill);
  }

  std::printf("\nexternality: every victim Mallory farms pushes the clearing "
              "price DOWN (their demand is withdrawn), so honest consumers' "
              "bills shrink while the victims unknowingly fund Mallory - the "
              "utility's revenue, not its energy balance, erodes.\n");
  return 0;
}
