// Fleet-scale throughput: consumers/sec for FdetaPipeline::fit and weekly
// KLD scoring, serial vs the shared thread pool, at 1k / 10k / 50k synthetic
// consumers, plus OnlineMonitor::ingest_batch readings/sec and the
// cold-fit vs warm-start (save_model/load_model checkpoint) comparison.
// Two fleet stages ride on top: a shard-contention sweep (concurrent feed
// threads through the locked ingest() path, global lock vs the sharded
// lock table) and a streaming mega-fleet run (fit_streaming + bulk v3
// checkpoint warm start at a million consumers).
// This is the ROADMAP's production-scale loop (millions of meters at a
// control center); the numbers here anchor the perf trajectory from PR 1
// onward.
//
// Each scale also prints a stage-level breakdown from the obs telemetry
// layer (one isolated registry per scale, plus shared-pool deltas from the
// default registry), so a throughput regression can be localised to a stage
// before anyone reaches for a profiler.
//
// Flags: --smoke caps the population at 1000 consumers (the CI lane);
// --bench-out PATH additionally writes the run as machine-readable JSON
// (the committed BENCH_fleet.json perf trajectory; tools/bench_compare.py
// gates CI on the derived ratios).
// Env knobs: FDETA_FLEET_MAX caps the largest population (default 50000,
// lower it on small machines); FDETA_FLEET_WEEKS sets the horizon (default
// 9 = 8 training weeks + 1 scored week); FDETA_FLEET_THREADS sets the
// feed-thread fan for the shard-contention stage (default 8);
// FDETA_FLEET_MEGA sizes the streaming mega-fleet stage (default 1000000;
// the smoke lane caps it at 10000); FDETA_SEED as everywhere;
// FDETA_TRACE_BUDGET sets the relative tracing-overhead budget (default
// 0.05 = 5%) enforced by the final stage.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ami/faults.h"
#include "ami/network.h"
#include "bench/bench_util.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/detector_registry.h"
#include "core/online_monitor.h"
#include "core/pipeline.h"
#include "datagen/generator.h"
#include "grid/topology.h"
#include "meter/dataset.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace {

using fdeta::Kw;
using fdeta::kSlotsPerWeek;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct FleetTimings {
  double fit_serial = 0.0;
  double fit_pooled = 0.0;
  double score_serial = 0.0;
  double score_pooled = 0.0;
  double batch_pooled = 0.0;     // readings/sec
  double cold_fit_s = 0.0;       // pooled fit wall time (one fit)
  double warm_restore_s = 0.0;   // load_model wall time from a checkpoint
  std::size_t model_bytes = 0;   // checkpoint size
};

FleetTimings run_scale(std::size_t consumers, std::size_t weeks,
                       std::uint64_t seed, fdeta::obs::MetricsRegistry& reg) {
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};
  const fdeta::core::EvidenceCalendar calendar;
  FleetTimings out;

  for (const bool pooled : {false, true}) {
    fdeta::core::PipelineConfig config;
    config.split = split;
    config.threads = pooled ? 0 : 1;
    config.metrics = &reg;
    fdeta::core::FdetaPipeline pipeline(config);

    auto start = std::chrono::steady_clock::now();
    pipeline.fit(dataset);
    const double fit_s = seconds_since(start);

    // A single weekly sweep is microseconds/consumer; average a few rounds.
    const std::size_t rounds = 5;
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
      const auto report =
          pipeline.evaluate_week(dataset, dataset, weeks - 1, calendar);
      if (report.verdicts.size() != consumers) std::abort();
    }
    const double score_s = seconds_since(start) / rounds;

    (pooled ? out.fit_pooled : out.fit_serial) =
        static_cast<double>(consumers) / fit_s;
    (pooled ? out.score_pooled : out.score_serial) =
        static_cast<double>(consumers) / score_s;

    if (pooled) {
      // Warm-start serving: checkpoint the fitted pipeline and time a fresh
      // process restoring it instead of refitting from raw readings.  The
      // restored pipeline must reproduce the cold fit's verdicts exactly.
      out.cold_fit_s = fit_s;
      std::stringstream model(std::ios::in | std::ios::out |
                              std::ios::binary);
      pipeline.save_model(model);
      out.model_bytes = model.str().size();

      fdeta::core::PipelineConfig warm_config;
      warm_config.metrics = &reg;
      fdeta::core::FdetaPipeline warm(warm_config);
      start = std::chrono::steady_clock::now();
      warm.load_model(model);
      out.warm_restore_s = seconds_since(start);

      const auto cold =
          pipeline.evaluate_week(dataset, dataset, weeks - 1, calendar);
      const auto warmed =
          warm.evaluate_week(dataset, dataset, weeks - 1, calendar);
      for (std::size_t c = 0; c < consumers; ++c) {
        if (cold.verdicts[c].status != warmed.verdicts[c].status ||
            cold.verdicts[c].kld_score != warmed.verdicts[c].kld_score) {
          std::fprintf(stderr, "warm-start verdict mismatch at consumer %zu\n",
                       c);
          std::abort();
        }
      }
    }
  }

  // Streaming path: one head-end delivery = one slot for every consumer.
  fdeta::core::OnlineMonitorConfig mon_config;
  mon_config.stride = 1;  // score on every reading (worst case)
  mon_config.metrics = &reg;
  fdeta::core::OnlineMonitor monitor(mon_config);
  monitor.fit(dataset, split);
  std::vector<fdeta::core::Reading> delivery;
  delivery.reserve(consumers);
  const fdeta::SlotIndex base = split.train_weeks * kSlotsPerWeek;
  const std::size_t slots = 4;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < slots; ++s) {
    delivery.clear();
    for (std::size_t c = 0; c < consumers; ++c) {
      delivery.push_back({.consumer_index = c,
                          .slot = base + s,
                          .kw = dataset.consumer(c).readings[base + s]});
    }
    monitor.ingest_batch(delivery);
  }
  out.batch_pooled =
      static_cast<double>(consumers * slots) / seconds_since(start);
  return out;
}

// Shard-contention stage: the same fitted fleet driven through the locked
// per-reading ingest() path by F concurrent feed threads (each owns a
// contiguous consumer range, delivering slot-major like a head-end), with
// the per-consumer state behind one global lock (shards=1) vs the sharded
// lock table (shards=64).  Results are identical by construction (sharding
// moves locks, never results); only the readings/sec changes.  Every point
// restores the same checkpoint, so the comparison starts from identical
// state and the warm-start path gets exercised under every lock layout.
struct ShardPoint {
  std::size_t shards = 0;   // resolved shard count
  std::size_t threads = 0;  // feed threads
  double readings_per_s = 0.0;
};

std::vector<ShardPoint> run_shard_scaling(std::size_t max_consumers,
                                          std::size_t weeks,
                                          std::uint64_t seed,
                                          std::size_t max_threads) {
  const std::size_t consumers = std::min<std::size_t>(10000, max_consumers);
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};

  fdeta::obs::MetricsRegistry reg;
  fdeta::core::OnlineMonitorConfig base_config;
  base_config.stride = 1;  // score on every reading (worst case)
  base_config.metrics = &reg;
  fdeta::core::OnlineMonitor fitted(base_config);
  fitted.fit(dataset, split);
  std::stringstream model(std::ios::in | std::ios::out | std::ios::binary);
  fitted.save(model);

  std::vector<std::size_t> thread_counts{1, max_threads / 2, max_threads};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());
  if (thread_counts.front() == 0) thread_counts.erase(thread_counts.begin());

  const fdeta::SlotIndex base = split.train_weeks * kSlotsPerWeek;
  const std::size_t slots = 4;

  std::printf(
      "\n=== shard contention @%zu consumers: ingest() readings/s, %zu "
      "feed threads max ===\n",
      consumers, max_threads);
  std::printf("%7s %8s | %14s\n", "shards", "feeds", "readings/s");

  std::vector<ShardPoint> points;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{64}}) {
    for (const std::size_t threads : thread_counts) {
      fdeta::core::OnlineMonitorConfig config = base_config;
      config.shards = shards;
      fdeta::core::OnlineMonitor monitor(config);
      model.clear();
      model.seekg(0);
      monitor.restore(model);

      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> feeds;
      feeds.reserve(threads);
      const std::size_t per = (consumers + threads - 1) / threads;
      for (std::size_t f = 0; f < threads; ++f) {
        feeds.emplace_back([&, f] {
          const std::size_t begin = f * per;
          const std::size_t end = std::min(consumers, begin + per);
          for (std::size_t s = 0; s < slots; ++s) {
            for (std::size_t c = begin; c < end; ++c) {
              monitor.ingest(c, base + static_cast<fdeta::SlotIndex>(s),
                             dataset.consumer(c).readings[base + s]);
            }
          }
        });
      }
      for (std::thread& feed : feeds) feed.join();
      const double rate =
          static_cast<double>(consumers * slots) / seconds_since(start);
      points.push_back({monitor.shard_count(), threads, rate});
      std::printf("%7zu %8zu | %14.0f\n", monitor.shard_count(), threads,
                  rate);
    }
  }
  return points;
}

// Streaming mega-fleet stage: fit_streaming materialises one generated
// series at a time (a million-consumer history would be tens of gigabytes;
// the fitted state is ~3 GB), scores slot-major deliveries through
// ingest_batch, then times the checkpoint save and the bulk v3 warm start.
// Delivery values reuse each consumer's primed window (regenerating the
// history just to read two slots per consumer would time the generator,
// not the monitor).
struct MegaResult {
  std::size_t consumers = 0;
  std::size_t shard_count = 0;
  double fit_consumers_per_s = 0.0;
  double ingest_readings_per_s = 0.0;
  double fit_s = 0.0;
  double save_s = 0.0;
  double restore_s = 0.0;
  std::size_t checkpoint_bytes = 0;
};

MegaResult run_mega(std::size_t count, std::size_t weeks,
                    std::uint64_t seed) {
  const fdeta::datagen::StreamingFleet fleet(
      fdeta::datagen::scaled_config(count, weeks, seed));
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};

  fdeta::obs::MetricsRegistry reg;
  fdeta::core::OnlineMonitorConfig config;
  config.stride = 1;
  config.metrics = &reg;
  fdeta::core::OnlineMonitor monitor(config);

  MegaResult out;
  out.consumers = count;

  auto start = std::chrono::steady_clock::now();
  monitor.fit_streaming(
      count, [&](std::size_t i) { return fleet.consumer(i); }, split);
  out.fit_s = seconds_since(start);
  out.fit_consumers_per_s = static_cast<double>(count) / out.fit_s;
  out.shard_count = monitor.shard_count();

  const fdeta::SlotIndex base = split.train_weeks * kSlotsPerWeek;
  const std::size_t slots = 2;
  std::vector<fdeta::core::Reading> delivery(count);
  double ingest_s = 0.0;
  for (std::size_t s = 0; s < slots; ++s) {
    const auto slot = base + static_cast<fdeta::SlotIndex>(s);
    for (std::size_t c = 0; c < count; ++c) {
      delivery[c] = {.consumer_index = c,
                     .slot = slot,
                     .kw = monitor.window(c)[slot % kSlotsPerWeek]};
    }
    start = std::chrono::steady_clock::now();
    monitor.ingest_batch(delivery);
    ingest_s += seconds_since(start);
  }
  out.ingest_readings_per_s =
      static_cast<double>(count * slots) / ingest_s;

  std::stringstream checkpoint(std::ios::in | std::ios::out |
                               std::ios::binary);
  start = std::chrono::steady_clock::now();
  monitor.save(checkpoint);
  out.save_s = seconds_since(start);
  out.checkpoint_bytes = static_cast<std::size_t>(checkpoint.tellp());

  fdeta::core::OnlineMonitor warm(config);
  checkpoint.seekg(0);
  start = std::chrono::steady_clock::now();
  warm.restore(checkpoint);
  out.restore_s = seconds_since(start);
  if (warm.consumer_count() != count) std::abort();

  std::printf(
      "\n=== mega fleet @%zu consumers (streaming fit): fit %.1fs "
      "(%.0f consumers/s), ingest %.0f readings/s, checkpoint %.1f MB, "
      "save %.2fs, warm restore %.2fs (%.1fx faster than refit) ===\n",
      count, out.fit_s, out.fit_consumers_per_s, out.ingest_readings_per_s,
      static_cast<double>(out.checkpoint_bytes) / (1024.0 * 1024.0),
      out.save_s, out.restore_s, out.fit_s / out.restore_s);
  return out;
}

// Detector-family stage: pooled fit and weekly-score throughput for every
// registered detector over one mid-size fleet.  The derived section pins
// each family's rate as a ratio to the "kld" row from the same run, so a
// detector registration that slows fit or scoring by more than the gate's
// tolerance fails CI even though absolute rates vary per machine.
struct DetectorPoint {
  std::string name;
  double fit_per_s = 0.0;
  double score_per_s = 0.0;
};

std::vector<DetectorPoint> run_detector_families(std::size_t max_consumers,
                                                 std::size_t weeks,
                                                 std::uint64_t seed) {
  const std::size_t consumers = std::min<std::size_t>(2000, max_consumers);
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};
  const fdeta::core::EvidenceCalendar calendar;

  std::printf(
      "\n=== detector families @%zu consumers: fit / weekly-score "
      "consumers/s (serial) ===\n",
      consumers);
  std::printf("%10s | %12s %12s\n", "detector", "fit", "score");

  const auto names = fdeta::core::registered_detector_names();
  fdeta::obs::MetricsRegistry reg;
  std::vector<fdeta::core::FdetaPipeline> pipelines;
  pipelines.reserve(names.size());
  for (const std::string_view name : names) {
    fdeta::core::PipelineConfig config;
    config.split = split;
    config.detector = std::string(name);
    config.threads = 1;  // serial: ratios must measure the detector, not
                         // the pool scheduler's run-to-run mood
    config.metrics = &reg;
    pipelines.emplace_back(config);
  }

  // Best-of-N on both phases, with the rounds interleaved round-robin
  // across families: the derived ratios divide one family's rate by
  // another's, so slow machine drift (frequency scaling, a noisy
  // neighbour) must hit every family in every round, not whichever family
  // happened to be measured last.  The minimum is the right estimator for
  // the deterministic cost, as in the tracing stage.
  const std::size_t rounds = 3;
  std::vector<double> fit_s(names.size(), 1e300);
  std::vector<double> score_s(names.size(), 1e300);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t d = 0; d < names.size(); ++d) {
      const auto start = std::chrono::steady_clock::now();
      pipelines[d].fit(dataset);
      fit_s[d] = std::min(fit_s[d], seconds_since(start));
    }
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t d = 0; d < names.size(); ++d) {
      // One weekly sweep of a fast family is ~a millisecond here, below
      // timer/scheduler noise; batch sweeps until the sample spans >=30ms.
      std::size_t sweeps = 0;
      double elapsed = 0.0;
      const auto start = std::chrono::steady_clock::now();
      do {
        const auto report =
            pipelines[d].evaluate_week(dataset, dataset, weeks - 1, calendar);
        if (report.verdicts.size() != consumers) std::abort();
        ++sweeps;
        elapsed = seconds_since(start);
      } while (elapsed < 0.03);
      score_s[d] = std::min(score_s[d], elapsed / static_cast<double>(sweeps));
    }
  }

  std::vector<DetectorPoint> points;
  for (std::size_t d = 0; d < names.size(); ++d) {
    DetectorPoint p;
    p.name = std::string(names[d]);
    p.fit_per_s = static_cast<double>(consumers) / fit_s[d];
    p.score_per_s = static_cast<double>(consumers) / score_s[d];
    std::printf("%10s | %12.0f %12.0f\n", p.name.c_str(), p.fit_per_s,
                p.score_per_s);
    points.push_back(std::move(p));
  }
  return points;
}

// Feeder-aggregation stage: the same pooled weekly sweep with the feeder
// hierarchy layer off vs on over one random radial topology.  The hierarchy
// sweep adds step-5 balance investigation plus per-node aggregate scoring
// and sibling-group correlation, so its rate is a fixed fraction of the
// plain sweep's on any machine.  The derived ratio (hierarchy-on rate /
// plain rate from the same run) is what bench_compare gates: a hierarchy
// change that makes the weekly sweep disproportionately more expensive
// drops the ratio and fails CI.
struct HierarchyOverhead {
  std::size_t consumers = 0;
  std::size_t nodes = 0;  // internal nodes scored by the feeder layer
  double plain_consumers_per_s = 0.0;
  double feeder_consumers_per_s = 0.0;
  double ratio = 0.0;  // feeder rate / plain rate (<= 1)
};

HierarchyOverhead run_hierarchy_overhead(std::size_t max_consumers,
                                         std::size_t weeks,
                                         std::uint64_t seed) {
  const std::size_t consumers = std::min<std::size_t>(10000, max_consumers);
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};
  const fdeta::core::EvidenceCalendar calendar;
  fdeta::Rng rng(seed);
  const auto topology =
      fdeta::grid::Topology::random_radial(consumers, 4, rng, 0.02);

  fdeta::obs::MetricsRegistry reg;
  HierarchyOverhead out;
  out.consumers = consumers;

  for (const bool hierarchy : {false, true}) {
    fdeta::core::PipelineConfig config;
    config.split = split;
    config.hierarchy = hierarchy;
    config.metrics = &reg;
    fdeta::core::FdetaPipeline pipeline(config);
    pipeline.fit(dataset);

    const fdeta::grid::Topology* topo = hierarchy ? &topology : nullptr;
    // Warm once outside the clock: the first hierarchy sweep lazily fits
    // the feeder monitor's per-node baselines and calibration.
    {
      const auto report =
          pipeline.evaluate_week(dataset, dataset, weeks - 1, calendar, topo);
      if (hierarchy) {
        if (!report.feeder.has_value()) std::abort();
        out.nodes = report.feeder->nodes.size();
      }
    }

    // Best-of-N batched sweeps (>= 30ms per sample), as in the detector
    // stage: the derived ratio divides one rate by the other, so both
    // sides need the same noise discipline.
    const std::size_t rounds = 3;
    double sweep_s = 1e300;
    for (std::size_t r = 0; r < rounds; ++r) {
      std::size_t sweeps = 0;
      double elapsed = 0.0;
      const auto start = std::chrono::steady_clock::now();
      do {
        const auto report = pipeline.evaluate_week(dataset, dataset,
                                                   weeks - 1, calendar, topo);
        if (report.verdicts.size() != consumers) std::abort();
        ++sweeps;
        elapsed = seconds_since(start);
      } while (elapsed < 0.03);
      sweep_s = std::min(sweep_s, elapsed / static_cast<double>(sweeps));
    }
    (hierarchy ? out.feeder_consumers_per_s : out.plain_consumers_per_s) =
        static_cast<double>(consumers) / sweep_s;
  }
  out.ratio = out.feeder_consumers_per_s / out.plain_consumers_per_s;

  std::printf(
      "\n=== feeder aggregation @%zu consumers (%zu internal nodes): sweep "
      "%.0f consumers/s plain, %.0f with --hierarchy (%.2fx of plain) ===\n",
      out.consumers, out.nodes, out.plain_consumers_per_s,
      out.feeder_consumers_per_s, out.ratio);
  return out;
}

double hist_sum(const fdeta::obs::MetricsSnapshot& snap, const char* name) {
  const auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0.0 : it->second.sum;
}

void print_breakdown(std::size_t consumers,
                     const fdeta::obs::MetricsSnapshot& snap,
                     const fdeta::obs::MetricsSnapshot& pool_before,
                     const fdeta::obs::MetricsSnapshot& pool_after) {
  std::printf(
      "          | stages @%zu: fit consumers=%llu thresholds=%llu "
      "(%.3fs) | score weeks=%llu verdicts=%llu anomalous=%llu (%.3fs) | "
      "ingest readings=%llu scored=%llu alerts=%llu (%.3fs)\n",
      consumers,
      static_cast<unsigned long long>(snap.counter("pipeline.consumers_fitted")),
      static_cast<unsigned long long>(
          snap.counter("pipeline.thresholds_recomputed")),
      hist_sum(snap, "pipeline.fit_seconds"),
      static_cast<unsigned long long>(snap.counter("pipeline.weeks_scored")),
      static_cast<unsigned long long>(snap.counter("pipeline.verdicts")),
      static_cast<unsigned long long>(
          snap.counter("pipeline.verdicts") -
          snap.counter("pipeline.verdict_normal")),
      hist_sum(snap, "pipeline.evaluate_seconds"),
      static_cast<unsigned long long>(
          snap.counter("monitor.readings_ingested")),
      static_cast<unsigned long long>(snap.counter("monitor.scores_evaluated")),
      static_cast<unsigned long long>(snap.counter("monitor.alerts_raised")),
      hist_sum(snap, "monitor.ingest_batch_seconds"));
  std::printf(
      "          | pool @%zu: +tasks=%llu (completed +%llu) "
      "queue_highwater=%lld\n",
      consumers,
      static_cast<unsigned long long>(
          pool_after.counter("pool.tasks_submitted") -
          pool_before.counter("pool.tasks_submitted")),
      static_cast<unsigned long long>(
          pool_after.counter("pool.tasks_completed") -
          pool_before.counter("pool.tasks_completed")),
      static_cast<long long>(pool_after.gauge("pool.queue_depth_highwater")));
}

// Tracing tax: the same pooled evaluate_week sweep with the span tracer off
// vs on.  The enabled overhead must stay under FDETA_TRACE_BUDGET (relative,
// default 5%) plus a 2ms absolute allowance for tiny populations where one
// scheduler hiccup dominates the relative number.  Aborts on a blown budget
// so the CI smoke lane enforces it.
void run_tracing_overhead(std::size_t max_consumers, std::size_t weeks,
                          std::uint64_t seed) {
  const std::size_t consumers = std::min<std::size_t>(10000, max_consumers);
  const double budget = fdeta::env_double("FDETA_TRACE_BUDGET", 0.05);
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};
  const fdeta::core::EvidenceCalendar calendar;

  fdeta::obs::MetricsRegistry reg;
  fdeta::core::PipelineConfig config;
  config.split = split;
  config.metrics = &reg;
  fdeta::core::FdetaPipeline pipeline(config);
  pipeline.fit(dataset);

  auto sweep_seconds = [&] {
    const auto start = std::chrono::steady_clock::now();
    const auto report =
        pipeline.evaluate_week(dataset, dataset, weeks - 1, calendar);
    if (report.verdicts.size() != consumers) std::abort();
    return seconds_since(start);
  };

  // Best-of-N on both sides: we are comparing code paths, not machines, so
  // the minimum is the right estimator for the deterministic cost.
  const std::size_t rounds = 5;
  fdeta::obs::Tracer& tracer = fdeta::obs::Tracer::instance();
  double off_s = 1e300;
  sweep_seconds();  // warm the caches once before either side measures
  for (std::size_t r = 0; r < rounds; ++r) {
    off_s = std::min(off_s, sweep_seconds());
  }
  double on_s = 1e300;
  tracer.enable(/*ring_capacity=*/1 << 16);
  for (std::size_t r = 0; r < rounds; ++r) {
    on_s = std::min(on_s, sweep_seconds());
  }
  tracer.disable();

  bool saw_sweep_span = false;
  for (const auto& event : tracer.collect()) {
    if (std::strcmp(event.name, "pipeline.evaluate_week") == 0) {
      saw_sweep_span = true;
    }
  }
  if (!saw_sweep_span) {
    std::fprintf(stderr,
                 "tracing overhead stage captured no pipeline.evaluate_week "
                 "span\n");
    std::abort();
  }

  const double overhead = on_s / off_s - 1.0;
  std::printf(
      "\n=== tracing overhead @%zu consumers: sweep off %.4fs, on %.4fs "
      "(%+.2f%%, budget %.0f%% + 2ms) ===\n",
      consumers, off_s, on_s, overhead * 100.0, budget * 100.0);
  if (on_s > off_s * (1.0 + budget) + 0.002) {
    std::fprintf(stderr, "tracing overhead blew the budget\n");
    std::abort();
  }
}

// Scrape tax: one telemetry frame (refresh_health_gauges + registry
// snapshot + delta-frame derivation) costs a bounded slice of the ingest
// work it summarises.  A scraper fires once per interval, so the budget is
// relative to ingesting one interval's readings: scrape must stay under
// FDETA_SCRAPE_BUDGET (default 5%) of the interval's ingest time, plus a
// 2ms absolute allowance for tiny smoke populations.  Aborts on a blown
// budget so the CI smoke lane enforces it — same discipline as the tracer.
struct ScrapeOverhead {
  double ingest_interval_s = 0.0;
  double scrape_s = 0.0;
  double overhead = 0.0;  ///< scrape_s / ingest_interval_s
};

ScrapeOverhead run_scrape_overhead(std::size_t max_consumers,
                                   std::size_t weeks, std::uint64_t seed) {
  const std::size_t consumers = std::min<std::size_t>(10000, max_consumers);
  const double budget = fdeta::env_double("FDETA_SCRAPE_BUDGET", 0.05);
  const std::size_t interval_slots = 168;  // half a week per frame
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};

  fdeta::obs::MetricsRegistry reg;
  fdeta::core::OnlineMonitorConfig config;
  config.metrics = &reg;
  fdeta::core::OnlineMonitor monitor(config);
  monitor.fit(dataset, split);

  // One scrape interval's worth of readings, slot-major like a head-end.
  std::vector<fdeta::core::Reading> batch;
  batch.reserve(consumers * interval_slots);
  const std::size_t first = split.train_weeks * fdeta::kSlotsPerWeek;
  for (std::size_t s = first; s < first + interval_slots; ++s) {
    for (std::size_t c = 0; c < consumers; ++c) {
      batch.push_back(fdeta::core::Reading{
          c, static_cast<fdeta::SlotIndex>(s), dataset.consumer(c).readings[s],
          false});
    }
  }

  fdeta::obs::MetricsScraper scraper(
      {.registry = &reg, .interval_slots = interval_slots});
  scraper.start(first);

  // Best-of-N on both sides (code paths, not machines; the minimum is the
  // right estimator).  Re-ingesting the same interval keeps per-consumer
  // state hot without growing it, and each scrape advances the slot clock
  // so every frame is a real delta frame.
  const std::size_t rounds = 5;
  double ingest_s = 1e300;
  double scrape_s = 1e300;
  std::uint64_t slot = first;
  monitor.ingest_batch(batch);  // warm caches before either side measures
  for (std::size_t r = 0; r < rounds; ++r) {
    auto start = std::chrono::steady_clock::now();
    monitor.ingest_batch(batch);
    ingest_s = std::min(ingest_s, seconds_since(start));

    slot += interval_slots;
    start = std::chrono::steady_clock::now();
    monitor.refresh_health_gauges();
    const fdeta::obs::SeriesFrame& frame = scraper.scrape(slot);
    scrape_s = std::min(scrape_s, seconds_since(start));
    if (frame.counter_deltas.count("monitor.readings_ingested") == 0) {
      std::abort();  // the frame must carry the monitor's counters
    }
  }

  ScrapeOverhead result;
  result.ingest_interval_s = ingest_s;
  result.scrape_s = scrape_s;
  result.overhead = scrape_s / ingest_s;
  std::printf(
      "\n=== scrape overhead @%zu consumers: ingest %zu slots %.4fs, "
      "frame %.5fs (%.2f%% of interval, budget %.0f%% + 2ms) ===\n",
      consumers, interval_slots, ingest_s, scrape_s,
      result.overhead * 100.0, budget * 100.0);
  if (scrape_s > ingest_s * budget + 0.002) {
    std::fprintf(stderr, "telemetry scrape blew the overhead budget\n");
    std::abort();
  }
  return result;
}

// Degradation lane: detection recall and false-positive rate versus AMI
// loss rate, with and without the NACK retransmit pass.  Every 10th
// consumer under-reports its readings through a MITM interceptor; the
// reported dataset is whatever the head-end collected after the fault
// plan's losses, and weeks past the coverage gate return
// kInsufficientData instead of a score (gated consumers are neither
// recall hits nor false positives - they are visible in the gated column).
void run_degradation(std::size_t max_consumers, std::size_t weeks,
                     std::uint64_t seed) {
  const std::size_t consumers = std::min<std::size_t>(200, max_consumers);
  const auto dataset = fdeta::datagen::small_dataset(consumers, weeks, seed);
  const fdeta::meter::TrainTestSplit split{.train_weeks = weeks - 1,
                                           .test_weeks = 1};
  const fdeta::core::EvidenceCalendar calendar;
  const std::size_t week = weeks - 1;

  fdeta::obs::MetricsRegistry reg;
  fdeta::core::PipelineConfig config;
  config.split = split;
  config.metrics = &reg;
  fdeta::core::FdetaPipeline pipeline(config);
  pipeline.fit(dataset);

  std::printf(
      "\n=== degradation @%zu consumers: recall / false positives vs loss "
      "rate (gate %.0f%% missing) ===\n",
      consumers, 100.0 * config.max_missing_fraction);
  std::printf("%7s %8s | %7s %7s %7s | %10s %8s\n", "loss", "retries",
              "recall", "fpr", "gated", "missing", "retx");
  for (const double loss : {0.0, 0.05, 0.10, 0.20}) {
    for (const std::size_t retries : {std::size_t{0}, std::size_t{3}}) {
      if (loss == 0.0 && retries > 0) continue;  // nothing to repair
      fdeta::ami::HeadEnd head_end(consumers, dataset.slot_count(), &reg);
      fdeta::ami::MeterNetwork network(dataset, &reg);
      for (std::size_t c = 0; c < consumers; c += 10) {
        network.add_interceptor(fdeta::ami::scale_interceptor(c, 0.25));
      }
      fdeta::ami::FaultPlanConfig plan;
      plan.drop_rate = loss;
      plan.seed = seed;
      network.set_fault_plan(fdeta::ami::FaultPlan(plan));
      network.set_retransmit({retries, 1});
      for (std::size_t w = 0; w < weeks; ++w) {
        network.transmit(head_end, w * kSlotsPerWeek,
                         (w + 1) * kSlotsPerWeek);
      }
      const auto collected = fdeta::ami::collect_reported(head_end, dataset);

      fdeta::core::WeekCoverage coverage;
      coverage.missing_slots = collected.week_missing(week);
      const auto report = pipeline.evaluate_week(
          dataset, collected.dataset, week, calendar, nullptr, &coverage);

      std::size_t attacked = 0, hits = 0, clean = 0, false_pos = 0, gated = 0;
      for (std::size_t c = 0; c < consumers; ++c) {
        const auto status = report.verdicts[c].status;
        if (status == fdeta::core::VerdictStatus::kInsufficientData) {
          ++gated;
          continue;
        }
        const bool flagged =
            status != fdeta::core::VerdictStatus::kNormal &&
            status != fdeta::core::VerdictStatus::kExcused;
        if (c % 10 == 0) {
          ++attacked;
          if (flagged) ++hits;
        } else {
          ++clean;
          if (flagged) ++false_pos;
        }
      }
      std::printf(
          "%6.0f%% %8zu | %6.1f%% %6.1f%% %6.1f%% | %10zu %8zu\n",
          100.0 * loss, retries,
          attacked > 0 ? 100.0 * static_cast<double>(hits) /
                             static_cast<double>(attacked)
                       : 0.0,
          clean > 0 ? 100.0 * static_cast<double>(false_pos) /
                          static_cast<double>(clean)
                    : 0.0,
          100.0 * static_cast<double>(gated) /
              static_cast<double>(consumers),
          head_end.missing_count(), network.messages_retried());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* bench_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--bench-out") == 0 && i + 1 < argc) {
      bench_out = argv[++i];
    }
  }
  std::size_t max_consumers = fdeta::env_size("FDETA_FLEET_MAX", 50000);
  if (smoke && max_consumers > 1000) max_consumers = 1000;
  const std::size_t weeks = fdeta::env_size("FDETA_FLEET_WEEKS", 9);
  const auto seed =
      static_cast<std::uint64_t>(fdeta::env_size("FDETA_SEED", 20160628));
  const std::size_t feed_threads =
      std::max<std::size_t>(2, fdeta::env_size("FDETA_FLEET_THREADS", 8));
  std::size_t mega = fdeta::env_size("FDETA_FLEET_MEGA", 1000000);
  if (smoke) mega = std::min<std::size_t>(mega, 10000);

  fdeta::bench::BenchJson report;
  report.set("bench", "micro_fleet_scale");
  report.set("git_rev", fdeta::bench::git_revision());
  report.set("smoke", smoke);
  report.set("hardware_threads",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  report.set("pool_workers", fdeta::shared_pool().thread_count());
  report.set("weeks", weeks);
  report.set("seed", static_cast<std::size_t>(seed));

  std::printf("\n=== fleet scale: consumers/sec, serial vs shared pool (%zu "
              "workers) ===\n",
              fdeta::shared_pool().thread_count());
  std::printf("%9s | %11s %11s %7s | %12s %12s %7s | %14s\n", "consumers",
              "fit ser", "fit pool", "speedup", "score ser", "score pool",
              "speedup", "ingest rdgs/s");
  fdeta::bench::BenchJson scales;
  FleetTimings top;  // largest completed scale feeds the derived ratios
  std::size_t top_consumers = 0;
  for (const std::size_t consumers : {std::size_t{1000}, std::size_t{10000},
                                      std::size_t{50000}}) {
    if (consumers > max_consumers) continue;
    fdeta::obs::MetricsRegistry reg;
    const auto pool_before = fdeta::obs::default_registry().snapshot();
    const auto t = run_scale(consumers, weeks, seed, reg);
    const auto pool_after = fdeta::obs::default_registry().snapshot();
    std::printf("%9zu | %11.0f %11.0f %6.2fx | %12.0f %12.0f %6.2fx | %14.0f\n",
                consumers, t.fit_serial, t.fit_pooled,
                t.fit_pooled / t.fit_serial, t.score_serial, t.score_pooled,
                t.score_pooled / t.score_serial, t.batch_pooled);
    std::printf(
        "          | warm-start @%zu: cold fit %.3fs, restore %.3fs "
        "(%.1fx faster, %.1f MB model, %.0f consumers/s)\n",
        consumers, t.cold_fit_s, t.warm_restore_s,
        t.cold_fit_s / t.warm_restore_s,
        static_cast<double>(t.model_bytes) / (1024.0 * 1024.0),
        static_cast<double>(consumers) / t.warm_restore_s);
    print_breakdown(consumers, reg.snapshot(), pool_before, pool_after);

    fdeta::bench::BenchJson row;
    row.set("consumers", consumers);
    row.set("fit_serial_consumers_per_s", t.fit_serial);
    row.set("fit_pooled_consumers_per_s", t.fit_pooled);
    row.set("score_serial_consumers_per_s", t.score_serial);
    row.set("score_pooled_consumers_per_s", t.score_pooled);
    row.set("ingest_batch_readings_per_s", t.batch_pooled);
    row.set("cold_fit_s", t.cold_fit_s);
    row.set("warm_restore_s", t.warm_restore_s);
    row.set("model_bytes", t.model_bytes);
    scales.push_back(std::move(row));
    top = t;
    top_consumers = consumers;
  }
  report.set("scales", std::move(scales));

  const auto families = run_detector_families(max_consumers, weeks, seed);
  fdeta::bench::BenchJson detectors_json;
  double kld_fit = 0.0, kld_score = 0.0;
  for (const DetectorPoint& p : families) {
    fdeta::bench::BenchJson row;
    row.set("detector", p.name);
    row.set("fit_consumers_per_s", p.fit_per_s);
    row.set("score_consumers_per_s", p.score_per_s);
    detectors_json.push_back(std::move(row));
    if (p.name == "kld") {
      kld_fit = p.fit_per_s;
      kld_score = p.score_per_s;
    }
  }
  report.set("detectors", std::move(detectors_json));

  const HierarchyOverhead hierarchy =
      run_hierarchy_overhead(max_consumers, weeks, seed);
  fdeta::bench::BenchJson hierarchy_json;
  hierarchy_json.set("consumers", hierarchy.consumers);
  hierarchy_json.set("internal_nodes", hierarchy.nodes);
  hierarchy_json.set("plain_sweep_consumers_per_s",
                     hierarchy.plain_consumers_per_s);
  hierarchy_json.set("feeder_sweep_consumers_per_s",
                     hierarchy.feeder_consumers_per_s);
  report.set("hierarchy", std::move(hierarchy_json));

  const auto points =
      run_shard_scaling(max_consumers, weeks, seed, feed_threads);
  fdeta::bench::BenchJson shard_json;
  double rate_global = 0.0, rate_sharded = 0.0;
  for (const ShardPoint& p : points) {
    fdeta::bench::BenchJson row;
    row.set("shards", p.shards);
    row.set("feed_threads", p.threads);
    row.set("readings_per_s", p.readings_per_s);
    shard_json.push_back(std::move(row));
    if (p.threads == feed_threads) {
      (p.shards == 1 ? rate_global : rate_sharded) = p.readings_per_s;
    }
  }
  report.set("shard_scaling", std::move(shard_json));

  fdeta::bench::BenchJson mega_json;
  MegaResult mega_result;
  if (mega > 0) {
    mega_result = run_mega(mega, weeks, seed);
    mega_json.set("consumers", mega_result.consumers);
    mega_json.set("shard_count", mega_result.shard_count);
    mega_json.set("fit_s", mega_result.fit_s);
    mega_json.set("fit_consumers_per_s", mega_result.fit_consumers_per_s);
    mega_json.set("ingest_readings_per_s",
                  mega_result.ingest_readings_per_s);
    mega_json.set("save_s", mega_result.save_s);
    mega_json.set("warm_restore_s", mega_result.restore_s);
    mega_json.set("checkpoint_bytes", mega_result.checkpoint_bytes);
    report.set("mega_fleet", std::move(mega_json));
  }

  // Derived ratios: same-run comparisons, so they transfer across machines
  // far better than the absolute rates above - these are what
  // tools/bench_compare.py gates on.
  fdeta::bench::BenchJson derived;
  if (top_consumers > 0) {
    derived.set("fit_pool_speedup", top.fit_pooled / top.fit_serial);
    derived.set("score_pool_speedup", top.score_pooled / top.score_serial);
    derived.set("warm_vs_cold_speedup", top.cold_fit_s / top.warm_restore_s);
  }
  if (rate_global > 0.0 && rate_sharded > 0.0) {
    derived.set("shard_contention_speedup", rate_sharded / rate_global);
  }
  // Feeder-aggregation tax as a same-run ratio (hierarchy-on sweep rate
  // over plain sweep rate): lower means the feeder layer got
  // disproportionately more expensive, which is what the gate catches.
  if (hierarchy.ratio > 0.0) {
    derived.set("hierarchy_sweep_ratio", hierarchy.ratio);
  }
  if (mega > 0 && mega_result.restore_s > 0.0) {
    derived.set("mega_warm_vs_cold_speedup",
                mega_result.fit_s / mega_result.restore_s);
  }
  // Per-family throughput relative to the kld row from the same run: a
  // newly registered (or regressed) detector that fits or scores more than
  // the tolerance slower than its committed ratio fails the gate.
  if (kld_fit > 0.0 && kld_score > 0.0) {
    for (const DetectorPoint& p : families) {
      if (p.name == "kld") continue;
      std::string key = p.name;
      std::replace(key.begin(), key.end(), '-', '_');
      derived.set("detector_fit_ratio_" + key, p.fit_per_s / kld_fit);
      derived.set("detector_score_ratio_" + key, p.score_per_s / kld_score);
    }
  }
  report.set("derived", std::move(derived));

  run_degradation(max_consumers, weeks, seed);
  run_tracing_overhead(max_consumers, weeks, seed);
  const ScrapeOverhead scrape = run_scrape_overhead(max_consumers, weeks,
                                                    seed);
  // Recorded for the trajectory, never gated by bench_compare (absolute
  // times measure the machine); the 5% budget above is the enforced bound.
  fdeta::bench::BenchJson scrape_json;
  scrape_json.set("ingest_interval_s", scrape.ingest_interval_s);
  scrape_json.set("frame_s", scrape.scrape_s);
  scrape_json.set("overhead_fraction", scrape.overhead);
  report.set("scrape_overhead", std::move(scrape_json));

  if (bench_out != nullptr) report.write_file(bench_out);
  return 0;
}
