// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <vector>

#include "attack/integrated_arima_attack.h"
#include "common/env.h"
#include "core/arima_detector.h"
#include "core/evaluation.h"
#include "datagen/generator.h"
#include "meter/dataset.h"
#include "meter/weekly_stats.h"

namespace fdeta::bench {

/// Scale knobs: FDETA_CONSUMERS (default 500, the paper's population),
/// FDETA_VECTORS (default 50 TND trials), FDETA_SEED.
struct Scale {
  std::size_t consumers;
  std::size_t vectors;
  std::uint64_t seed;

  static Scale from_env() {
    return Scale{env_size("FDETA_CONSUMERS", 500),
                 env_size("FDETA_VECTORS", 50),
                 static_cast<std::uint64_t>(env_size("FDETA_SEED", 20160628))};
  }
};

/// The paper's dataset shape: `consumers` x 74 weeks at the CER type mix.
inline meter::Dataset paper_dataset(const Scale& scale) {
  return datagen::small_dataset(scale.consumers, 74, scale.seed);
}

inline core::EvaluationConfig paper_eval_config(const Scale& scale) {
  core::EvaluationConfig config;
  config.split = meter::TrainTestSplit{.train_weeks = 60, .test_weeks = 14};
  config.attack_vectors = scale.vectors;
  config.seed = scale.seed;
  return config;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Per-consumer artifacts shared by the ablation benches: the fitted model,
/// training stats, the clean attacked week, and a batch of Integrated-ARIMA
/// attack vectors.
struct ConsumerArtifacts {
  std::vector<Kw> train;
  std::vector<Kw> clean_week;
  std::vector<std::vector<Kw>> attack_vectors;  // over-report (1B)
};

inline ConsumerArtifacts make_artifacts(const meter::ConsumerSeries& series,
                                        const meter::TrainTestSplit& split,
                                        std::size_t vectors,
                                        std::uint64_t seed) {
  ConsumerArtifacts a;
  const auto train = split.train(series);
  a.train.assign(train.begin(), train.end());
  const auto clean = split.test_week(series, 0);
  a.clean_week.assign(clean.begin(), clean.end());

  core::ArimaDetector detector;
  detector.fit(train);
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  Rng rng = Rng(seed).spawn(series.id);
  attack::IntegratedAttackConfig cfg;
  cfg.over_report = true;
  for (std::size_t v = 0; v < vectors; ++v) {
    a.attack_vectors.push_back(attack::integrated_arima_attack_vector(
        detector.model(), history, wstats, kSlotsPerWeek, rng, cfg));
  }
  return a;
}

}  // namespace fdeta::bench
