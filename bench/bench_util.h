// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "attack/integrated_arima_attack.h"
#include "common/env.h"
#include "core/arima_detector.h"
#include "core/evaluation.h"
#include "datagen/generator.h"
#include "meter/dataset.h"
#include "meter/weekly_stats.h"

namespace fdeta::bench {

/// Scale knobs: FDETA_CONSUMERS (default 500, the paper's population),
/// FDETA_VECTORS (default 50 TND trials), FDETA_SEED.
struct Scale {
  std::size_t consumers;
  std::size_t vectors;
  std::uint64_t seed;

  static Scale from_env() {
    return Scale{env_size("FDETA_CONSUMERS", 500),
                 env_size("FDETA_VECTORS", 50),
                 static_cast<std::uint64_t>(env_size("FDETA_SEED", 20160628))};
  }
};

/// The paper's dataset shape: `consumers` x 74 weeks at the CER type mix.
inline meter::Dataset paper_dataset(const Scale& scale) {
  return datagen::small_dataset(scale.consumers, 74, scale.seed);
}

inline core::EvaluationConfig paper_eval_config(const Scale& scale) {
  core::EvaluationConfig config;
  config.split = meter::TrainTestSplit{.train_weeks = 60, .test_weeks = 14};
  config.attack_vectors = scale.vectors;
  config.seed = scale.seed;
  return config;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Minimal JSON value for the machine-readable BENCH_*.json perf-trajectory
/// files (committed per PR; tools/bench_compare.py gates CI on them).  Keys
/// keep insertion order so the checked-in files diff cleanly between PRs.
/// Only what those files need: numbers, strings, objects, and arrays.
class BenchJson {
 public:
  BenchJson() = default;

  /// Scalar members.  Duplicate keys overwrite (last set wins).
  BenchJson& set(const std::string& key, double value) {
    return put(key, leaf(number(value)));
  }
  BenchJson& set(const std::string& key, std::size_t value) {
    return put(key, leaf(std::to_string(value)));
  }
  BenchJson& set(const std::string& key, int value) {
    return put(key, leaf(std::to_string(value)));
  }
  BenchJson& set(const std::string& key, const std::string& value) {
    return put(key, leaf(quote(value)));
  }
  BenchJson& set(const std::string& key, const char* value) {
    return put(key, leaf(quote(value)));
  }
  BenchJson& set(const std::string& key, bool value) {
    return put(key, leaf(value ? "true" : "false"));
  }

  /// Attaches a completed subtree (object or array) under `key`.  Build
  /// nested nodes bottom-up and attach them when done - nothing here hands
  /// out references into growable storage.
  BenchJson& set(const std::string& key, BenchJson node) {
    return put(key, std::move(node));
  }

  /// Appends a completed element, making this node an array.
  BenchJson& push_back(BenchJson element) {
    is_array_ = true;
    elements_.push_back(std::move(element));
    return *this;
  }

  std::string dump(int indent = 0) const {
    std::string out;
    dump_into(out, indent);
    return out;
  }

  /// Writes the report (trailing newline included) or dies loudly: a bench
  /// run whose trajectory file silently vanished is worse than no run.
  void write_file(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      std::abort();
    }
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  static BenchJson leaf(std::string literal) {
    BenchJson node;
    node.literal_ = std::move(literal);
    return node;
  }

  static std::string number(double value) {
    if (!std::isfinite(value)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
  }

  static std::string quote(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keys are tame
      out += c;
    }
    out += '"';
    return out;
  }

  BenchJson& put(const std::string& key, BenchJson node) {
    for (auto& [name, child] : members_) {
      if (name == key) {
        child = std::move(node);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(node));
    return *this;
  }

  void dump_into(std::string& out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    if (!literal_.empty()) {
      out += literal_;
    } else if (is_array_) {
      out += "[";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += pad;
        elements_[i].dump_into(out, indent + 2);
      }
      if (!elements_.empty()) out += "\n" + std::string(indent, ' ');
      out += "]";
    } else {
      out += "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += pad + quote(members_[i].first) + ": ";
        members_[i].second.dump_into(out, indent + 2);
      }
      if (!members_.empty()) out += "\n" + std::string(indent, ' ');
      out += "}";
    }
  }

  std::string literal_;  // scalar leaf; empty = container
  bool is_array_ = false;
  std::vector<std::pair<std::string, BenchJson>> members_;
  std::vector<BenchJson> elements_;  // array elements
};

/// The revision stamped into BENCH_*.json: FDETA_GIT_REV when set (CI
/// passes the exact SHA), else `git rev-parse --short HEAD`, else
/// "unknown" (e.g. a tarball build without git).
inline std::string git_revision() {
  if (const char* env = std::getenv("FDETA_GIT_REV")) {
    if (env[0] != '\0') return env;
  }
  std::string rev;
#if defined(_WIN32)
  return "unknown";
#else
  if (FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) rev = buf;
    ::pclose(pipe);
  }
#endif
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  return rev.empty() ? "unknown" : rev;
}

/// Per-consumer artifacts shared by the ablation benches: the fitted model,
/// training stats, the clean attacked week, and a batch of Integrated-ARIMA
/// attack vectors.
struct ConsumerArtifacts {
  std::vector<Kw> train;
  std::vector<Kw> clean_week;
  std::vector<std::vector<Kw>> attack_vectors;  // over-report (1B)
};

inline ConsumerArtifacts make_artifacts(const meter::ConsumerSeries& series,
                                        const meter::TrainTestSplit& split,
                                        std::size_t vectors,
                                        std::uint64_t seed) {
  ConsumerArtifacts a;
  const auto train = split.train(series);
  a.train.assign(train.begin(), train.end());
  const auto clean = split.test_week(series, 0);
  a.clean_week.assign(clean.begin(), clean.end());

  core::ArimaDetector detector;
  detector.fit(train);
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  Rng rng = Rng(seed).spawn(series.id);
  attack::IntegratedAttackConfig cfg;
  cfg.over_report = true;
  for (std::size_t v = 0; v < vectors; ++v) {
    a.attack_vectors.push_back(attack::integrated_arima_attack_vector(
        detector.model(), history, wstats, kSlotsPerWeek, rng, cfg));
  }
  return a;
}

}  // namespace fdeta::bench
