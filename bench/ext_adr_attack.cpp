// Extension: Attack Class 4B under real-time pricing with ADR - the study
// the paper defers to future work (Section VII-A): "we would need to make
// assumptions of how each consumer ... changes consumption in response to
// changes in real-time electricity prices".
//
// We make those assumptions explicit (Consumer Own Elasticity, ref [26]),
// simulate an RTP market, launch the 4B attack against a population of
// ADR-equipped victims, and evaluate the paper's conjecture that the
// price-conditioned KLD detector extends to this class.

#include <cstdio>

#include "attack/adr_attack.h"
#include "bench/bench_util.h"
#include "core/conditioned_kld_detector.h"
#include "core/kld_detector.h"
#include "pricing/billing.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const std::size_t consumers = std::min<std::size_t>(scale.consumers, 100);
  const std::size_t weeks = 30;
  const meter::TrainTestSplit split{.train_weeks = 24, .test_weeks = 6};

  // Price-responsive world: every consumer's ADR modulates the generated
  // baseline by the true RTP stream, and the detectors are trained on that
  // price-responsive history.
  Rng rng(scale.seed);
  const auto rtp = pricing::RealTimePricing::simulate(
      weeks * kSlotsPerWeek, /*base=*/0.20, rng);
  const double elasticity = 0.8;

  auto baseline = datagen::small_dataset(consumers, weeks, scale.seed);
  meter::Dataset responsive = baseline;
  for (std::size_t c = 0; c < consumers; ++c) {
    auto& readings = responsive.consumer(c).readings;
    for (std::size_t t = 0; t < readings.size(); ++t) {
      const pricing::OwnElasticity model(elasticity, 0.20);
      readings[t] = model.respond(readings[t], rtp.price(t));
    }
  }

  // Detectors: plain KLD and KLD conditioned on RTP price bands.
  const SlotIndex attack_first_slot = split.train_weeks * kSlotsPerWeek;

  std::size_t plain_detected = 0, conditioned_detected = 0;
  std::size_t plain_fp = 0, conditioned_fp = 0;
  double total_loss = 0.0, total_perceived = 0.0;
  KWh total_stolen = 0.0;

  attack::AdrAttackConfig attack_cfg;
  attack_cfg.price_inflation = 1.5;
  attack_cfg.elasticity = elasticity;

  for (std::size_t c = 0; c < consumers; ++c) {
    const auto& series = responsive.consumer(c);
    const auto train = split.train(series);

    core::KldDetector plain({.bins = 10, .significance = 0.05});
    plain.fit(train);

    core::ConditionedKldDetectorConfig cc;
    cc.bins = 10;
    cc.significance = 0.05;
    cc.groups = 3;
    cc.slot_group = core::rtp_slot_groups(rtp, weeks * kSlotsPerWeek, 3);
    core::ConditionedKldDetector conditioned(cc);
    conditioned.fit(train);

    // Mallory cannot predict the victim's counterfactual response to the
    // true prices, so the compromised meter reports the price-INELASTIC
    // baseline (the victim's schedule at the reference price).  That is the
    // 4B signature the conditioned detector can key on: conditioned on
    // high-price bands, the reported readings sit abnormally high because
    // they never curtail.
    const auto victim_baseline = split.test_week(baseline.consumer(c), 0);
    const auto result = attack::launch_adr_attack(
        victim_baseline, rtp, attack_first_slot, attack_cfg);

    total_loss += result.victim_loss;
    total_perceived += result.victim_perceived_benefit;
    total_stolen += result.energy_stolen;

    // The utility sees the victim's *reported* (over-reported) week.
    const auto honest_week = split.test_week(series, 0);
    if (plain.flag_week(result.victim_reported)) ++plain_detected;
    if (conditioned.flag_week(result.victim_reported)) ++conditioned_detected;
    if (plain.flag_week(honest_week)) ++plain_fp;
    if (conditioned.flag_week(honest_week)) ++conditioned_fp;
  }

  const double n = static_cast<double>(consumers);
  std::printf("Attack Class 4B extension: %zu ADR victims, elasticity %.1f, "
              "price inflation %.1fx\n",
              consumers, elasticity, attack_cfg.price_inflation);
  std::printf("  energy stolen:            %10.0f kWh / week\n", total_stolen);
  std::printf("  victims' real loss (L_n): $%9.2f   (eq. 10)\n", total_loss);
  std::printf("  perceived 'savings' (dB): $%9.2f   (eq. 11 - victims think "
              "they won)\n", total_perceived);
  bench::print_header("Detection of the victims' over-reported weeks");
  std::printf("%-36s %12s %12s\n", "detector", "detected", "false-pos");
  std::printf("%-36s %11.1f%% %11.1f%%\n", "KLD (unconditioned)",
              100.0 * plain_detected / n, 100.0 * plain_fp / n);
  std::printf("%-36s %11.1f%% %11.1f%%\n", "KLD conditioned on price band",
              100.0 * conditioned_detected / n, 100.0 * conditioned_fp / n);
  std::printf("\npaper's conjecture (Section VIII-F3): conditioning extends "
              "the KLD detector to Attack Class 4B -> %s\n",
              conditioned_detected > plain_detected ? "SUPPORTED"
                                                    : "NOT SUPPORTED");
  return 0;
}
