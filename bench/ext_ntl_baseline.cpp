// Extension: the non-technical-loss (NTL) industry baseline of refs
// [9]/[10]/[24] - feeder input vs reported load plus calculated technical
// loss - and a demonstration of the paper's Section II claim that "their
// methods fail under the realistic scenario that smart meters are hacked".
//
// We run the NTL analysis against each attack class on one feeder: the
// A-classes (including the dominant real-world line tap, 1A) leave a
// residual the size of the theft; the B-classes are engineered so reported
// totals match actual totals and the residual vanishes - only the
// data-driven detectors see them.

#include <cstdio>

#include "attack/attack_class.h"
#include "attack/injector.h"
#include "bench/bench_util.h"
#include "grid/losses.h"
#include "pricing/billing.h"

using namespace fdeta;

namespace {

std::vector<Kw> typical_week(double level) {
  std::vector<Kw> week(kSlotsPerWeek);
  for (std::size_t t = 0; t < week.size(); ++t) {
    week[t] = level * (hour_of_day(t) >= 9.0 ? 1.4 : 0.6);
  }
  return week;
}

}  // namespace

int main() {
  const auto mallory = typical_week(1.0);
  const std::vector<std::vector<Kw>> neighbors{typical_week(1.8),
                                               typical_week(1.2)};
  const grid::LineImpedance feeder{.resistance_ohm = 0.8, .voltage_kv = 11.0};
  const Kw tolerance = 0.05;  // kW residual considered metering noise

  std::printf("NTL (loss-analysis) baseline of refs [9]/[10]/[24] vs the "
              "seven attack classes\n");
  std::printf("feeder: %.1f ohm at %.0f kV, residual tolerance %.2f kW\n\n",
              feeder.resistance_ohm, feeder.voltage_kv, tolerance);
  std::printf("%5s %16s %18s %14s\n", "class", "peak NTL (kW)",
              "week energy (kWh)", "NTL verdict");

  for (const auto cls : attack::kAllAttackClasses) {
    const auto s = attack::make_scenario(cls, mallory, neighbors, 0.8);
    Kw peak_ntl = 0.0;
    double ntl_energy = 0.0;
    bool flagged = false;
    for (std::size_t t = 0; t < mallory.size(); ++t) {
      std::vector<Kw> actual(3), reported(3);
      for (std::size_t c = 0; c < 3; ++c) {
        actual[c] = s.actual[c][t];
        reported[c] = s.reported[c][t];
      }
      const auto ntl = grid::analyze_ntl(actual, reported, feeder);
      peak_ntl = std::max(peak_ntl, ntl.non_technical_loss);
      ntl_energy += std::max(0.0, ntl.non_technical_loss) * kHoursPerSlot;
      if (ntl.suspicious(tolerance)) flagged = true;
    }
    std::printf("%5s %16.3f %18.1f %14s\n",
                std::string(attack::name(cls)).c_str(), peak_ntl, ntl_energy,
                flagged ? "SUSPICIOUS" : "clean");
  }

  std::printf("\nreading the table: the dominant real-world theft (1A line "
              "tap) is exactly what loss analysis was built for - and every "
              "B-class attack sails through with a zero residual, which is "
              "why F-DETA adds the consumption-pattern layer on top.\n");
  return 0;
}
