// Reproduces Table III: Metric 2 - maximum attacker gains in one week as a
// result of circumventing each theft detector.
//
// Paper reference values (CER data, 500 consumers):
//   detector               1B stolen/profit     2A/2B          3A/3B
//   ARIMA                  362,261 kWh/$71,707  2,687/$542     0/$14.3
//   Integrated ARIMA       79,325/$15,413       1,541/$297     0/$14.3
//   KLD (5%)               4,129/$808           1,541/$297     0/$14.3
//   KLD (10%)              5,374/$1,049         237/$49        0/$14.3
//
// 1B aggregates by SUM over consumers (all victims together); 2A/2B and
// 3A/3B by MAX over consumers (a single attacker).  Absolute numbers depend
// on the synthetic dataset's scale; the ordering and ratios are the
// reproduction target.

#include <cstdio>

#include "bench/bench_util.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  const auto dataset = bench::paper_dataset(scale);
  const auto config = bench::paper_eval_config(scale);

  std::printf("Table III reproduction: %zu consumers, %zu attack vectors\n",
              dataset.consumer_count(), config.attack_vectors);
  const auto result = core::run_evaluation(dataset, config);
  std::printf("evaluated %zu consumers (%zu skipped as degenerate)\n",
              result.evaluated_count(),
              result.consumers.size() - result.evaluated_count());

  bench::print_header(
      "Table III: Metric 2 - worst-case weekly gains while circumventing");
  std::printf("%-34s %-9s %12s %12s %12s\n", "Electricity Theft Detector", "",
              "1B", "2A/2B", "3A/3B");
  for (std::size_t d = 0; d < core::kDetectorCount; ++d) {
    const auto kind = static_cast<core::DetectorKind>(d);
    std::printf("%-34s %-9s %12.0f %12.0f %12.0f\n", core::to_string(kind),
                "Stolen(kWh)",
                result.metric2_kwh(kind, core::AttackKind::k1B),
                result.metric2_kwh(kind, core::AttackKind::k2A2B),
                result.metric2_kwh(kind, core::AttackKind::k3A3B));
    std::printf("%-34s %-9s %12.1f %12.1f %12.1f\n", "", "Profit($)",
                result.metric2_profit(kind, core::AttackKind::k1B),
                result.metric2_profit(kind, core::AttackKind::k2A2B),
                result.metric2_profit(kind, core::AttackKind::k3A3B));
  }
  return 0;
}
