// Component micro-benchmarks (google-benchmark): the per-consumer costs that
// dominated the paper's "74 CPU cores for 4 weeks" evaluation, plus the
// topology-search scaling argument of Section V-C.

#include <benchmark/benchmark.h>

#include "attack/integrated_arima_attack.h"
#include "core/arima_detector.h"
#include "core/kld_detector.h"
#include "datagen/generator.h"
#include "datagen/weather.h"
#include "grid/investigate.h"
#include "grid/losses.h"
#include "market/clearing.h"
#include "meter/weekly_stats.h"
#include "stats/histogram.h"
#include "stats/kl_divergence.h"
#include "stats/truncated_normal.h"
#include "timeseries/arima.h"

namespace {

using namespace fdeta;

const meter::Dataset& fixture_dataset() {
  static const meter::Dataset dataset = datagen::small_dataset(4, 16, 99);
  return dataset;
}

std::span<const Kw> fixture_train() {
  static const meter::TrainTestSplit split{.train_weeks = 12,
                                           .test_weeks = 4};
  return split.train(fixture_dataset().consumer(0));
}

void BM_DatasetGeneration(benchmark::State& state) {
  const auto consumers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::small_dataset(consumers, 4, 7));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(consumers) * 4 *
                          kSlotsPerWeek);
}
BENCHMARK(BM_DatasetGeneration)->Arg(1)->Arg(10)->Arg(100);

void BM_ArimaFit(benchmark::State& state) {
  const auto train = fixture_train();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::ArimaModel::fit(train, {}));
  }
}
BENCHMARK(BM_ArimaFit);

void BM_ArimaRollingWeek(benchmark::State& state) {
  const auto train = fixture_train();
  const auto model = ts::ArimaModel::fit(train, {});
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto week = train.subspan(0, kSlotsPerWeek);
  for (auto _ : state) {
    ts::RollingForecaster forecaster = model.forecaster(history);
    double acc = 0.0;
    for (double reading : week) {
      acc += forecaster.next().mean;
      forecaster.observe(reading);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSlotsPerWeek);
}
BENCHMARK(BM_ArimaRollingWeek);

void BM_KldFit(benchmark::State& state) {
  const auto train = fixture_train();
  for (auto _ : state) {
    core::KldDetector detector(
        {.bins = static_cast<std::size_t>(state.range(0)),
         .significance = 0.05});
    detector.fit(train);
    benchmark::DoNotOptimize(detector.threshold());
  }
}
BENCHMARK(BM_KldFit)->Arg(10)->Arg(40);

void BM_KldScoreWeek(benchmark::State& state) {
  const auto train = fixture_train();
  core::KldDetector detector({.bins = 10, .significance = 0.05});
  detector.fit(train);
  const auto week = train.subspan(0, kSlotsPerWeek);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(week));
  }
}
BENCHMARK(BM_KldScoreWeek);

void BM_IntegratedAttackVector(benchmark::State& state) {
  const auto train = fixture_train();
  const auto model = ts::ArimaModel::fit(train, {});
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  Rng rng(3);
  attack::IntegratedAttackConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::integrated_arima_attack_vector(
        model, history, wstats, kSlotsPerWeek, rng, cfg));
  }
}
BENCHMARK(BM_IntegratedAttackVector);

void BM_TruncatedNormalSample(benchmark::State& state) {
  const stats::TruncatedNormal tnd(0.5, 1.0, 0.0, 2.0);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tnd.sample(rng));
  }
}
BENCHMARK(BM_TruncatedNormalSample);

void BM_HistogramProbabilities(benchmark::State& state) {
  const auto train = fixture_train();
  const stats::Histogram hist(train, 10);
  const auto week = train.subspan(0, kSlotsPerWeek);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.probabilities(week));
  }
}
BENCHMARK(BM_HistogramProbabilities);

void BM_BalanceChecksRandomRadial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto topology = grid::Topology::random_radial(n, 4, rng, 0.02);
  std::vector<Kw> actual(n, 1.0);
  std::vector<Kw> reported = actual;
  reported[n / 2] = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid::run_balance_checks(topology, actual, reported));
  }
}
BENCHMARK(BM_BalanceChecksRandomRadial)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InvestigateCase2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto topology = grid::Topology::random_radial(n, 4, rng, 0.0);
  std::vector<Kw> actual(n, 1.0);
  std::vector<Kw> reported = actual;
  reported[n / 2] = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid::investigate_case2(topology, actual, reported));
  }
}
BENCHMARK(BM_InvestigateCase2)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InvestigateExhaustive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto topology = grid::Topology::random_radial(n, 4, rng, 0.0);
  std::vector<Kw> actual(n, 1.0);
  std::vector<Kw> reported = actual;
  reported[n / 2] = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid::investigate_exhaustive(topology, actual, reported));
  }
}
BENCHMARK(BM_InvestigateExhaustive)->Arg(100)->Arg(1000)->Arg(10000);

void BM_KlDivergence(benchmark::State& state) {
  std::vector<double> p(10), q(10);
  for (std::size_t i = 0; i < 10; ++i) {
    p[i] = (i + 1) / 55.0;
    q[i] = (10 - i) / 55.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::kl_divergence_bits(p, q));
  }
}
BENCHMARK(BM_KlDivergence);

void BM_MarketClearSlot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<market::Participant> participants(n);
  for (std::size_t i = 0; i < n; ++i) {
    participants[i] = {.baseline = 0.5 + 0.01 * static_cast<double>(i),
                       .elasticity = 0.8,
                       .price_distortion = 1.0};
  }
  const market::SupplyCurve supply{.base = 0.05, .slope = 1e-4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(market::clear_slot(participants, supply, 0.20));
  }
}
BENCHMARK(BM_MarketClearSlot)->Arg(10)->Arg(100)->Arg(1000);

void BM_NtlAnalysis(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Kw> actual(n, 1.0), reported(n, 0.98);
  const grid::LineImpedance line{.resistance_ohm = 0.8, .voltage_kv = 11.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid::analyze_ntl(actual, reported, line));
  }
}
BENCHMARK(BM_NtlAnalysis)->Arg(100)->Arg(10000);

void BM_TemperatureGeneration(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::generate_temperature(
        kSlotsPerWeek, datagen::WeatherConfig{}, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSlotsPerWeek);
}
BENCHMARK(BM_TemperatureGeneration);

}  // namespace

BENCHMARK_MAIN();
