// Reproduces Table I: the attack-classification matrix - and *verifies* it
// behaviourally: each class is instantiated as a concrete scenario and the
// balance-check / pricing-scheme predicates are computed, not just looked up.
//
// Paper Table I:
//   Attack Class                     1A 2A 3A 1B 2B 3B 4B
//   Possible despite Balance Check   N  N  N  Y  Y  Y  Y
//   Possible with Flat Rate Pricing  Y  Y  N  Y  Y  N  N
//   Possible with TOU Pricing        Y  Y  Y  Y  Y  Y  N
//   Possible with RTP                Y  Y  Y  Y  Y  Y  Y
//   Requires ADR                     N  N  N  N  N  N  Y

#include <cstdio>
#include <vector>

#include "attack/attack_class.h"
#include "attack/injector.h"
#include "attack/propositions.h"
#include "grid/balance.h"
#include "pricing/billing.h"
#include "pricing/tariff.h"

using namespace fdeta;

namespace {

std::vector<Kw> typical_week(double level) {
  std::vector<Kw> week(kSlotsPerWeek);
  for (std::size_t t = 0; t < week.size(); ++t) {
    week[t] = level * (hour_of_day(t) >= 9.0 ? 1.5 : 0.5);
  }
  return week;
}

struct Row {
  const char* label;
  char values[7];
};

}  // namespace

int main() {
  const auto mallory = typical_week(1.0);
  const std::vector<std::vector<Kw>> neighbors{typical_week(2.0),
                                               typical_week(1.5)};
  const auto topology = grid::Topology::single_feeder(3, 0.0);
  const pricing::FlatRate flat(0.20);
  const pricing::TimeOfUse tou = pricing::nightsaver();

  Row rows[] = {
      {"Possible despite Balance Check", {}},
      {"Possible with Flat Rate Pricing", {}},
      {"Possible with TOU Pricing", {}},
      {"Possible with RTP", {}},
      {"Requires ADR", {}},
  };

  std::size_t col = 0;
  for (const auto cls : attack::kAllAttackClasses) {
    const auto scenario = attack::make_scenario(cls, mallory, neighbors, 0.8);

    // Behavioural: does the trusted root balance check pass at every slot?
    bool circumvents = true;
    for (std::size_t t = 0; t < mallory.size() && circumvents; ++t) {
      std::vector<Kw> actual(3), reported(3);
      for (std::size_t c = 0; c < 3; ++c) {
        actual[c] = scenario.actual[c][t];
        reported[c] = scenario.reported[c][t];
      }
      const auto outcome =
          grid::run_balance_checks(topology, actual, reported, {}, 1e-9);
      if (outcome.failed(topology.root())) circumvents = false;
    }

    // Behavioural: profitability under each scheme (mechanism permitting).
    const auto props = attack::properties(cls);
    const bool flat_profit =
        props.possible_flat_rate &&
        pricing::attacker_profit(scenario.mallory_actual(),
                                 scenario.mallory_reported(), flat) > 1e-9;
    const bool tou_profit =
        props.possible_tou &&
        pricing::attacker_profit(scenario.mallory_actual(),
                                 scenario.mallory_reported(), tou) > 1e-9;
    // RTP admits every class; the 4B scenario's profit was computed with its
    // own compromised-price mechanics inside make_scenario.
    const bool rtp_possible = props.possible_rtp;

    rows[0].values[col] = circumvents ? 'Y' : 'N';
    rows[1].values[col] = flat_profit ? 'Y' : 'N';
    rows[2].values[col] = tou_profit ? 'Y' : 'N';
    rows[3].values[col] = rtp_possible ? 'Y' : 'N';
    rows[4].values[col] = props.requires_adr ? 'Y' : 'N';
    ++col;
  }

  std::printf("=== Table I: Attack Classification (computed) ===\n");
  std::printf("%-33s", "Attack Class");
  for (const auto cls : attack::kAllAttackClasses) {
    std::printf(" %3s", std::string(attack::name(cls)).c_str());
  }
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-33s", row.label);
    for (std::size_t c = 0; c < 7; ++c) std::printf(" %3c", row.values[c]);
    std::printf("\n");
  }

  // Propositions, demonstrated on the same scenarios.
  std::printf("\nProposition checks:\n");
  for (const auto cls : attack::kAllAttackClasses) {
    const auto scenario = attack::make_scenario(cls, mallory, neighbors, 0.8);
    const auto p1 = attack::proposition1_witness(scenario.mallory_actual(),
                                                 scenario.mallory_reported());
    std::vector<std::span<const Kw>> na, nr;
    for (std::size_t n = 1; n < scenario.actual.size(); ++n) {
      na.emplace_back(scenario.actual[n]);
      nr.emplace_back(scenario.reported[n]);
    }
    const auto p2 = attack::proposition2_witness(na, nr);
    std::printf("  %2s: Prop1 witness (under-report slot): %-12s "
                "Prop2 witness (neighbor over-report): %s\n",
                std::string(attack::name(cls)).c_str(),
                p1 ? std::to_string(*p1).c_str() : "none",
                p2 ? "yes" : "no");
  }
  return 0;
}
