// Reproduces Fig. 3: the three attack-vector injections for one mid-size
// consumer (the paper illustrates Consumer 1330).  Emits the actual week and
// each attack vector as CSV series (one row per half-hour slot) so they can
// be plotted, plus summary statistics matching the figure's captions.
//
//   (a) Attack Class 1B   - Integrated ARIMA attack over-reporting a victim
//   (b) Attack Class 2A/2B - the same attack under-reporting Mallory
//   (c) Attack Class 3A/3B - the Optimal Swap attack

#include <algorithm>
#include <cstdio>

#include "attack/arima_attack.h"
#include "attack/integrated_arima_attack.h"
#include "attack/optimal_swap.h"
#include "bench/bench_util.h"
#include "core/arima_detector.h"
#include "meter/weekly_stats.h"
#include "pricing/billing.h"
#include "stats/descriptive.h"

using namespace fdeta;

int main() {
  const auto scale = bench::Scale::from_env();
  // A single consumer suffices for the illustration: pick a mid-size SME-ish
  // profile by scanning a small population for the second-largest consumer
  // (the paper's Consumer 1330 anecdote).
  const auto dataset = datagen::small_dataset(40, 74, scale.seed);
  std::size_t chosen = 0;
  std::vector<std::pair<double, std::size_t>> by_mean;
  for (std::size_t i = 0; i < dataset.consumer_count(); ++i) {
    by_mean.emplace_back(stats::mean(dataset.consumer(i).readings), i);
  }
  std::sort(by_mean.rbegin(), by_mean.rend());
  chosen = by_mean[1].second;  // second largest, like Consumer 1330

  const auto& series = dataset.consumer(chosen);
  const meter::TrainTestSplit split{.train_weeks = 60, .test_weeks = 14};
  const auto train = split.train(series);
  const auto clean = split.test_week(series, 0);

  core::ArimaDetector detector;
  detector.fit(train);
  const auto& model = detector.model();
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  Rng rng(scale.seed);

  attack::IntegratedAttackConfig over;
  over.over_report = true;
  const auto vec_1b = attack::integrated_arima_attack_vector(
      model, history, wstats, kSlotsPerWeek, rng, over);

  attack::IntegratedAttackConfig under;
  under.over_report = false;
  const auto vec_2ab = attack::integrated_arima_attack_vector(
      model, history, wstats, kSlotsPerWeek, rng, under);

  const auto tou = pricing::nightsaver();
  attack::OptimalSwapConfig swap_cfg;
  swap_cfg.violation_budget = detector.violation_threshold();
  const auto swap =
      attack::optimal_swap_attack(clean, tou, 0, &model, history, swap_cfg);

  std::printf("# Fig. 3 reproduction, consumer %u (2nd largest of %zu)\n",
              series.id, dataset.consumer_count());
  std::printf("# (a) 1B: victim's week mean %.3f -> %.3f kW "
              "(training weekly-mean max %.3f)\n",
              stats::mean(clean), stats::mean(vec_1b), wstats.mean_hi);
  std::printf("# (b) 2A/2B: Mallory's week mean %.3f -> %.3f kW "
              "(training weekly-mean min %.3f)\n",
              stats::mean(clean), stats::mean(vec_2ab), wstats.mean_lo);
  std::printf("# (c) 3A/3B: %zu swaps (%zu reverted for CI safety), "
              "profit $%.2f, mean unchanged (%.3f vs %.3f)\n",
              swap.swaps.size(), swap.reverted,
              pricing::attacker_profit(clean, swap.reported, tou),
              stats::mean(clean), stats::mean(swap.reported));
  std::printf("# stolen energy: 1B %.1f kWh to victim, 2A/2B %.1f kWh "
              "under-reported\n",
              pricing::energy(vec_1b) - pricing::energy(clean),
              pricing::energy(clean) - pricing::energy(vec_2ab));

  std::printf("slot,actual_kw,attack_1b_kw,attack_2a2b_kw,attack_3a3b_kw\n");
  for (std::size_t t = 0; t < static_cast<std::size_t>(kSlotsPerWeek); ++t) {
    std::printf("%zu,%.4f,%.4f,%.4f,%.4f\n", t, clean[t], vec_1b[t],
                vec_2ab[t], swap.reported[t]);
  }
  return 0;
}
