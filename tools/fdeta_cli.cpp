// fdeta - command-line front end for the F-DETA library.
//
// Subcommands:
//   generate  synthesize a CER-like smart-meter dataset to CSV
//   summary   describe a dataset CSV
//   inject    forge one consumer's week with an attack vector
//   fit       fit the pipeline on a dataset and save a model checkpoint
//   detect    run the detector panel over the test weeks of a dataset
//
// Examples:
//   fdeta generate --consumers 50 --weeks 30 --seed 7 --out actual.csv
//   fdeta inject --in actual.csv --consumer 1004 --week 24
//         --attack integrated-over --train-weeks 24 --out reported.csv
//   fdeta fit --in actual.csv --train-weeks 24 --save-model model.fdeta
//   fdeta detect --in reported.csv --model model.fdeta
//   fdeta detect --in reported.csv --baseline actual.csv --train-weeks 24
//
// The fit/detect split is the warm-start serving path: a head-end fits once
// offline and every serving process restores the fitted state from the
// checkpoint in milliseconds instead of refitting from raw readings.
// Without --model, detect falls back to fitting in-process.
//
// Every subcommand accepts --metrics-out <file>: after a successful run the
// process-wide metrics registry (pipeline/monitor/pool counters, latency
// histograms) is written there as JSON and summarised on stderr.
//
// Forensics flags (also on every subcommand):
//   --trace-out F   record spans (pool tasks, pipeline sweeps, monitor
//                   batches, checkpoint IO, head-end deliveries) and write a
//                   Chrome trace-event JSON file loadable in Perfetto
//   --events-out F  record domain events (alert_raised, alert_excused,
//                   investigation_step, model_restored) as JSONL
// `detect --explain` additionally prints per-bin KLD contributions for every
// flagged consumer-week and attaches them to alert_raised events.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <algorithm>
#include <string>

#include "ami/faults.h"
#include "ami/network.h"
#include "attack/arima_attack.h"
#include "attack/collusion.h"
#include "attack/integrated_arima_attack.h"
#include "attack/optimal_swap.h"
#include "common/cli_args.h"
#include "common/csv.h"
#include "common/error.h"
#include "core/arima_detector.h"
#include "core/detector_registry.h"
#include "core/integrated_arima_detector.h"
#include "core/evaluation.h"
#include "core/kld_detector.h"
#include "core/online_monitor.h"
#include "datagen/generator.h"
#include "core/pipeline.h"
#include "grid/balance.h"
#include "grid/investigate.h"
#include "grid/serialize.h"
#include "meter/weekly_stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "pricing/billing.h"

using namespace fdeta;

namespace {

using Args = CliArgs;

meter::Dataset load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw DataError("cannot open " + path);
  return meter::Dataset::load_csv(in);
}

void save(const meter::Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw DataError("cannot open " + path + " for writing");
  dataset.save_csv(out);
}

int cmd_generate(const Args& args) {
  datagen::GeneratorConfig config;
  const auto consumers =
      static_cast<std::size_t>(args.get_long("consumers", 50));
  config.weeks = static_cast<std::size_t>(args.get_long("weeks", 30));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 20160628));
  config.sme = std::max<std::size_t>(1, consumers * 36 / 500);
  config.unclassified = std::max<std::size_t>(1, consumers * 60 / 500);
  config.residential = consumers - config.sme - config.unclassified;

  const auto dataset = datagen::generate_dataset(config);
  save(dataset, args.require_value("out"));
  const auto s = meter::summarize(dataset);
  std::printf("wrote %zu consumers x %zu weeks (%zu res / %zu sme / %zu "
              "other), mean %.2f kW\n",
              dataset.consumer_count(), dataset.week_count(), s.residential,
              s.sme, s.unclassified, s.mean_kw);
  return 0;
}

int cmd_summary(const Args& args) {
  const auto dataset = load(args.require_value("in"));
  const auto s = meter::summarize(dataset);
  std::printf("consumers: %zu (%zu residential, %zu sme, %zu unclassified)\n",
              dataset.consumer_count(), s.residential, s.sme, s.unclassified);
  std::printf("weeks: %zu (%zu readings per consumer)\n",
              dataset.week_count(), dataset.slot_count());
  std::printf("mean demand: %.3f kW, max reading: %.3f kW\n", s.mean_kw,
              s.max_kw);
  std::printf("%-8s %-14s %12s %12s\n", "id", "type", "mean kW", "kWh/week");
  for (const auto& c : dataset.consumers()) {
    double total = 0.0;
    for (double v : c.readings) total += v;
    const double mean = total / static_cast<double>(c.readings.size());
    std::printf("%-8u %-14s %12.3f %12.1f\n", c.id,
                std::string(to_string(c.type)).c_str(), mean,
                mean * 168.0);
  }
  return 0;
}

// Coordinated sibling under-reporting (`inject --attack collusion`): the
// --group-size consumers under the deepest shared transformer of --topology
// each shave --shave of the attacked week.  Each colluder stays under the
// per-consumer threshold; only the feeder-level hierarchy layer (`detect
// --hierarchy`) sees the joint residual.
int cmd_inject_collusion(const Args& args) {
  const auto dataset = load(args.require_value("in"));
  std::ifstream tin(args.require_value("topology"));
  if (!tin) throw DataError("inject: cannot open topology file");
  const auto topology = grid::load_topology(tin);
  const long week_raw = args.get_long("week", -1);
  require(week_raw >= 0, "inject: --week is required");
  const auto week = static_cast<std::size_t>(week_raw);
  const auto group_size =
      static_cast<std::size_t>(args.get_long("group-size", 4));
  const double shave = args.get_double("shave", 0.05);

  const auto scenario = attack::make_collusion_scenario(
      topology, dataset, group_size, shave, week);
  const auto forged = attack::apply_injections(dataset, scenario.injections);
  save(forged, args.require_value("out"));

  double stolen_kwh = 0.0;
  for (const auto& injection : scenario.injections) {
    const auto clean = dataset.consumer(injection.consumer_index).week(week);
    stolen_kwh +=
        pricing::energy(clean) - pricing::energy(injection.reported_week);
  }
  std::printf("collusion: %zu colluders under node %d shave %.1f%% of week "
              "%zu (%.1f kWh total); consumers:",
              scenario.consumers.size(), scenario.node, 100.0 * shave, week,
              stolen_kwh);
  for (const std::size_t i : scenario.consumers) {
    std::printf(" %u", dataset.consumer(i).id);
  }
  std::printf("\n");
  return 0;
}

int cmd_inject(const Args& args) {
  if (args.get("attack", "integrated-over") == "collusion") {
    return cmd_inject_collusion(args);
  }
  auto dataset = load(args.require_value("in"));
  const auto id = static_cast<meter::ConsumerId>(
      args.get_long("consumer", -1));
  const auto index = dataset.index_of(id);
  if (!index) throw InvalidArgument("no consumer with id " +
                                    std::to_string(id));
  const long week_raw = args.get_long("week", -1);
  require(week_raw >= 0, "inject: --week is required");
  const auto week = static_cast<std::size_t>(week_raw);
  const auto train_weeks =
      static_cast<std::size_t>(args.get_long("train-weeks", 24));
  const std::string kind = args.get("attack", "integrated-over");
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 7));

  auto& series = dataset.consumer(*index);
  require(week < series.week_count(), "inject: week out of range");
  require(train_weeks <= week,
          "inject: attacked week must come after the training window");

  const std::span<const Kw> train{series.readings.data(),
                                  train_weeks * kSlotsPerWeek};
  const auto model = ts::ArimaModel::fit(train, {});
  const auto history = train.subspan(train.size() - 2 * kSlotsPerWeek);
  const auto wstats = meter::weekly_stats(train);
  Rng rng(seed);

  std::vector<Kw> vector;
  if (kind == "integrated-over" || kind == "integrated-under") {
    attack::IntegratedAttackConfig cfg;
    cfg.over_report = kind == "integrated-over";
    vector = attack::integrated_arima_attack_vector(model, history, wstats,
                                                    kSlotsPerWeek, rng, cfg);
  } else if (kind == "arima-over" || kind == "arima-under") {
    attack::ArimaAttackConfig cfg;
    cfg.direction = kind == "arima-over" ? attack::Direction::kOverReport
                                         : attack::Direction::kUnderReport;
    vector = attack::arima_attack_vector(model, history, kSlotsPerWeek, cfg);
  } else if (kind == "swap") {
    const auto swap = attack::optimal_swap_attack(
        series.week(week), pricing::nightsaver(), 0, &model, history, {});
    vector = swap.reported;
  } else {
    throw InvalidArgument("unknown --attack '" + kind +
                          "' (integrated-over|integrated-under|arima-over|"
                          "arima-under|swap|collusion)");
  }

  const auto clean = series.week(week);
  const auto tou = pricing::nightsaver();
  std::printf("injected %s on consumer %u week %zu: energy %.1f -> %.1f "
              "kWh, bill delta $%.2f\n",
              kind.c_str(), id, week, pricing::energy(clean),
              pricing::energy(vector),
              pricing::attacker_profit(clean, vector, tou));
  std::copy(vector.begin(), vector.end(),
            series.readings.begin() + week * kSlotsPerWeek);
  save(dataset, args.require_value("out"));
  return 0;
}

int cmd_evaluate(const Args& args) {
  // Runs the Tables II/III evaluation harness over a CSV dataset.
  const auto dataset = load(args.require_value("in"));
  core::EvaluationConfig config;
  config.split.train_weeks =
      static_cast<std::size_t>(args.get_long("train-weeks", 24));
  config.split.test_weeks =
      dataset.week_count() - config.split.train_weeks;
  require(dataset.week_count() > config.split.train_weeks + 1,
          "evaluate: horizon too short for the split");
  config.attack_vectors =
      static_cast<std::size_t>(args.get_long("vectors", 10));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 7));

  const auto result = core::run_evaluation(dataset, config);
  std::printf("evaluated %zu consumers (%zu skipped)\n\n",
              result.evaluated_count(),
              result.consumers.size() - result.evaluated_count());
  std::printf("%-34s %8s %8s %8s\n", "Metric 1 (detected %)", "1B",
              "2A/2B", "3A/3B");
  for (std::size_t d = 0; d < core::kDetectorCount; ++d) {
    const auto kind = static_cast<core::DetectorKind>(d);
    std::printf("%-34s %7.1f%% %7.1f%% %7.1f%%\n", core::to_string(kind),
                result.metric1_percent(kind, core::AttackKind::k1B),
                result.metric1_percent(kind, core::AttackKind::k2A2B),
                result.metric1_percent(kind, core::AttackKind::k3A3B));
  }
  std::printf("\n%-34s %10s %10s %10s\n", "Metric 2 (stolen kWh)", "1B",
              "2A/2B", "3A/3B");
  for (std::size_t d = 0; d < core::kDetectorCount; ++d) {
    const auto kind = static_cast<core::DetectorKind>(d);
    std::printf("%-34s %10.0f %10.0f %10.0f\n", core::to_string(kind),
                result.metric2_kwh(kind, core::AttackKind::k1B),
                result.metric2_kwh(kind, core::AttackKind::k2A2B),
                result.metric2_kwh(kind, core::AttackKind::k3A3B));
  }
  return 0;
}

/// Builds the per-family detector options: the dedicated --bins /
/// --significance / --epsilon flags seed the shared kld block, then every
/// --detector-opt key=value (repeatable) applies on top, so e.g.
/// `--detector-opt iforest.contamination=0.1 --detector-opt kld.bins=12`
/// tunes two families in one invocation.
core::DetectorOptions detector_options_from(const Args& args) {
  core::DetectorOptions options;
  options.kld.bins = static_cast<std::size_t>(args.get_long("bins", 10));
  options.kld.significance = args.get_double("significance", 0.05);
  options.kld.epsilon = args.get_double("epsilon", options.kld.epsilon);
  for (const std::string& spec : args.get_all("detector-opt")) {
    core::apply_detector_option(options, spec);
  }
  return options;
}

/// Resolves --detector against the registry (default "kld").  Fails fast
/// here, before any dataset loads or pipeline construction, naming the
/// registered families.
std::string detector_from(const Args& args) {
  const std::string name = args.get("detector", "kld");
  if (!core::is_registered_detector(name)) {
    throw InvalidArgument("unknown --detector '" + name + "' (registered: " +
                          core::registered_detector_names_joined() + ")");
  }
  return name;
}

/// Guards every score/threshold the CLI emits: a non-finite value would
/// print as a bare "inf"/"nan" token and poison any downstream parser, so
/// serving refuses to emit it (enable epsilon smoothing, the default, to
/// keep scores finite on out-of-support readings).
double finite_or_throw(double value, const char* what) {
  if (!std::isfinite(value)) {
    throw NumericalError(std::string(what) +
                         " is non-finite; refusing to emit it (run with "
                         "--epsilon > 0 to smooth empty baseline bins)");
  }
  return value;
}

int cmd_fit(const Args& args) {
  // Fits the pipeline on a trusted dataset and checkpoints the fitted state
  // (the offline half of the warm-start serving split).  Flag validation
  // runs before any dataset IO so a typo fails in milliseconds.
  const std::string detector = detector_from(args);
  const core::DetectorOptions detector_options = detector_options_from(args);

  const auto actual = load(args.require_value("in"));
  const auto train_weeks =
      static_cast<std::size_t>(args.get_long("train-weeks", 24));
  require(train_weeks < actual.week_count(),
          "fit: train-weeks exceeds the horizon");

  core::PipelineConfig config;
  config.split =
      meter::TrainTestSplit{.train_weeks = train_weeks,
                            .test_weeks = actual.week_count() - train_weeks};
  config.detector = detector;
  config.kld = detector_options.kld;
  config.detector_options = detector_options;
  core::FdetaPipeline pipeline(config);
  pipeline.fit(actual);

  const std::string path = args.require_value("save-model");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw DataError("fit: cannot open " + path + " for writing");
  pipeline.save_model(out);
  std::printf("fitted %zu consumers on %zu training weeks (detector=%s, "
              "B=%zu, alpha=%.0f%%), model -> %s\n",
              pipeline.consumer_count(), train_weeks,
              config.detector.c_str(), config.kld.bins,
              100.0 * config.kld.significance, path.c_str());
  return 0;
}

int cmd_detect(const Args& args) {
  // Runs the five-step F-DETA pipeline (minus step 5: no topology here)
  // over every test week, so the run is fully accounted in the "pipeline."
  // metrics exposed via --metrics-out.
  // Flag validation first: an unknown --detector or --detector-opt fails
  // fast with the registered names/keys, before any CSV loads.
  if (args.has("detector")) detector_from(args);
  const core::DetectorOptions detector_options = detector_options_from(args);

  const auto reported = load(args.require_value("in"));
  const std::string baseline_path = args.get("baseline", "");
  const auto baseline =
      baseline_path.empty() ? reported : load(baseline_path);
  const std::string model_path = args.get("model", "");

  require(baseline.consumer_count() == reported.consumer_count(),
          "detect: baseline/reported consumer counts differ");
  require(baseline.week_count() == reported.week_count(),
          "detect: baseline/reported horizons differ");

  // Feeder-hierarchy layer: --topology enables the step-5 investigation over
  // the radial tree; --hierarchy additionally scores every internal node and
  // localises colluding sibling groups.  The per-consumer verdicts printed
  // below are byte-identical with and without --hierarchy (the feeder layer
  // only appends to the report and the event log).
  const bool hierarchy = args.has("hierarchy");
  const std::string topology_path = args.get("topology", "");
  require(!hierarchy || !topology_path.empty(),
          "detect: --hierarchy requires --topology");
  std::optional<grid::Topology> topology;
  if (!topology_path.empty()) {
    std::ifstream tin(topology_path);
    if (!tin) throw DataError("detect: cannot open topology " + topology_path);
    topology = grid::load_topology(tin);
    require(topology->consumer_count() == reported.consumer_count(),
            "detect: topology consumer count does not match the dataset");
  }

  const bool explain = args.has("explain");
  core::PipelineConfig config;
  config.explain = explain;
  config.hierarchy = hierarchy;
  config.max_missing_fraction =
      args.get_double("coverage-gate", config.max_missing_fraction);
  require(config.max_missing_fraction >= 0.0 &&
              config.max_missing_fraction <= 1.0,
          "detect: --coverage-gate out of [0,1]");
  core::FdetaPipeline pipeline(config);
  if (!model_path.empty()) {
    // Warm start: restore the fitted state saved by `fdeta fit`; the
    // checkpoint carries the detector family, split and KLD parameters it
    // was fitted with.
    std::ifstream in(model_path, std::ios::binary);
    if (!in) throw DataError("detect: cannot open model " + model_path);
    pipeline.load_model(in);
    require(pipeline.consumer_count() == reported.consumer_count(),
            "detect: model consumer count does not match the dataset");
    const std::string requested = args.get("detector", "");
    require(requested.empty() || requested == pipeline.config().detector,
            "detect: --detector disagrees with the model checkpoint");
  } else {
    // Cold path: fit in-process on the baseline dataset.
    config.split = meter::TrainTestSplit{
        .train_weeks =
            static_cast<std::size_t>(args.get_long("train-weeks", 24)),
        .test_weeks = 0};
    require(config.split.train_weeks < reported.week_count(),
            "detect: train-weeks exceeds the horizon");
    config.split.test_weeks =
        reported.week_count() - config.split.train_weeks;
    config.detector = detector_from(args);
    config.kld = detector_options.kld;
    config.detector_options = detector_options;
    config.explain = explain;
    pipeline = core::FdetaPipeline(config);
    pipeline.fit(baseline);
  }
  const std::size_t train_weeks = pipeline.config().split.train_weeks;
  const double significance = pipeline.config().kld.significance;
  const std::size_t bins = pipeline.config().kld.bins;
  require(train_weeks < reported.week_count(),
          "detect: model training span exceeds the dataset horizon");
  const core::EvidenceCalendar calendar;  // no external evidence from CSV

  // Chaos harness: --fault-plan / --loss-rate replay the reported dataset
  // through a faulty AMI plane (ami/faults.h) and the pipeline judges what
  // the head-end actually collected, coverage gate and all.  --retries
  // enables the NACK retransmit pass; --seed pins the fault decisions.
  const std::string plan_spec = args.get("fault-plan", "");
  const double loss_rate = args.get_double("loss-rate", 0.0);
  std::optional<ami::CollectedReport> collected;
  if (!plan_spec.empty() || loss_rate > 0.0) {
    ami::FaultPlanConfig plan_config;
    if (!plan_spec.empty()) plan_config = ami::parse_fault_plan(plan_spec);
    if (loss_rate > 0.0) {
      require(loss_rate <= 1.0, "detect: --loss-rate out of [0,1]");
      plan_config.drop_rate = loss_rate;
    }
    plan_config.seed = static_cast<std::uint64_t>(
        args.get_long("seed", static_cast<long>(plan_config.seed)));

    ami::HeadEnd head_end(reported.consumer_count(), reported.slot_count());
    ami::MeterNetwork network(reported);
    network.set_fault_plan(ami::FaultPlan(plan_config));
    const auto retries =
        static_cast<std::size_t>(args.get_long("retries", 0));
    network.set_retransmit(
        {retries, static_cast<std::size_t>(args.get_long("backoff", 1))});
    // One delivery window per week, so each week gets its own NACK rounds.
    for (std::size_t w = 0; w < reported.week_count(); ++w) {
      network.transmit(head_end, w * kSlotsPerWeek, (w + 1) * kSlotsPerWeek);
    }
    collected = ami::collect_reported(head_end, reported);
    std::printf("chaos: sent=%zu dropped=%zu retries=%zu late=%zu "
                "quarantined=%zu duplicates=%zu stale=%zu missing=%zu\n",
                network.messages_sent(), network.messages_dropped(),
                network.messages_retried(), network.late_accepted(),
                head_end.quarantined_count(), head_end.duplicates_suppressed(),
                head_end.stale_rejected(), head_end.missing_count());
  }
  // What the detectors judge: the head-end's collected view when the chaos
  // harness ran, the reported CSV verbatim otherwise.
  const meter::Dataset& judged =
      collected.has_value() ? collected->dataset : reported;

  const auto status_tag = [](core::VerdictStatus status) {
    switch (status) {
      case core::VerdictStatus::kSuspectedAttacker: return "under";
      case core::VerdictStatus::kSuspectedVictim: return "over";
      case core::VerdictStatus::kExcused: return "excused";
      case core::VerdictStatus::kInsufficientData: return "insuf";
      default: return "anom";
    }
  };

  std::printf("%-8s", "week");
  std::printf("  flagged consumers (detector=%s, alpha=%.0f%%, B=%zu)\n",
              pipeline.config().detector.c_str(), 100.0 * significance,
              bins);
  // These tallies are computed from the printed report itself; the
  // cli_metrics_check test cross-checks them against the --metrics-out
  // JSON, whose counters come from the pipeline's own instrumentation.
  std::size_t weeks_scored = 0;
  std::size_t flagged_total = 0;
  std::size_t insufficient_total = 0;
  std::size_t hierarchy_nodes = 0;
  std::size_t feeder_alerts_total = 0;
  std::size_t collusion_groups_total = 0;
  for (std::size_t w = train_weeks; w < reported.week_count(); ++w) {
    std::optional<core::WeekCoverage> coverage;
    if (collected.has_value()) {
      coverage.emplace();
      coverage->missing_slots = collected->week_missing(w);
    }
    const auto report =
        pipeline.evaluate_week(baseline, judged, w, calendar,
                               topology.has_value() ? &*topology : nullptr,
                               coverage.has_value() ? &*coverage : nullptr);
    ++weeks_scored;
    std::printf("%-8zu", w);
    bool any = false;
    for (const auto& v : report.verdicts) {
      if (v.status == core::VerdictStatus::kNormal) continue;
      if (v.status == core::VerdictStatus::kInsufficientData) {
        // Not a theft flag: the week was too lossy to judge at all.
        std::printf(" %u(%s miss=%zu)", v.id, status_tag(v.status),
                    v.missing_slots);
        ++insufficient_total;
        any = true;
        continue;
      }
      std::printf(" %u(%s K=%.2f)", v.id, status_tag(v.status),
                  finite_or_throw(v.kld_score, "detect: KLD score"));
      ++flagged_total;
      any = true;
    }
    if (!any) std::printf(" -");
    std::printf("\n");
    if (report.feeder.has_value()) {
      const auto& feeder = *report.feeder;
      hierarchy_nodes = feeder.nodes.size();
      feeder_alerts_total += feeder.alert_count();
      collusion_groups_total += feeder.collusion.size();
      for (const auto& node : feeder.nodes) {
        if (!node.flagged) continue;
        std::printf("    feeder node %d (depth %d, %zu consumers): "
                    "score=%.3f residual=%.3f kW\n",
                    node.node, node.depth, node.consumers,
                    finite_or_throw(node.score, "detect: feeder score"),
                    node.residual_kw);
      }
      for (const auto& group : feeder.collusion) {
        std::printf("    collusion under node %d (%.3f kW):", group.node,
                    group.residual_kw);
        for (const std::size_t i : group.consumers) {
          std::printf(" %u", reported.consumer(i).id);
        }
        std::printf("\n");
      }
    }
    if (explain) {
      // Per-bin contributions: which consumption bins pushed the raw K_A
      // over the family threshold (the bins decompose the RAW score; the
      // verdict line above carries the calibrated quantile).  Bins with zero
      // week mass contribute nothing and are elided.
      for (const auto& v : report.verdicts) {
        if (!v.explanation) continue;
        std::printf("    consumer %u raw=%.3f raw_thr=%.3f per-bin bits:",
                    v.id, v.explanation->raw_score,
                    v.explanation->raw_threshold);
        for (const auto& c : v.explanation->bins) {
          if (c.bits == 0.0) continue;
          std::printf(" %zu:%+.3f", c.bin,
                      finite_or_throw(c.bits, "detect: bin contribution"));
        }
        std::printf("\n");
      }
    }
  }
  std::printf("weeks_scored=%zu consumer_weeks=%zu flagged_total=%zu\n",
              weeks_scored, weeks_scored * reported.consumer_count(),
              flagged_total);
  if (hierarchy) {
    std::printf("hierarchy: nodes=%zu feeder_alerts=%zu "
                "collusion_groups=%zu\n",
                hierarchy_nodes, feeder_alerts_total, collusion_groups_total);
  }
  if (collected.has_value()) {
    std::printf("coverage: insufficient=%zu gate=%.2f\n", insufficient_total,
                pipeline.config().max_missing_fraction);
  }

  // Streaming replay (disable with --stream 0): feed the same test span
  // through an OnlineMonitor reading by reading, as the control-center loop
  // would see it from the head-end.  Alerts land in the event log and the
  // monitor's spans in the trace, so one detect run exercises the full
  // batch + online forensic surface.
  if (args.get_long("stream", 1) != 0) {
    core::OnlineMonitorConfig mconfig;
    mconfig.detector = pipeline.config().detector;
    mconfig.kld = pipeline.config().kld;
    mconfig.detector_options = pipeline.config().detector_options;
    mconfig.max_missing_fraction = pipeline.config().max_missing_fraction;
    core::OnlineMonitor monitor(mconfig);
    monitor.fit(baseline, pipeline.config().split);

    // Telemetry time series: --stats-interval N scrapes the registry every
    // N logical slots and prints one live scoreboard line per frame;
    // --series-out F writes every frame as JSONL.  Scrapes happen at chunk
    // boundaries of the slot clock, so under a fixed seed the deterministic
    // half of every frame is identical for any shard x thread layout.
    const long stats_interval_raw = args.get_long("stats-interval", 0);
    require(stats_interval_raw >= 0, "detect: --stats-interval must be >= 0");
    const std::string series_path = args.get("series-out", "");
    const bool scraping = stats_interval_raw > 0 || !series_path.empty();
    obs::MetricsScraperConfig scfg;
    scfg.interval_slots = stats_interval_raw > 0
                              ? static_cast<std::uint64_t>(stats_interval_raw)
                              : static_cast<std::uint64_t>(kSlotsPerWeek);
    obs::MetricsScraper scraper(scfg);
    scraper.start(train_weeks * kSlotsPerWeek);
    const bool live_board = stats_interval_raw > 0;
    if (live_board) std::printf("%s\n", obs::scoreboard_header().c_str());
    const auto scrape_at = [&](std::uint64_t slot, bool force) {
      if (!force && !scraper.due(slot)) return;
      // Refresh the drift/burst gauges right before the snapshot - a fixed
      // point of the reading order, so the gauge values are deterministic.
      monitor.refresh_health_gauges();
      const obs::SeriesFrame& frame = scraper.scrape(slot);
      if (live_board) {
        std::printf("%s\n", obs::scoreboard_line(frame).c_str());
      }
    };
    // Deliver in chunks of at most one scrape interval, so a sub-week
    // --stats-interval still observes every frame boundary.
    const std::size_t chunk_slots = static_cast<std::size_t>(std::min<
        std::uint64_t>(scfg.interval_slots, kSlotsPerWeek));

    std::size_t readings = 0;
    std::size_t over = 0;
    std::size_t under = 0;
    for (std::size_t w = train_weeks; w < reported.week_count(); ++w) {
      for (std::size_t chunk = 0; chunk < kSlotsPerWeek;
           chunk += chunk_slots) {
        const std::size_t chunk_end =
            std::min(chunk + chunk_slots, static_cast<std::size_t>(
                                              kSlotsPerWeek));
        std::vector<core::Reading> batch;
        batch.reserve(reported.consumer_count() * (chunk_end - chunk));
        // Slot-major: all consumers' slot-t readings arrive before any
        // slot-t+1 reading, as one head-end delivery per slot would.  Under
        // the chaos harness, slots the head-end never accepted arrive as
        // missing markers (counted, never applied).
        for (std::size_t s = chunk; s < chunk_end; ++s) {
          const auto slot = static_cast<SlotIndex>(w * kSlotsPerWeek + s);
          for (std::size_t c = 0; c < reported.consumer_count(); ++c) {
            const bool miss =
                collected.has_value() && collected->missing[c][slot] != 0;
            batch.push_back(core::Reading{
                c, slot, judged.consumer(c).readings[slot], miss});
          }
        }
        const auto alerts = monitor.ingest_batch(batch);
        readings += batch.size();
        for (const auto& a : alerts) {
          ++(a.direction == core::AlertDirection::kOverReport ? over
                                                              : under);
        }
        if (scraping) {
          scrape_at(w * kSlotsPerWeek + chunk_end, /*force=*/false);
        }
      }
    }
    if (scraping) {
      // Final partial window, so the series always covers the whole span.
      const std::uint64_t final_slot = reported.week_count() * kSlotsPerWeek;
      const auto& frames = scraper.store().frames();
      if (frames.empty() || frames.back().slot < final_slot) {
        scrape_at(final_slot, /*force=*/true);
      }
      if (!series_path.empty()) {
        std::ofstream out(series_path);
        if (!out) {
          throw DataError("detect: cannot open " + series_path +
                          " for writing");
        }
        out << scraper.store().to_jsonl();
      }
    }
    std::printf("stream: readings=%zu alerts=%zu over=%zu under=%zu\n",
                readings, monitor.alerts().size(), over, under);
  }
  return 0;
}

int cmd_stats(const Args& args) {
  // Post-hoc triage: renders a --series-out JSONL file as the same
  // scoreboard table `detect --stats-interval` prints live.
  std::ifstream in(args.require_value("in"));
  if (!in) throw DataError("stats: cannot open input file");
  std::printf("%s\n", obs::scoreboard_header().c_str());
  std::size_t frames = 0;
  std::size_t skipped = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto frame = obs::parse_series_frame(line);
    if (!frame) {
      ++skipped;
      continue;
    }
    std::printf("%s\n", obs::scoreboard_line(*frame).c_str());
    ++frames;
  }
  if (skipped > 0) {
    std::fprintf(stderr, "stats: skipped %zu non-frame lines\n", skipped);
  }
  std::printf("frames=%zu\n", frames);
  require(frames > 0, "stats: no series frames in input");
  return 0;
}

int cmd_topology(const Args& args) {
  // Build a random radial feeder for N consumers and write it to a file.
  const auto consumers =
      static_cast<std::size_t>(args.get_long("consumers", 50));
  const auto fanout = static_cast<std::size_t>(args.get_long("fanout", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 7));
  Rng rng(seed);
  const auto topology = grid::Topology::random_radial(
      consumers, fanout, rng, args.get_double("loss", 0.02));
  std::ofstream out(args.require_value("out"));
  if (!out) throw DataError("cannot open output file");
  grid::save_topology(topology, out);
  std::printf("wrote %zu-node topology (%zu consumers, max depth ", 
              topology.node_count(), topology.consumer_count());
  int depth = 0;
  for (std::size_t i = 0; i < topology.consumer_count(); ++i) {
    depth = std::max(depth, topology.depth(topology.consumer_leaf(i)));
  }
  std::printf("%d)\n", depth);
  return 0;
}

int cmd_investigate(const Args& args) {
  // Balance-check a week of reported vs baseline readings over a topology
  // file and localise the imbalance: --mode case2 (default) runs the
  // portable-meter search, --mode case1 assumes every internal node is
  // metered and works from the full set of W events.  Either way the
  // decision path is printed as an audit trail and recorded in the event
  // log (--events-out).
  std::ifstream tin(args.require_value("topology"));
  if (!tin) throw DataError("cannot open topology file");
  const auto topology = grid::load_topology(tin);
  const auto actual = load(args.require_value("baseline"));
  const auto reported = load(args.require_value("in"));
  require(topology.consumer_count() == actual.consumer_count() &&
              actual.consumer_count() == reported.consumer_count(),
          "investigate: consumer counts disagree");
  const long week_raw = args.get_long("week", -1);
  require(week_raw >= 0, "investigate: --week is required");
  const auto week = static_cast<std::size_t>(week_raw);

  std::vector<Kw> actual_avg(actual.consumer_count());
  std::vector<Kw> reported_avg(actual.consumer_count());
  for (std::size_t c = 0; c < actual.consumer_count(); ++c) {
    double a = 0.0, r = 0.0;
    const auto wa = actual.consumer(c).week(week);
    const auto wr = reported.consumer(c).week(week);
    for (std::size_t t = 0; t < wa.size(); ++t) {
      a += wa[t];
      r += wr[t];
    }
    actual_avg[c] = a / static_cast<double>(wa.size());
    reported_avg[c] = r / static_cast<double>(wr.size());
  }

  const double tolerance = args.get_double("tolerance", 1e-3);
  const std::string mode = args.get("mode", "case2");
  obs::EventLog& events = obs::default_event_log();

  grid::InvestigationResult result;
  if (mode == "case1") {
    // Case 1: every internal node carries a trusted balance meter; the W
    // events alone localise the theft.
    const auto outcome = grid::run_balance_checks(
        topology, actual_avg, reported_avg, /*compromised_meters=*/{},
        tolerance);
    result = grid::investigate_case1(topology, outcome, &events);
  } else if (mode == "case2") {
    result = grid::investigate_case2(topology, actual_avg, reported_avg,
                                     tolerance, &events);
  } else {
    throw InvalidArgument("unknown --mode '" + mode + "' (case1|case2)");
  }

  std::printf("audit trail (%s, %zu steps):\n", mode.c_str(),
              result.steps.size());
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    const auto& s = result.steps[i];
    std::printf("  %2zu. node %d (depth %d): %s", i, s.node, s.depth,
                grid::to_string(s.branch));
    if (s.imbalance_kw > 0.0) {
      std::printf(", imbalance %.3f kW", s.imbalance_kw);
    }
    if (s.suspects > 0) std::printf(", %zu suspects", s.suspects);
    std::printf("\n");
  }

  if (result.suspects.empty()) {
    std::printf("week %zu: books balance, nothing to investigate "
                "(%zu %s checks)\n",
                week, result.checks_performed,
                mode == "case1" ? "meter" : "portable");
    return 0;
  }
  std::printf("week %zu: balance failure localised to node %d after %zu "
              "%s checks; inspect meters:",
              week, result.localized_node, result.checks_performed,
              mode == "case1" ? "meter" : "portable");
  for (const std::size_t s : result.suspects) {
    std::printf(" %u", reported.consumer(s).id);
  }
  std::printf("\n");
  return 0;
}

int usage() {
  std::printf(
      "usage: fdeta <command> [--flag value ...]\n\n"
      "commands:\n"
      "  generate  --out F [--consumers N] [--weeks W] [--seed S]\n"
      "  summary   --in F\n"
      "  inject    --in F --out F --consumer ID --week W\n"
      "            [--attack integrated-over|integrated-under|arima-over|\n"
      "             arima-under|swap|collusion] [--train-weeks T] [--seed S]\n"
      "            collusion: --topology F [--group-size K] [--shave X]\n"
      "            (K siblings under the deepest shared transformer each\n"
      "             shave fraction X of the attacked week; no --consumer)\n"
      "  fit       --in F --save-model F [--train-weeks T]\n"
      "            [--detector kld|ckld|kld-lite|iforest]\n"
      "            [--significance A] [--bins B] [--epsilon E]\n"
      "            [--detector-opt key=value ...]\n"
      "  detect    --in F [--model F] [--baseline F] [--train-weeks T]\n"
      "            [--detector kld|ckld|kld-lite|iforest]\n"
      "            [--significance A] [--bins B] [--epsilon E]\n"
      "            [--detector-opt key=value ...]\n"
      "            [--explain] [--stream 0|1]\n"
      "            [--topology F]  run the step-5 balance investigation\n"
      "                            over the radial tree\n"
      "            [--hierarchy]   also score every internal feeder node and\n"
      "                            localise colluding sibling groups\n"
      "                            (requires --topology)\n"
      "            [--stats-interval N]  print a live scoreboard line every\n"
      "                                  N logical slots of the stream replay\n"
      "            [--series-out F]      write the telemetry time series\n"
      "                                  (one JSON frame per line) to F\n"
      "            [--fault-plan drop=X,dup=X,reorder=X,delay=N,corrupt=X,\n"
      "             burst-every=N,burst-len=N,seed=S] [--loss-rate X]\n"
      "            [--seed S] [--retries N] [--backoff B] [--coverage-gate F]\n"
      "  stats     --in F   render a --series-out JSONL file as the live\n"
      "                     scoreboard table\n"
      "  evaluate  --in F [--train-weeks T] [--vectors V] [--seed S]\n"
      "  topology  --out F [--consumers N] [--fanout K] [--loss X]\n"
      "  investigate --topology F --baseline F --in F --week W\n"
      "            [--tolerance KW] [--mode case1|case2]\n\n"
      "every command also accepts:\n"
      "  --metrics-out F  write the run's telemetry to F and print a\n"
      "                   summary table on stderr\n"
      "  --metrics-format json|text|prom\n"
      "                   encoding for --metrics-out: JSON exposition\n"
      "                   (default), the human table, or Prometheus text\n"
      "  --trace-out F    record spans; write Chrome trace-event JSON to F\n"
      "                   (loads in Perfetto / chrome://tracing)\n"
      "  --events-out F   record domain events (alerts, investigation\n"
      "                   steps, model restores) as JSONL to F\n\n"
      "--detector-opt is repeatable; per-family keys:\n%s\n",
      core::detector_option_help().c_str());
  return 2;
}

/// Validates --metrics-format early (before any command work), returning
/// the requested format ("json" default).
std::string metrics_format_from(const Args& args) {
  const std::string format = args.get("metrics-format", "json");
  require(format == "json" || format == "text" || format == "prom",
          "unknown --metrics-format '" + format + "' (json|text|prom)");
  return format;
}

/// Writes the process-wide metrics registry to --metrics-out (when given)
/// in the --metrics-format encoding (JSON exposition by default, "text" for
/// the human table, "prom" for the Prometheus text exposition) and prints
/// the human summary table on stderr.
void emit_metrics(const Args& args) {
  const std::string path = args.get("metrics-out", "");
  if (path.empty()) return;
  const std::string format = metrics_format_from(args);
  const auto snapshot = obs::default_registry().snapshot();
  std::ofstream out(path);
  if (!out) throw DataError("cannot open " + path + " for writing");
  if (format == "prom") {
    out << obs::to_prometheus(snapshot);
  } else if (format == "text") {
    out << snapshot.to_text();
  } else {
    out << snapshot.to_json();
  }
  std::fputs(snapshot.to_text().c_str(), stderr);
}

/// Writes the recorded spans as Chrome trace-event JSON to --trace-out.
void emit_trace(const Args& args) {
  const std::string path = args.get("trace-out", "");
  if (path.empty()) return;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  std::ofstream out(path);
  if (!out) throw DataError("cannot open " + path + " for writing");
  out << tracer.chrome_trace_json();
}

/// Writes the recorded domain events as JSONL to --events-out.
void emit_events(const Args& args) {
  const std::string path = args.get("events-out", "");
  if (path.empty()) return;
  obs::EventLog& log = obs::default_event_log();
  log.disable();
  std::ofstream out(path);
  if (!out) throw DataError("cannot open " + path + " for writing");
  log.write(out);
}

int run_command(const std::string& command, const Args& args) {
  if (command == "generate") return cmd_generate(args);
  if (command == "summary") return cmd_summary(args);
  if (command == "inject") return cmd_inject(args);
  if (command == "fit") return cmd_fit(args);
  if (command == "detect") return cmd_detect(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "evaluate") return cmd_evaluate(args);
  if (command == "topology") return cmd_topology(args);
  if (command == "investigate") return cmd_investigate(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    metrics_format_from(args);  // fail fast on a bad --metrics-format
    if (!args.get("trace-out", "").empty()) obs::Tracer::instance().enable();
    if (!args.get("events-out", "").empty()) obs::default_event_log().enable();
    const int code = run_command(command, args);
    if (code == 0) {
      emit_metrics(args);
      emit_trace(args);
      emit_events(args);
    }
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
