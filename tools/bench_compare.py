#!/usr/bin/env python3
"""Gate a BENCH_*.json perf report against a committed baseline.

Compares the machine-portable ratios under "derived" (same-run comparisons:
pool speedups, warm-start vs cold-fit, shard-contention) and exits non-zero
when the candidate regresses more than --tolerance below the baseline.
Absolute rates (consumers/sec, readings/sec) are recorded in the reports for
the trajectory but never gated: they measure the machine as much as the
code.  Improvements never fail the gate.

With --append-history, the candidate report is additionally archived under
bench/history/ keyed by the git revision recorded inside it, seeding the
long-run perf trajectory (one JSON per revision; re-runs of the same
revision overwrite, so the history holds the latest numbers per rev).

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.20]
                     [--keys fit_pool_speedup,warm_vs_cold_speedup]
                     [--append-history [DIR]]
"""

import argparse
import json
import os
import sys


def load_derived(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    derived = doc.get("derived")
    if not isinstance(derived, dict) or not derived:
        sys.exit(f"{path}: no 'derived' metrics to compare")
    return {
        key: value
        for key, value in derived.items()
        if isinstance(value, (int, float))
    }


def append_history(candidate_path, history_dir):
    """Archive the candidate report under history_dir keyed by its git rev."""
    with open(candidate_path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    rev = doc.get("git_rev")
    if not isinstance(rev, str) or not rev or rev == "unknown":
        sys.exit(
            f"{candidate_path}: no usable 'git_rev' to key the history entry"
        )
    bench = doc.get("bench", "bench")
    os.makedirs(history_dir, exist_ok=True)
    out_path = os.path.join(history_dir, f"{bench}_{rev}.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
    print(f"history: archived {candidate_path} -> {out_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="maximum allowed fractional regression (default 0.20)",
    )
    parser.add_argument(
        "--keys",
        default="",
        help="comma-separated derived keys to gate (default: all shared)",
    )
    parser.add_argument(
        "--append-history",
        nargs="?",
        const=os.path.join(os.path.dirname(__file__), "..", "bench",
                           "history"),
        default=None,
        metavar="DIR",
        help="archive the candidate under DIR (default bench/history/) "
        "keyed by its git_rev",
    )
    args = parser.parse_args()

    if args.append_history is not None:
        append_history(args.candidate, args.append_history)

    base = load_derived(args.baseline)
    cand = load_derived(args.candidate)
    keys = [k for k in args.keys.split(",") if k] or sorted(
        set(base) & set(cand)
    )
    if not keys:
        sys.exit("no shared derived metrics between baseline and candidate")

    failures = []
    print(f"{'metric':<32} {'baseline':>12} {'candidate':>12} {'delta':>8}")
    for key in keys:
        if key not in base or key not in cand:
            # A metric added (or retired) by this PR is trajectory, not a
            # regression; it starts gating once both sides carry it.
            print(f"{key:<32} {'-':>12} {'-':>12}   (unshared, skipped)")
            continue
        b, c = float(base[key]), float(cand[key])
        verdict = ""
        if b == 0:
            # A zero baseline ratio carries no regression information: equal
            # is equal and anything positive is an improvement, so neither
            # can fail the gate.
            delta = 0.0
            verdict = "  (zero baseline)" if c == 0 else "  improvement"
        else:
            delta = (c - b) / b
            if b > 0 and c < b * (1.0 - args.tolerance):
                verdict = "  REGRESSION"
                failures.append(f"{key} ({b:.4g} -> {c:.4g}, {delta:+.1%})")
        print(f"{key:<32} {b:>12.4g} {c:>12.4g} {delta:>+7.1%}{verdict}")

    if failures:
        detail = "\n".join(f"  {f}" for f in failures)
        print(
            f"\nFAIL: {len(failures)} derived metric(s) regressed more than "
            f"{args.tolerance:.0%} vs {args.baseline}:\n{detail}"
        )
        return 1
    print(f"\nOK: no derived metric regressed more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
