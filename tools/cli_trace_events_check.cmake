# Forensics acceptance test for --trace-out / --events-out / --explain:
# one detect run must yield (a) a Chrome-trace JSON containing thread-pool,
# pipeline AND monitor spans, and (b) a JSONL event log where every line is
# valid JSON, sequence numbers start at 1, and the injected attack surfaces
# as an alert_raised event carrying a per-bin explanation.  An investigate
# run must additionally record its decision path as investigation_step
# events.
file(MAKE_DIRECTORY ${WORK_DIR})
macro(run)
  execute_process(COMMAND ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE run_stdout
                  ERROR_VARIABLE run_stderr)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
            "fdeta ${ARGN} failed (${code}): ${run_stdout}${run_stderr}")
  endif()
endmacro()

run(generate --out actual.csv --consumers 6 --weeks 16 --seed 3)
run(inject --in actual.csv --out reported.csv --consumer 1002 --week 13
    --attack integrated-over --train-weeks 12)
run(detect --in reported.csv --baseline actual.csv --train-weeks 12
    --explain --trace-out trace.json --events-out events.jsonl)

# -- (a) the trace ----------------------------------------------------------
file(READ ${WORK_DIR}/trace.json trace_json)
string(JSON trace_kind ERROR_VARIABLE trace_error TYPE "${trace_json}")
if(NOT trace_error STREQUAL "NOTFOUND")
  message(FATAL_ERROR "trace.json is not valid JSON: ${trace_error}")
endif()
string(JSON events_kind ERROR_VARIABLE trace_error
       TYPE "${trace_json}" traceEvents)
if(NOT events_kind STREQUAL "ARRAY")
  message(FATAL_ERROR "trace.json has no traceEvents array: ${trace_error}")
endif()
foreach(span pipeline.fit pipeline.evaluate_week monitor.fit
        monitor.ingest_batch pool.task)
  if(NOT trace_json MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "trace.json is missing span '${span}'")
  endif()
endforeach()

# -- (b) the event log ------------------------------------------------------
file(READ ${WORK_DIR}/events.jsonl events_jsonl)
string(REGEX REPLACE "\n$" "" events_jsonl "${events_jsonl}")
string(REPLACE "\n" ";" event_lines "${events_jsonl}")
list(LENGTH event_lines line_count)
if(line_count EQUAL 0)
  message(FATAL_ERROR "events.jsonl is empty")
endif()
set(seq 0)
foreach(line IN LISTS event_lines)
  string(JSON line_kind ERROR_VARIABLE line_error TYPE "${line}")
  if(NOT line_error STREQUAL "NOTFOUND" OR NOT line_kind STREQUAL "OBJECT")
    message(FATAL_ERROR "bad JSONL line: ${line} (${line_error})")
  endif()
  math(EXPR seq "${seq} + 1")
  if(NOT line MATCHES "^{\"schema\":1,\"seq\":${seq},\"event\":")
    message(FATAL_ERROR "line ${seq} breaks the schema/seq header: ${line}")
  endif()
endforeach()
if(NOT events_jsonl MATCHES "\"event\":\"alert_raised\"")
  message(FATAL_ERROR "no alert_raised event for the injected attack")
endif()
if(NOT events_jsonl MATCHES "\"bin_bits\":\\[\\[")
  message(FATAL_ERROR "--explain did not attach bin_bits to alert_raised")
endif()
# -- investigation audit trail ----------------------------------------------
run(topology --out topo.txt --consumers 6 --seed 5)
run(investigate --topology topo.txt --baseline actual.csv --in reported.csv
    --week 13 --events-out inv_events.jsonl)
if(NOT run_stdout MATCHES "audit trail")
  message(FATAL_ERROR "investigate printed no audit trail:\n${run_stdout}")
endif()
file(READ ${WORK_DIR}/inv_events.jsonl inv_jsonl)
if(NOT inv_jsonl MATCHES "\"event\":\"investigation_step\"")
  message(FATAL_ERROR "investigate emitted no investigation_step events:\n"
                      "${inv_jsonl}")
endif()
if(NOT inv_jsonl MATCHES "\"branch\":\"localized\"")
  message(FATAL_ERROR "audit trail never reached a localisation decision:\n"
                      "${inv_jsonl}")
endif()
