# Drives the fdeta CLI through a full generate/inject/detect/investigate
# round trip; any non-zero exit fails the test.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "fdeta ${ARGN} failed (${code}): ${out}${err}")
  endif()
endfunction()

run(generate --out actual.csv --consumers 6 --weeks 28 --seed 3)
run(summary --in actual.csv)
run(inject --in actual.csv --out reported.csv --consumer 1002 --week 24
    --attack integrated-over --train-weeks 24)
run(detect --in reported.csv --baseline actual.csv --train-weeks 24)
run(topology --out topo.txt --consumers 6 --seed 5)
run(investigate --topology topo.txt --baseline actual.csv --in reported.csv
    --week 24)
run(evaluate --in actual.csv --train-weeks 24 --vectors 2)
