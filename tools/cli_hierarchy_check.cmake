# Verifies the feeder-hierarchy CLI surface end to end: a seeded topology
# plus an `inject --attack collusion` forgery must make `detect --hierarchy`
# raise feeder alerts and localise a colluding sibling group, with the
# corresponding feeder_alert_raised / collusion_suspected events in the
# --events-out log.  A plain `--topology` run (no --hierarchy) over the same
# inputs must print identical per-consumer verdicts and no feeder lines -
# the hierarchy layer only ever appends.  Finally the identical detect under
# FDETA_THREADS=1 (different auto-resolved shard count) pins the acceptance
# criterion that stdout and the event log are byte-identical across
# shard x thread layouts.
#
# Macros, not functions: in `cmake -P` script mode, set(... PARENT_SCOPE)
# from a top-level function call does not reach the script scope.
file(MAKE_DIRECTORY ${WORK_DIR})
macro(run)
  execute_process(COMMAND ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE run_stdout
                  ERROR_VARIABLE run_stderr)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
            "fdeta ${ARGN} failed (${code}): ${run_stdout}${run_stderr}")
  endif()
endmacro()

# Same, but pinned to one worker thread (and therefore a different
# auto-resolved shard count) for the cross-layout determinism check.
macro(run_single_thread)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env FDETA_THREADS=1
                          ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE run_stdout
                  ERROR_VARIABLE run_stderr)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "fdeta (FDETA_THREADS=1) ${ARGN} failed (${code}): "
                        "${run_stdout}${run_stderr}")
  endif()
endmacro()

run(generate --out actual.csv --consumers 48 --weeks 20 --seed 11)
run(topology --out feeder.topo --consumers 48 --fanout 4 --seed 11)

# Coordinated under-reporting: 4 siblings under the deepest shared
# transformer each shave 3% of week 17 - individually sub-threshold.
run(inject --in actual.csv --out reported.csv --attack collusion
    --topology feeder.topo --week 17 --group-size 4 --shave 0.03)
if(NOT run_stdout MATCHES "collusion: 4 colluders under node")
  message(FATAL_ERROR "inject --attack collusion did not report 4 "
                      "colluders:\n${run_stdout}")
endif()

# Control run: step-5 investigation only (no --hierarchy).  Per-consumer
# verdicts must be identical to the hierarchy run below.
run(detect --in reported.csv --baseline actual.csv --train-weeks 16
    --topology feeder.topo --stream 0)
set(off_stdout "${run_stdout}")
foreach(token "hierarchy:" "feeder node" "collusion under")
  if(off_stdout MATCHES "${token}")
    message(FATAL_ERROR "hierarchy-off detect printed feeder output "
                        "'${token}':\n${off_stdout}")
  endif()
endforeach()

run(detect --in reported.csv --baseline actual.csv --train-weeks 16
    --topology feeder.topo --hierarchy --stream 0
    --events-out events.jsonl --metrics-out metrics.json)
set(on_stdout "${run_stdout}")

# The feeder layer must see the joint residual the per-consumer detectors
# miss: alerts down the feeder path and at least one localised group.
if(NOT on_stdout MATCHES "hierarchy: nodes=[0-9]+ feeder_alerts=[1-9]")
  message(FATAL_ERROR "detect --hierarchy raised no feeder alerts:\n"
                      "${on_stdout}")
endif()
if(NOT on_stdout MATCHES "collusion_groups=[1-9]")
  message(FATAL_ERROR "detect --hierarchy localised no collusion group:\n"
                      "${on_stdout}")
endif()
if(NOT on_stdout MATCHES "feeder node [0-9]+ \\(depth [0-9]+, [0-9]+ consumers\\): score=")
  message(FATAL_ERROR "flagged feeder node line missing:\n${on_stdout}")
endif()
if(NOT on_stdout MATCHES "collusion under node [0-9]+ \\(")
  message(FATAL_ERROR "collusion group line missing:\n${on_stdout}")
endif()

# Differential: the hierarchy layer only appends.  Every non-feeder stdout
# line of the on-run must equal the off-run verbatim.
string(REPLACE "\n" ";" on_lines "${on_stdout}")
set(on_without_feeder "")
foreach(line IN LISTS on_lines)
  if(line MATCHES "hierarchy:|feeder node|collusion under")
    continue()
  endif()
  string(APPEND on_without_feeder "${line}\n")
endforeach()
string(REPLACE "\n" ";" off_lines "${off_stdout}")
set(off_joined "")
foreach(line IN LISTS off_lines)
  string(APPEND off_joined "${line}\n")
endforeach()
if(NOT on_without_feeder STREQUAL off_joined)
  message(FATAL_ERROR "per-consumer verdicts differ with --hierarchy:\n"
                      "--- hierarchy on (feeder lines stripped) ---\n"
                      "${on_without_feeder}\n--- hierarchy off ---\n"
                      "${off_joined}")
endif()

# The event log must carry the two feeder event kinds with their payloads.
file(READ ${WORK_DIR}/events.jsonl events_jsonl)
foreach(token "\"event\":\"feeder_alert_raised\""
        "\"event\":\"collusion_suspected\"" "\"node\":" "\"score\":"
        "\"residual_kw\":")
  if(NOT events_jsonl MATCHES "${token}")
    message(FATAL_ERROR "event log lacks '${token}':\n${events_jsonl}")
  endif()
endforeach()

# The hierarchy counters must land in the metrics exposition.
file(READ ${WORK_DIR}/metrics.json metrics_json)
foreach(key hierarchy.weeks_evaluated hierarchy.feeder_alerts
        hierarchy.collusion_groups)
  if(NOT metrics_json MATCHES "${key}")
    message(FATAL_ERROR "metrics output lacks '${key}':\n${metrics_json}")
  endif()
endforeach()

# Cross-layout determinism: the same seeded run under FDETA_THREADS=1 (one
# worker, different auto shard count) must print byte-identical stdout and
# write a byte-identical event log.
run_single_thread(detect --in reported.csv --baseline actual.csv
    --train-weeks 16 --topology feeder.topo --hierarchy --stream 0
    --events-out events_t1.jsonl)
if(NOT run_stdout STREQUAL on_stdout)
  message(FATAL_ERROR "detect --hierarchy stdout differs across "
                      "thread/shard layouts:\n--- default pool ---\n"
                      "${on_stdout}\n--- FDETA_THREADS=1 ---\n${run_stdout}")
endif()
file(READ ${WORK_DIR}/events_t1.jsonl events_t1_jsonl)
if(NOT events_jsonl STREQUAL events_t1_jsonl)
  message(FATAL_ERROR "event log differs across thread/shard layouts:\n"
                      "--- default pool ---\n${events_jsonl}\n"
                      "--- FDETA_THREADS=1 ---\n${events_t1_jsonl}")
endif()
