# Verifies the acceptance criterion for --metrics-out: the ingest/alert
# counters in the emitted JSON must exactly match the run's printed report.
# The printed tallies are computed by the CLI from the verdicts it prints;
# the JSON counters come from FdetaPipeline's own instrumentation - two
# independent accountings of the same run.
#
# Macros, not functions: in `cmake -P` script mode, set(... PARENT_SCOPE)
# from a top-level function call does not reach the script scope.
file(MAKE_DIRECTORY ${WORK_DIR})
macro(run)
  execute_process(COMMAND ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE run_stdout
                  ERROR_VARIABLE run_stderr)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
            "fdeta ${ARGN} failed (${code}): ${run_stdout}${run_stderr}")
  endif()
endmacro()

# Extracts the first integer capture of `pattern` from the variable named by
# `text_var` into `var`.  Takes the variable NAME so the macro never textually
# substitutes multi-line command output into its own body.  Patterns must not
# contain quote characters (macro substitution would break the quoting); use
# `.` to match the quotes around JSON keys.
macro(extract var text_var pattern)
  string(REGEX MATCH "${pattern}" _m "${${text_var}}")
  set(_cap "${CMAKE_MATCH_1}")  # if(MATCHES) below clobbers CMAKE_MATCH_1
  if(NOT _cap MATCHES "^[0-9]+$")
    message(FATAL_ERROR "pattern '${pattern}' not found in:\n${${text_var}}")
  endif()
  set(${var} "${_cap}")
endmacro()

run(generate --out actual.csv --consumers 6 --weeks 16 --seed 3)
run(inject --in actual.csv --out reported.csv --consumer 1002 --week 13
    --attack integrated-over --train-weeks 12)
run(detect --in reported.csv --baseline actual.csv --train-weeks 12
    --metrics-out metrics.json)
set(detect_stdout "${run_stdout}")
set(detect_stderr "${run_stderr}")

extract(printed_weeks detect_stdout "weeks_scored=([0-9]+)")
extract(printed_consumer_weeks detect_stdout "consumer_weeks=([0-9]+)")
extract(printed_flagged detect_stdout "flagged_total=([0-9]+)")

file(READ ${WORK_DIR}/metrics.json metrics_json)
# The metadata header: schema version, library version, monotonic uptime.
if(NOT metrics_json MATCHES ".meta.: {.schema.: 2, .version.: .0\\.4\\.0., .uptime_seconds.: [0-9]")
  message(FATAL_ERROR "metrics.json is missing the meta header:\n"
                      "${metrics_json}")
endif()
extract(m_weeks metrics_json "pipeline.weeks_scored.: ([0-9]+)")
extract(m_verdicts metrics_json "pipeline.verdicts.: ([0-9]+)")
extract(m_normal metrics_json "pipeline.verdict_normal.: ([0-9]+)")
math(EXPR m_flagged "${m_verdicts} - ${m_normal}")

if(NOT printed_weeks EQUAL m_weeks)
  message(FATAL_ERROR "weeks_scored mismatch: printed ${printed_weeks}, "
                      "metrics ${m_weeks}")
endif()
if(NOT printed_consumer_weeks EQUAL m_verdicts)
  message(FATAL_ERROR "consumer_weeks mismatch: printed "
                      "${printed_consumer_weeks}, metrics ${m_verdicts}")
endif()
if(NOT printed_flagged EQUAL m_flagged)
  message(FATAL_ERROR "flagged_total mismatch: printed ${printed_flagged}, "
                      "metrics ${m_flagged}")
endif()
if(printed_flagged EQUAL 0)
  message(FATAL_ERROR "expected the injected integrated-over attack to be "
                      "flagged at least once:\n${detect_stdout}")
endif()
# The stderr summary table must accompany the JSON.
if(NOT detect_stderr MATCHES "pipeline.weeks_scored")
  message(FATAL_ERROR "metrics summary table missing from stderr:\n"
                      "${detect_stderr}")
endif()
