# Verifies the telemetry time-series surface end to end: a seeded detect
# with --stats-interval/--series-out must print a live scoreboard, write one
# JSONL frame per interval (plus the final partial window), and emit
# Prometheus text exposition under --metrics-format prom; `fdeta stats` must
# re-render the series file as the same table.  A second detect under
# FDETA_THREADS=1 (which also changes the auto-resolved shard count) pins
# the acceptance criterion that the deterministic half of every frame is
# byte-identical across shard x thread layouts.
#
# Macros, not functions: in `cmake -P` script mode, set(... PARENT_SCOPE)
# from a top-level function call does not reach the script scope.
file(MAKE_DIRECTORY ${WORK_DIR})
macro(run)
  execute_process(COMMAND ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE run_stdout
                  ERROR_VARIABLE run_stderr)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
            "fdeta ${ARGN} failed (${code}): ${run_stdout}${run_stderr}")
  endif()
endmacro()

# Same, but pinned to one worker thread (and therefore a different
# auto-resolved shard count) for the cross-layout determinism check.
macro(run_single_thread)
  execute_process(COMMAND ${CMAKE_COMMAND} -E env FDETA_THREADS=1
                          ${FDETA_CLI} ${ARGN}
                  WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE run_stdout
                  ERROR_VARIABLE run_stderr)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "fdeta (FDETA_THREADS=1) ${ARGN} failed (${code}): "
                        "${run_stdout}${run_stderr}")
  endif()
endmacro()

# Strips the layout-scoped "env" suffix from every frame line of `file`,
# leaving only the deterministic half, into the variable named by `var`.
# The trailing frame brace goes with it, but identically on every file, so
# equality of the stripped text still proves equality of the det series.
macro(det_series var file)
  file(READ ${WORK_DIR}/${file} _raw)
  string(REGEX REPLACE ",\"env\":[^\n]*" "" ${var} "${_raw}")
endmacro()

run(generate --out actual.csv --consumers 6 --weeks 16 --seed 3)
run(inject --in actual.csv --out reported.csv --consumer 1002 --week 13
    --attack integrated-over --train-weeks 12)
run(detect --in reported.csv --baseline actual.csv --train-weeks 12
    --stats-interval 168 --series-out series.jsonl
    --metrics-out metrics.prom --metrics-format prom)
set(detect_stdout "${run_stdout}")

# The live scoreboard: header plus one line per frame on stdout.
if(NOT detect_stdout MATCHES "frame[ ]+slot")
  message(FATAL_ERROR "scoreboard header missing from detect stdout:\n"
                      "${detect_stdout}")
endif()
if(NOT detect_stdout MATCHES "worst-shard")
  message(FATAL_ERROR "scoreboard header lacks worst-shard column:\n"
                      "${detect_stdout}")
endif()

# The series file: 16 weeks, 12 of training, 336 slots/week, one frame per
# 168 slots -> exactly 8 frames covering the whole scored span.
file(READ ${WORK_DIR}/series.jsonl series_jsonl)
string(REGEX MATCHALL "\"series_schema\":1" frame_marks "${series_jsonl}")
list(LENGTH frame_marks frame_count)
if(NOT frame_count EQUAL 8)
  message(FATAL_ERROR "expected 8 series frames, found ${frame_count}:\n"
                      "${series_jsonl}")
endif()
# Frame 0 is anchored at the first scrape boundary past the training span
# (12 * 336 + 168 = 4200), each frame spanning one full interval.
if(NOT series_jsonl MATCHES "\"frame\":0,\"slot\":4200,\"slots_delta\":168")
  message(FATAL_ERROR "frame 0 anchor/delta wrong:\n${series_jsonl}")
endif()
foreach(key counters gauges rates readings_per_slot alerts_per_hour
        coverage_gated_fraction drift_milli_bits burst_milli)
  if(NOT series_jsonl MATCHES "\"${key}\":")
    message(FATAL_ERROR "series frames lack key '${key}':\n${series_jsonl}")
  endif()
endforeach()
# The wall-clock half rides in a separate env block per frame.
if(NOT series_jsonl MATCHES "\"env\":{\"uptime_seconds\":")
  message(FATAL_ERROR "series frames lack the env block:\n${series_jsonl}")
endif()
# The slot-driven counters must actually move: 6 consumers x 168 slots.
if(NOT series_jsonl MATCHES "\"monitor.readings_ingested\":1008")
  message(FATAL_ERROR "per-frame ingest delta is not 6 consumers x 168 "
                      "slots:\n${series_jsonl}")
endif()

# stats must re-render the same file as the same table.
run(stats --in series.jsonl)
if(NOT run_stdout MATCHES "frames=8")
  message(FATAL_ERROR "fdeta stats did not render 8 frames:\n${run_stdout}")
endif()
if(NOT run_stdout MATCHES "worst-shard")
  message(FATAL_ERROR "fdeta stats lacks the scoreboard header:\n"
                      "${run_stdout}")
endif()

# The Prometheus exposition: build info first, then HELP/TYPE'd families
# with cumulative histogram buckets.
file(READ ${WORK_DIR}/metrics.prom prom_text)
if(NOT prom_text MATCHES "^# HELP fdeta_build_info")
  message(FATAL_ERROR "prom output does not lead with fdeta_build_info:\n"
                      "${prom_text}")
endif()
if(NOT prom_text MATCHES "fdeta_build_info{version=\"0\\.4\\.0\",schema=\"2\"} 1")
  message(FATAL_ERROR "fdeta_build_info labels wrong:\n${prom_text}")
endif()
foreach(token "# TYPE fdeta_" "_bucket{le=\"" "le=\"\\+Inf\"" "_sum " "_count ")
  if(NOT prom_text MATCHES "${token}")
    message(FATAL_ERROR "prom output lacks '${token}':\n${prom_text}")
  endif()
endforeach()
if(NOT prom_text MATCHES "monitor_shard00_pending_highwater")
  message(FATAL_ERROR "per-shard health gauges missing from prom output:\n"
                      "${prom_text}")
endif()

# Cross-layout determinism: the same seeded run under FDETA_THREADS=1 (one
# worker, different auto shard count) must produce a byte-identical det
# series once the env block is stripped from both files.
run_single_thread(detect --in reported.csv --baseline actual.csv
    --train-weeks 12 --stats-interval 168 --series-out series_t1.jsonl)
det_series(det_default series.jsonl)
det_series(det_single series_t1.jsonl)
if(NOT det_default STREQUAL det_single)
  message(FATAL_ERROR "det series differs across thread/shard layouts:\n"
                      "--- default pool ---\n${det_default}\n"
                      "--- FDETA_THREADS=1 ---\n${det_single}")
endif()
