#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file written by --metrics-format prom.

Checks the structural rules a scraper relies on, beyond what the in-repo
golden test pins:

  * every sample name matches the metric charset [a-zA-Z_:][a-zA-Z0-9_:]*
  * every metric family is preceded by matching # HELP and # TYPE lines
  * histogram bucket counts are cumulative and monotonically non-decreasing
  * the final bucket is le="+Inf" and equals the family's _count sample
  * every histogram family carries exactly one _sum and one _count
  * no duplicate samples for the same (name, labels)

Exits non-zero on the first file with violations, printing each one with
its line number.  Stdlib only; runs in CI after the telemetry detect pass.

Usage:
    check_prometheus.py METRICS.prom [MORE.prom ...]
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# A sample line: name, optional {labels}, a value, optional timestamp.
SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)


def base_family(name):
    """Family name owning a sample: strips histogram/summary suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def check_file(path):
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().split("\n")

    errors = []
    helped = {}  # family -> line no of # HELP
    typed = {}  # family -> declared type
    seen_samples = {}  # (name, labels) -> line no
    # family -> list of (lineno, le_value, count) in file order
    buckets = {}
    sums = {}  # family -> line no count
    counts = {}  # family -> (lineno, value)

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"{lineno}: HELP line without text: {line}")
            elif len(parts) >= 3:
                helped[parts[2]] = lineno
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"{lineno}: malformed TYPE line: {line}")
                continue
            if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                errors.append(f"{lineno}: unknown metric type: {line}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # plain comment

        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"{lineno}: unparseable sample line: {line}")
            continue
        name = match.group("name")
        labels = match.group("labels") or ""
        if not NAME_RE.match(name):
            errors.append(f"{lineno}: invalid metric name '{name}'")
            continue
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            errors.append(
                f"{lineno}: invalid sample value '{match.group('value')}'"
            )
            continue

        key = (name, labels)
        if key in seen_samples:
            errors.append(
                f"{lineno}: duplicate sample {name}{{{labels}}} "
                f"(first at line {seen_samples[key]})"
            )
        seen_samples[key] = lineno

        family = base_family(name)
        if family not in helped:
            errors.append(f"{lineno}: sample '{name}' has no # HELP {family}")
        if family not in typed:
            errors.append(f"{lineno}: sample '{name}' has no # TYPE {family}")

        if name.endswith("_bucket"):
            le_match = re.search(r'le="([^"]*)"', "{" + labels + "}")
            if not le_match:
                errors.append(f"{lineno}: _bucket sample without le label")
                continue
            try:
                le = parse_value(le_match.group(1))
            except ValueError:
                errors.append(
                    f"{lineno}: invalid le value '{le_match.group(1)}'"
                )
                continue
            buckets.setdefault(family, []).append((lineno, le, value))
        elif name.endswith("_sum") and typed.get(family) == "histogram":
            sums[family] = sums.get(family, 0) + 1
        elif name.endswith("_count") and typed.get(family) == "histogram":
            if family in counts:
                errors.append(f"{lineno}: duplicate _count for {family}")
            counts[family] = (lineno, value)

    for family, rows in sorted(buckets.items()):
        prev_le = float("-inf")
        prev_count = -1.0
        for lineno, le, count in rows:
            if le <= prev_le:
                errors.append(
                    f"{lineno}: {family} bucket le={le} not increasing"
                )
            if count < prev_count:
                errors.append(
                    f"{lineno}: {family} buckets not cumulative "
                    f"({count} after {prev_count})"
                )
            prev_le, prev_count = le, count
        last_lineno, last_le, last_count = rows[-1]
        if last_le != float("inf"):
            errors.append(
                f"{last_lineno}: {family} buckets do not end with le=\"+Inf\""
            )
        if family not in counts:
            errors.append(f"{family}: histogram has buckets but no _count")
        elif counts[family][1] != last_count:
            errors.append(
                f"{counts[family][0]}: {family}_count {counts[family][1]} "
                f"!= +Inf bucket {last_count}"
            )
        if sums.get(family, 0) != 1:
            errors.append(
                f"{family}: expected exactly one _sum, found "
                f"{sums.get(family, 0)}"
            )

    sample_count = len(seen_samples)
    if sample_count == 0:
        errors.append("no samples found")
    return errors, sample_count


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__)
    failed = False
    for path in argv[1:]:
        errors, samples = check_file(path)
        if errors:
            failed = True
            print(f"{path}: {len(errors)} violation(s)")
            for err in errors:
                print(f"  {path}:{err}")
        else:
            print(f"{path}: OK ({samples} samples)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
