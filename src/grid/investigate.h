// Investigating balance-check failures (Section V-C).
//
// Case 1: every internal node is metered.  The deepest failing meter bounds
// the geographic neighbourhood to investigate; its consumer leaves are then
// inspected manually.
//
// Case 2: some internal nodes lack meters.  A serviceman with a portable
// meter performs a BFS-like traversal from the root, descending only into
// subtrees whose check fails; other subtrees are pruned.  The number of
// portable-meter checks is the investigation cost (O(depth * fanout) for a
// balanced tree vs O(N) worst case).
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "grid/balance.h"
#include "grid/topology.h"

namespace fdeta::grid {

struct InvestigationResult {
  /// Dense consumer indices that must be manually inspected; the attacker is
  /// guaranteed to be among them if the theft deviates reported from actual.
  std::vector<std::size_t> suspects;
  /// Internal node localising the theft (deepest failing check).
  NodeId localized_node = kNoNode;
  /// Number of meter readings/portable checks performed.
  std::size_t checks_performed = 0;
};

/// Case 1: localise theft from a full set of W events (all internal nodes
/// metered and trusted).  Picks the deepest failing node that has no failing
/// internal descendant and returns its consumer leaves.
InvestigationResult investigate_case1(const Topology& topology,
                                      const BalanceOutcome& outcome);

/// Case 2: portable-meter BFS.  The serviceman measures actual demand at
/// internal nodes (this is physics: reads `actual` flows) and compares
/// against the sum of reported smart-meter readings + calculated losses in
/// that subtree, descending only into failing subtrees.
InvestigationResult investigate_case2(const Topology& topology,
                                      std::span<const Kw> actual,
                                      std::span<const Kw> reported,
                                      double tolerance_kw = 1e-6);

/// Exhaustive baseline: inspect every consumer whose reported deviates from
/// actual (O(N) cost).  Used by benchmarks to contrast with Case 2 pruning.
InvestigationResult investigate_exhaustive(const Topology& topology,
                                           std::span<const Kw> actual,
                                           std::span<const Kw> reported,
                                           double tolerance_kw = 1e-6);

}  // namespace fdeta::grid
