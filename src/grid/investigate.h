// Investigating balance-check failures (Section V-C).
//
// Case 1: every internal node is metered.  The deepest failing meter bounds
// the geographic neighbourhood to investigate; its consumer leaves are then
// inspected manually.
//
// Case 2: some internal nodes lack meters.  A serviceman with a portable
// meter performs a BFS-like traversal from the root, descending only into
// subtrees whose check fails; other subtrees are pruned.  The number of
// portable-meter checks is the investigation cost (O(depth * fanout) for a
// balanced tree vs O(N) worst case).
//
// Both cases record the decision path they took as InvestigationSteps - the
// audit trail a utility needs to justify a truck roll - and optionally emit
// each step as an `investigation_step` event (obs/event_log.h).
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "grid/balance.h"
#include "grid/hierarchy/residuals.h"
#include "grid/topology.h"

namespace fdeta::obs {
class EventLog;
}  // namespace fdeta::obs

namespace fdeta::grid {

/// Why the investigation visited (or skipped) a node.
enum class InvestigationBranch : std::uint8_t {
  kBalanced,       ///< check passed; nothing to investigate below
  kDescend,        ///< check failed; investigation moves into this subtree
  kPruned,         ///< sibling subtree check passed; subtree skipped
  kLeafSuspects,   ///< no failing internal child; consumer leaves suspected
  kDeeperFailure,  ///< failing node skipped: a descendant also fails
  kMeterFault,     ///< W-event inconsistency flags this node's meter itself
  kLocalized,      ///< final localisation decision
};

const char* to_string(InvestigationBranch branch);

/// One decision in an investigation's audit trail, in the order taken.
struct InvestigationStep {
  NodeId node = kNoNode;
  int depth = 0;             ///< node depth in the topology (root = 0)
  double imbalance_kw = 0.0; ///< |actual - reported| at the node; 0 for
                             ///< Case 1, where only W flags are available
  InvestigationBranch branch = InvestigationBranch::kBalanced;
  std::size_t suspects = 0;  ///< consumers added by this step
};

struct InvestigationResult {
  /// Dense consumer indices that must be manually inspected; the attacker is
  /// guaranteed to be among them if the theft deviates reported from actual.
  std::vector<std::size_t> suspects;
  /// Internal node localising the theft (deepest failing check).
  NodeId localized_node = kNoNode;
  /// Number of meter readings/portable checks performed.
  std::size_t checks_performed = 0;
  /// The decision path, in the order the investigation took it.
  std::vector<InvestigationStep> steps;
};

/// Case 1: localise theft from a full set of W events (all internal nodes
/// metered and trusted).  Picks the deepest failing node that has no failing
/// internal descendant and returns its consumer leaves.  Section V-B meter
/// consistency alarms are appended as kMeterFault steps.  When `events` is
/// non-null, each step is also emitted as an `investigation_step` event.
InvestigationResult investigate_case1(const Topology& topology,
                                      const BalanceOutcome& outcome,
                                      obs::EventLog* events = nullptr);

/// Case 2: portable-meter BFS.  The serviceman measures actual demand at
/// internal nodes (this is physics: reads `actual` flows) and compares
/// against the sum of reported smart-meter readings + calculated losses in
/// that subtree, descending only into failing subtrees.  When `events` is
/// non-null, each step is also emitted as an `investigation_step` event.
InvestigationResult investigate_case2(const Topology& topology,
                                      std::span<const Kw> actual,
                                      std::span<const Kw> reported,
                                      double tolerance_kw = 1e-6,
                                      obs::EventLog* events = nullptr);

/// Case 2 over a pre-computed residual tree.  Callers that already hold the
/// per-node residuals (the hierarchy monitor, repeated investigations over
/// one snapshot) skip the two node_demands walks the span overload performs.
InvestigationResult investigate_case2(const Topology& topology,
                                      const NodeResiduals& residuals,
                                      double tolerance_kw = 1e-6,
                                      obs::EventLog* events = nullptr);

/// Exhaustive baseline: inspect every consumer whose reported deviates from
/// actual (O(N) cost).  Used by benchmarks to contrast with Case 2 pruning.
InvestigationResult investigate_exhaustive(const Topology& topology,
                                           std::span<const Kw> actual,
                                           std::span<const Kw> reported,
                                           double tolerance_kw = 1e-6);

}  // namespace fdeta::grid
