// The balance check (Section V-A).
//
// At an internal node N with consumer descendants C and loss descendants L,
// utilities check eq. (5):
//
//   D'_N(t) == sum_{c in C} D'_c(t) + sum_{l in L} D_l(t)
//
// where D'_N is the (trusted) balance-meter reading, D'_c are the reported
// consumer readings, and losses are *calculated* from component specs, not
// reported.  A compromised balance meter instead reports whatever makes its
// own check pass, hiding theft in its subtree.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "grid/topology.h"

namespace fdeta::grid {

/// W-event status per node (Section V-B): the result of a balance check.
enum class CheckStatus : std::uint8_t {
  kNotChecked,  ///< node has no balance meter (or is a leaf)
  kPassed,      ///< W false
  kFailed,      ///< W true
};

struct BalanceOutcome {
  std::vector<CheckStatus> status;  ///< per node id

  bool failed(NodeId id) const { return status[id] == CheckStatus::kFailed; }
  bool checked(NodeId id) const { return status[id] != CheckStatus::kNotChecked; }

  /// Node ids with W true.
  std::vector<NodeId> failing_nodes() const;
};

/// Runs the balance check at every metered internal node for a single time
/// period.
///
/// `actual` / `reported` are per-consumer demand vectors (dense index).
/// `compromised_meters` are internal nodes whose balance meter lies: it
/// reports the value that satisfies eq. (5), so its check passes regardless
/// of theft.  Losses are derived from the *actual* flows (the physics), while
/// the utility's loss estimate in eq. (5) is derived from reported flows -
/// the tolerance absorbs that gap plus metering error (the +/-0.5% accuracy
/// of [11]).
BalanceOutcome run_balance_checks(
    const Topology& topology, std::span<const Kw> actual,
    std::span<const Kw> reported,
    const std::unordered_set<NodeId>& compromised_meters = {},
    double tolerance_kw = 1e-6);

/// The simplified check of eq. (6) at one node: sums of reported vs actual
/// consumer demand under `node` (assumes the node's meter is trusted).
bool simplified_balance_check(const Topology& topology, NodeId node,
                              std::span<const Kw> actual,
                              std::span<const Kw> reported,
                              double tolerance_kw = 1e-6);

/// The balance meters Mallory must compromise for her theft to stay hidden
/// from every metered ancestor (Section VI-A): all metered internal nodes
/// on the path from her leaf to the root, excluding any in `trusted` (which
/// she cannot touch - e.g. the root meter co-located with the control
/// center).  "The tree depths ... range from 5 to 135"; for a balanced tree
/// this is O(log N), for a linear feeder O(N).
std::vector<NodeId> meters_to_compromise(
    const Topology& topology, std::size_t consumer_index,
    const std::unordered_set<NodeId>& trusted = {});

/// Section V-B consistency rules over a set of W events.  Returns nodes for
/// which an alarm should be raised for meter investigation:
/// (a) W true at a node but false at its metered parent, or
/// (b) W true at a parent whose metered internal children all have W false.
std::vector<NodeId> inconsistent_meter_alarms(const Topology& topology,
                                              const BalanceOutcome& outcome);

}  // namespace fdeta::grid
