#include "grid/losses.h"

#include "common/error.h"

namespace fdeta::grid {

NtlAnalysis analyze_ntl(std::span<const Kw> actual,
                        std::span<const Kw> reported,
                        const LineImpedance& feeder_impedance) {
  require(actual.size() == reported.size(), "analyze_ntl: size mismatch");

  NtlAnalysis result;
  Kw actual_load = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    actual_load += actual[i];
    result.reported_load += reported[i];
  }
  // Physics: the trusted feeder meter reads the true load plus the true
  // I^2 R loss of the true flow.
  result.feeder_input = actual_load + feeder_impedance.loss_at(actual_load);
  // The utility's estimate of the technical loss can only use the flows it
  // believes in: the reported load.
  result.technical_loss = feeder_impedance.loss_at(result.reported_load);
  result.non_technical_loss =
      result.feeder_input - result.reported_load - result.technical_loss;
  return result;
}

}  // namespace fdeta::grid
