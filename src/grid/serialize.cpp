#include "grid/serialize.h"

#include <istream>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"

namespace fdeta::grid {

void save_topology(const Topology& topology, std::ostream& out) {
  for (std::size_t id = 0; id < topology.node_count(); ++id) {
    const Node& n = topology.node(static_cast<NodeId>(id));
    switch (n.kind) {
      case NodeKind::kInternal:
        out << "internal " << id << ' '
            << (n.parent == kNoNode ? std::string("-")
                                    : std::to_string(n.parent))
            << ' ' << (n.has_balance_meter ? 1 : 0) << '\n';
        break;
      case NodeKind::kConsumer:
        out << "consumer " << id << ' ' << n.parent << ' ' << n.consumer_id
            << '\n';
        break;
      case NodeKind::kLoss:
        out << "loss " << id << ' ' << n.parent << ' ' << n.loss_fraction
            << '\n';
        break;
    }
  }
}

Topology load_topology(std::istream& in) {
  Topology topology;
  bool root_seen = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_csv_line(line, ' ');
    if (fields.size() != 4) {
      throw DataError("load_topology: expected 4 fields at line " +
                      std::to_string(line_no));
    }
    const std::string& kind = fields[0];
    const auto id = parse_long(fields[1], "node id");

    if (kind == "internal") {
      if (fields[2] == "-") {
        // The root: Topology() already created node 0.
        if (root_seen || id != 0) {
          throw DataError("load_topology: root must be node 0, once");
        }
        root_seen = true;
        continue;
      }
      const auto parent = static_cast<NodeId>(parse_long(fields[2], "parent"));
      const bool metered = parse_long(fields[3], "metered") != 0;
      const NodeId got = topology.add_internal(parent, metered);
      if (got != id) {
        throw DataError("load_topology: non-sequential node id at line " +
                        std::to_string(line_no));
      }
    } else if (kind == "consumer") {
      const auto parent = static_cast<NodeId>(parse_long(fields[2], "parent"));
      const auto consumer_id =
          static_cast<meter::ConsumerId>(parse_long(fields[3], "consumer id"));
      const NodeId got = topology.add_consumer(parent, consumer_id);
      if (got != id) {
        throw DataError("load_topology: non-sequential node id at line " +
                        std::to_string(line_no));
      }
    } else if (kind == "loss") {
      const auto parent = static_cast<NodeId>(parse_long(fields[2], "parent"));
      const double fraction = parse_double(fields[3], "loss fraction");
      const NodeId got = topology.add_loss(parent, fraction);
      if (got != id) {
        throw DataError("load_topology: non-sequential node id at line " +
                        std::to_string(line_no));
      }
    } else {
      throw DataError("load_topology: unknown node kind '" + kind +
                      "' at line " + std::to_string(line_no));
    }
  }
  if (!root_seen) throw DataError("load_topology: missing root line");
  return topology;
}

}  // namespace fdeta::grid
