// Radial electric-distribution topology as an unbalanced n-ary tree
// (Section V, Fig. 2).  Internal nodes are buses/transformers that may carry
// balance meters; leaves are either consumers or loss nodes modelling line
// impedance and transformer losses.  Active power is additive, so the demand
// at an internal node is the sum of its children's demands (eq. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "meter/consumer.h"

namespace fdeta::grid {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind : std::uint8_t { kInternal, kConsumer, kLoss };

struct Node {
  NodeKind kind = NodeKind::kInternal;
  NodeId parent = kNoNode;
  std::vector<NodeId> children;  // internal nodes only

  // Consumer leaves:
  meter::ConsumerId consumer_id = 0;
  std::size_t consumer_index = 0;  ///< dense index into demand vectors

  // Loss leaves: demand = loss_fraction * (sum of sibling demands).
  double loss_fraction = 0.0;

  // Internal nodes:
  bool has_balance_meter = false;
};

/// Immutable-after-build tree.  Node 0 is always the root (the distribution
/// substation that connects to the transmission grid).
class Topology {
 public:
  /// Starts a topology containing only the root node (with a balance meter:
  /// the paper assumes the root meter is trusted and present,
  /// Section VII-A).
  Topology();

  /// Adds an internal node under `parent`; returns its id.
  NodeId add_internal(NodeId parent, bool has_balance_meter = true);

  /// Adds a consumer leaf under `parent`; consumer_index is assigned densely
  /// in insertion order.
  NodeId add_consumer(NodeId parent, meter::ConsumerId id);

  /// Adds a loss leaf under `parent`.
  NodeId add_loss(NodeId parent, double loss_fraction);

  NodeId root() const { return 0; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t consumer_count() const { return consumer_leaves_.size(); }
  const Node& node(NodeId id) const;

  /// Node id of the consumer leaf with dense index `consumer_index`.
  NodeId consumer_leaf(std::size_t consumer_index) const;

  /// Dense consumer indices of all consumer leaves in the subtree of `id`.
  std::vector<std::size_t> consumers_under(NodeId id) const;

  /// Depth of `id` (root = 0).
  int depth(NodeId id) const;

  /// Path from `id` up to (and including) the root.
  std::vector<NodeId> path_to_root(NodeId id) const;

  /// Actual demand at every node given per-consumer actual demands (indexed
  /// by consumer_index).  Loss-leaf demands are computed as
  /// loss_fraction * (sum of sibling subtree demands); internal demands obey
  /// eq. (4).  Returns one value per node.
  std::vector<Kw> node_demands(std::span<const Kw> consumer_demand) const;

  /// -- Builders ---------------------------------------------------------

  /// A single feeder: root -> {all consumers, one loss leaf}.  This is the
  /// paper's evaluation topology (Section VIII-A: only the root balance
  /// meter is assumed deployed/trusted).
  static Topology single_feeder(std::size_t consumers,
                                double loss_fraction = 0.05);

  /// A random radial tree: internal nodes fan out up to `max_fanout`,
  /// consumers attach at the deepest level, every internal node gets a loss
  /// leaf and a balance meter.
  static Topology random_radial(std::size_t consumers, std::size_t max_fanout,
                                Rng& rng, double loss_fraction = 0.02);

 private:
  void check_internal(NodeId parent) const;
  double subtree_demand(NodeId id, std::span<const Kw> consumer_demand,
                        std::vector<Kw>& out) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> consumer_leaves_;  // by dense consumer index
};

}  // namespace fdeta::grid
