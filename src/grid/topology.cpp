#include "grid/topology.h"

#include <algorithm>

#include "common/error.h"

namespace fdeta::grid {

Topology::Topology() {
  Node root;
  root.kind = NodeKind::kInternal;
  root.has_balance_meter = true;
  nodes_.push_back(root);
}

void Topology::check_internal(NodeId parent) const {
  require(parent >= 0 && static_cast<std::size_t>(parent) < nodes_.size(),
          "Topology: parent out of range");
  require(nodes_[parent].kind == NodeKind::kInternal,
          "Topology: parent must be an internal node");
}

NodeId Topology::add_internal(NodeId parent, bool has_balance_meter) {
  check_internal(parent);
  Node n;
  n.kind = NodeKind::kInternal;
  n.parent = parent;
  n.has_balance_meter = has_balance_meter;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  nodes_[parent].children.push_back(id);
  return id;
}

NodeId Topology::add_consumer(NodeId parent, meter::ConsumerId consumer_id) {
  check_internal(parent);
  Node n;
  n.kind = NodeKind::kConsumer;
  n.parent = parent;
  n.consumer_id = consumer_id;
  n.consumer_index = consumer_leaves_.size();
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  nodes_[parent].children.push_back(id);
  consumer_leaves_.push_back(id);
  return id;
}

NodeId Topology::add_loss(NodeId parent, double loss_fraction) {
  check_internal(parent);
  require(loss_fraction >= 0.0, "Topology: negative loss fraction");
  Node n;
  n.kind = NodeKind::kLoss;
  n.parent = parent;
  n.loss_fraction = loss_fraction;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  nodes_[parent].children.push_back(id);
  return id;
}

const Node& Topology::node(NodeId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < nodes_.size(),
          "Topology::node: id out of range");
  return nodes_[id];
}

NodeId Topology::consumer_leaf(std::size_t consumer_index) const {
  require(consumer_index < consumer_leaves_.size(),
          "Topology::consumer_leaf: index out of range");
  return consumer_leaves_[consumer_index];
}

std::vector<std::size_t> Topology::consumers_under(NodeId id) const {
  std::vector<std::size_t> out;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    const Node& n = node(cur);
    if (n.kind == NodeKind::kConsumer) {
      out.push_back(n.consumer_index);
    } else if (n.kind == NodeKind::kInternal) {
      for (NodeId c : n.children) stack.push_back(c);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int Topology::depth(NodeId id) const {
  int d = 0;
  for (NodeId cur = id; node(cur).parent != kNoNode; cur = node(cur).parent) {
    ++d;
  }
  return d;
}

std::vector<NodeId> Topology::path_to_root(NodeId id) const {
  std::vector<NodeId> path;
  for (NodeId cur = id;; cur = node(cur).parent) {
    path.push_back(cur);
    if (node(cur).parent == kNoNode) break;
  }
  return path;
}

double Topology::subtree_demand(NodeId id, std::span<const Kw> consumer_demand,
                                std::vector<Kw>& out) const {
  const Node& n = nodes_[id];
  switch (n.kind) {
    case NodeKind::kConsumer:
      out[id] = consumer_demand[n.consumer_index];
      return out[id];
    case NodeKind::kLoss:
      // Handled by the parent (depends on sibling demands).
      return 0.0;
    case NodeKind::kInternal: {
      double non_loss = 0.0;
      for (NodeId c : n.children) {
        if (nodes_[c].kind != NodeKind::kLoss) {
          non_loss += subtree_demand(c, consumer_demand, out);
        }
      }
      double total = non_loss;
      for (NodeId c : n.children) {
        if (nodes_[c].kind == NodeKind::kLoss) {
          out[c] = nodes_[c].loss_fraction * non_loss;
          total += out[c];
        }
      }
      out[id] = total;
      return total;
    }
  }
  return 0.0;
}

std::vector<Kw> Topology::node_demands(
    std::span<const Kw> consumer_demand) const {
  require(consumer_demand.size() == consumer_leaves_.size(),
          "Topology::node_demands: demand vector size mismatch");
  std::vector<Kw> out(nodes_.size(), 0.0);
  subtree_demand(root(), consumer_demand, out);
  return out;
}

Topology Topology::single_feeder(std::size_t consumers, double loss_fraction) {
  require(consumers >= 1, "single_feeder: need at least one consumer");
  Topology t;
  for (std::size_t i = 0; i < consumers; ++i) {
    t.add_consumer(t.root(), static_cast<meter::ConsumerId>(1000 + i));
  }
  t.add_loss(t.root(), loss_fraction);
  return t;
}

Topology Topology::random_radial(std::size_t consumers, std::size_t max_fanout,
                                 Rng& rng, double loss_fraction) {
  require(consumers >= 1, "random_radial: need at least one consumer");
  require(max_fanout >= 2, "random_radial: max_fanout must be >= 2");
  Topology t;
  t.add_loss(t.root(), loss_fraction);

  // Grow internal nodes breadth-first until there are enough attachment
  // points, then attach consumers round-robin.
  std::vector<NodeId> frontier{t.root()};
  std::size_t attachment_points = 1;
  while (attachment_points * (max_fanout - 1) < consumers) {
    std::vector<NodeId> next;
    for (NodeId n : frontier) {
      const std::size_t kids = 2 + rng.below(max_fanout - 1);
      for (std::size_t k = 0; k < kids; ++k) {
        const NodeId child = t.add_internal(n, /*has_balance_meter=*/true);
        t.add_loss(child, loss_fraction);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
    attachment_points = frontier.size();
  }

  for (std::size_t i = 0; i < consumers; ++i) {
    const NodeId parent = frontier[i % frontier.size()];
    t.add_consumer(parent, static_cast<meter::ConsumerId>(1000 + i));
  }
  return t;
}

}  // namespace fdeta::grid
