// Physical (technical) losses and non-technical-loss (NTL) analysis.
//
// Utilities calculate technical losses "based on known values of
// distribution system component specifications, such as line impedances"
// (Section V-A, ref [24]).  The classic industry theft detector built on
// this (refs [9], [10], [24]) compares the feeder's metered input against
// the sum of reported consumer readings plus the calculated technical loss;
// the residual is the non-technical loss, attributed to theft.
//
// The paper's criticism - "their methods fail under the realistic scenario
// that smart meters are hacked" - is demonstrated by bench/ext_ntl_baseline:
// the NTL detector nails line-tap theft (Attack Class 1A) and is blind to
// B-class report manipulation.
#pragma once

#include <span>

#include "common/units.h"
#include "grid/topology.h"

namespace fdeta::grid {

/// A series impedance on the feeder: loss = R * (P / V)^2 for power P
/// flowing at line-to-line voltage V (single-phase approximation; P in kW,
/// V in kV, R in ohms gives loss in kW when scaled by 1e-3).
struct LineImpedance {
  double resistance_ohm = 0.5;
  double voltage_kv = 11.0;  ///< medium-voltage distribution feeder

  Kw loss_at(Kw power_kw) const {
    // I [A] = P [W] / V [V] = power_kw / voltage_kv; loss [W] = I^2 R.
    const double current_a = power_kw / voltage_kv;
    return resistance_ohm * current_a * current_a / 1000.0;
  }
};

/// Result of the feeder-level NTL analysis for one time period.
struct NtlAnalysis {
  Kw feeder_input = 0.0;      ///< trusted metered power entering the feeder
  Kw reported_load = 0.0;     ///< sum of reported consumer readings
  Kw technical_loss = 0.0;    ///< calculated from impedance + reported flows
  Kw non_technical_loss = 0.0;  ///< the residual: suspected theft

  /// Whether the residual exceeds `tolerance` (suspected theft).
  bool suspicious(Kw tolerance) const {
    return non_technical_loss > tolerance;
  }
};

/// Performs the refs [9]/[10]/[24]-style NTL analysis on a feeder.
///
/// `actual` is the true per-consumer demand (what flows; the trusted feeder
/// meter reads their sum plus the physical loss), `reported` the smart-meter
/// readings.  The technical loss is *estimated from reported flows* - the
/// utility has no other source - which is exactly the blind spot B-class
/// attacks exploit.
NtlAnalysis analyze_ntl(std::span<const Kw> actual,
                        std::span<const Kw> reported,
                        const LineImpedance& feeder_impedance);

}  // namespace fdeta::grid
