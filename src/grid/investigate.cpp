#include "grid/investigate.h"

#include <cmath>

#include "common/error.h"
#include "obs/event_log.h"

namespace fdeta::grid {

const char* to_string(InvestigationBranch branch) {
  switch (branch) {
    case InvestigationBranch::kBalanced: return "balanced";
    case InvestigationBranch::kDescend: return "descend";
    case InvestigationBranch::kPruned: return "pruned";
    case InvestigationBranch::kLeafSuspects: return "leaf_suspects";
    case InvestigationBranch::kDeeperFailure: return "deeper_failure";
    case InvestigationBranch::kMeterFault: return "meter_fault";
    case InvestigationBranch::kLocalized: return "localized";
  }
  return "?";
}

namespace {

/// Emits the recorded audit trail as investigation_step events.  Done once
/// at the end (not per step) so the recursion stays event-log-agnostic.
void emit_steps(obs::EventLog* events, const char* mode,
                const std::vector<InvestigationStep>& steps) {
  if (events == nullptr || !events->enabled()) return;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const InvestigationStep& s = steps[i];
    events->emit("investigation_step",
                 obs::EventFields{}
                     .str("mode", mode)
                     .u64("step", i)
                     .i64("node", s.node)
                     .i64("depth", s.depth)
                     .f64("imbalance_kw", s.imbalance_kw)
                     .str("branch", to_string(s.branch))
                     .u64("suspects", s.suspects));
  }
}

}  // namespace

InvestigationResult investigate_case1(const Topology& topology,
                                      const BalanceOutcome& outcome,
                                      obs::EventLog* events) {
  InvestigationResult result;
  // Deepest failing node with no failing internal descendant: scan all
  // failing nodes, prefer maximum depth; each metered node costs one reading.
  int best_depth = -1;
  for (NodeId id : outcome.failing_nodes()) {
    ++result.checks_performed;
    bool has_failing_internal_child = false;
    for (NodeId c : topology.node(id).children) {
      if (topology.node(c).kind == NodeKind::kInternal && outcome.checked(c) &&
          outcome.failed(c)) {
        has_failing_internal_child = true;
        break;
      }
    }
    InvestigationStep step;
    step.node = id;
    step.depth = topology.depth(id);
    // Case 1 works from boolean W events; no flow magnitudes are available.
    step.imbalance_kw = 0.0;
    if (has_failing_internal_child) {
      step.branch = InvestigationBranch::kDeeperFailure;
      result.steps.push_back(step);
      continue;
    }
    step.branch = InvestigationBranch::kLeafSuspects;
    result.steps.push_back(step);
    const int d = topology.depth(id);
    if (d > best_depth) {
      best_depth = d;
      result.localized_node = id;
    }
  }
  if (result.localized_node != kNoNode) {
    result.suspects = topology.consumers_under(result.localized_node);
    InvestigationStep step;
    step.node = result.localized_node;
    step.depth = topology.depth(result.localized_node);
    step.branch = InvestigationBranch::kLocalized;
    step.suspects = result.suspects.size();
    result.steps.push_back(step);
  }
  // Section V-B consistency rules: meters whose W flags contradict their
  // neighbours' are themselves suspect (fault or compromise).
  for (NodeId id : inconsistent_meter_alarms(topology, outcome)) {
    InvestigationStep step;
    step.node = id;
    step.depth = topology.depth(id);
    step.branch = InvestigationBranch::kMeterFault;
    result.steps.push_back(step);
  }
  emit_steps(events, "case1", result.steps);
  return result;
}

namespace {

/// Recursive descent from a node whose check is known to fail.  Checks each
/// internal child with the portable meter (one residual lookup), recursing
/// only into failing ones; if no internal child fails, the divergence sits
/// among the node's directly attached consumer leaves (to within measurement
/// tolerance).
void descend(const Topology& topology, NodeId node,
             const NodeResiduals& residuals, double tolerance_kw, int depth,
             int& best_depth, InvestigationResult& result) {
  if (depth > best_depth) {
    best_depth = depth;
    result.localized_node = node;
  }
  bool any_failing_child = false;
  for (NodeId c : topology.node(node).children) {
    if (topology.node(c).kind != NodeKind::kInternal) continue;
    ++result.checks_performed;
    InvestigationStep step;
    step.node = c;
    step.depth = depth + 1;
    step.imbalance_kw = residuals.imbalance_kw(c);
    if (residuals.check_fails(c, tolerance_kw)) {
      any_failing_child = true;
      step.branch = InvestigationBranch::kDescend;
      result.steps.push_back(step);
      descend(topology, c, residuals, tolerance_kw, depth + 1, best_depth,
              result);
    } else {
      step.branch = InvestigationBranch::kPruned;
      result.steps.push_back(step);
    }
  }
  if (!any_failing_child) {
    std::size_t added = 0;
    for (NodeId c : topology.node(node).children) {
      if (topology.node(c).kind == NodeKind::kConsumer) {
        result.suspects.push_back(topology.node(c).consumer_index);
        ++added;
      }
    }
    InvestigationStep step;
    step.node = node;
    step.depth = depth;
    step.imbalance_kw = residuals.imbalance_kw(node);
    step.branch = InvestigationBranch::kLeafSuspects;
    step.suspects = added;
    result.steps.push_back(step);
  }
}

}  // namespace

InvestigationResult investigate_case2(const Topology& topology,
                                      std::span<const Kw> actual,
                                      std::span<const Kw> reported,
                                      double tolerance_kw,
                                      obs::EventLog* events) {
  require(actual.size() == reported.size(), "investigate_case2: size mismatch");
  return investigate_case2(topology,
                           NodeResiduals::compute(topology, actual, reported),
                           tolerance_kw, events);
}

InvestigationResult investigate_case2(const Topology& topology,
                                      const NodeResiduals& residuals,
                                      double tolerance_kw,
                                      obs::EventLog* events) {
  require(residuals.node_count() == topology.node_count(),
          "investigate_case2: residuals do not match topology");
  InvestigationResult result;

  // Root check first; if it passes there is nothing to investigate.
  ++result.checks_performed;
  InvestigationStep root_step;
  root_step.node = topology.root();
  root_step.depth = 0;
  root_step.imbalance_kw = residuals.imbalance_kw(topology.root());
  if (!residuals.check_fails(topology.root(), tolerance_kw)) {
    root_step.branch = InvestigationBranch::kBalanced;
    result.steps.push_back(root_step);
    emit_steps(events, "case2", result.steps);
    return result;
  }
  root_step.branch = InvestigationBranch::kDescend;
  result.steps.push_back(root_step);
  int best_depth = -1;
  descend(topology, topology.root(), residuals, tolerance_kw, 0, best_depth,
          result);
  {
    InvestigationStep step;
    step.node = result.localized_node;
    step.depth = topology.depth(result.localized_node);
    step.imbalance_kw = residuals.imbalance_kw(result.localized_node);
    step.branch = InvestigationBranch::kLocalized;
    step.suspects = result.suspects.size();
    result.steps.push_back(step);
  }
  emit_steps(events, "case2", result.steps);
  return result;
}

InvestigationResult investigate_exhaustive(const Topology& topology,
                                           std::span<const Kw> actual,
                                           std::span<const Kw> reported,
                                           double tolerance_kw) {
  require(actual.size() == reported.size(),
          "investigate_exhaustive: size mismatch");
  InvestigationResult result;
  for (std::size_t i = 0; i < topology.consumer_count(); ++i) {
    ++result.checks_performed;
    if (std::fabs(actual[i] - reported[i]) > tolerance_kw) {
      result.suspects.push_back(i);
    }
  }
  return result;
}

}  // namespace fdeta::grid
