#include "grid/investigate.h"

#include <cmath>


#include "common/error.h"

namespace fdeta::grid {

InvestigationResult investigate_case1(const Topology& topology,
                                      const BalanceOutcome& outcome) {
  InvestigationResult result;
  // Deepest failing node with no failing internal descendant: scan all
  // failing nodes, prefer maximum depth; each metered node costs one reading.
  int best_depth = -1;
  for (NodeId id : outcome.failing_nodes()) {
    ++result.checks_performed;
    bool has_failing_internal_child = false;
    for (NodeId c : topology.node(id).children) {
      if (topology.node(c).kind == NodeKind::kInternal && outcome.checked(c) &&
          outcome.failed(c)) {
        has_failing_internal_child = true;
        break;
      }
    }
    if (has_failing_internal_child) continue;
    const int d = topology.depth(id);
    if (d > best_depth) {
      best_depth = d;
      result.localized_node = id;
    }
  }
  if (result.localized_node != kNoNode) {
    result.suspects = topology.consumers_under(result.localized_node);
  }
  return result;
}

namespace {

/// One portable-meter check at `node`: compare actual flow against reported
/// reconstruction for that subtree.
bool portable_check_fails(NodeId node, const std::vector<Kw>& actual_nodes,
                          const std::vector<Kw>& reported_nodes,
                          double tolerance_kw) {
  return std::fabs(actual_nodes[node] - reported_nodes[node]) > tolerance_kw;
}

/// Recursive descent from a node whose check is known to fail.  Checks each
/// internal child with the portable meter, recursing only into failing ones;
/// if no internal child fails, the divergence sits among the node's directly
/// attached consumer leaves (to within measurement tolerance).
void descend(const Topology& topology, NodeId node,
             const std::vector<Kw>& actual_nodes,
             const std::vector<Kw>& reported_nodes, double tolerance_kw,
             int depth, int& best_depth, InvestigationResult& result) {
  if (depth > best_depth) {
    best_depth = depth;
    result.localized_node = node;
  }
  bool any_failing_child = false;
  for (NodeId c : topology.node(node).children) {
    if (topology.node(c).kind != NodeKind::kInternal) continue;
    ++result.checks_performed;
    if (portable_check_fails(c, actual_nodes, reported_nodes,
                             tolerance_kw)) {
      any_failing_child = true;
      descend(topology, c, actual_nodes, reported_nodes, tolerance_kw,
              depth + 1, best_depth, result);
    }
  }
  if (!any_failing_child) {
    for (NodeId c : topology.node(node).children) {
      if (topology.node(c).kind == NodeKind::kConsumer) {
        result.suspects.push_back(topology.node(c).consumer_index);
      }
    }
  }
}

}  // namespace

InvestigationResult investigate_case2(const Topology& topology,
                                      std::span<const Kw> actual,
                                      std::span<const Kw> reported,
                                      double tolerance_kw) {
  require(actual.size() == reported.size(), "investigate_case2: size mismatch");
  const std::vector<Kw> actual_nodes = topology.node_demands(actual);
  const std::vector<Kw> reported_nodes = topology.node_demands(reported);

  InvestigationResult result;

  // Root check first; if it passes there is nothing to investigate.
  ++result.checks_performed;
  if (!portable_check_fails(topology.root(), actual_nodes,
                            reported_nodes, tolerance_kw)) {
    return result;
  }
  int best_depth = -1;
  descend(topology, topology.root(), actual_nodes, reported_nodes,
          tolerance_kw, 0, best_depth, result);
  return result;
}

InvestigationResult investigate_exhaustive(const Topology& topology,
                                           std::span<const Kw> actual,
                                           std::span<const Kw> reported,
                                           double tolerance_kw) {
  require(actual.size() == reported.size(),
          "investigate_exhaustive: size mismatch");
  InvestigationResult result;
  for (std::size_t i = 0; i < topology.consumer_count(); ++i) {
    ++result.checks_performed;
    if (std::fabs(actual[i] - reported[i]) > tolerance_kw) {
      result.suspects.push_back(i);
    }
  }
  return result;
}

}  // namespace fdeta::grid
