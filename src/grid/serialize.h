// Text serialization for grid topologies, so feeder layouts can ship as
// files (used by the `fdeta` CLI and by utilities maintaining their GIS
// exports).
//
// Format: one node per line, children listed after their parent.
//   internal <id> <parent|-> <metered 0|1>
//   consumer <id> <parent> <consumer_id>
//   loss     <id> <parent> <fraction>
// Node ids are the topology's own (root = 0); the loader validates that
// they appear in insertion order, which Topology's builder guarantees.
#pragma once

#include <iosfwd>

#include "grid/topology.h"

namespace fdeta::grid {

/// Writes the topology in the line format above.
void save_topology(const Topology& topology, std::ostream& out);

/// Parses the format written by save_topology; throws DataError on any
/// structural violation.
Topology load_topology(std::istream& in);

}  // namespace fdeta::grid
