#include "grid/balance.h"

#include <cmath>

#include "common/error.h"
#include "grid/hierarchy/residuals.h"

namespace fdeta::grid {

std::vector<NodeId> BalanceOutcome::failing_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t id = 0; id < status.size(); ++id) {
    if (status[id] == CheckStatus::kFailed) {
      out.push_back(static_cast<NodeId>(id));
    }
  }
  return out;
}

BalanceOutcome run_balance_checks(
    const Topology& topology, std::span<const Kw> actual,
    std::span<const Kw> reported,
    const std::unordered_set<NodeId>& compromised_meters,
    double tolerance_kw) {
  require(actual.size() == reported.size(),
          "run_balance_checks: actual/reported size mismatch");

  // Eq. (5) both sides in one walk: physics (actual flows) vs the utility's
  // reconstruction (reported readings plus calculated losses).
  const NodeResiduals residuals =
      NodeResiduals::compute(topology, actual, reported);

  BalanceOutcome outcome;
  outcome.status.assign(topology.node_count(), CheckStatus::kNotChecked);
  for (std::size_t id = 0; id < topology.node_count(); ++id) {
    const Node& n = topology.node(static_cast<NodeId>(id));
    if (n.kind != NodeKind::kInternal || !n.has_balance_meter) continue;
    if (compromised_meters.contains(static_cast<NodeId>(id))) {
      // A compromised meter reports the value that satisfies its own check.
      outcome.status[id] = CheckStatus::kPassed;
      continue;
    }
    outcome.status[id] =
        residuals.check_fails(static_cast<NodeId>(id), tolerance_kw)
            ? CheckStatus::kFailed
            : CheckStatus::kPassed;
  }
  return outcome;
}

bool simplified_balance_check(const Topology& topology, NodeId node,
                              std::span<const Kw> actual,
                              std::span<const Kw> reported,
                              double tolerance_kw) {
  require(actual.size() == reported.size(),
          "simplified_balance_check: size mismatch");
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t c : topology.consumers_under(node)) {
    rhs += actual[c];
    lhs += reported[c];
  }
  return std::fabs(lhs - rhs) <= tolerance_kw;
}

std::vector<NodeId> meters_to_compromise(
    const Topology& topology, std::size_t consumer_index,
    const std::unordered_set<NodeId>& trusted) {
  std::vector<NodeId> meters;
  const NodeId leaf = topology.consumer_leaf(consumer_index);
  for (const NodeId id : topology.path_to_root(leaf)) {
    const Node& n = topology.node(id);
    if (n.kind == NodeKind::kInternal && n.has_balance_meter &&
        !trusted.contains(id)) {
      meters.push_back(id);
    }
  }
  return meters;
}

std::vector<NodeId> inconsistent_meter_alarms(const Topology& topology,
                                              const BalanceOutcome& outcome) {
  std::vector<NodeId> alarms;
  for (std::size_t id = 0; id < topology.node_count(); ++id) {
    const NodeId nid = static_cast<NodeId>(id);
    const Node& n = topology.node(nid);
    if (n.kind != NodeKind::kInternal) continue;

    // Rule (a): W true here, W false at the metered parent => one of the two
    // meters is faulty or compromised.
    if (outcome.checked(nid) && outcome.failed(nid) && n.parent != kNoNode &&
        outcome.checked(n.parent) && !outcome.failed(n.parent)) {
      alarms.push_back(nid);
      continue;
    }

    // Rule (b): W true at a parent of internal nodes whose metered internal
    // children all have W false => the parent (or a child) is suspect.
    if (outcome.checked(nid) && outcome.failed(nid)) {
      bool has_metered_internal_child = false;
      bool all_children_pass = true;
      for (NodeId c : n.children) {
        if (topology.node(c).kind != NodeKind::kInternal) continue;
        if (!outcome.checked(c)) continue;
        has_metered_internal_child = true;
        if (outcome.failed(c)) all_children_pass = false;
      }
      if (has_metered_internal_child && all_children_pass) {
        alarms.push_back(nid);
      }
    }
  }
  return alarms;
}

}  // namespace fdeta::grid
