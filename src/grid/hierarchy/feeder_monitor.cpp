#include "grid/hierarchy/feeder_monitor.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "common/thread_pool.h"
#include "grid/hierarchy/residuals.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "persist/binary_io.h"
#include "stats/descriptive.h"

namespace fdeta::hierarchy {

struct FeederMonitor::NodeState {
  grid::NodeId node = grid::kNoNode;
  int depth = 0;
  std::vector<std::size_t> members;  ///< dense consumer indices, ascending
  std::unique_ptr<core::ScoringDetector> detector;
  /// Rolling baseline of the node's weekly-mean aggregate demand (kW);
  /// seeded from the training span, EWMA-updated on non-alerting weeks.
  double baseline_kw = 0.0;
  /// Deviation of the training weekly means (kW); scales the residual gate.
  double sigma_kw = 0.0;
};

std::size_t FeederReport::alert_count() const {
  std::size_t n = 0;
  for (const FeederNodeScore& s : nodes) n += s.flagged ? 1 : 0;
  return n;
}

std::string to_text(const FeederReport& report) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "week=%zu slot=%zu nodes=%zu alerts=%zu\n",
                report.week, static_cast<std::size_t>(report.slot),
                report.nodes.size(), report.alert_count());
  out += buf;
  for (const FeederNodeScore& s : report.nodes) {
    std::snprintf(buf, sizeof(buf),
                  "node=%d depth=%d consumers=%zu score=%.17g "
                  "threshold=%.17g residual_kw=%.17g gate_kw=%.17g "
                  "flagged=%d\n",
                  s.node, s.depth, s.consumers, s.score, s.threshold,
                  s.residual_kw, s.residual_gate_kw, s.flagged ? 1 : 0);
    out += buf;
  }
  for (const CollusionGroup& g : report.collusion) {
    std::snprintf(buf, sizeof(buf), "collusion node=%d residual_kw=%.17g "
                  "consumers=", g.node, g.residual_kw);
    out += buf;
    for (std::size_t i = 0; i < g.consumers.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(g.consumers[i]);
    }
    out += '\n';
  }
  return out;
}

FeederMonitor::FeederMonitor(const grid::Topology& topology,
                             FeederConfig config)
    : topology_(&topology), config_(std::move(config)) {
  require(core::is_registered_detector(config_.detector),
          "FeederMonitor: unknown detector family");
  require(config_.min_consumers >= 1, "FeederMonitor: min_consumers >= 1");
  require(config_.baseline_beta >= 0.0 && config_.baseline_beta <= 1.0,
          "FeederMonitor: baseline_beta in [0, 1]");
  // `kld` is authoritative for the histogram knobs, as in pipeline/monitor.
  config_.detector_options.kld = config_.kld;
  obs::MetricsRegistry& registry =
      config_.metrics != nullptr ? *config_.metrics : obs::default_registry();
  weeks_evaluated_ = &registry.counter("hierarchy.weeks_evaluated");
  alerts_total_ = &registry.counter("hierarchy.feeder_alerts");
  collusion_groups_total_ = &registry.counter("hierarchy.collusion_groups");
  alerts_gauge_ = &registry.gauge("hierarchy.last_feeder_alerts");
  collusion_gauge_ = &registry.gauge("hierarchy.last_collusion_groups");
  evaluate_seconds_ = &registry.histogram("hierarchy.evaluate_seconds");
  events_ =
      config_.events != nullptr ? config_.events : &obs::default_event_log();
  resolve_nodes();
}

FeederMonitor::~FeederMonitor() = default;

void FeederMonitor::resolve_nodes() {
  for (std::size_t id = 0; id < topology_->node_count(); ++id) {
    const grid::NodeId nid = static_cast<grid::NodeId>(id);
    if (topology_->node(nid).kind != grid::NodeKind::kInternal) continue;
    std::vector<std::size_t> members = topology_->consumers_under(nid);
    if (members.size() < config_.min_consumers) continue;
    std::sort(members.begin(), members.end());
    NodeState state;
    state.node = nid;
    state.depth = topology_->depth(nid);
    state.members = std::move(members);
    nodes_.push_back(std::move(state));
  }
  require(!nodes_.empty(),
          "FeederMonitor: topology has no internal node with min_consumers "
          "consumer descendants");
}

std::size_t FeederMonitor::scored_node_count() const { return nodes_.size(); }

std::vector<grid::NodeId> FeederMonitor::scored_nodes() const {
  std::vector<grid::NodeId> ids;
  ids.reserve(nodes_.size());
  for (const NodeState& n : nodes_) ids.push_back(n.node);
  return ids;
}

void FeederMonitor::fit(const meter::Dataset& actual,
                        const meter::TrainTestSplit& split) {
  fit_impl(
      actual.consumer_count(),
      [&](std::size_t i) { return actual.consumer(i); }, split);
}

void FeederMonitor::fit_streaming(
    std::size_t count,
    const std::function<meter::ConsumerSeries(std::size_t)>& source,
    const meter::TrainTestSplit& split) {
  fit_impl(count, source, split);
}

void FeederMonitor::fit_impl(
    std::size_t count,
    const std::function<meter::ConsumerSeries(std::size_t)>& series_of,
    const meter::TrainTestSplit& split) {
  require(count == topology_->consumer_count(),
          "FeederMonitor: fleet size does not match topology");
  require(split.train_weeks >= 1, "FeederMonitor: train_weeks >= 1");
  const std::size_t train_slots =
      split.train_weeks * static_cast<std::size_t>(kSlotsPerWeek);

  // Consumer -> scored-ancestor map, so the serial accumulation pass visits
  // each consumer series exactly once (fit_streaming materialises them one
  // at a time).
  std::vector<std::vector<std::uint32_t>> node_of_consumer(count);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (std::size_t i : nodes_[n].members) {
      node_of_consumer[i].push_back(static_cast<std::uint32_t>(n));
    }
  }

  // Serial, ascending-consumer accumulation: the per-node sum order is the
  // ascending member order regardless of which fit path ran, so both paths
  // produce bit-identical aggregates.
  std::vector<std::vector<Kw>> aggregate(nodes_.size());
  for (auto& a : aggregate) a.assign(train_slots, 0.0);
  consumer_train_mean_.assign(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    const meter::ConsumerSeries series = series_of(i);
    require(series.readings.size() >= train_slots,
            "FeederMonitor: series shorter than the training span");
    const std::span<const Kw> train = split.train(series);
    consumer_train_mean_[i] = stats::mean(train);
    for (std::uint32_t n : node_of_consumer[i]) {
      std::vector<Kw>& a = aggregate[n];
      for (std::size_t t = 0; t < train_slots; ++t) a[t] += train[t];
    }
  }

  // Per-node detector fit + baseline, parallel: nodes are independent.
  parallel_for(
      nodes_.size(),
      [&](std::size_t n) {
        NodeState& node = nodes_[n];
        node.detector =
            core::make_detector(config_.detector, config_.detector_options);
        node.detector->fit(aggregate[n]);
        std::vector<double> weekly_means(split.train_weeks, 0.0);
        for (std::size_t w = 0; w < split.train_weeks; ++w) {
          const std::span<const Kw> week(
              aggregate[n].data() + w * kSlotsPerWeek,
              static_cast<std::size_t>(kSlotsPerWeek));
          weekly_means[w] = stats::mean(week);
        }
        node.baseline_kw = stats::mean(weekly_means);
        node.sigma_kw =
            split.train_weeks >= 2 ? stats::stddev(weekly_means) : 0.0;
      },
      config_.threads);
  fitted_ = true;
}

FeederReport FeederMonitor::evaluate_week(
    const meter::Dataset& reported, std::size_t week,
    std::span<const unsigned char> consumer_flagged) {
  require(reported.consumer_count() == topology_->consumer_count(),
          "FeederMonitor: reported fleet does not match topology");
  return evaluate(
      [&](std::size_t i) { return reported.consumer(i).week(week); },
      /*actual_week_of=*/nullptr, week,
      week * static_cast<std::size_t>(kSlotsPerWeek), consumer_flagged);
}

FeederReport FeederMonitor::evaluate_week(
    const meter::Dataset& actual, const meter::Dataset& reported,
    std::size_t week, std::span<const unsigned char> consumer_flagged) {
  require(reported.consumer_count() == topology_->consumer_count(),
          "FeederMonitor: reported fleet does not match topology");
  require(actual.consumer_count() == reported.consumer_count(),
          "FeederMonitor: actual/reported fleet sizes differ");
  const std::function<std::span<const Kw>(std::size_t)> actual_week_of =
      [&](std::size_t i) { return actual.consumer(i).week(week); };
  return evaluate(
      [&](std::size_t i) { return reported.consumer(i).week(week); },
      &actual_week_of, week, week * static_cast<std::size_t>(kSlotsPerWeek),
      consumer_flagged);
}

FeederReport FeederMonitor::evaluate_windows(
    const std::function<std::span<const Kw>(std::size_t)>& week_of,
    SlotIndex slot, std::span<const unsigned char> consumer_flagged) {
  return evaluate(week_of, /*actual_week_of=*/nullptr,
                  slot / static_cast<std::size_t>(kSlotsPerWeek), slot,
                  consumer_flagged);
}

FeederReport FeederMonitor::evaluate(
    const std::function<std::span<const Kw>(std::size_t)>& week_of,
    const std::function<std::span<const Kw>(std::size_t)>* actual_week_of,
    std::size_t week, SlotIndex slot,
    std::span<const unsigned char> consumer_flagged) {
  require(fitted_, "FeederMonitor: fit() has not run");
  require(consumer_flagged.empty() ||
              consumer_flagged.size() == topology_->consumer_count(),
          "FeederMonitor: consumer_flagged size mismatch");
  obs::ScopedTimer timer(*evaluate_seconds_);

  FeederReport report;
  report.week = week;
  report.slot = slot;
  report.nodes.resize(nodes_.size());

  // Per-consumer weekly means feed the collusion-share test (and, in
  // balance mode, the loss-adjusted NodeResiduals tree walk).
  const std::size_t count = topology_->consumer_count();
  const bool balance_mode = actual_week_of != nullptr;
  std::vector<double> consumer_week_mean(count, 0.0);
  std::vector<double> consumer_actual_mean(balance_mode ? count : 0, 0.0);
  parallel_for(
      count,
      [&](std::size_t i) {
        consumer_week_mean[i] = stats::mean(week_of(i));
        if (balance_mode) {
          consumer_actual_mean[i] = stats::mean((*actual_week_of)(i));
        }
      },
      config_.threads, /*grain=*/32);

  // Balance mode: one signed imbalance per tree node, actual minus reported
  // through the loss-adjusted walk.  Clean fleets give exactly zero at every
  // node, so seasonal drift can never false-positive the physical gate.
  std::optional<grid::NodeResiduals> residuals;
  if (balance_mode) {
    residuals = grid::NodeResiduals::compute(*topology_, consumer_actual_mean,
                                             consumer_week_mean);
  }

  // Score every node independently (parallel; results land in fixed slots,
  // so the report is identical for any thread layout).
  std::vector<double> node_week_mean(nodes_.size(), 0.0);
  parallel_for(
      nodes_.size(),
      [&](std::size_t n) {
        const NodeState& node = nodes_[n];
        std::vector<Kw> agg(static_cast<std::size_t>(kSlotsPerWeek), 0.0);
        for (std::size_t i : node.members) {
          const std::span<const Kw> w = week_of(i);
          for (std::size_t t = 0; t < agg.size(); ++t) agg[t] += w[t];
        }
        node_week_mean[n] = stats::mean(agg);
        FeederNodeScore& s = report.nodes[n];
        s.node = node.node;
        s.depth = node.depth;
        s.consumers = node.members.size();
        s.score = node.detector->score_week(agg);
        s.threshold = node.detector->decision_threshold();
        if (balance_mode) {
          s.residual_kw = residuals->signed_kw(node.node);
          s.residual_gate_kw = config_.balance_tolerance_kw;
        } else {
          s.residual_kw = node.baseline_kw - node_week_mean[n];
          s.residual_gate_kw = std::max(
              config_.residual_sigma * node.sigma_kw,
              config_.residual_floor_kw);
        }
        // Both gates: the distributional detector (calibrated, same [0, 1]
        // scale as consumer scores) AND a physical under-report residual -
        // the score alone would flag clean fleets at the significance rate.
        s.flagged = node.detector->flag_week(agg) &&
                    s.residual_kw > s.residual_gate_kw;
      },
      config_.threads);

  // Rolling baselines move only on non-alerting weeks, so colluders cannot
  // walk a node's baseline down onto the shaved level.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (report.nodes[n].flagged) continue;
    nodes_[n].baseline_kw =
        (1.0 - config_.baseline_beta) * nodes_[n].baseline_kw +
        config_.baseline_beta * node_week_mean[n];
  }

  // Localization: deepest flagged node first (ties: ascending id), each
  // consumer claimed by at most one group.  Members already flagged by the
  // per-consumer layer are excluded - the hierarchy exists to catch the
  // sub-threshold remainder.
  std::vector<std::size_t> flagged_order;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (report.nodes[n].flagged) flagged_order.push_back(n);
  }
  std::stable_sort(flagged_order.begin(), flagged_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return nodes_[a].depth > nodes_[b].depth;
                   });
  std::vector<unsigned char> claimed(count, 0);
  for (std::size_t n : flagged_order) {
    CollusionGroup group;
    group.node = nodes_[n].node;
    group.residual_kw = report.nodes[n].residual_kw;
    for (std::size_t i : nodes_[n].members) {
      if (claimed[i]) continue;
      if (!consumer_flagged.empty() && consumer_flagged[i]) continue;
      if (consumer_train_mean_[i] <= 0.0) continue;
      // Balance mode compares each member against its trusted actual mean
      // (clean members have zero deficit by construction); streaming mode
      // falls back to the training mean.
      const double reference =
          balance_mode ? consumer_actual_mean[i] : consumer_train_mean_[i];
      const double deficit = reference - consumer_week_mean[i];
      if (deficit > config_.collusion_share * consumer_train_mean_[i]) {
        group.consumers.push_back(i);
      }
    }
    if (group.consumers.size() < config_.min_group) continue;
    for (std::size_t i : group.consumers) claimed[i] = 1;
    report.collusion.push_back(std::move(group));
  }

  // Events last, serially, in report order: node alerts then groups.
  if (events_->enabled()) {
    for (const FeederNodeScore& s : report.nodes) {
      if (!s.flagged) continue;
      events_->emit("feeder_alert_raised",
                    obs::EventFields{}
                        .str("source", "hierarchy")
                        .i64("node", s.node)
                        .i64("depth", s.depth)
                        .u64("consumers", s.consumers)
                        .u64("week", report.week)
                        .u64("slot", report.slot)
                        .f64("score", s.score)
                        .f64("threshold", s.threshold)
                        .f64("residual_kw", s.residual_kw));
    }
    for (const CollusionGroup& g : report.collusion) {
      std::string members = "[";
      for (std::size_t i = 0; i < g.consumers.size(); ++i) {
        if (i > 0) members += ',';
        members += std::to_string(g.consumers[i]);
      }
      members += ']';
      events_->emit("collusion_suspected",
                    obs::EventFields{}
                        .i64("node", g.node)
                        .u64("week", report.week)
                        .u64("slot", report.slot)
                        .u64("group_size", g.consumers.size())
                        .f64("residual_kw", g.residual_kw)
                        .raw("consumers", members));
    }
  }

  weeks_evaluated_->add(1);
  const std::size_t alerts = report.alert_count();
  alerts_total_->add(alerts);
  collusion_groups_total_->add(report.collusion.size());
  alerts_gauge_->set(static_cast<std::int64_t>(alerts));
  collusion_gauge_->set(static_cast<std::int64_t>(report.collusion.size()));
  return report;
}

std::string FeederMonitor::config_fingerprint() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "hierarchy:%s nodes=%zu min_consumers=%zu sigma=%.17g "
                "floor=%.17g balance=%.17g share=%.17g min_group=%zu "
                "beta=%.17g",
                config_.detector.c_str(), nodes_.size(),
                config_.min_consumers, config_.residual_sigma,
                config_.residual_floor_kw, config_.balance_tolerance_kw,
                config_.collusion_share, config_.min_group,
                config_.baseline_beta);
  return buf;
}

void FeederMonitor::save_state(persist::Encoder& enc) const {
  require(fitted_, "FeederMonitor: nothing fitted to save");
  enc.str(config_fingerprint());
  enc.str(config_.detector);
  enc.u64(nodes_.size());
  std::vector<std::uint32_t> ids;
  std::vector<double> baselines, sigmas;
  ids.reserve(nodes_.size());
  for (const NodeState& n : nodes_) {
    ids.push_back(static_cast<std::uint32_t>(n.node));
    baselines.push_back(n.baseline_kw);
    sigmas.push_back(n.sigma_kw);
  }
  enc.u32_array(ids);
  enc.f64_array(baselines);
  enc.f64_array(sigmas);
  enc.u64(consumer_train_mean_.size());
  enc.f64_array(consumer_train_mean_);
  // Per-node detector payloads are self-framing (save_state contract).
  enc.str(nodes_.front().detector->config_fingerprint());
  for (const NodeState& n : nodes_) n.detector->save_state(enc);
}

void FeederMonitor::restore_state(persist::Decoder& dec,
                                  std::uint32_t format_version) {
  const std::string fingerprint = dec.str("hierarchy fingerprint", 1 << 10);
  if (fingerprint != config_fingerprint()) {
    throw DataError("FeederMonitor: checkpoint fingerprint mismatch: " +
                    fingerprint + " vs " + config_fingerprint());
  }
  const std::string detector_id = dec.str("hierarchy detector id", 64);
  require(core::is_registered_detector(detector_id),
          "FeederMonitor: checkpoint names an unregistered detector");
  const std::size_t node_count =
      dec.count("hierarchy node count", 1 << 20);
  if (node_count != nodes_.size()) {
    throw DataError("FeederMonitor: checkpoint node count does not match "
                    "the topology");
  }
  std::vector<std::uint32_t> ids(node_count);
  std::vector<double> baselines(node_count), sigmas(node_count);
  dec.u32_array(ids);
  dec.f64_array(baselines);
  dec.f64_array(sigmas);
  for (std::size_t n = 0; n < node_count; ++n) {
    if (static_cast<grid::NodeId>(ids[n]) != nodes_[n].node) {
      throw DataError("FeederMonitor: checkpoint scored-node ids do not "
                      "match the topology");
    }
  }
  const std::size_t consumer_count =
      dec.count("hierarchy consumer count", 1 << 24);
  if (consumer_count != topology_->consumer_count()) {
    throw DataError("FeederMonitor: checkpoint consumer count mismatch");
  }
  std::vector<double> train_means(consumer_count);
  dec.f64_array(train_means);
  const std::string detector_fingerprint =
      dec.str("hierarchy detector fingerprint", 1 << 10);
  std::vector<std::unique_ptr<core::ScoringDetector>> detectors(node_count);
  for (std::size_t n = 0; n < node_count; ++n) {
    detectors[n] =
        core::make_detector(detector_id, config_.detector_options);
    detectors[n]->restore_state(dec, format_version);
    if (detectors[n]->config_fingerprint() != detector_fingerprint) {
      throw DataError("FeederMonitor: restored detector fingerprint "
                      "mismatch");
    }
  }
  // Commit only after the whole payload decoded.
  config_.detector = detector_id;
  for (std::size_t n = 0; n < node_count; ++n) {
    nodes_[n].baseline_kw = baselines[n];
    nodes_[n].sigma_kw = sigmas[n];
    nodes_[n].detector = std::move(detectors[n]);
  }
  consumer_train_mean_ = std::move(train_means);
  fitted_ = true;
}

}  // namespace fdeta::hierarchy
