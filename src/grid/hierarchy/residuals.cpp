#include "grid/hierarchy/residuals.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::grid {

NodeResiduals NodeResiduals::compute(const Topology& topology,
                                     std::span<const Kw> actual,
                                     std::span<const Kw> reported) {
  require(actual.size() == reported.size(),
          "NodeResiduals: actual/reported size mismatch");
  require(actual.size() == topology.consumer_count(),
          "NodeResiduals: demand vector does not match topology");
  NodeResiduals residuals;
  residuals.actual_nodes_ = topology.node_demands(actual);
  residuals.reported_nodes_ = topology.node_demands(reported);
  return residuals;
}

double NodeResiduals::imbalance_kw(NodeId id) const {
  return std::fabs(signed_kw(id));
}

}  // namespace fdeta::grid
