// Per-node balance residuals over the radial tree (Section V-A, eq. 5).
//
// Every verification layer in the repo needs the same quantity: at each node
// N, the gap between the physical flow (eq. 4 over actual consumer demands)
// and the utility's reconstruction (eq. 4 over reported readings plus
// calculated losses).  NodeResiduals computes both walks once and exposes
// signed and absolute per-node accessors, so the balance checker, the Case
// 1/2 investigations, and the feeder-level hierarchy monitor all read from
// one residual tree instead of re-deriving it inline.
//
// Conservation holds by construction: a node's signed residual equals the
// sum of its children's signed residuals (additive power, eq. 4), up to the
// loss-leaf terms that node_demands derives from sibling flows.
#pragma once

#include <span>
#include <vector>

#include "grid/topology.h"

namespace fdeta::grid {

class NodeResiduals {
 public:
  /// Runs the two node_demands walks (physics over `actual`, reconstruction
  /// over `reported`) and stores one residual per node id.
  static NodeResiduals compute(const Topology& topology,
                               std::span<const Kw> actual,
                               std::span<const Kw> reported);

  std::size_t node_count() const { return actual_nodes_.size(); }

  /// Signed residual at `id`: actual - reported.  Positive means the subtree
  /// under-reports (theft, Proposition 1); negative means it over-reports.
  double signed_kw(NodeId id) const {
    return actual_nodes_[static_cast<std::size_t>(id)] -
           reported_nodes_[static_cast<std::size_t>(id)];
  }

  /// |actual - reported| at `id` - the eq. (5) check magnitude.
  double imbalance_kw(NodeId id) const;

  /// The eq. (5) balance check at `id`: true when the imbalance exceeds the
  /// metering tolerance.
  bool check_fails(NodeId id, double tolerance_kw) const {
    return imbalance_kw(id) > tolerance_kw;
  }

  /// Physical flow at every node (eq. 4 over actual consumer demand).
  const std::vector<Kw>& actual_nodes() const { return actual_nodes_; }
  /// Reconstructed flow at every node (eq. 4 over reported readings).
  const std::vector<Kw>& reported_nodes() const { return reported_nodes_; }

 private:
  std::vector<Kw> actual_nodes_;
  std::vector<Kw> reported_nodes_;
};

}  // namespace fdeta::grid
