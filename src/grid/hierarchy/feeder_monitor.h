// Feeder-level hierarchical verification (ROADMAP item 3).
//
// Per-consumer detectors are structurally blind to collusion: k siblings
// under one transformer can each shave a sub-threshold sliver, and no
// individual score moves - but the joint residual they shift through the
// shared feeder is k slivers wide.  EnThM-style hierarchical verification
// closes the gap by scoring the *aggregate* demand at every internal node of
// the radial tree with the same machinery the per-consumer layer uses.
//
// For every scored node (internal nodes with at least `min_consumers`
// consumer descendants) the FeederMonitor keeps:
//
//   - a ScoringDetector from the registry, fitted on the node's aggregate
//     training demand.  Reusing ScoringDetector + ScoreCalibration puts
//     feeder scores on the SAME calibrated [0, 1] scale as consumer scores,
//     so one threshold (1 - significance) reads across both layers;
//   - a physical under-report residual in kW that gates alerts (the
//     calibrated score alone would false-positive at the significance rate
//     on clean fleets).  The residual has two sources:
//       * balance mode (evaluate_week with the trusted `actual` dataset -
//         the pipeline path, where feeder balance meters measure real flow):
//         the node's NodeResiduals signed imbalance, actual minus reported,
//         which is exactly zero on clean fleets regardless of seasonal
//         drift; the gate is the meter-error bound balance_tolerance_kw;
//       * streaming mode (no ground truth - the OnlineMonitor path): a
//         rolling EWMA baseline of the node's weekly-mean aggregate minus
//         this week's mean, gated by max(residual_sigma * training
//         deviation, residual_floor_kw).
//
// A week alerts a node when BOTH the detector flags the aggregate AND the
// under-report residual clears its gate.  Flagged nodes are then localized
// deepest-first: sibling consumers whose weekly mean sits `collusion_share`
// below their reference (actual mean in balance mode, training mean in
// streaming mode) - yet who were NOT individually flagged - form the
// suspected colluding group.
//
// Determinism contract: aggregates are accumulated in ascending consumer
// index order and scored per node independently, so reports, events and
// checkpoint bytes are byte-identical for any shard x thread layout and
// identical between fit() and fit_streaming().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detector_registry.h"
#include "grid/topology.h"
#include "meter/dataset.h"

namespace fdeta {
namespace obs {
class Counter;
class EventLog;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs
namespace persist {
class Decoder;
class Encoder;
}  // namespace persist
}  // namespace fdeta

namespace fdeta::hierarchy {

struct FeederConfig {
  /// Registered detector family scored per node (core/detector_registry.h).
  std::string detector = "kld";
  core::KldDetectorConfig kld{};
  /// Knobs for the non-default families; `kld` above stays authoritative
  /// (copied into detector_options.kld before detectors are built).
  core::DetectorOptions detector_options{};
  /// Internal nodes with fewer consumer descendants are not scored (a
  /// single-consumer "feeder" would just duplicate the per-consumer layer).
  std::size_t min_consumers = 2;
  /// Streaming-mode physical gate: a node alerts only when its under-report
  /// residual (rolling baseline minus this week's aggregate mean) exceeds
  /// max(residual_sigma * training-deviation, residual_floor_kw).
  double residual_sigma = 4.0;
  double residual_floor_kw = 1e-3;
  /// Balance-mode physical gate: with the trusted `actual` dataset in hand
  /// the residual is the node's signed balance imbalance (actual minus
  /// reported through the loss-adjusted tree walk), and a node alerts once
  /// it exceeds this meter-error bound (kW).
  double balance_tolerance_kw = 0.02;
  /// A consumer joins a collusion group when its weekly mean sits more than
  /// this fraction below its training mean (and it was not individually
  /// flagged - those are already localized by the per-consumer layer).
  double collusion_share = 0.02;
  /// Smallest sibling group reported as collusion.
  std::size_t min_group = 2;
  /// EWMA weight for the rolling baseline update on non-alerting weeks
  /// (alerting weeks never update the baseline: an attacker must not be able
  /// to walk the baseline down onto the shaved level).
  double baseline_beta = 0.125;
  /// Parallelism cap on the shared pool (0 = full width, 1 = serial).
  std::size_t threads = 0;
  /// Telemetry sink ("hierarchy." prefix); null = obs::default_registry().
  obs::MetricsRegistry* metrics = nullptr;
  /// Domain-event sink (feeder_alert_raised / collusion_suspected); null =
  /// the process-wide obs::default_event_log().
  obs::EventLog* events = nullptr;
};

/// One scored node's result for one week.
struct FeederNodeScore {
  grid::NodeId node = grid::kNoNode;
  int depth = 0;
  std::size_t consumers = 0;    ///< consumer descendants aggregated
  double score = 0.0;           ///< calibrated, [0, 1]
  double threshold = 0.0;       ///< uniform 1 - significance
  /// Under-report residual (kW): the signed balance imbalance in balance
  /// mode, rolling baseline minus the weekly aggregate mean in streaming
  /// mode.  Positive = the node reported less than expected.
  double residual_kw = 0.0;
  double residual_gate_kw = 0.0;  ///< the residual the alert gate required
  bool flagged = false;
};

/// A localized group of sibling consumers suspected of coordinated
/// under-reporting below their individual thresholds.
struct CollusionGroup {
  grid::NodeId node = grid::kNoNode;  ///< deepest flagged node localizing it
  double residual_kw = 0.0;           ///< the node's under-report residual
  std::vector<std::size_t> consumers; ///< dense indices, ascending
};

struct FeederReport {
  std::size_t week = 0;  ///< absolute week index (evaluate_week path)
  SlotIndex slot = 0;    ///< absolute slot of evaluation (monitor path)
  std::vector<FeederNodeScore> nodes;     ///< scored nodes, ascending id
  std::vector<CollusionGroup> collusion;  ///< deepest-first localization

  std::size_t alert_count() const;
};

/// Fixed-format (%.17g) single-line-per-node rendering, for byte-equality
/// assertions across shard x thread layouts and for CLI artifacts.
std::string to_text(const FeederReport& report);

class FeederMonitor {
 public:
  /// The topology must outlive the monitor.  Consumer dense indices in the
  /// topology index the datasets/windows handed to fit/evaluate.
  explicit FeederMonitor(const grid::Topology& topology,
                         FeederConfig config = {});
  ~FeederMonitor();

  /// Fits every scored node's detector and baseline on the training span of
  /// `actual` (assumed attack-free, Section VIII-A).
  void fit(const meter::Dataset& actual, const meter::TrainTestSplit& split);

  /// As fit(), materialising one consumer series at a time via `source`
  /// (called serially, ascending index).  Bit-identical state to fit().
  void fit_streaming(
      std::size_t count,
      const std::function<meter::ConsumerSeries(std::size_t)>& source,
      const meter::TrainTestSplit& split);

  /// Scores week `week` of the reported dataset at every scored node
  /// (streaming mode: rolling-baseline residuals).  `consumer_flagged` (when
  /// non-empty: one byte per consumer, non-zero = the per-consumer layer
  /// flagged it this week) excludes already-localized consumers from
  /// collusion groups.  Emits feeder_alert_raised / collusion_suspected
  /// events in node order.  Updates rolling baselines.
  FeederReport evaluate_week(
      const meter::Dataset& reported, std::size_t week,
      std::span<const unsigned char> consumer_flagged = {});

  /// Balance-mode evaluation: as above, but the physical residual is the
  /// node's signed NodeResiduals imbalance between the trusted `actual` week
  /// and the `reported` week (zero on clean fleets by construction), gated
  /// by balance_tolerance_kw.  This is the pipeline path, where feeder
  /// balance meters measure real flow (paper eq. 5/6).
  FeederReport evaluate_week(
      const meter::Dataset& actual, const meter::Dataset& reported,
      std::size_t week, std::span<const unsigned char> consumer_flagged = {});

  /// Monitor-path evaluation over slot-aligned sliding windows: `week_of(i)`
  /// returns consumer i's current week vector (slot-of-week indexed, 336
  /// slots); `slot` stamps the report/events.  Same scoring, gating,
  /// localization and baseline update as evaluate_week.
  FeederReport evaluate_windows(
      const std::function<std::span<const Kw>(std::size_t)>& week_of,
      SlotIndex slot, std::span<const unsigned char> consumer_flagged = {});

  bool fitted() const { return fitted_; }
  const grid::Topology& topology() const { return *topology_; }
  const FeederConfig& config() const { return config_; }
  std::size_t scored_node_count() const;
  /// Scored node ids, ascending.
  std::vector<grid::NodeId> scored_nodes() const;

  /// Serializes the fitted per-node state (detectors, rolling baselines,
  /// deviations, consumer training means).  Symmetric with restore_state;
  /// requires fit() to have run.
  void save_state(persist::Encoder& enc) const;

  /// Restores save_state() bytes against the SAME topology (scored-node ids
  /// are validated); throws DataError on any mismatch.  Subsequent
  /// evaluations are bit-identical to the monitor that was saved.
  void restore_state(persist::Decoder& dec, std::uint32_t format_version);

  /// Deterministic config + per-node fingerprint summary (checkpoint
  /// cross-check).
  std::string config_fingerprint() const;

 private:
  struct NodeState;

  /// Resolves the scored nodes (ascending id) and their member consumer
  /// lists from the topology.
  void resolve_nodes();

  /// Shared core of the evaluate paths.  `actual_week_of` non-null selects
  /// balance mode (NodeResiduals imbalance gates, actual-vs-reported
  /// collusion deficits); null selects streaming mode (rolling baselines).
  FeederReport evaluate(
      const std::function<std::span<const Kw>(std::size_t)>& week_of,
      const std::function<std::span<const Kw>(std::size_t)>* actual_week_of,
      std::size_t week, SlotIndex slot,
      std::span<const unsigned char> consumer_flagged);

  /// Shared core of the two fit paths: `series_of(i)` is called serially in
  /// ascending consumer order (so per-node aggregate sums are bit-identical
  /// between fit() and fit_streaming()).
  void fit_impl(
      std::size_t count,
      const std::function<meter::ConsumerSeries(std::size_t)>& series_of,
      const meter::TrainTestSplit& split);

  const grid::Topology* topology_;  // never null
  FeederConfig config_;
  std::vector<NodeState> nodes_;              // ascending node id
  std::vector<double> consumer_train_mean_;   // per dense consumer index
  bool fitted_ = false;

  // Cached at construction; updates are lock-free (see obs/metrics.h).
  obs::Counter* weeks_evaluated_ = nullptr;
  obs::Counter* alerts_total_ = nullptr;
  obs::Counter* collusion_groups_total_ = nullptr;
  obs::Gauge* alerts_gauge_ = nullptr;
  obs::Gauge* collusion_gauge_ = nullptr;
  obs::Histogram* evaluate_seconds_ = nullptr;
  obs::EventLog* events_ = nullptr;  // never null after construction
};

}  // namespace fdeta::hierarchy
