#include "attack/injector.h"

#include <algorithm>

#include "attack/optimal_swap.h"
#include "common/error.h"
#include "pricing/elasticity.h"

namespace fdeta::attack {

meter::Dataset apply_injections(const meter::Dataset& actual,
                                const std::vector<WeekInjection>& injections) {
  meter::Dataset reported = actual;  // value copy: D' starts equal to D
  for (const WeekInjection& inj : injections) {
    require(inj.consumer_index < reported.consumer_count(),
            "apply_injections: consumer index out of range");
    auto& series = reported.consumer(inj.consumer_index);
    require(inj.week < series.week_count(),
            "apply_injections: week out of range");
    require(inj.reported_week.size() == kSlotsPerWeek,
            "apply_injections: attack vector must be one week long");
    std::copy(inj.reported_week.begin(), inj.reported_week.end(),
              series.readings.begin() + inj.week * kSlotsPerWeek);
  }
  return reported;
}

namespace {

std::vector<Kw> to_vector(std::span<const Kw> s) {
  return std::vector<Kw>(s.begin(), s.end());
}

}  // namespace

NeighborhoodScenario make_scenario(
    AttackClass cls, std::span<const Kw> mallory_week,
    std::span<const std::vector<Kw>> neighbor_weeks, Kw theft_kw) {
  require(!mallory_week.empty(), "make_scenario: empty Mallory week");
  require(!neighbor_weeks.empty() || !involves_neighbor(cls),
          "make_scenario: B-class scenarios need at least one neighbor");
  const std::size_t len = mallory_week.size();
  for (const auto& n : neighbor_weeks) {
    require(n.size() == len, "make_scenario: neighbor week length mismatch");
  }
  const std::size_t m = neighbor_weeks.size();

  NeighborhoodScenario sc;
  sc.attack_class = cls;
  sc.actual.push_back(to_vector(mallory_week));
  for (const auto& n : neighbor_weeks) sc.actual.push_back(n);
  sc.reported = sc.actual;  // start honest, then perturb per class

  auto& mallory_actual = sc.actual.front();
  auto& mallory_reported = sc.reported.front();

  switch (cls) {
    case AttackClass::k1A:
      // Consume more than typical; report typical.
      for (Kw& v : mallory_actual) v += theft_kw;
      break;

    case AttackClass::k2A:
      // Typical consumption; under-report.
      for (Kw& v : mallory_reported) v = std::max(0.0, v - theft_kw);
      break;

    case AttackClass::k3A: {
      // Report swapped readings; actual consumption unchanged.
      const auto swap = optimal_swap_attack(mallory_week, pricing::nightsaver(),
                                            /*first_slot=*/0,
                                            /*model=*/nullptr, {});
      mallory_reported = swap.reported;
      break;
    }

    case AttackClass::k1B: {
      // 1A plus neighbor over-reports that absorb the theft.
      for (Kw& v : mallory_actual) v += theft_kw;
      const Kw share = theft_kw / static_cast<double>(m);
      for (std::size_t n = 1; n <= m; ++n) {
        for (Kw& v : sc.reported[n]) v += share;
      }
      break;
    }

    case AttackClass::k2B: {
      // 2A plus neighbor over-reports.
      for (std::size_t t = 0; t < len; ++t) {
        const Kw reported = std::max(0.0, mallory_reported[t] - theft_kw);
        const Kw hidden = mallory_reported[t] - reported;
        mallory_reported[t] = reported;
        const Kw share = hidden / static_cast<double>(m);
        for (std::size_t n = 1; n <= m; ++n) sc.reported[n][t] += share;
      }
      break;
    }

    case AttackClass::k3B: {
      // 3A plus neighbor compensation so every per-slot balance holds.
      const auto swap = optimal_swap_attack(mallory_week, pricing::nightsaver(),
                                            /*first_slot=*/0,
                                            /*model=*/nullptr, {});
      mallory_reported = swap.reported;
      for (std::size_t t = 0; t < len; ++t) {
        const Kw diff = mallory_actual[t] - mallory_reported[t];  // signed
        const Kw share = diff / static_cast<double>(m);
        for (std::size_t n = 1; n <= m; ++n) {
          sc.reported[n][t] = std::max(0.0, sc.reported[n][t] + share);
        }
      }
      break;
    }

    case AttackClass::k4B: {
      // Inflate neighbors' ADR price so they curtail; consume the slack.
      const pricing::OwnElasticity elasticity(/*elasticity=*/0.8,
                                              /*reference_price=*/0.20);
      const DollarsPerKWh inflated_price = 0.30;
      for (std::size_t t = 0; t < len; ++t) {
        Kw freed = 0.0;
        for (std::size_t n = 1; n <= m; ++n) {
          const Kw baseline = sc.actual[n][t];
          const Kw curtailed = elasticity.respond(baseline, inflated_price);
          sc.actual[n][t] = curtailed;     // victim actually consumes less
          sc.reported[n][t] = baseline;    // meter reports the baseline
          freed += baseline - curtailed;
        }
        mallory_actual[t] += freed;        // Mallory consumes the slack
        // Mallory's reported stays at her typical consumption.
      }
      break;
    }
  }
  return sc;
}

}  // namespace fdeta::attack
