// Combination attacks (Section VI: "electricity theft attacks in practice
// may be a combination of one or more of these seven attack classes";
// Section VIII-F3: Mallory "may inject an attack that combines Attack Class
// 3B with Attack Classes 1B and/or 2B").
//
// The combined 2B+3B realization: Mallory first swaps her reported load to
// exploit the tariff spread (3B), then shaves a uniform under-report on top
// (2B), keeping every reading inside the (poisoned) ARIMA CI and the weekly
// mean above the historical minimum.  The two gains stack: tariff-spread
// profit plus stolen energy.
#pragma once

#include <span>
#include <vector>

#include "attack/optimal_swap.h"
#include "common/rng.h"
#include "common/units.h"
#include "meter/weekly_stats.h"
#include "pricing/tariff.h"
#include "timeseries/arima.h"

namespace fdeta::attack {

struct CombinedAttackConfig {
  OptimalSwapConfig swap{};
  /// Fraction of the gap between the week's mean and the training minimum
  /// mean that the under-report component claims (1.0 = all the way down to
  /// mean_lo).
  double shave_fraction = 0.9;
  double z = 1.96;  ///< stay inside this CI while shaving
};

struct CombinedAttackResult {
  std::vector<Kw> reported;
  std::size_t swaps = 0;
  Kw shave_kw = 0.0;  ///< uniform under-report applied per slot
};

/// Builds the combined 2B+3B reported week from `actual_week`.
CombinedAttackResult combined_swap_under_report(
    std::span<const Kw> actual_week, const pricing::TimeOfUse& tou,
    const ts::ArimaModel& model, std::span<const Kw> history,
    const meter::WeeklyStats& wstats, const CombinedAttackConfig& config = {});

}  // namespace fdeta::attack
