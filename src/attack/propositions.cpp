#include "attack/propositions.h"

#include "common/error.h"

namespace fdeta::attack {

std::optional<SlotIndex> proposition1_witness(std::span<const Kw> actual,
                                              std::span<const Kw> reported) {
  require(actual.size() == reported.size(),
          "proposition1_witness: size mismatch");
  for (std::size_t t = 0; t < actual.size(); ++t) {
    if (reported[t] < actual[t]) return t;
  }
  return std::nullopt;
}

std::optional<NeighborWitness> proposition2_witness(
    std::span<const std::span<const Kw>> neighbors_actual,
    std::span<const std::span<const Kw>> neighbors_reported) {
  require(neighbors_actual.size() == neighbors_reported.size(),
          "proposition2_witness: neighbor count mismatch");
  for (std::size_t n = 0; n < neighbors_actual.size(); ++n) {
    const auto& actual = neighbors_actual[n];
    const auto& reported = neighbors_reported[n];
    require(actual.size() == reported.size(),
            "proposition2_witness: series size mismatch");
    for (std::size_t t = 0; t < actual.size(); ++t) {
      if (reported[t] > actual[t]) return NeighborWitness{n, t};
    }
  }
  return std::nullopt;
}

}  // namespace fdeta::attack
