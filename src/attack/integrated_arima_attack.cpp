#include "attack/integrated_arima_attack.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/truncated_normal.h"

namespace fdeta::attack {

namespace {

/// One TND draw of a full attack vector steered toward `target_mean`.
std::vector<Kw> draw_vector(const ts::ArimaModel& model,
                            std::span<const Kw> history, double target_mean,
                            double sigma, std::size_t length, Rng& rng,
                            const IntegratedAttackConfig& config) {
  std::vector<Kw> vector;
  vector.reserve(length);
  ts::RollingForecaster forecaster = model.forecaster(history);
  double running_sum = 0.0;

  for (std::size_t t = 0; t < length; ++t) {
    const ts::Forecast f = forecaster.next();
    const double lo = std::max(config.floor_kw, f.lower(config.z));
    const double hi = std::max(lo + 1e-9, f.upper(config.z));

    // Proportional feedback on the realised mean so the weekly average lands
    // on the target despite truncation clipping.
    double mu = target_mean;
    if (t > 0) {
      const double realised = running_sum / static_cast<double>(t);
      mu = target_mean + config.drift_gain * (target_mean - realised);
    }

    const stats::TruncatedNormal tnd(mu, sigma, lo, hi);
    const Kw forged = tnd.sample(rng);
    vector.push_back(forged);
    running_sum += forged;
    forecaster.observe(forged);  // poison the (replicated) utility model
  }
  return vector;
}

}  // namespace

bool evades_window_checks(std::span<const Kw> vector,
                          const meter::WeeklyStats& wstats) {
  const double m = stats::mean(vector);
  const double v = stats::variance(vector);
  return m >= wstats.mean_lo && m <= wstats.mean_hi && v <= wstats.var_hi;
}

std::vector<Kw> integrated_arima_attack_vector(
    const ts::ArimaModel& model, std::span<const Kw> history,
    const meter::WeeklyStats& wstats, std::size_t length, Rng& rng,
    const IntegratedAttackConfig& config) {
  require(length >= 2, "integrated_arima_attack_vector: need length >= 2");

  const double target = config.over_report ? wstats.mean_hi : wstats.mean_lo;
  const double median_mean = stats::median(wstats.means);
  // A wide TND scale relative to the CI support spreads samples across the
  // whole interval (no deterministic pattern); the truncation keeps every
  // reading inside the CI, so the realised weekly variance stays at CI
  // scale, comfortably under var_hi.
  const double sigma = std::max(0.5 * std::sqrt(wstats.var_hi), 1e-4);

  std::vector<Kw> best;
  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(
                                    config.max_attempts, 1);
       ++attempt) {
    // Retreat the target toward the median by 10% per failed attempt:
    // maximum gain first, then progressively safer.
    const double retreat = 0.1 * static_cast<double>(attempt);
    const double target_eff = target + (median_mean - target) * retreat;
    std::vector<Kw> candidate =
        draw_vector(model, history, target_eff, sigma, length, rng, config);
    if (evades_window_checks(candidate, wstats)) return candidate;
    if (best.empty()) best = std::move(candidate);
  }
  // No attempt evaded Mallory's replica checks (e.g. the CI pins readings
  // below mean_lo for very small consumers).  She attacks anyway with her
  // most aggressive draw - and gets caught, as 10.8% of 2A/2B consumers do.
  return best;
}

}  // namespace fdeta::attack
