#include "attack/collusion.h"

#include <algorithm>

#include "common/error.h"

namespace fdeta::attack {

CollusionScenario make_collusion_scenario(const grid::Topology& topology,
                                          const meter::Dataset& actual,
                                          std::size_t group_size,
                                          double shave_fraction,
                                          std::size_t week) {
  require(group_size >= 1, "make_collusion_scenario: group_size >= 1");
  require(shave_fraction > 0.0 && shave_fraction < 1.0,
          "make_collusion_scenario: shave_fraction in (0, 1)");
  require(actual.consumer_count() == topology.consumer_count(),
          "make_collusion_scenario: dataset does not match topology");
  require(week < actual.week_count(),
          "make_collusion_scenario: week out of range");

  // Deepest internal node with a big-enough sibling pool; ascending-id scan
  // with strict > keeps the smallest id among ties.
  grid::NodeId best = grid::kNoNode;
  int best_depth = -1;
  for (std::size_t id = 0; id < topology.node_count(); ++id) {
    const grid::NodeId nid = static_cast<grid::NodeId>(id);
    if (topology.node(nid).kind != grid::NodeKind::kInternal) continue;
    if (topology.consumers_under(nid).size() < group_size) continue;
    const int depth = topology.depth(nid);
    if (depth > best_depth) {
      best_depth = depth;
      best = nid;
    }
  }
  require(best != grid::kNoNode,
          "make_collusion_scenario: no internal node has group_size "
          "consumer descendants");

  CollusionScenario scenario;
  scenario.node = best;
  std::vector<std::size_t> members = topology.consumers_under(best);
  std::sort(members.begin(), members.end());
  members.resize(group_size);
  scenario.consumers = std::move(members);

  scenario.injections.reserve(group_size);
  for (const std::size_t i : scenario.consumers) {
    WeekInjection injection;
    injection.consumer_index = i;
    injection.week = week;
    const std::span<const Kw> actual_week = actual.consumer(i).week(week);
    injection.reported_week.assign(actual_week.begin(), actual_week.end());
    for (Kw& kw : injection.reported_week) kw *= 1.0 - shave_fraction;
    scenario.injections.push_back(std::move(injection));
  }
  return scenario;
}

}  // namespace fdeta::attack
