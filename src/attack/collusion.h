// The collusion scenario: k sibling consumers under one transformer each
// shave a sliver small enough to stay under their per-consumer detection
// threshold.  Individually every attacker is invisible (sub-threshold by
// construction); jointly they shift the shared feeder's balance residual by
// k slivers, which is exactly what the feeder-level hierarchy layer
// (grid/hierarchy/feeder_monitor.h) exists to catch.  Extends the
// ext_multiple_attackers study from independent attackers to coordinated
// sibling groups.
#pragma once

#include <cstddef>
#include <vector>

#include "attack/injector.h"
#include "grid/topology.h"
#include "meter/dataset.h"

namespace fdeta::attack {

struct CollusionScenario {
  /// The deepest internal node whose subtree contains the whole group (the
  /// transformer the colluders share).
  grid::NodeId node = grid::kNoNode;
  /// Dense consumer indices of the colluders, ascending.
  std::vector<std::size_t> consumers;
  /// One under-report injection per colluder for `week`: reported =
  /// actual * (1 - shave_fraction), preserving the load shape (a uniform
  /// multiplicative shave is the hardest sub-threshold case for
  /// shape-sensitive detectors).
  std::vector<WeekInjection> injections;
};

/// Builds a collusion scenario over `topology`: picks the DEEPEST internal
/// node with at least `group_size` consumer descendants (ties broken toward
/// the smallest node id), takes its first `group_size` consumers (ascending
/// dense index) and shaves each one's `week` by `shave_fraction`.  Anchoring
/// the group at the deepest eligible node makes the colluders dominate that
/// node's aggregate - the regime the hierarchy layer must localize.
/// Throws InvalidArgument when no node is deep enough, the week is out of
/// range, or shave_fraction is outside (0, 1).
CollusionScenario make_collusion_scenario(const grid::Topology& topology,
                                          const meter::Dataset& actual,
                                          std::size_t group_size,
                                          double shave_fraction,
                                          std::size_t week);

}  // namespace fdeta::attack
