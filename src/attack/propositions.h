// Machine-checkable forms of the paper's Propositions 1 and 2.
//
// Proposition 1: a successful theft (condition (1)) requires some slot where
// the attacker under-reports: D'_A(t) < D_A(t).
//
// Proposition 2: a theft that also satisfies the balance check (eq. (8))
// requires some (neighbor, slot) where the neighbor is over-reported:
// D'_n(t) > D_n(t).
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "common/units.h"

namespace fdeta::attack {

/// First slot where reported < actual (a Proposition-1 witness), if any.
std::optional<SlotIndex> proposition1_witness(std::span<const Kw> actual,
                                              std::span<const Kw> reported);

/// A (neighbor, slot) over-report witness for Proposition 2.
struct NeighborWitness {
  std::size_t neighbor;  ///< index into the neighbor arrays
  SlotIndex slot;
};

/// Searches neighbors' actual/reported series (parallel spans of equal
/// length) for a slot where reported > actual.
std::optional<NeighborWitness> proposition2_witness(
    std::span<const std::span<const Kw>> neighbors_actual,
    std::span<const std::span<const Kw>> neighbors_reported);

}  // namespace fdeta::attack
