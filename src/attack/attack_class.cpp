#include "attack/attack_class.h"

namespace fdeta::attack {

ClassProperties properties(AttackClass cls) {
  // Columns of Table I.
  switch (cls) {
    case AttackClass::k1A:
      return {.circumvents_balance_check = false,
              .possible_flat_rate = true,
              .possible_tou = true,
              .possible_rtp = true,
              .requires_adr = false};
    case AttackClass::k2A:
      return {.circumvents_balance_check = false,
              .possible_flat_rate = true,
              .possible_tou = true,
              .possible_rtp = true,
              .requires_adr = false};
    case AttackClass::k3A:
      return {.circumvents_balance_check = false,
              .possible_flat_rate = false,
              .possible_tou = true,
              .possible_rtp = true,
              .requires_adr = false};
    case AttackClass::k1B:
      return {.circumvents_balance_check = true,
              .possible_flat_rate = true,
              .possible_tou = true,
              .possible_rtp = true,
              .requires_adr = false};
    case AttackClass::k2B:
      return {.circumvents_balance_check = true,
              .possible_flat_rate = true,
              .possible_tou = true,
              .possible_rtp = true,
              .requires_adr = false};
    case AttackClass::k3B:
      return {.circumvents_balance_check = true,
              .possible_flat_rate = false,
              .possible_tou = true,
              .possible_rtp = true,
              .requires_adr = false};
    case AttackClass::k4B:
      return {.circumvents_balance_check = true,
              .possible_flat_rate = false,
              .possible_tou = false,
              .possible_rtp = true,
              .requires_adr = true};
  }
  return {};
}

std::string_view name(AttackClass cls) {
  switch (cls) {
    case AttackClass::k1A: return "1A";
    case AttackClass::k2A: return "2A";
    case AttackClass::k3A: return "3A";
    case AttackClass::k1B: return "1B";
    case AttackClass::k2B: return "2B";
    case AttackClass::k3B: return "3B";
    case AttackClass::k4B: return "4B";
  }
  return "?";
}

bool involves_neighbor(AttackClass cls) {
  return properties(cls).circumvents_balance_check;
}

}  // namespace fdeta::attack
