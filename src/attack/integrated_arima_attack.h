// The Integrated ARIMA attack (identified in ref [2]; Section VIII-B).
//
// The Integrated ARIMA detector augments the per-reading CI check with
// window mean and variance checks against training-set weekly statistics.
// To circumvent all three, the attack draws each forged reading from a
// Truncated Normal Distribution whose support is the (poisoned) rolling
// ARIMA confidence interval and whose location steers the realised weekly
// mean toward the *maximum* of training weekly means (Attack Class 1B,
// over-reporting a victim) or the *minimum* (Attack Classes 2A/2B,
// under-reporting Mallory herself).  The TND scale is chosen so the realised
// weekly variance stays inside the training variance range.
//
// Randomness keeps the vector free of deterministic patterns; the paper
// draws 50 vectors per consumer and evaluates detectors against the
// worst case (Section VIII-B).
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "meter/weekly_stats.h"
#include "timeseries/arima.h"

namespace fdeta::attack {

struct IntegratedAttackConfig {
  /// Over-report (1B) targets mean_hi; under-report (2A/2B) targets mean_lo.
  bool over_report = true;
  double z = 1.96;   ///< CI half-width used as the TND truncation support
  Kw floor_kw = 0.0; ///< readings cannot go negative
  /// Proportional feedback gain steering the realised mean to the target.
  double drift_gain = 1.5;
  /// Mallory replicates the detector's mean/variance checks and, if a draw
  /// would trip them, retreats the target toward the training median mean
  /// and redraws - up to this many attempts (maximising gain subject to
  /// evasion, Section IV).  The paper's residual detection rates (0.6% for
  /// 1B, 10.8% for 2A/2B) come from consumers for whom no retreat evades.
  std::size_t max_attempts = 8;
};

/// Generates one week-length (or arbitrary-length) attack vector.
std::vector<Kw> integrated_arima_attack_vector(
    const ts::ArimaModel& model, std::span<const Kw> history,
    const meter::WeeklyStats& wstats, std::size_t length, Rng& rng,
    const IntegratedAttackConfig& config);

/// Mallory's replica of the Integrated ARIMA detector's window checks:
/// mean within [mean_lo, mean_hi] and variance no greater than var_hi
/// (ref [2]: "the mean and variance of the false readings do not exceed
/// thresholds based on historic data").
bool evades_window_checks(std::span<const Kw> vector,
                          const meter::WeeklyStats& wstats);

}  // namespace fdeta::attack
