// The Optimal Swap attack (Attack Classes 3A/3B, Section VIII-B3).
//
// Under two-period TOU pricing, Mallory swaps the *reported times* of her
// highest peak-period readings with her lowest off-peak readings, day by
// day.  The multiset of readings - and therefore the weekly mean, variance
// and value distribution - is unchanged; only the temporal ordering moves,
// so the unconditioned KLD detector is blind to it by design.  Profit per
// swapped pair is (peak_rate - off_peak_rate) * (high - low) * Delta-t.
//
// The paper injects swaps "in a way that minimized errors due to exceeding
// the confidence intervals of the ARIMA detector"; we reproduce that with a
// repair loop that reverts swaps violating the (poisoned) rolling CI.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/units.h"
#include "pricing/tariff.h"
#include "timeseries/arima.h"

namespace fdeta::attack {

struct SwapPair {
  SlotIndex peak_slot;      ///< slot (within the week) of the high reading
  SlotIndex off_peak_slot;  ///< slot (within the week) of the low reading
};

struct OptimalSwapResult {
  std::vector<Kw> reported;      ///< the week after swapping
  std::vector<SwapPair> swaps;   ///< surviving swaps (after CI repair)
  std::size_t reverted = 0;      ///< swaps undone to evade the ARIMA CI
};

struct OptimalSwapConfig {
  double z = 1.96;  ///< ARIMA CI half-width to stay inside
  std::size_t max_repair_iterations = 64;
  /// Violation count the attacker must stay at or below (her replica of the
  /// detector's calibrated weekly budget).  When unset, the clean week's own
  /// violation count is used - the most conservative target.
  std::optional<std::size_t> violation_budget;
};

/// Builds the swapped week from `actual_week` (length = one week of slots).
/// `first_slot` is the week's absolute starting slot (for the TOU calendar;
/// weeks start at slot multiples so 0 is typical).  If `model` is non-null,
/// the CI-repair loop reverts swaps that would trip the per-reading ARIMA
/// check primed with `history`.
OptimalSwapResult optimal_swap_attack(std::span<const Kw> actual_week,
                                      const pricing::TimeOfUse& tou,
                                      SlotIndex first_slot,
                                      const ts::ArimaModel* model,
                                      std::span<const Kw> history,
                                      const OptimalSwapConfig& config = {});

}  // namespace fdeta::attack
