#include "attack/optimal_swap.h"

#include <algorithm>
#include <optional>

#include "common/error.h"

namespace fdeta::attack {

namespace {

/// Greedy per-day pairing: highest peak readings against lowest off-peak
/// readings, swapped only while profitable (high > low).
std::vector<SwapPair> plan_swaps(std::span<const Kw> week,
                                 const pricing::TimeOfUse& tou,
                                 SlotIndex first_slot) {
  std::vector<SwapPair> swaps;
  const std::size_t days = week.size() / kSlotsPerDay;
  for (std::size_t day = 0; day < days; ++day) {
    std::vector<SlotIndex> peak, off_peak;
    for (int s = 0; s < kSlotsPerDay; ++s) {
      const SlotIndex slot = day * kSlotsPerDay + s;
      if (tou.is_peak(first_slot + slot)) {
        peak.push_back(slot);
      } else {
        off_peak.push_back(slot);
      }
    }
    std::sort(peak.begin(), peak.end(), [&](SlotIndex a, SlotIndex b) {
      return week[a] > week[b];  // highest peak readings first
    });
    std::sort(off_peak.begin(), off_peak.end(), [&](SlotIndex a, SlotIndex b) {
      return week[a] < week[b];  // lowest off-peak readings first
    });
    const std::size_t pairs = std::min(peak.size(), off_peak.size());
    for (std::size_t i = 0; i < pairs; ++i) {
      if (week[peak[i]] <= week[off_peak[i]]) break;  // no further profit
      swaps.push_back(SwapPair{peak[i], off_peak[i]});
    }
  }
  return swaps;
}

std::vector<Kw> apply_swaps(std::span<const Kw> week,
                            const std::vector<SwapPair>& swaps) {
  std::vector<Kw> out(week.begin(), week.end());
  for (const SwapPair& s : swaps) {
    std::swap(out[s.peak_slot], out[s.off_peak_slot]);
  }
  return out;
}

/// Slots where the reported week trips the rolling ARIMA CI.  Mirrors the
/// utility-side detector: the forecaster is fed the *reported* readings, so
/// it is poisoned exactly as the real detector would be.
std::vector<SlotIndex> ci_violations(std::span<const Kw> reported,
                                     const ts::ArimaModel& model,
                                     std::span<const Kw> history, double z) {
  std::vector<SlotIndex> out;
  ts::RollingForecaster forecaster = model.forecaster(history);
  for (std::size_t t = 0; t < reported.size(); ++t) {
    const ts::Forecast f = forecaster.next();
    if (!f.contains(reported[t], z)) out.push_back(t);
    forecaster.observe(reported[t]);
  }
  return out;
}

}  // namespace

OptimalSwapResult optimal_swap_attack(std::span<const Kw> actual_week,
                                      const pricing::TimeOfUse& tou,
                                      SlotIndex first_slot,
                                      const ts::ArimaModel* model,
                                      std::span<const Kw> history,
                                      const OptimalSwapConfig& config) {
  require(actual_week.size() % kSlotsPerDay == 0,
          "optimal_swap_attack: week must be whole days");

  OptimalSwapResult result;
  result.swaps = plan_swaps(actual_week, tou, first_slot);
  result.reported = apply_swaps(actual_week, result.swaps);
  if (model == nullptr) return result;

  // CI repair.  Honest weeks already violate a 95% CI at the nominal rate,
  // so the attacker's goal is not zero violations but "no more violations
  // than a clean week would show": she reverts swaps until the replica
  // detector sees a violation count at (or below) the clean week's.
  const std::size_t budget =
      config.violation_budget.value_or(
          ci_violations(actual_week, *model, history, config.z).size());
  for (std::size_t iter = 0;
       iter < config.max_repair_iterations && !result.swaps.empty(); ++iter) {
    const std::size_t current =
        ci_violations(result.reported, *model, history, config.z).size();
    if (current <= budget) break;

    // Greedy: revert whichever single swap reduces the violation count the
    // most (ties favour the smallest profit sacrifice - the last swap in the
    // per-day greedy ordering).
    std::size_t best_count = current;
    auto best = result.swaps.end();
    for (auto it = result.swaps.begin(); it != result.swaps.end(); ++it) {
      std::vector<SwapPair> candidate(result.swaps.begin(), result.swaps.end());
      candidate.erase(candidate.begin() + (it - result.swaps.begin()));
      const auto trial = apply_swaps(actual_week, candidate);
      const std::size_t count =
          ci_violations(trial, *model, history, config.z).size();
      if (count < best_count) {
        best_count = count;
        best = it;
      }
    }
    if (best == result.swaps.end()) {
      // Violations are structural (boundary jumps persist whichever single
      // swap is removed): fall back to sacrificing a whole day's swaps - the
      // day of the first violation, else the last day still swapped.
      const auto violations =
          ci_violations(result.reported, *model, history, config.z);
      std::size_t day = violations.empty()
                            ? result.swaps.back().peak_slot / kSlotsPerDay
                            : violations.front() / kSlotsPerDay;
      auto in_day = [&day](const SwapPair& s) {
        return s.peak_slot / kSlotsPerDay == day ||
               s.off_peak_slot / kSlotsPerDay == day;
      };
      if (std::none_of(result.swaps.begin(), result.swaps.end(), in_day)) {
        day = result.swaps.back().peak_slot / kSlotsPerDay;
      }
      const auto removed = std::count_if(result.swaps.begin(),
                                         result.swaps.end(), in_day);
      std::erase_if(result.swaps, in_day);
      result.reverted += static_cast<std::size_t>(removed);
      result.reported = apply_swaps(actual_week, result.swaps);
      continue;
    }
    result.swaps.erase(best);
    ++result.reverted;
    result.reported = apply_swaps(actual_week, result.swaps);
  }
  return result;
}

}  // namespace fdeta::attack
