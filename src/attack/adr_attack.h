// Attack Class 4B: ADR price-signal compromise under real-time pricing.
//
// The paper defines the class (Section VI-B) and leaves its quantitative
// study as future work because the CER data has no ADR; this module is that
// extension, built on the Consumer Own Elasticity model of ref [26].
//
// Mechanics: Mallory inflates the price stream seen by a victim's ADR
// interface (lambda'_n(t) > lambda(t)); the interface automatically curtails
// demand; Mallory consumes the freed power.  The victim's meter is
// compromised to report baseline consumption, so the balance check passes
// and the victim even *believes* he saved money (eq. 11) while actually
// paying Mallory's bill (eq. 10).
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "pricing/elasticity.h"
#include "pricing/tariff.h"

namespace fdeta::attack {

struct AdrAttackConfig {
  double price_inflation = 1.5;  ///< lambda'_n = inflation * lambda
  double elasticity = 0.8;       ///< victim's own-elasticity
};

/// Outcome of a 4B attack on one victim over one week.
struct AdrAttackResult {
  std::vector<Kw> victim_actual;     ///< curtailed consumption D_n
  std::vector<Kw> victim_reported;   ///< over-reported consumption D'_n
  std::vector<Kw> freed_kw;          ///< per-slot power absorbed by Mallory
  std::vector<DollarsPerKWh> compromised_price;  ///< lambda'_n(t)

  Dollars victim_perceived_benefit = 0.0;  ///< Delta-B of eq. (11), > 0
  Dollars victim_loss = 0.0;               ///< L_n of eq. (10), > 0
  KWh energy_stolen = 0.0;                 ///< total freed energy
};

/// Launches the attack against a victim whose price-responsive baseline is
/// `victim_baseline` (the demand he would draw at the true price).
/// `rtp` supplies the true prices for slots [first_slot, first_slot + len).
AdrAttackResult launch_adr_attack(std::span<const Kw> victim_baseline,
                                  const pricing::RealTimePricing& rtp,
                                  SlotIndex first_slot,
                                  const AdrAttackConfig& config = {});

}  // namespace fdeta::attack
