// Applying attack vectors to datasets and constructing full neighborhood
// theft scenarios (actual vs reported series for Mallory and her neighbors)
// that satisfy the balance-check constraint (eq. 8) for B-class attacks.
#pragma once

#include <cstddef>
#include <vector>

#include "attack/attack_class.h"
#include "common/units.h"
#include "meter/dataset.h"

namespace fdeta::attack {

/// Replaces one consumer's readings for one week with an attack vector.
struct WeekInjection {
  std::size_t consumer_index = 0;
  std::size_t week = 0;               ///< absolute week index in the horizon
  std::vector<Kw> reported_week;      ///< length = slots per week
};

/// Returns a copy of `actual` with the injections applied; the copy is the
/// *reported* dataset D' while `actual` remains D.
meter::Dataset apply_injections(const meter::Dataset& actual,
                                const std::vector<WeekInjection>& injections);

/// A concrete theft scenario at one balance node: Mallory plus M neighbors,
/// with actual and reported week series for everyone, constructed so the
/// paper's A/B distinction is explicit:
///  - A-class scenarios leave neighbors untouched (root balance check fails);
///  - B-class scenarios over-report neighbors by exactly Mallory's theft
///    (root balance check passes; Proposition 2 witness exists).
struct NeighborhoodScenario {
  AttackClass attack_class;
  std::vector<std::vector<Kw>> actual;    ///< [0] = Mallory, [1..] neighbors
  std::vector<std::vector<Kw>> reported;  ///< same layout

  std::span<const Kw> mallory_actual() const { return actual.front(); }
  std::span<const Kw> mallory_reported() const { return reported.front(); }
};

/// Builds a canonical instance of the given class over `week` (Mallory's
/// actual consumption) and `neighbor_weeks` (the innocent neighbors'
/// actual consumption).  For class 3A/3B, `peak_rate`/`off_peak_rate`
/// swapping uses the standard Nightsaver calendar; for 4B, an elasticity of
/// 0.8 and a 1.5x price inflation are used.  `theft_kw` scales 1x/2x-class
/// injections.
NeighborhoodScenario make_scenario(AttackClass cls,
                                   std::span<const Kw> mallory_week,
                                   std::span<const std::vector<Kw>> neighbor_weeks,
                                   Kw theft_kw = 1.0);

}  // namespace fdeta::attack
