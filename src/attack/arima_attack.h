// The ARIMA attack (ref [2], Section VIII-B1).
//
// Mallory passively monitors the meter, fits the same ARIMA model the
// utility's detector uses, and rides the confidence interval: each forged
// reading is placed exactly at the one-step-ahead CI bound (upper bound to
// over-report a victim in Attack Class 1B; lower bound, floored at zero, to
// under-report herself in Attack Classes 2A/2B).  Because the forged stream
// is fed back into the rolling model, the utility's confidence interval
// "follows the attack vector" (the model is poisoned) and the per-reading
// check never fires.
#pragma once

#include <span>
#include <vector>

#include "common/units.h"
#include "timeseries/arima.h"

namespace fdeta::attack {

enum class Direction : std::uint8_t {
  kOverReport,   ///< Attack Class 1B: victim's readings pushed up
  kUnderReport,  ///< Attack Classes 2A/2B: Mallory's readings pushed down
};

struct ArimaAttackConfig {
  Direction direction = Direction::kOverReport;
  double z = 1.96;      ///< CI half-width in stddevs (95% CI)
  double margin = 1e-6; ///< stay strictly inside the bound by this much
  Kw floor_kw = 0.0;    ///< physical floor (readings cannot go negative)
};

/// Generates a `length`-slot attack vector by riding the poisoned rolling
/// CI.  `history` primes the forecaster (typically the training tail).
std::vector<Kw> arima_attack_vector(const ts::ArimaModel& model,
                                    std::span<const Kw> history,
                                    std::size_t length,
                                    const ArimaAttackConfig& config);

}  // namespace fdeta::attack
