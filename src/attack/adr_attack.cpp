#include "attack/adr_attack.h"

#include "common/error.h"

namespace fdeta::attack {

AdrAttackResult launch_adr_attack(std::span<const Kw> victim_baseline,
                                  const pricing::RealTimePricing& rtp,
                                  SlotIndex first_slot,
                                  const AdrAttackConfig& config) {
  require(config.price_inflation > 1.0,
          "launch_adr_attack: inflation must exceed 1 (higher price)");
  const std::size_t len = victim_baseline.size();
  require(len >= 1, "launch_adr_attack: empty baseline");

  AdrAttackResult r;
  r.victim_actual.resize(len);
  r.victim_reported.resize(len);
  r.freed_kw.resize(len);
  r.compromised_price.resize(len);

  for (std::size_t t = 0; t < len; ++t) {
    const DollarsPerKWh true_price = rtp.price(first_slot + t);
    const DollarsPerKWh forged_price = config.price_inflation * true_price;
    // The victim's own-elasticity response is anchored at the true price
    // (that is the price his baseline corresponds to).
    const pricing::OwnElasticity elasticity(config.elasticity, true_price);

    const Kw baseline = victim_baseline[t];
    const Kw curtailed = elasticity.respond(baseline, forged_price);

    r.compromised_price[t] = forged_price;
    r.victim_actual[t] = curtailed;   // D_n(t) < D'_n(t)
    r.victim_reported[t] = baseline;  // meter over-reports the baseline
    r.freed_kw[t] = baseline - curtailed;

    // Eq. (11): expected bill at the forged price minus the utility's bill
    // at the true price, both over reported consumption.
    r.victim_perceived_benefit +=
        (forged_price - true_price) * baseline * kHoursPerSlot;
    // Eq. (10): what the victim pays for power he never used.
    r.victim_loss += true_price * (baseline - curtailed) * kHoursPerSlot;
    r.energy_stolen += slot_energy(baseline - curtailed);
  }
  return r;
}

}  // namespace fdeta::attack
