#include "attack/combined_attack.h"

#include <algorithm>

#include "common/error.h"
#include "stats/descriptive.h"

namespace fdeta::attack {

CombinedAttackResult combined_swap_under_report(
    std::span<const Kw> actual_week, const pricing::TimeOfUse& tou,
    const ts::ArimaModel& model, std::span<const Kw> history,
    const meter::WeeklyStats& wstats, const CombinedAttackConfig& config) {
  require(config.shave_fraction >= 0.0 && config.shave_fraction <= 1.0,
          "combined_swap_under_report: shave_fraction must be in [0,1]");

  // Stage 1: the 3B load-shift component.
  const auto swap = optimal_swap_attack(actual_week, tou, 0, &model, history,
                                        config.swap);

  CombinedAttackResult result;
  result.swaps = swap.swaps.size();
  result.reported = swap.reported;

  // Stage 2: the 2B under-report component - a uniform shave sized so the
  // weekly mean lands `shave_fraction` of the way down to the training
  // minimum (the Integrated detector's lower bound).
  const double mean_now = stats::mean(result.reported);
  const double target =
      mean_now - config.shave_fraction * (mean_now - wstats.mean_lo);
  result.shave_kw = std::max(0.0, mean_now - target);
  if (result.shave_kw <= 0.0) return result;

  // Shave while respecting the floor at zero; the rolling CI follows the
  // persistently shaved stream (poisoning), so a uniform shift of this size
  // stays within the band after the first few readings - verified by the
  // caller's detector replica in the benches/tests.
  for (Kw& v : result.reported) v = std::max(0.0, v - result.shave_kw);
  return result;
}

}  // namespace fdeta::attack
