// The seven-class electricity-theft attack taxonomy (Section VI, Table I).
//
// A-classes (1A, 2A, 3A) fail the balance check; B-classes (1B, 2B, 3B, 4B)
// circumvent it by over-reporting at least one neighbor (Proposition 2).
// Within each group:
//   1x - Mallory consumes more than typical while reporting typical readings
//        (line-tap style; arbitrary theft volume).
//   2x - Mallory under-reports her own typical consumption (bounded by her
//        typical consumption).
//   3x - Mallory shifts *reported* load from expensive to cheap periods
//        (profit without net theft; needs variable pricing).
//   4B - Mallory inflates neighbors' ADR price signals so their demand drops
//        and consumes the freed power (needs RTP + ADR).
#pragma once

#include <array>
#include <string_view>

namespace fdeta::attack {

enum class AttackClass : std::uint8_t { k1A, k2A, k3A, k1B, k2B, k3B, k4B };

inline constexpr std::array<AttackClass, 7> kAllAttackClasses = {
    AttackClass::k1A, AttackClass::k2A, AttackClass::k3A, AttackClass::k1B,
    AttackClass::k2B, AttackClass::k3B, AttackClass::k4B};

/// Table I: one row per property, one column per class.
struct ClassProperties {
  bool circumvents_balance_check = false;
  bool possible_flat_rate = false;
  bool possible_tou = false;
  bool possible_rtp = false;
  bool requires_adr = false;
};

/// The classification matrix of Table I.
ClassProperties properties(AttackClass cls);

std::string_view name(AttackClass cls);

/// Whether the class requires over-reporting a neighbor (all B classes).
bool involves_neighbor(AttackClass cls);

}  // namespace fdeta::attack
