#include "attack/arima_attack.h"

#include <algorithm>

namespace fdeta::attack {

std::vector<Kw> arima_attack_vector(const ts::ArimaModel& model,
                                    std::span<const Kw> history,
                                    std::size_t length,
                                    const ArimaAttackConfig& config) {
  std::vector<Kw> vector;
  vector.reserve(length);
  ts::RollingForecaster forecaster = model.forecaster(history);
  for (std::size_t t = 0; t < length; ++t) {
    const ts::Forecast f = forecaster.next();
    Kw forged;
    if (config.direction == Direction::kOverReport) {
      forged = f.upper(config.z) - config.margin;
      forged = std::max(forged, config.floor_kw);
    } else {
      forged = f.lower(config.z) + config.margin;
      forged = std::max(forged, config.floor_kw);
      // Never report more than the model's central forecast when trying to
      // under-report (can happen right after the floor clamp).
      forged = std::min(forged, std::max(f.mean, config.floor_kw));
    }
    vector.push_back(forged);
    forecaster.observe(forged);  // poison the (replicated) utility model
  }
  return vector;
}

}  // namespace fdeta::attack
