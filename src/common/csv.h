// Minimal CSV reading/writing for dataset import/export.
//
// The real CER data ships as "meter_id day_code consumption" rows; our
// examples export/import the synthetic dataset in a comparable long format so
// downstream users can substitute the licensed data.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace fdeta {

/// Splits one CSV line on `delim`.  No quoting support: the formats handled
/// here are purely numeric.
std::vector<std::string> split_csv_line(std::string_view line, char delim = ',');

/// Parses a string as double; throws DataError with context on failure.
double parse_double(std::string_view token, std::string_view context);

/// Parses a string as a non-negative integer; throws DataError on failure.
long parse_long(std::string_view token, std::string_view context);

/// Reads all lines from a stream, stripping trailing '\r'.  Trailing blank
/// lines are ignored; an *interior* blank line throws DataError, because
/// silently dropping it would shift the position of every subsequent row
/// (and with it the slot/week alignment of meter data).
std::vector<std::string> read_lines(std::istream& in);

/// Writes rows of doubles as CSV with the given header (header skipped if
/// empty).
void write_csv(std::ostream& out, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows);

}  // namespace fdeta
