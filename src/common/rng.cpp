#include "common/rng.h"

#include <cmath>

namespace fdeta {

double Rng::normal() {
  // Marsaglia polar method; rejects until a point falls inside the unit
  // circle.  The second variate is discarded to keep the stream stateless.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return draw % n;
}

Rng Rng::spawn(std::uint64_t stream) const {
  SplitMix64 sm(state_[0] ^ (state_[3] + 0x9E3779B97F4A7C15ULL * (stream + 1)));
  Rng child(0);
  child.state_ = {sm.next(), sm.next(), sm.next(), sm.next()};
  return child;
}

}  // namespace fdeta
