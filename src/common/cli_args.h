// Minimal --key value argument parsing, shared by the fdeta CLI and any
// downstream tools embedding the library.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fdeta {

class CliArgs {
 public:
  /// Parses argv[first..argc) as "--key value" pairs and bare boolean
  /// "--flag"s.  A --flag followed by another --flag (or by nothing) is
  /// boolean: has() is true and its value is the empty string.  A repeated
  /// flag keeps every occurrence (get_all) with the last one winning for the
  /// scalar accessors.  Throws InvalidArgument on a token that is not a
  /// --flag.
  CliArgs(int argc, const char* const* argv, int first = 1);

  /// String value, or `fallback` when the flag is absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Every value of a repeatable flag, in command-line order (empty when the
  /// flag is absent).
  std::vector<std::string> get_all(const std::string& key) const;

  /// Integer value (DataError on a malformed number), or `fallback`.
  long get_long(const std::string& key, long fallback) const;

  /// Double value (DataError on a malformed number), or `fallback`.
  double get_double(const std::string& key, double fallback) const;

  /// String value; InvalidArgument when the flag is absent.
  std::string require_value(const std::string& key) const;

  bool has(const std::string& key) const { return values_.contains(key); }
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;      // last occurrence wins
  std::vector<std::pair<std::string, std::string>> ordered_;  // every one
};

}  // namespace fdeta
