// Environment-variable helpers used by the benchmark harnesses to scale the
// experiments (FDETA_CONSUMERS, FDETA_VECTORS, ...).
#pragma once

#include <cstddef>
#include <string>

namespace fdeta {

/// Returns the integer value of environment variable `name`, or
/// `default_value` if unset/unparseable/out of range.
std::size_t env_size(const std::string& name, std::size_t default_value);

/// Returns the double value of environment variable `name`, or
/// `default_value` if unset or unparseable.
double env_double(const std::string& name, double default_value);

}  // namespace fdeta
