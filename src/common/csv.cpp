#include "common/csv.h"

#include <charconv>
#include <istream>
#include <ostream>

#include "common/error.h"

namespace fdeta {

std::vector<std::string> split_csv_line(std::string_view line, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(line.substr(start));
      break;
    }
    fields.emplace_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

double parse_double(std::string_view token, std::string_view context) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  // Skip leading whitespace, which from_chars rejects.
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw DataError("failed to parse double '" + std::string(token) + "' in " +
                    std::string(context));
  }
  return value;
}

long parse_long(std::string_view token, std::string_view context) {
  long value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw DataError("failed to parse integer '" + std::string(token) +
                    "' in " + std::string(context));
  }
  return value;
}

std::vector<std::string> read_lines(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  std::size_t blank_at = 0;  // 1-based line number of the first pending blank
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      // Benign only if nothing follows: remember the position and decide
      // when the next non-blank line (if any) arrives.
      if (blank_at == 0) blank_at = line_no;
      continue;
    }
    if (blank_at != 0) {
      // Dropping an interior blank would silently shift every subsequent
      // row - for slot-indexed meter data that de-aligns whole weeks - so
      // reject the file instead.
      throw DataError("read_lines: blank line " + std::to_string(blank_at) +
                      " before line " + std::to_string(line_no) +
                      " (interior blank lines would shift row positions)");
    }
    lines.push_back(line);
  }
  return lines;
}

void write_csv(std::ostream& out, const std::vector<std::string>& header,
               const std::vector<std::vector<double>>& rows) {
  if (!header.empty()) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (i) out << ',';
      out << header[i];
    }
    out << '\n';
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
}

}  // namespace fdeta
