#include "common/cli_args.h"

#include <cstring>

#include "common/csv.h"
#include "common/error.h"

namespace fdeta {

CliArgs::CliArgs(int argc, const char* const* argv, int first) {
  for (int i = first; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw InvalidArgument(std::string("expected --flag, got ") + argv[i]);
    }
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      values_[argv[i] + 2] = "";  // bare boolean flag
      ordered_.emplace_back(argv[i] + 2, "");
      i += 1;
    } else {
      values_[argv[i] + 2] = argv[i + 1];
      ordered_.emplace_back(argv[i] + 2, argv[i + 1]);
      i += 2;
    }
  }
}

std::vector<std::string> CliArgs::get_all(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : ordered_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long CliArgs::get_long(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : parse_long(it->second, "--" + key);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : parse_double(it->second, "--" + key);
}

std::string CliArgs::require_value(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw InvalidArgument("missing required flag --" + key);
  }
  return it->second;
}

}  // namespace fdeta
