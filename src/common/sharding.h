// Consistent consumer -> shard mapping for the fleet hot path.
//
// HeadEnd and OnlineMonitor split their per-consumer state into N
// independent shards so concurrent ingest feeds never contend on one
// mutex (ROADMAP item 1: the single-mutex ceiling).  The mapping must be
// a pure function of the consumer index - never of shard load, insertion
// order, or thread schedule - so that any (shard count x thread count)
// combination touches the same per-consumer state in the same per-consumer
// order and the determinism guarantees of the event log survive sharding.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fdeta {

/// Shard owning `consumer_index`.  SplitMix64 finalizer over the index:
/// platform-independent, stable across runs, and uniform even for the
/// sequential indices a fleet actually uses (a bare `index % shards` would
/// stripe neighbouring meters across shards, which is fine for load but
/// poor for the feeder-subtree sharding ROADMAP item 3 wants to move to -
/// the hash keeps the mapping opaque so callers never grow to depend on
/// adjacency).
inline std::size_t shard_of(std::size_t consumer_index,
                            std::size_t shard_count) {
  std::uint64_t z =
      static_cast<std::uint64_t>(consumer_index) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % static_cast<std::uint64_t>(shard_count));
}

/// Resolves a configured shard count: 0 = auto (4x the parallelism hint,
/// capped at 64 - enough that random placement rarely collides, small
/// enough that per-shard scratch buffers stay cache-resident), and never
/// more shards than consumers (a shard with no consumers is pure waste).
inline std::size_t resolve_shard_count(std::size_t requested,
                                       std::size_t consumers,
                                       std::size_t parallel_hint) {
  std::size_t shards = requested;
  if (shards == 0) {
    const std::size_t hint = parallel_hint == 0 ? 1 : parallel_hint;
    shards = hint * 4;
    if (shards > 64) shards = 64;
  }
  if (consumers > 0 && shards > consumers) shards = consumers;
  if (shards == 0) shards = 1;
  return shards;
}

}  // namespace fdeta
