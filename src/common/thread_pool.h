// A fixed-size worker pool with a parallel-for helper.
//
// The paper's evaluation ran "74 CPU cores for a total period of 4 weeks"
// (Section VIII-B); our evaluation harness runs the same
// consumer x attack-vector x detector sweep, parallelised per consumer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fdeta {

/// Work-queue thread pool.  Tasks are std::function<void()>; exceptions
/// escaping a task terminate the process (tasks are expected to capture and
/// report their own failures, as the evaluation harness does).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `body(i)` for i in [0, count) across a temporary pool (or inline for
/// tiny ranges).  Blocks until all iterations complete.  `body` must be safe
/// to invoke concurrently for distinct indices.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace fdeta
