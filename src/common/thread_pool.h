// A fixed-size worker pool with a parallel-for helper and a process-wide
// shared instance.
//
// The paper's evaluation ran "74 CPU cores for a total period of 4 weeks"
// (Section VIII-B); our evaluation harness runs the same
// consumer x attack-vector x detector sweep, parallelised per consumer.
// The fleet path (FdetaPipeline / OnlineMonitor) runs on the shared pool so
// that repeated calls (weekly sweeps, streaming batches, bench loops) do not
// pay thread-spawn cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fdeta {

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

/// Work-queue thread pool.  Tasks are std::function<void()>.  An exception
/// escaping a task is captured (the first one wins) and rethrown to the
/// caller of wait_idle(); it does not terminate the process.  For per-task
/// error handling use submit_task(), whose future carries the task's own
/// exception instead.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  /// Pool load telemetry (pool.tasks_submitted / pool.tasks_completed /
  /// pool.queue_depth_highwater) is reported to `metrics`, or to
  /// obs::default_registry() when null.
  explicit ThreadPool(std::size_t threads = 0,
                      obs::MetricsRegistry* metrics = nullptr);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers.  A pending captured
  /// exception that was never collected by wait_idle() is discarded.
  ~ThreadPool();

  /// Enqueues a fire-and-forget task.  If it throws, the first such
  /// exception is rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Futures-style submission: enqueues `f` and returns a future for its
  /// result.  Exceptions thrown by `f` surface through the future (not
  /// through wait_idle()).
  template <typename F>
  auto submit_task(F f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> future = task->get_future();
    submit([task] { (*task)(); });  // packaged_task never lets escape
    return future;
  }

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception captured from a fire-and-forget task (if any),
  /// clearing it so the pool stays usable.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // from fire-and-forget tasks

  // Cached at construction; updates are lock-free (see obs/metrics.h).
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
  obs::Gauge* queue_highwater_ = nullptr;
};

/// The lazily-initialized process-wide pool (hardware_concurrency workers).
/// All parallel_for calls and the fleet path share it, so tight bench loops
/// stop paying per-call thread-spawn cost.
ThreadPool& shared_pool();

/// Runs `body(i)` for i in [0, count) on the shared pool (or inline for tiny
/// ranges).  Blocks until all iterations complete; the calling thread
/// participates in the work, so nested calls cannot deadlock the pool.
///
/// `threads` caps the parallelism (0 = pool width + the caller).  `grain`
/// batches consecutive indices per scheduling step: leave it at 1 for
/// expensive uneven iterations (per-consumer ARIMA fits), raise it for cheap
/// ones (per-consumer KLD scoring) to amortise the work-counter contention.
///
/// If `body` throws, remaining unclaimed iterations are abandoned and the
/// first exception is rethrown on the calling thread once in-flight
/// iterations have drained.  `body` must be safe to invoke concurrently for
/// distinct indices.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0, std::size_t grain = 1);

}  // namespace fdeta
