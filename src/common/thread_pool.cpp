#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace fdeta {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  std::size_t workers =
      threads ? threads
              : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, count);
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Atomic work-stealing counter: cheap and balances uneven iterations
  // (per-consumer ARIMA fits vary in cost).
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        body(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace fdeta
