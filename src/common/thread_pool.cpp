#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fdeta {

ThreadPool::ThreadPool(std::size_t threads, obs::MetricsRegistry* metrics) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Resolve the metric handles before any worker exists so the workers only
  // ever touch initialized pointers.  (default_registry() outlives the
  // shared pool: it is constructed here, before the pool's static finishes.)
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::default_registry();
  tasks_submitted_ = &registry.counter("pool.tasks_submitted");
  tasks_completed_ = &registry.counter("pool.tasks_completed");
  queue_highwater_ = &registry.gauge("pool.queue_depth_highwater");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    queue_highwater_->update_max(static_cast<std::int64_t>(queue_.size()));
  }
  tasks_submitted_->add();
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      obs::TraceSpan span("pool.task", "pool");
      task();
    } catch (...) {
      error = std::current_exception();
    }
    tasks_completed_->add();
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& shared_pool() {
  // FDETA_THREADS pins the shared pool's width for the whole process
  // (0/unset = hardware concurrency).  The chaos lane runs the same seeded
  // scenario under FDETA_THREADS=1 and the default width and requires
  // byte-identical event logs.
  static ThreadPool pool(env_size("FDETA_THREADS", 0));
  return pool;
}

namespace {

/// Shared bookkeeping for one parallel_for call.  Helpers submitted to the
/// pool hold it by shared_ptr, so a helper scheduled after the call has
/// already returned finds no claimable work and exits without touching the
/// (by then dead) body.
struct ParallelForState {
  ParallelForState(std::size_t count, std::size_t grain,
                   const std::function<void(std::size_t)>& body)
      : count(count), grain(grain),
        chunks((count + grain - 1) / grain), body(&body) {}

  const std::size_t count;
  const std::size_t grain;
  const std::size_t chunks;
  const std::function<void(std::size_t)>* body;

  std::atomic<std::size_t> next{0};     // next unclaimed chunk
  std::atomic<bool> cancelled{false};   // set on first exception

  std::mutex mutex;
  std::condition_variable drained;
  std::size_t active = 0;  // participants currently inside run()
  std::exception_ptr error;

  void run() {
    {
      std::lock_guard lock(mutex);
      ++active;
    }
    for (;;) {
      if (cancelled.load(std::memory_order_relaxed)) break;
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) break;
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(begin + grain, count);
      try {
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard lock(mutex);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard lock(mutex);
      if (--active == 0) drained.notify_all();
    }
  }
};

}  // namespace

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads, std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);

  ThreadPool& pool = shared_pool();
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t limit = threads ? threads : pool.thread_count() + 1;
  const std::size_t workers = std::min(limit, chunks);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);  // exceptions propagate
    return;
  }

  auto state = std::make_shared<ParallelForState>(count, grain, body);
  // The caller is one participant; the rest are pool helpers.  The caller
  // works too, so even a fully congested pool (e.g. a nested parallel_for
  // from inside a pool task) makes progress and completes.
  for (std::size_t w = 1; w < workers; ++w) {
    pool.submit([state] { state->run(); });
  }
  state->run();

  // After the caller's own run() the work is fully claimed (or cancelled);
  // wait only for helpers still executing claimed chunks.  Helpers that the
  // pool schedules later find nothing to claim and exit via `state` alone.
  std::exception_ptr error;
  {
    std::unique_lock lock(state->mutex);
    state->drained.wait(lock, [&] { return state->active == 0; });
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace fdeta
