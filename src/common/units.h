// Core time/energy conventions shared by every F-DETA module.
//
// The paper (Section III) models time as discrete half-hour polling periods
// (Delta-t = 30 min).  Smart-meter readings are *average demand* in kW during
// a period; multiplying by Delta-t (in hours) yields energy in kWh for
// billing.  A week of readings is the detector's unit of analysis
// (Section VII-D): 7 days x 48 slots = 336 readings.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fdeta {

/// Number of smart-meter polling periods per hour (30-minute polling).
inline constexpr int kSlotsPerHour = 2;
/// Number of polling periods in a day.
inline constexpr int kSlotsPerDay = 48;
/// Number of polling periods in a week; the KLD detector's window size.
inline constexpr int kSlotsPerWeek = 7 * kSlotsPerDay;
/// Duration of one polling period in hours (Delta-t of the paper).
inline constexpr double kHoursPerSlot = 0.5;

/// Index of a polling period within a series; t in the paper, 0-based here.
using SlotIndex = std::size_t;

/// Average demand over one polling period, in kilowatts (D_C(t)).
using Kw = double;
/// Energy, in kilowatt-hours.
using KWh = double;
/// Money, in dollars (the paper quotes TOU prices in $/kWh).
using Dollars = double;
/// Price of energy, in dollars per kWh (lambda(t)).
using DollarsPerKWh = double;

/// Converts an average demand sustained for one polling period into energy.
constexpr KWh slot_energy(Kw average_demand) {
  return average_demand * kHoursPerSlot;
}

/// Day-of-week (0 = Monday) for a slot index within a week.
constexpr int day_of_week(SlotIndex slot_in_week) {
  return static_cast<int>(slot_in_week / kSlotsPerDay);
}

/// Slot within the day [0, 48) for any absolute slot index.
constexpr int slot_of_day(SlotIndex slot) {
  return static_cast<int>(slot % kSlotsPerDay);
}

/// Hour of day [0, 24) for any absolute slot index.
constexpr double hour_of_day(SlotIndex slot) {
  return slot_of_day(slot) * kHoursPerSlot;
}

}  // namespace fdeta
