// Error types for the F-DETA library.
//
// Following the C++ Core Guidelines (E.2/E.14) we throw exceptions derived
// from std::runtime_error / std::logic_error to signal that a function cannot
// perform its task, with domain-specific types so callers can discriminate.
#pragma once

#include <stdexcept>
#include <string>

namespace fdeta {

/// Base class for all errors raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad sizes, ranges, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numerical routine could not converge or produced a degenerate result.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Malformed external data (CSV parse failures, truncated series, ...).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `what` unless `condition` holds.
inline void require(bool condition, const std::string& what) {
  if (!condition) throw InvalidArgument(what);
}

}  // namespace fdeta
