#include "common/env.h"

#include <cstdlib>

namespace fdeta {

std::size_t env_size(const std::string& name, std::size_t default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return default_value;
  return static_cast<std::size_t>(value);
}

double env_double(const std::string& name, double default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return default_value;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return default_value;
  return value;
}

}  // namespace fdeta
