// Deterministic random number generation.
//
// All stochastic components of the library (the dataset generator, the
// truncated-normal attack sampler, the RTP price stream) draw from this
// engine so that every experiment is reproducible from a single seed.
// xoshiro256** is used for its speed and equidistribution; SplitMix64 seeds
// it and derives independent per-consumer streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace fdeta {

/// SplitMix64: used to expand a single user seed into stream states.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** engine satisfying UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose full state is derived from `seed`.
  explicit Rng(std::uint64_t seed = 0x5EEDF0DA) { reseed(seed); }

  /// Re-derives the state from `seed` (identical to constructing anew).
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal variate (polar Box-Muller without caching, so the
  /// stream position is a pure function of call count).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  /// Derives an independent child generator; `stream` selects the child.
  /// Children of distinct streams (or of distinct parents) do not overlap in
  /// practice thanks to SplitMix64 diffusion.
  Rng spawn(std::uint64_t stream) const;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace fdeta
