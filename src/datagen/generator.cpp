#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fdeta::datagen {

std::vector<Kw> generate_series(const LoadProfile& profile, std::size_t weeks,
                                Rng& rng, double vacation_probability,
                                double party_days) {
  require(weeks >= 1, "generate_series: need at least one week");
  const std::size_t slots = weeks * kSlotsPerWeek;
  std::vector<Kw> out(slots);

  // Vacation window (consumption collapses to a fridge-level baseline).
  std::size_t vac_start = slots, vac_end = slots;
  if (weeks >= 4 && rng.uniform() < vacation_probability) {
    const std::size_t vac_weeks = 1 + rng.below(2);
    const std::size_t start_week = rng.below(weeks - vac_weeks);
    vac_start = start_week * kSlotsPerWeek;
    vac_end = vac_start + vac_weeks * kSlotsPerWeek;
  }

  // Party days: whole days scaled up by 2-3x.
  const std::size_t days = weeks * 7;
  std::vector<double> day_boost(days, 1.0);
  const double p_party = std::min(1.0, party_days / static_cast<double>(days));
  for (std::size_t d = 0; d < days; ++d) {
    if (rng.uniform() < p_party) day_boost[d] = 2.0 + rng.uniform();
  }

  double noise = 0.0;  // AR(1) multiplicative noise state
  const double season_phase = rng.uniform(0.0, 2.0 * 3.14159265358979);

  for (std::size_t t = 0; t < slots; ++t) {
    const std::size_t week_slot = t % kSlotsPerWeek;
    const int dow = day_of_week(week_slot);
    const int sod = slot_of_day(t);
    const bool weekend = dow >= 5;
    const double shape =
        weekend ? profile.weekend[sod] : profile.weekday[sod];

    // Mild annual seasonality (52-week period).
    const double week_frac =
        static_cast<double>(t) / static_cast<double>(52 * kSlotsPerWeek);
    const double season =
        1.0 + profile.season_amp *
                  std::sin(2.0 * 3.14159265358979 * week_frac + season_phase);

    noise = profile.noise_phi * noise + rng.normal(0.0, profile.noise_sigma);

    double kw = profile.scale_kw * shape * season * std::exp(noise);
    kw *= day_boost[t / kSlotsPerDay];
    if (t >= vac_start && t < vac_end) {
      kw = 0.15 * profile.scale_kw + 0.05 * kw;  // away: baseline load only
    }
    out[t] = std::max(0.0, kw);
  }
  return out;
}

namespace {

// The deterministically shuffled type table shared by generate_dataset and
// StreamingFleet: draws only from root.spawn(0), so per-consumer streams
// (spawn(i + 1)) are untouched regardless of who builds it.
std::vector<meter::ConsumerType> shuffled_types(const GeneratorConfig& config,
                                                const Rng& root) {
  std::vector<meter::ConsumerType> types;
  types.reserve(config.consumer_count());
  for (std::size_t i = 0; i < config.residential; ++i) {
    types.push_back(meter::ConsumerType::kResidential);
  }
  for (std::size_t i = 0; i < config.sme; ++i) {
    types.push_back(meter::ConsumerType::kSme);
  }
  for (std::size_t i = 0; i < config.unclassified; ++i) {
    types.push_back(meter::ConsumerType::kUnclassified);
  }
  // Deterministic shuffle so types are interleaved across ids.
  Rng shuffle_rng = root.spawn(0);
  for (std::size_t i = types.size(); i > 1; --i) {
    std::swap(types[i - 1], types[shuffle_rng.below(i)]);
  }
  return types;
}

meter::ConsumerSeries consumer_at(const GeneratorConfig& config,
                                  const Rng& root, meter::ConsumerType type,
                                  std::size_t i) {
  Rng rng = root.spawn(i + 1);
  const LoadProfile profile = make_profile(type, rng);
  meter::ConsumerSeries s;
  s.id = static_cast<meter::ConsumerId>(1000 + i);
  s.type = type;
  s.readings = generate_series(profile, config.weeks, rng,
                               config.vacation_probability,
                               config.party_days);
  return s;
}

}  // namespace

meter::Dataset generate_dataset(const GeneratorConfig& config) {
  require(config.consumer_count() >= 1, "generate_dataset: no consumers");
  Rng root(config.seed);
  const std::vector<meter::ConsumerType> types = shuffled_types(config, root);

  std::vector<meter::ConsumerSeries> all;
  all.reserve(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    all.push_back(consumer_at(config, root, types[i], i));
  }
  return meter::Dataset(std::move(all));
}

StreamingFleet::StreamingFleet(GeneratorConfig config)
    : config_(config), root_(config.seed) {
  require(config_.consumer_count() >= 1, "StreamingFleet: no consumers");
  types_ = shuffled_types(config_, root_);
}

meter::ConsumerSeries StreamingFleet::consumer(std::size_t i) const {
  require(i < types_.size(), "StreamingFleet::consumer: index out of range");
  return consumer_at(config_, root_, types_[i], i);
}

GeneratorConfig scaled_config(std::size_t consumers, std::size_t weeks,
                              std::uint64_t seed) {
  GeneratorConfig config;
  config.weeks = weeks;
  config.seed = seed;
  // Keep roughly the CER type mix at any scale.
  config.sme = std::max<std::size_t>(1, consumers * 36 / 500);
  config.unclassified = std::max<std::size_t>(1, consumers * 60 / 500);
  if (config.sme + config.unclassified + 1 > consumers) {
    config.sme = consumers > 2 ? 1 : 0;
    config.unclassified = consumers > 1 ? 1 : 0;
  }
  config.residential = consumers - config.sme - config.unclassified;
  return config;
}

meter::Dataset small_dataset(std::size_t consumers, std::size_t weeks,
                             std::uint64_t seed) {
  return generate_dataset(scaled_config(consumers, weeks, seed));
}

}  // namespace fdeta::datagen
