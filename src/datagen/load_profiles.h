// Diurnal load-shape archetypes for the synthetic dataset.
//
// The real CER data is licensed and cannot ship with this repository, so the
// generator synthesises series with the statistical features every detector
// in the paper keys on: repeating weekly patterns with weekday/weekend
// asymmetry (Section VII-D), per-consumer scale spread (the anecdotes about
// consumers 1330/1411/1333 require a heavy-tailed size distribution), and a
// peak-period bias (94.4% of consumers consume more during 09:00-24:00,
// Section VIII-B3).
#pragma once

#include <array>

#include "common/rng.h"
#include "common/units.h"
#include "meter/consumer.h"

namespace fdeta::datagen {

/// Relative demand shape over one day (48 half-hour slots, mean ~= 1).
using DayShape = std::array<double, kSlotsPerDay>;

/// A consumer archetype: weekday/weekend shapes plus stochastic parameters.
struct LoadProfile {
  meter::ConsumerType type = meter::ConsumerType::kResidential;
  DayShape weekday{};
  DayShape weekend{};
  Kw scale_kw = 1.0;        ///< mean demand
  double noise_phi = 0.8;   ///< AR(1) coefficient of multiplicative noise
  double noise_sigma = 0.2; ///< innovation stddev of the noise process
  double season_amp = 0.1;  ///< annual seasonal amplitude (fraction)
};

/// Draws a randomised residential profile: morning + evening peaks on
/// weekdays, flatter late-rising weekends, lognormal scale (median ~0.55 kW).
LoadProfile residential_profile(Rng& rng);

/// Draws an SME profile: business-hours plateau on weekdays, near-baseline
/// weekends, heavy-tailed lognormal scale (median ~2.5 kW, tail to ~20 kW).
LoadProfile sme_profile(Rng& rng);

/// Draws an unclassified profile: a random mixture of the two.
LoadProfile unclassified_profile(Rng& rng);

/// Dispatch by consumer type.
LoadProfile make_profile(meter::ConsumerType type, Rng& rng);

/// Normalises a shape so its mean is exactly 1.
void normalize_shape(DayShape& shape);

}  // namespace fdeta::datagen
