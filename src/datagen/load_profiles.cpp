#include "datagen/load_profiles.h"

#include <algorithm>
#include <cmath>

namespace fdeta::datagen {

namespace {

/// Smooth bump centred at `center` hours with the given width (hours),
/// wrapping around midnight.
double bump(double hour, double center, double width) {
  double d = std::fabs(hour - center);
  d = std::min(d, 24.0 - d);  // circular distance
  return std::exp(-0.5 * (d / width) * (d / width));
}

DayShape shape_from_bumps(double base, std::initializer_list<std::array<double, 3>>
                                           bumps /* {center, width, height} */) {
  DayShape shape{};
  for (int s = 0; s < kSlotsPerDay; ++s) {
    const double hour = (s + 0.5) * kHoursPerSlot;
    double v = base;
    for (const auto& b : bumps) v += b[2] * bump(hour, b[0], b[1]);
    shape[s] = v;
  }
  normalize_shape(shape);
  return shape;
}

}  // namespace

void normalize_shape(DayShape& shape) {
  double total = 0.0;
  for (double v : shape) total += v;
  const double mean = total / kSlotsPerDay;
  for (double& v : shape) v /= mean;
}

LoadProfile residential_profile(Rng& rng) {
  LoadProfile p;
  p.type = meter::ConsumerType::kResidential;

  // Per-consumer jitter on peak times and heights makes consumers distinct.
  const double morning = 7.5 + rng.normal() * 0.7;
  const double evening = 19.0 + rng.normal() * 1.0;
  const double morning_h = 0.7 + 0.3 * rng.uniform();
  const double evening_h = 1.6 + 0.8 * rng.uniform();

  p.weekday = shape_from_bumps(
      0.35, {{{morning, 1.2, morning_h}}, {{evening, 2.3, evening_h}}});
  p.weekend = shape_from_bumps(
      0.45, {{{morning + 2.5, 2.0, 0.8 * morning_h}},
             {{13.0, 2.5, 0.5}},
             {{evening, 2.6, 0.9 * evening_h}}});

  // Lognormal scale: median 0.55 kW, long right tail (a few multi-kW homes).
  p.scale_kw = 0.55 * std::exp(0.55 * rng.normal());
  p.noise_phi = 0.70 + 0.15 * rng.uniform();
  p.noise_sigma = 0.18 + 0.10 * rng.uniform();
  p.season_amp = 0.08 + 0.08 * rng.uniform();
  return p;
}

LoadProfile sme_profile(Rng& rng) {
  LoadProfile p;
  p.type = meter::ConsumerType::kSme;

  const double open = 8.0 + rng.normal() * 0.5;
  const double close = 17.5 + rng.normal() * 0.8;
  const double mid = 0.5 * (open + close);
  const double width = std::max(2.0, 0.5 * (close - open));

  p.weekday = shape_from_bumps(0.25, {{{mid, width, 2.2}}});
  // Weekend: mostly baseline load (refrigeration, standby), small activity.
  p.weekend = shape_from_bumps(0.8, {{{mid, width, 0.3}}});

  // Heavy-tailed size: median 2.5 kW, tail reaching ~20 kW so the dataset
  // contains "largest consumer" outliers like the paper's 1330/1411.
  p.scale_kw = std::min(2.5 * std::exp(0.9 * rng.normal()), 22.0);
  p.noise_phi = 0.75 + 0.15 * rng.uniform();
  p.noise_sigma = 0.10 + 0.08 * rng.uniform();
  p.season_amp = 0.05 + 0.05 * rng.uniform();
  return p;
}

LoadProfile unclassified_profile(Rng& rng) {
  // A blend: many unclassified CER meters behave like homes, some like shops.
  LoadProfile res = residential_profile(rng);
  if (rng.uniform() < 0.5) {
    res.type = meter::ConsumerType::kUnclassified;
    return res;
  }
  LoadProfile sme = sme_profile(rng);
  sme.type = meter::ConsumerType::kUnclassified;
  return sme;
}

LoadProfile make_profile(meter::ConsumerType type, Rng& rng) {
  switch (type) {
    case meter::ConsumerType::kResidential: return residential_profile(rng);
    case meter::ConsumerType::kSme: return sme_profile(rng);
    case meter::ConsumerType::kUnclassified: return unclassified_profile(rng);
  }
  return residential_profile(rng);
}

}  // namespace fdeta::datagen
