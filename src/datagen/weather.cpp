#include "datagen/weather.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fdeta::datagen {

std::vector<double> generate_temperature(
    std::size_t slots, const WeatherConfig& config, Rng& rng,
    const std::vector<WeatherEvent>& events) {
  require(slots >= 1, "generate_temperature: need at least one slot");
  std::vector<double> temp(slots);
  double synoptic = 0.0;
  const double pi2 = 2.0 * 3.14159265358979;
  for (std::size_t t = 0; t < slots; ++t) {
    const double year_frac =
        static_cast<double>(t) / static_cast<double>(52 * kSlotsPerWeek);
    // Coldest around 1/8 into the cycle (mid-winter start).
    const double annual =
        -config.annual_amp_c * std::cos(pi2 * (year_frac + 0.02));
    const double hour = hour_of_day(t);
    const double diurnal =
        -config.diurnal_amp_c * std::cos(pi2 * (hour - 3.0) / 24.0);
    synoptic = config.synoptic_phi * synoptic +
               rng.normal(0.0, config.synoptic_sigma_c *
                                   std::sqrt(1.0 - config.synoptic_phi *
                                                       config.synoptic_phi));
    temp[t] = config.mean_c + annual + diurnal + synoptic;
  }
  for (const WeatherEvent& e : events) {
    require(e.first_slot <= e.last_slot, "WeatherEvent: reversed range");
    for (std::size_t t = e.first_slot;
         t <= e.last_slot && t < slots; ++t) {
      temp[t] += e.delta_c;
    }
  }
  return temp;
}

Kw thermal_load(double temp_c, const ThermalResponse& response) {
  if (temp_c < response.comfort_low_c) {
    return response.heating_kw_per_c * (response.comfort_low_c - temp_c);
  }
  if (temp_c > response.comfort_high_c) {
    return response.cooling_kw_per_c * (temp_c - response.comfort_high_c);
  }
  return 0.0;
}

void apply_weather(std::vector<Kw>& readings,
                   std::span<const double> temperature,
                   const ThermalResponse& response) {
  require(readings.size() == temperature.size(),
          "apply_weather: series length mismatch");
  for (std::size_t t = 0; t < readings.size(); ++t) {
    readings[t] += thermal_load(temperature[t], response);
  }
}

}  // namespace fdeta::datagen
