// CER-like synthetic dataset generation.
//
// Produces the study population of Section VIII-A: 500 consumers
// (404 residential / 36 SME / 60 unclassified) x 74 weeks x 336 half-hour
// readings, fully deterministic from one seed.  Natural anomalies (vacation
// weeks, party days) are injected at low rates because the paper stresses
// that the CER data contains unlabeled anomalies that drive false positives
// (Section VIII-A).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/load_profiles.h"
#include "meter/dataset.h"

namespace fdeta::datagen {

struct GeneratorConfig {
  std::size_t residential = 404;
  std::size_t sme = 36;
  std::size_t unclassified = 60;
  std::size_t weeks = 74;
  std::uint64_t seed = 20160628;  ///< DSN'16 presentation date

  /// Probability that a consumer has a vacation (one 1-2 week low period).
  double vacation_probability = 0.25;
  /// Expected number of "party"/event days (2-3x consumption) per consumer
  /// over the whole horizon.
  double party_days = 3.0;

  std::size_t consumer_count() const {
    return residential + sme + unclassified;
  }
};

/// Generates one consumer's series from a profile.
std::vector<Kw> generate_series(const LoadProfile& profile, std::size_t weeks,
                                Rng& rng, double vacation_probability,
                                double party_days);

/// Generates the full dataset.  Consumer ids start at 1000 (paper-style
/// four-digit ids); types are interleaved deterministically.
meter::Dataset generate_dataset(const GeneratorConfig& config);

/// The CER type mix scaled to `consumers` total (what small_dataset uses);
/// also the config to hand a StreamingFleet for an arbitrary-scale fleet.
GeneratorConfig scaled_config(std::size_t consumers, std::size_t weeks,
                              std::uint64_t seed);

/// Convenience: a scaled-down dataset for tests (n consumers, `weeks` weeks).
meter::Dataset small_dataset(std::size_t consumers, std::size_t weeks,
                             std::uint64_t seed);

/// A per-consumer view of generate_dataset(config): consumer(i) materialises
/// exactly the series that generate_dataset would place at index i, without
/// holding the rest of the fleet in memory.  The generator's RNG streams are
/// per-consumer by construction (root.spawn(i + 1)), so a million-consumer
/// horizon - tens of gigabytes of readings - can be walked one series at a
/// time (e.g. through OnlineMonitor::fit_streaming) with only the type table
/// resident.  consumer() is safe to call concurrently for any indices.
class StreamingFleet {
 public:
  explicit StreamingFleet(GeneratorConfig config);

  std::size_t consumer_count() const { return types_.size(); }

  /// Consumer i's series, bit-identical to generate_dataset(config)
  /// .consumer(i).  Throws DataError if i is out of range.
  meter::ConsumerSeries consumer(std::size_t i) const;

 private:
  GeneratorConfig config_;
  Rng root_;
  std::vector<meter::ConsumerType> types_;  ///< post-shuffle type per index
};

}  // namespace fdeta::datagen
