// CER-like synthetic dataset generation.
//
// Produces the study population of Section VIII-A: 500 consumers
// (404 residential / 36 SME / 60 unclassified) x 74 weeks x 336 half-hour
// readings, fully deterministic from one seed.  Natural anomalies (vacation
// weeks, party days) are injected at low rates because the paper stresses
// that the CER data contains unlabeled anomalies that drive false positives
// (Section VIII-A).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/load_profiles.h"
#include "meter/dataset.h"

namespace fdeta::datagen {

struct GeneratorConfig {
  std::size_t residential = 404;
  std::size_t sme = 36;
  std::size_t unclassified = 60;
  std::size_t weeks = 74;
  std::uint64_t seed = 20160628;  ///< DSN'16 presentation date

  /// Probability that a consumer has a vacation (one 1-2 week low period).
  double vacation_probability = 0.25;
  /// Expected number of "party"/event days (2-3x consumption) per consumer
  /// over the whole horizon.
  double party_days = 3.0;

  std::size_t consumer_count() const {
    return residential + sme + unclassified;
  }
};

/// Generates one consumer's series from a profile.
std::vector<Kw> generate_series(const LoadProfile& profile, std::size_t weeks,
                                Rng& rng, double vacation_probability,
                                double party_days);

/// Generates the full dataset.  Consumer ids start at 1000 (paper-style
/// four-digit ids); types are interleaved deterministically.
meter::Dataset generate_dataset(const GeneratorConfig& config);

/// Convenience: a scaled-down dataset for tests (n consumers, `weeks` weeks).
meter::Dataset small_dataset(std::size_t consumers, std::size_t weeks,
                             std::uint64_t seed);

}  // namespace fdeta::datagen
