// Weather model: an ambient-temperature series and its coupling into
// consumer load.
//
// Step 4 of the F-DETA process uses "external evidence (severe weather
// conditions, holiday periods, special events, ...)" to rule out false
// positives (Section VII).  To exercise that step end-to-end the generator
// needs weather-driven demand: temperature follows an annual cycle plus a
// synoptic (few-day) AR component and a diurnal swing; each consumer adds
// heating degree-load below a comfort band (electric heating) and cooling
// degree-load above it.  A severe cold snap lifts the whole population's
// consumption simultaneously - exactly the anomaly class that detectors
// should *excuse* rather than investigate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace fdeta::datagen {

struct WeatherConfig {
  double mean_c = 10.0;        ///< annual mean temperature (Ireland-ish)
  double annual_amp_c = 6.5;   ///< annual swing amplitude
  double diurnal_amp_c = 3.0;  ///< day/night swing amplitude
  double synoptic_sigma_c = 1.2;  ///< innovation of the few-day AR component
  double synoptic_phi = 0.995;    ///< AR(1) pole (multi-day persistence)
};

/// One cold-snap / heat-wave window forced into the series.
struct WeatherEvent {
  std::size_t first_slot = 0;
  std::size_t last_slot = 0;  ///< inclusive
  double delta_c = -8.0;      ///< offset applied during the event
};

/// Generates a temperature series of `slots` half-hour readings.
std::vector<double> generate_temperature(std::size_t slots,
                                         const WeatherConfig& config,
                                         Rng& rng,
                                         const std::vector<WeatherEvent>&
                                             events = {});

/// A consumer's thermal response: extra demand per degree outside the
/// comfort band.
struct ThermalResponse {
  double comfort_low_c = 14.0;
  double comfort_high_c = 20.0;
  double heating_kw_per_c = 0.06;  ///< electric heating slope
  double cooling_kw_per_c = 0.03;  ///< cooling slope (mild: Irish climate)
};

/// Extra demand drawn at ambient temperature `temp_c`.
Kw thermal_load(double temp_c, const ThermalResponse& response);

/// Adds weather-coupled load to a base series in place.
void apply_weather(std::vector<Kw>& readings,
                   std::span<const double> temperature,
                   const ThermalResponse& response);

}  // namespace fdeta::datagen
