#include "core/reduced_kld_detector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "common/error.h"
#include "persist/binary_io.h"
#include "stats/kl_divergence.h"
#include "stats/quantile.h"

namespace fdeta::core {

namespace {

void validate_config(const ReducedKldDetectorConfig& config) {
  require(config.selected_slots >= 1 &&
              config.selected_slots <= static_cast<std::size_t>(kSlotsPerWeek),
          "ReducedKldDetector: selected_slots must be in [1, 336]");
  require(config.kld.bins >= 2, "ReducedKldDetector: need at least two bins");
  require(config.kld.significance > 0.0 && config.kld.significance < 1.0,
          "ReducedKldDetector: significance must be in (0,1)");
  require(config.kld.epsilon >= 0.0,
          "ReducedKldDetector: epsilon must be >= 0");
}

}  // namespace

ReducedKldDetector::ReducedKldDetector(ReducedKldDetectorConfig config)
    : config_(config) {
  validate_config(config_);
}

void ReducedKldDetector::rebuild_scoring_baseline() {
  if (config_.kld.epsilon <= 0.0) {
    scoring_ = baseline_;  // paper-exact: infinities on out-of-support mass
    return;
  }
  scoring_.resize(baseline_.size());
  const double norm =
      1.0 + config_.kld.epsilon * static_cast<double>(baseline_.size());
  for (std::size_t j = 0; j < baseline_.size(); ++j) {
    scoring_[j] = (baseline_[j] + config_.kld.epsilon) / norm;
  }
}

void ReducedKldDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "ReducedKldDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "ReducedKldDetector: need at least four training weeks");
  const std::size_t width = static_cast<std::size_t>(kSlotsPerWeek);

  // Per-slot-of-week variance across the training weeks: the slots that vary
  // carry the distribution's information; constant slots contribute one
  // fixed histogram count per week and can never separate weeks.
  std::vector<double> variance(width, 0.0);
  for (std::size_t s = 0; s < width; ++s) {
    double mean = 0.0;
    for (std::size_t w = 0; w < weeks; ++w) mean += training[w * width + s];
    mean /= static_cast<double>(weeks);
    double ss = 0.0;
    for (std::size_t w = 0; w < weeks; ++w) {
      const double d = training[w * width + s] - mean;
      ss += d * d;
    }
    variance[s] = ss / static_cast<double>(weeks);
  }

  // Top-k by (variance desc, slot asc): fully deterministic selection.
  std::vector<std::uint32_t> order(width);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (variance[a] != variance[b]) {
                       return variance[a] > variance[b];
                     }
                     return a < b;
                   });
  selected_.assign(order.begin(),
                   order.begin() +
                       static_cast<std::ptrdiff_t>(config_.selected_slots));
  std::sort(selected_.begin(), selected_.end());

  // Reduced M x k training matrix, week-major; edges frozen over all of it.
  const std::size_t k = selected_.size();
  std::vector<double> reduced(weeks * k);
  for (std::size_t w = 0; w < weeks; ++w) {
    for (std::size_t j = 0; j < k; ++j) {
      reduced[w * k + j] = training[w * width + selected_[j]];
    }
  }
  histogram_.emplace(reduced, config_.kld.bins);
  baseline_ = histogram_->probabilities(reduced);
  rebuild_scoring_baseline();

  k_training_.clear();
  k_training_.reserve(weeks);
  for (std::size_t w = 0; w < weeks; ++w) {
    const std::span<const double> week{reduced.data() + w * k, k};
    const auto p = histogram_->probabilities(week);
    k_training_.push_back(stats::kl_divergence_bits(p, scoring_));
  }
  threshold_ = stats::quantile(k_training_, 1.0 - config_.kld.significance);
  calibration_ = ScoreCalibration::from_reference(k_training_, threshold_,
                                                  config_.kld.significance);
}

void ReducedKldDetector::gather(std::span<const Kw> week, SlotIndex first_slot,
                                std::span<double> out) const {
  require(week.size() == static_cast<std::size_t>(kSlotsPerWeek),
          "ReducedKldDetector: week must be kSlotsPerWeek readings");
  const std::size_t width = static_cast<std::size_t>(kSlotsPerWeek);
  const std::size_t offset = static_cast<std::size_t>(first_slot) % width;
  for (std::size_t j = 0; j < selected_.size(); ++j) {
    // week[i] holds absolute slot first_slot + i, so slot-of-week s lives at
    // index (s - offset) mod width; offset is 0 for aligned weeks.
    const std::size_t i = (selected_[j] + width - offset) % width;
    out[j] = week[i];
  }
}

double ReducedKldDetector::raw_score_week(std::span<const Kw> week,
                                          SlotIndex first_slot) const {
  require(histogram_.has_value(), "ReducedKldDetector: fit() not called");
  thread_local std::vector<double> values;
  thread_local std::vector<double> p;
  values.resize(selected_.size());
  gather(week, first_slot, values);
  p.resize(config_.kld.bins);
  histogram_->probabilities_into(values, p,
                                 config_.kld.exclude_out_of_support);
  return stats::kl_divergence_bits(p, scoring_);
}

double ReducedKldDetector::raw_decision_threshold() const {
  require(histogram_.has_value(), "ReducedKldDetector: fit() not called");
  return threshold_;
}

KldExplanation ReducedKldDetector::raw_explain_week(std::span<const Kw> week,
                                                    SlotIndex first_slot) const {
  require(histogram_.has_value(), "ReducedKldDetector: fit() not called");
  std::vector<double> values(selected_.size());
  gather(week, first_slot, values);
  std::vector<double> p(config_.kld.bins);
  histogram_->probabilities_into(values, p,
                                 config_.kld.exclude_out_of_support);
  const std::vector<double>& edges = histogram_->edges();

  KldExplanation out;
  out.threshold = threshold_;
  out.bins.reserve(p.size());
  // Mirror kl_divergence_bits term by term so the bits sum is bit-identical
  // to score_week(week), clamp included.
  double total = 0.0;
  bool infinite = false;
  for (std::size_t j = 0; j < p.size(); ++j) {
    KldBinContribution c;
    c.bin = j;
    c.lower = edges[j];
    c.upper = edges[j + 1];
    c.p = p[j];
    c.q = scoring_[j];
    if (p[j] > 0.0) {
      if (scoring_[j] <= 0.0) {
        c.bits = std::numeric_limits<double>::infinity();
        infinite = true;
      } else {
        c.bits = p[j] * std::log2(p[j] / scoring_[j]);
        total += c.bits;
      }
    }
    out.bins.push_back(c);
  }
  if (infinite) {
    out.score = std::numeric_limits<double>::infinity();
  } else {
    out.score = total < 0.0 && total > -1e-12 ? 0.0 : total;
  }
  return out;
}

const std::vector<std::uint32_t>& ReducedKldDetector::selected_slots() const {
  require(histogram_.has_value(), "ReducedKldDetector: fit() not called");
  return selected_;
}

const std::vector<double>& ReducedKldDetector::training_divergences() const {
  require(histogram_.has_value(), "ReducedKldDetector: fit() not called");
  return k_training_;
}

std::string ReducedKldDetector::config_fingerprint() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "kld-lite(k=%zu,bins=%zu,sig=%.17g,eps=%.17g,oos=%d)",
                config_.selected_slots, config_.kld.bins,
                config_.kld.significance, config_.kld.epsilon,
                config_.kld.exclude_out_of_support ? 1 : 0);
  return buf;
}

void ReducedKldDetector::save_state(persist::Encoder& enc) const {
  require(histogram_.has_value(),
          "ReducedKldDetector::save_state: fit() not called");
  enc.u64(config_.selected_slots);
  enc.u64(config_.kld.bins);
  enc.f64(config_.kld.significance);
  enc.f64(config_.kld.epsilon);
  enc.u8(config_.kld.exclude_out_of_support ? 1 : 0);
  for (const std::uint32_t s : selected_) enc.u32(s);
  histogram_->save(enc);
  enc.doubles(baseline_);
  enc.doubles(k_training_);
  enc.f64(threshold_);
}

void ReducedKldDetector::restore_state(persist::Decoder& dec,
                                       std::uint32_t /*format_version*/) {
  ReducedKldDetectorConfig config;
  config.selected_slots = dec.count("kld-lite slots", kSlotsPerWeek);
  config.kld.bins = dec.count("kld-lite bins", 1u << 20);
  config.kld.significance = dec.f64();
  config.kld.epsilon = dec.f64();
  config.kld.exclude_out_of_support = dec.u8() != 0;
  validate_config(config);

  std::vector<std::uint32_t> selected(config.selected_slots);
  for (auto& s : selected) {
    s = dec.u32();
    if (s >= static_cast<std::uint32_t>(kSlotsPerWeek)) {
      throw DataError("checkpoint: kld-lite slot index out of range");
    }
  }
  for (std::size_t j = 1; j < selected.size(); ++j) {
    if (selected[j] <= selected[j - 1]) {
      throw DataError("checkpoint: kld-lite slots not strictly ascending");
    }
  }

  stats::Histogram histogram = stats::Histogram::load(dec);
  if (histogram.bin_count() != config.kld.bins) {
    throw DataError("checkpoint: kld-lite histogram bin count mismatch");
  }
  std::vector<double> baseline = dec.doubles("kld-lite baseline", 1u << 20);
  if (baseline.size() != config.kld.bins) {
    throw DataError("checkpoint: kld-lite baseline size mismatch");
  }
  std::vector<double> k_training =
      dec.doubles("kld-lite training K", 1u << 20);
  if (k_training.empty()) {
    throw DataError("checkpoint: kld-lite training divergences missing");
  }
  const double threshold = dec.f64();

  config_ = config;
  selected_ = std::move(selected);
  histogram_.emplace(std::move(histogram));
  baseline_ = std::move(baseline);
  // The smoothed scoring copy is derived deterministically from the raw
  // baseline, so recomputing it reproduces the saved detector bit-exactly.
  rebuild_scoring_baseline();
  k_training_ = std::move(k_training);
  threshold_ = threshold;
  // Pure function of the persisted parts: restored calibration is bit-exact.
  calibration_ = ScoreCalibration::from_reference(k_training_, threshold_,
                                                  config_.kld.significance);
}

}  // namespace fdeta::core
