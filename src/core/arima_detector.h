// The ARIMA detector of ref [2]: a per-reading range check against the
// one-step-ahead confidence interval of a rolling ARIMA forecast.
//
// The forecaster is fed the *reported* readings, so a consistent false
// stream poisons the model state - the CI follows the attack vector.  This
// is deliberate fidelity to the system under study: it is exactly the
// weakness the ARIMA attack exploits (Section VIII-B1).
#pragma once

#include <optional>
#include <vector>

#include "core/detector.h"
#include "timeseries/arima.h"

namespace fdeta::core {

struct ArimaDetectorConfig {
  ts::ArimaOrder order{};
  double z = 1.96;  ///< CI half-width (95% two-sided)
  /// How much training tail primes the rolling forecaster.
  std::size_t history_slots = 2 * 336;
  /// Weekly violation budget: a week is flagged when its CI-violation count
  /// exceeds max(training weekly count) * (1 + slack) + margin.  A 95% CI is
  /// *expected* to be violated ~5% of the time on honest data, so the
  /// detector must key on an anomalous violation *rate*, calibrated
  /// empirically per consumer on the training weeks.
  double count_slack = 0.25;
  std::size_t count_margin = 2;
};

class ArimaDetector final : public Detector {
 public:
  explicit ArimaDetector(ArimaDetectorConfig config = {});

  std::string_view name() const override { return "ARIMA"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// Number of readings in the week that fall outside the rolling CI.
  std::size_t violation_count(std::span<const Kw> week) const;

  /// First slot within the week whose reading falls outside the CI, if any.
  std::optional<SlotIndex> first_violation(std::span<const Kw> week) const;

  /// The calibrated weekly violation-count threshold.
  std::size_t violation_threshold() const { return violation_threshold_; }

  const ts::ArimaModel& model() const;

 private:
  ArimaDetectorConfig config_;
  std::optional<ts::ArimaModel> model_;
  std::vector<Kw> history_tail_;
  std::size_t violation_threshold_ = 0;
};

}  // namespace fdeta::core
