// The five-step F-DETA detection pipeline (Section VII):
//   (1) model each consumer's expected consumption,
//   (2) evaluate whether new readings are anomalous,
//   (3) classify anomalies: abnormally LOW readings mark a suspected
//       attacker (Proposition 1), abnormally HIGH readings a suspected
//       victim of a neighbor's theft (Proposition 2),
//   (4) consult external evidence to rule out false positives,
//   (5) investigate systematically via the grid topology's balance checks.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/detector_registry.h"
#include "core/evidence.h"
#include "core/kld_detector.h"
#include "grid/hierarchy/feeder_monitor.h"
#include "grid/investigate.h"
#include "grid/topology.h"
#include "meter/dataset.h"
#include "meter/weekly_stats.h"

namespace fdeta {
namespace obs {
class Counter;
class EventLog;
class Histogram;
class MetricsRegistry;
}  // namespace obs
}  // namespace fdeta

namespace fdeta::core {

enum class VerdictStatus : std::uint8_t {
  kNormal,
  kSuspectedAttacker,  ///< anomalous + abnormally low
  kSuspectedVictim,    ///< anomalous + abnormally high
  kSuspectedAnomaly,   ///< anomalous, direction unclear
  kExcused,            ///< anomalous but covered by external evidence
  /// Too few readings reached the head-end to judge the week: the KLD is
  /// never computed (a lossy week scored on imputed values looks exactly
  /// like an under-report attack), so loss cannot masquerade as theft.
  kInsufficientData,
};

const char* to_string(VerdictStatus status);

struct ConsumerVerdict {
  meter::ConsumerId id = 0;
  VerdictStatus status = VerdictStatus::kNormal;
  /// Scalar score / decision threshold of the configured detector family
  /// (the eq.-(12) divergence in bits for "kld"; other families report
  /// their own scalar, see core/detector_plugin.h).
  double kld_score = 0.0;
  double kld_threshold = 0.0;
  std::optional<EvidenceEvent> excuse;
  /// Slots of this week the head-end never received (only populated when
  /// evaluate_week is given a WeekCoverage; drives kInsufficientData).
  std::size_t missing_slots = 0;
  /// Per-bin KLD breakdown; populated only for non-normal verdicts when
  /// PipelineConfig::explain is set.
  std::optional<KldExplanation> explanation;
};

/// Per-consumer delivery coverage for one week, as reported by the AMI
/// head-end (see ami::CollectedReport::week_missing).  Consumers whose
/// missing fraction exceeds PipelineConfig::max_missing_fraction are not
/// scored and receive VerdictStatus::kInsufficientData.
struct WeekCoverage {
  /// missing_slots[i] = slots of the week consumer i never reported.
  std::vector<std::uint32_t> missing_slots;
  /// Total slots in the week (denominator of the missing fraction).
  std::size_t week_slots = static_cast<std::size_t>(kSlotsPerWeek);
};

struct PipelineConfig {
  meter::TrainTestSplit split{};
  /// Registered detector family run per consumer (core/detector_registry.h);
  /// "kld" is the paper's eq.-(12) detector.
  std::string detector = "kld";
  KldDetectorConfig kld{};
  /// Knobs for the non-default families.  `kld` above stays authoritative
  /// for the KLD histogram knobs: fit() copies it into
  /// detector_options.kld before building detectors.
  DetectorOptions detector_options{};
  /// Relative margin applied to the training weekly-mean quartiles when
  /// classifying the anomaly direction (step 3).
  double direction_margin = 0.0;
  /// Absolute floor (kW) under which the training quartile means are too
  /// close to zero to judge an anomaly's direction: `q25 * (1 - margin)`
  /// collapses to ~0 for such consumers, so under-reporting could never be
  /// classified.  Below the floor the verdict falls back to
  /// kSuspectedAnomaly instead of silently mislabeling.
  double direction_floor_kw = 1e-6;
  /// Coverage gate: when evaluate_week is given a WeekCoverage, a consumer
  /// whose missing-slot fraction for the week exceeds this threshold is
  /// returned as kInsufficientData (with an alert_excused event) instead of
  /// being scored on imputed values.
  double max_missing_fraction = 0.25;
  /// Parallelism cap for fit()/evaluate_week() on the shared pool
  /// (0 = full pool width, 1 = serial).
  std::size_t threads = 0;
  /// Telemetry sink; null = the process-wide obs::default_registry().
  /// Counters ("pipeline." prefix: consumers fitted, KLD threshold
  /// recomputations, weeks scored, verdicts by status, investigations) are
  /// deterministic under a fixed seed regardless of `threads`.
  obs::MetricsRegistry* metrics = nullptr;
  /// Attach a per-bin KLD explanation to every non-normal verdict.
  bool explain = false;
  /// Domain-event sink; null = the process-wide obs::default_event_log().
  /// Emits alert_raised / alert_excused per flagged consumer (in consumer
  /// index order, regardless of `threads`), model_restored on load_model(),
  /// and investigation_step during step 5.
  obs::EventLog* events = nullptr;
  /// Feeder-hierarchy layer (ROADMAP item 3): when set AND evaluate_week is
  /// given a topology, a hierarchy::FeederMonitor is lazily fitted on the
  /// training span and scores every internal node after step 5.  Feeder
  /// events are appended strictly AFTER the per-consumer and investigation
  /// events, so enabling the hierarchy never perturbs the existing log - it
  /// only adds feeder_alert_raised / collusion_suspected lines at the end.
  bool hierarchy = false;
  /// Hierarchy knobs; `threads`/`metrics`/`events` inherit the pipeline's
  /// values when left at their defaults.
  hierarchy::FeederConfig feeder{};
};

struct PipelineReport {
  std::vector<ConsumerVerdict> verdicts;                 // step 1-4 output
  std::optional<grid::InvestigationResult> investigation;  // step 5 output
  /// Feeder-hierarchy scores/collusion groups (PipelineConfig::hierarchy
  /// with a topology); per-consumer verdicts above are never affected.
  std::optional<hierarchy::FeederReport> feeder;

  std::vector<meter::ConsumerId> suspected_attackers() const;
  std::vector<meter::ConsumerId> suspected_victims() const;
};

/// Runs the pipeline over one week of the *reported* dataset.
///
/// `actual` is the ground-truth dataset (models are trained on its training
/// span, which is assumed attack-free per Section VIII-A); `reported` is the
/// possibly-compromised dataset; `week` is the absolute week index to judge.
/// If `topology` is provided, step 5 runs a Case-2 investigation over the
/// attacked week's average demands.
class FdetaPipeline {
 public:
  explicit FdetaPipeline(PipelineConfig config = {});

  /// Step 1: fit per-consumer models on the training span of `actual`.
  void fit(const meter::Dataset& actual);

  /// Steps 2-5.  `coverage`, when provided, gates step 2: consumers whose
  /// missing-slot fraction exceeds config().max_missing_fraction get a
  /// kInsufficientData verdict and are never scored.
  PipelineReport evaluate_week(const meter::Dataset& actual,
                               const meter::Dataset& reported,
                               std::size_t week,
                               const EvidenceCalendar& calendar,
                               const grid::Topology* topology = nullptr,
                               const WeekCoverage* coverage = nullptr) const;

  /// Serializes the fitted state (split, direction parameters, every
  /// consumer's detector and training weekly stats) as a checkpoint
  /// (persist/checkpoint.h), so a head-end can fit once offline and serving
  /// processes warm-start in milliseconds.  Requires fit() to have run.
  void save_model(std::ostream& out) const;

  /// Restores a save_model() checkpoint, replacing this pipeline's fit and
  /// the fit-related config (split, detector family, kld, direction margins;
  /// `threads` and `metrics` keep their constructed values).  evaluate_week() then yields
  /// verdicts bit-identical to the pipeline that was saved.  Throws
  /// DataError on a corrupted, truncated, or version-mismatched checkpoint.
  void load_model(std::istream& in);

  /// The active config (load_model overwrites the fit-related fields).
  const PipelineConfig& config() const { return config_; }

  std::size_t consumer_count() const { return detectors_.size(); }

 private:
  /// Builds + fits the feeder layer on first hierarchy-enabled evaluation
  /// (deterministic: fitted on `actual`'s training span with the pipeline's
  /// split, so the lazy fit is a pure function of the evaluate inputs).
  void ensure_feeder(const grid::Topology& topology,
                     const meter::Dataset& actual) const;

  PipelineConfig config_;
  std::vector<std::unique_ptr<ScoringDetector>> detectors_;  // per consumer
  std::vector<meter::WeeklyStats> train_stats_;              // per consumer
  bool fitted_ = false;
  /// Lazy feeder-hierarchy layer; scoring caches live per node, and the
  /// rolling baselines advance week over week (mutable: evaluate_week stays
  /// const for the per-consumer layer it reports on).
  mutable std::unique_ptr<hierarchy::FeederMonitor> feeder_;

  // Cached at construction; updates are lock-free (see obs/metrics.h) and
  // happen once per fit/evaluate call, outside the per-consumer hot loops.
  obs::Counter* consumers_fitted_ = nullptr;
  obs::Counter* consumers_restored_ = nullptr;
  obs::Counter* thresholds_recomputed_ = nullptr;
  obs::Counter* weeks_scored_ = nullptr;
  obs::Counter* verdicts_ = nullptr;
  obs::Counter* verdict_normal_ = nullptr;
  obs::Counter* verdict_attacker_ = nullptr;
  obs::Counter* verdict_victim_ = nullptr;
  obs::Counter* verdict_anomaly_ = nullptr;
  obs::Counter* verdict_excused_ = nullptr;
  obs::Counter* verdict_insufficient_ = nullptr;
  obs::Counter* coverage_missing_slots_ = nullptr;
  obs::Counter* investigations_ = nullptr;
  obs::Histogram* fit_seconds_ = nullptr;
  obs::Histogram* evaluate_seconds_ = nullptr;
  obs::EventLog* events_ = nullptr;  // never null after construction
};

}  // namespace fdeta::core
