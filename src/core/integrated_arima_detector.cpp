#include "core/integrated_arima_detector.h"

#include "common/error.h"
#include "stats/descriptive.h"

namespace fdeta::core {

IntegratedArimaDetector::IntegratedArimaDetector(
    IntegratedArimaDetectorConfig config)
    : config_(config), arima_(config.arima) {
  require(config_.bound_slack >= 0.0,
          "IntegratedArimaDetector: negative slack");
}

void IntegratedArimaDetector::fit(std::span<const Kw> training) {
  arima_.fit(training);
  stats_ = meter::weekly_stats(training);
}

const meter::WeeklyStats& IntegratedArimaDetector::training_stats() const {
  require(stats_.has_value(), "IntegratedArimaDetector: fit() not called");
  return *stats_;
}

bool IntegratedArimaDetector::window_checks_fail(
    std::span<const Kw> week) const {
  const meter::WeeklyStats& s = training_stats();
  const double m = stats::mean(week);
  const double v = stats::variance(week);
  const double slack = config_.bound_slack;
  const double mean_lo = s.mean_lo * (1.0 - slack);
  const double mean_hi = s.mean_hi * (1.0 + slack);
  const double var_hi = s.var_hi * (1.0 + slack);
  return m < mean_lo || m > mean_hi || v > var_hi;
}

bool IntegratedArimaDetector::flag_week(std::span<const Kw> week,
                                        SlotIndex first_slot) const {
  return arima_.flag_week(week, first_slot) || window_checks_fail(week);
}

}  // namespace fdeta::core
