// The detector registry: string name -> ScoringDetector factory.
//
// Everything that owns a fleet of detectors (FdetaPipeline, OnlineMonitor,
// the CLI's --detector flag, the benches) builds them through this one
// factory, so adding a detector family means registering it here and it
// shows up everywhere: the golden detector x attack matrix, the generic
// contract suite in test_property_invariants, the shard-equivalence
// differential tests, and the per-detector bench throughput gates.
//
// Kept separate from detector_plugin.h: the registry must include every
// concrete family's config, and the families include detector_plugin.h.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/detector_plugin.h"
#include "core/isolation_forest_detector.h"
#include "core/kld_detector.h"
#include "core/reduced_kld_detector.h"

namespace fdeta::core {

/// Knobs for every registered family, bundled so pipeline/monitor configs
/// can carry one value whatever detector they run.  `kld` feeds "kld",
/// "ckld" (bins/significance/epsilon/out-of-support carry over; grouping is
/// the Nightsaver peak/off-peak calendar) and the histogram half of
/// "kld-lite".
struct DetectorOptions {
  KldDetectorConfig kld{};
  /// "kld-lite": slot-of-week positions kept per week.
  std::size_t reduced_slots = 48;
  /// "iforest" knobs (significance comes from `kld.significance` so the
  /// operating point stays uniform across the registry).
  std::size_t iforest_trees = 64;
  std::size_t iforest_samples = 32;
  /// Assumed anomalous fraction of the training weeks; see
  /// IsolationForestDetectorConfig::contamination.
  double iforest_contamination = 0.20;
  std::uint64_t iforest_seed = 0x150F07357ULL;
};

/// The registered detector ids, in canonical order.
std::span<const std::string_view> registered_detector_names();

/// True if `name` is a registered detector id.
bool is_registered_detector(std::string_view name);

/// The registered ids joined for error/usage text: "kld, ckld, ...".
std::string registered_detector_names_joined();

/// Applies one `--detector-opt key=value` pair to `options`.  Keys are
/// namespaced per family (`kld.bins`, `kld.significance`, `kld.epsilon`,
/// `kld.exclude_out_of_support`, `kld-lite.slots`, `iforest.trees`,
/// `iforest.samples`, `iforest.contamination`, `iforest.seed`); the kld.*
/// keys also feed "ckld" and the histogram half of "kld-lite", mirroring
/// how DetectorOptions fans out.  Throws std::invalid_argument naming the
/// known keys on an unknown key, and on an unparsable or out-of-range value.
void apply_detector_option(DetectorOptions& options, std::string_view spec);

/// The keys apply_detector_option understands, one per line with the
/// default, for CLI usage text.
std::string detector_option_help();

/// Builds an unfitted detector of the named family.  Throws std::invalid_
/// argument listing registered_detector_names() on an unknown name.
std::unique_ptr<ScoringDetector> make_detector(std::string_view name,
                                               const DetectorOptions& options);

}  // namespace fdeta::core
