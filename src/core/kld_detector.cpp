#include "core/kld_detector.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"
#include "persist/binary_io.h"
#include "stats/kl_divergence.h"
#include "stats/quantile.h"

namespace fdeta::core {

namespace {

void validate_config(const KldDetectorConfig& config) {
  require(config.bins >= 2, "KldDetector: need at least two bins");
  require(config.significance > 0.0 && config.significance < 1.0,
          "KldDetector: significance must be in (0,1)");
  require(config.epsilon >= 0.0, "KldDetector: epsilon must be >= 0");
}

}  // namespace

KldDetector::KldDetector(KldDetectorConfig config) : config_(config) {
  validate_config(config_);
}

void KldDetector::rebuild_scoring_baseline() {
  if (config_.epsilon <= 0.0) {
    scoring_ = baseline_;  // paper-exact: infinities on out-of-support mass
    return;
  }
  scoring_.resize(baseline_.size());
  const double norm =
      1.0 + config_.epsilon * static_cast<double>(baseline_.size());
  for (std::size_t j = 0; j < baseline_.size(); ++j) {
    scoring_[j] = (baseline_[j] + config_.epsilon) / norm;
  }
}

void KldDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "KldDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "KldDetector: need at least four training weeks");

  // X distribution over the full training matrix; edges frozen here.
  histogram_.emplace(training, config_.bins);
  baseline_ = histogram_->probabilities(training);
  rebuild_scoring_baseline();

  // K_i for every training week against the same edges (eq. 12).
  k_training_.clear();
  k_training_.reserve(weeks);
  for (std::size_t w = 0; w < weeks; ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    const auto p = histogram_->probabilities(week);
    k_training_.push_back(stats::kl_divergence_bits(p, scoring_));
  }
  threshold_ = stats::quantile(k_training_, 1.0 - config_.significance);
  calibration_ = ScoreCalibration::from_reference(k_training_, threshold_,
                                                  config_.significance);
}

double KldDetector::score(std::span<const Kw> week) const {
  KldScratch scratch;
  return score(week, scratch);
}

double KldDetector::raw_score_week(std::span<const Kw> week,
                                   SlotIndex /*first_slot*/) const {
  thread_local KldScratch scratch;  // keeps fleet hot paths allocation-free
  return score(week, scratch);
}

std::string KldDetector::config_fingerprint() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "kld(bins=%zu,sig=%.17g,eps=%.17g,oos=%d)",
                config_.bins, config_.significance, config_.epsilon,
                config_.exclude_out_of_support ? 1 : 0);
  return buf;
}

double KldDetector::score(std::span<const Kw> week, KldScratch& scratch) const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  scratch.p.resize(config_.bins);
  histogram_->probabilities_into(week, scratch.p,
                                 config_.exclude_out_of_support);
  return stats::kl_divergence_bits(scratch.p, scoring_);
}

KldExplanation KldDetector::explain(std::span<const Kw> week) const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  std::vector<double> p(config_.bins);
  histogram_->probabilities_into(week, p, config_.exclude_out_of_support);
  const std::vector<double>& edges = histogram_->edges();

  KldExplanation out;
  out.threshold = threshold_;
  out.bins.reserve(p.size());
  // Mirror kl_divergence_bits term by term so the bits sum is bit-identical
  // to score(week), clamp included.
  double total = 0.0;
  bool infinite = false;
  for (std::size_t j = 0; j < p.size(); ++j) {
    KldBinContribution c;
    c.bin = j;
    c.lower = edges[j];
    c.upper = edges[j + 1];
    c.p = p[j];
    c.q = scoring_[j];
    if (p[j] > 0.0) {
      if (scoring_[j] <= 0.0) {
        c.bits = std::numeric_limits<double>::infinity();
        infinite = true;
      } else {
        c.bits = p[j] * std::log2(p[j] / scoring_[j]);
        total += c.bits;
      }
    }
    out.bins.push_back(c);
  }
  if (infinite) {
    out.score = std::numeric_limits<double>::infinity();
  } else {
    out.score = total < 0.0 && total > -1e-12 ? 0.0 : total;
  }
  return out;
}

bool KldDetector::flag_week(std::span<const Kw> week,
                            SlotIndex /*first_slot*/) const {
  return score(week) > threshold_;
}

double KldDetector::threshold() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return threshold_;
}

const std::vector<double>& KldDetector::training_divergences() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return k_training_;
}

const stats::Histogram& KldDetector::histogram() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return *histogram_;
}

const std::vector<double>& KldDetector::baseline_distribution() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return baseline_;
}

void KldDetector::save(persist::Encoder& enc) const {
  require(histogram_.has_value(), "KldDetector::save: fit() not called");
  enc.u64(config_.bins);
  enc.f64(config_.significance);
  enc.f64(config_.epsilon);
  enc.u8(config_.exclude_out_of_support ? 1 : 0);  // v3+
  histogram_->save(enc);
  enc.doubles(baseline_);
  enc.doubles(k_training_);
  enc.f64(threshold_);
}

void KldDetector::restore(persist::Decoder& dec,
                          std::uint32_t format_version) {
  KldDetectorConfig config;
  config.bins = dec.count("kld bins", 1u << 20);
  config.significance = dec.f64();
  config.epsilon = dec.f64();
  // v2 payloads predate the flag: restoring with clamping keeps the saved
  // detector's scores bit-exact.
  config.exclude_out_of_support =
      format_version >= 3 ? dec.u8() != 0 : false;
  validate_config(config);

  stats::Histogram histogram = stats::Histogram::load(dec);
  if (histogram.bin_count() != config.bins) {
    throw DataError("checkpoint: kld histogram bin count mismatch");
  }
  std::vector<double> baseline = dec.doubles("kld baseline", 1u << 20);
  std::vector<double> k_training = dec.doubles("kld training K", 1u << 20);
  const double threshold = dec.f64();

  *this = from_fitted_parts(config, histogram.edges(), std::move(baseline),
                            std::move(k_training), threshold);
}

KldDetector KldDetector::from_fitted_parts(KldDetectorConfig config,
                                           std::vector<double> edges,
                                           std::vector<double> baseline,
                                           std::vector<double> k_training,
                                           double threshold) {
  validate_config(config);
  stats::Histogram histogram{std::move(edges)};
  if (histogram.bin_count() != config.bins) {
    throw DataError("checkpoint: kld histogram bin count mismatch");
  }
  if (baseline.size() != config.bins) {
    throw DataError("checkpoint: kld baseline size mismatch");
  }
  if (k_training.empty()) {
    throw DataError("checkpoint: kld training divergences missing");
  }

  KldDetector out(config);
  out.histogram_.emplace(std::move(histogram));
  out.baseline_ = std::move(baseline);
  // The smoothed scoring copy is derived deterministically from the raw
  // baseline, so recomputing it reproduces the saved detector bit-exactly.
  out.rebuild_scoring_baseline();
  out.k_training_ = std::move(k_training);
  out.threshold_ = threshold;
  // The calibration is a pure function of the persisted parts, so restored
  // detectors calibrate bit-exactly like the detector that was saved.
  out.calibration_ = ScoreCalibration::from_reference(
      out.k_training_, out.threshold_, config.significance);
  return out;
}

}  // namespace fdeta::core
