#include "core/kld_detector.h"

#include "common/error.h"
#include "stats/kl_divergence.h"
#include "stats/quantile.h"

namespace fdeta::core {

KldDetector::KldDetector(KldDetectorConfig config) : config_(config) {
  require(config_.bins >= 2, "KldDetector: need at least two bins");
  require(config_.significance > 0.0 && config_.significance < 1.0,
          "KldDetector: significance must be in (0,1)");
}

void KldDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "KldDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "KldDetector: need at least four training weeks");

  // X distribution over the full training matrix; edges frozen here.
  histogram_.emplace(training, config_.bins);
  baseline_ = histogram_->probabilities(training);

  // K_i for every training week against the same edges (eq. 12).
  k_training_.clear();
  k_training_.reserve(weeks);
  for (std::size_t w = 0; w < weeks; ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    const auto p = histogram_->probabilities(week);
    k_training_.push_back(stats::kl_divergence_bits(p, baseline_));
  }
  threshold_ = stats::quantile(k_training_, 1.0 - config_.significance);
}

double KldDetector::score(std::span<const Kw> week) const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  const auto p = histogram_->probabilities(week);
  return stats::kl_divergence_bits(p, baseline_);
}

bool KldDetector::flag_week(std::span<const Kw> week,
                            SlotIndex /*first_slot*/) const {
  return score(week) > threshold_;
}

double KldDetector::threshold() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return threshold_;
}

const std::vector<double>& KldDetector::training_divergences() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return k_training_;
}

const stats::Histogram& KldDetector::histogram() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return *histogram_;
}

const std::vector<double>& KldDetector::baseline_distribution() const {
  require(histogram_.has_value(), "KldDetector: fit() not called");
  return baseline_;
}

}  // namespace fdeta::core
