// PCA-based integrity-attack detector (the related-work baseline of
// ref [3], "PCA-Based Method for Detecting Integrity Attacks on AMI",
// QEST'15, by the same research group).
//
// Week vectors are projected onto the leading principal components of the
// training week-matrix; a week whose reconstruction error exceeds the
// (1 - significance) quantile of training errors is anomalous.  Unlike the
// KLD detector it is sensitive to the *shape* of the weekly profile, so it
// complements the distribution-based check.
#pragma once

#include <optional>
#include <vector>

#include "core/detector.h"
#include "stats/pca.h"

namespace fdeta::core {

struct PcaDetectorConfig {
  double explained_fraction = 0.90;  ///< variance retained by the basis
  double significance = 0.05;
};

class PcaDetector final : public Detector {
 public:
  explicit PcaDetector(PcaDetectorConfig config = {});

  std::string_view name() const override { return "PCA"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// Reconstruction-error score of a week.
  double score(std::span<const Kw> week) const;
  double threshold() const;

 private:
  PcaDetectorConfig config_;
  std::optional<stats::Pca> pca_;
  double threshold_ = 0.0;
};

}  // namespace fdeta::core
