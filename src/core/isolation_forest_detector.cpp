#include "core/isolation_forest_detector.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "persist/binary_io.h"
#include "stats/quantile.h"

namespace fdeta::core {

namespace {

constexpr std::size_t kF = IsolationForestDetector::kFeatureCount;
constexpr std::size_t kSlotsPerDay = 48;

void validate_config(const IsolationForestDetectorConfig& config) {
  require(config.trees >= 1, "IsolationForestDetector: need >= 1 tree");
  require(config.sample_size >= 2,
          "IsolationForestDetector: need sample_size >= 2");
  require(config.significance > 0.0 && config.significance < 1.0,
          "IsolationForestDetector: significance must be in (0,1)");
  require(config.contamination >= 0.0 && config.contamination < 1.0,
          "IsolationForestDetector: contamination must be in [0,1)");
}

// Engineered weekly feature vector (SNIPPETS.md Snippet 1's feature set,
// expressed as differences rather than ratios so every feature is finite on
// all-zero weeks).  `offset` is the week's first absolute slot mod 336, so
// calendar-position features survive unaligned windows.
void weekly_features(std::span<const Kw> week, std::size_t offset,
                     double* out) {
  const std::size_t n = week.size();
  double sum = 0.0;
  double peak_sum = 0.0, off_sum = 0.0;
  double wend_sum = 0.0, wday_sum = 0.0;
  std::size_t peak_n = 0, off_n = 0, wend_n = 0, wday_n = 0;
  double hi = week[0], lo = week[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double v = week[i];
    sum += v;
    hi = std::max(hi, v);
    lo = std::min(lo, v);
    const std::size_t s =
        (offset + i) % static_cast<std::size_t>(kSlotsPerWeek);
    const std::size_t hour = (s % kSlotsPerDay) / 2;
    if (hour >= 7 && hour < 22) {
      peak_sum += v;
      ++peak_n;
    } else {
      off_sum += v;
      ++off_n;
    }
    if (s / kSlotsPerDay >= 5) {
      wend_sum += v;
      ++wend_n;
    } else {
      wday_sum += v;
      ++wday_n;
    }
  }
  const double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = week[i] - mean;
    ss += d * d;
  }
  double lag1 = 0.0;
  for (std::size_t i = 1; i < n; ++i) lag1 += std::abs(week[i] - week[i - 1]);
  double lag_day = 0.0;
  for (std::size_t i = kSlotsPerDay; i < n; ++i) {
    lag_day += std::abs(week[i] - week[i - kSlotsPerDay]);
  }

  out[0] = mean;
  out[1] = std::sqrt(ss / static_cast<double>(n));
  out[2] = (peak_n ? peak_sum / static_cast<double>(peak_n) : 0.0) -
           (off_n ? off_sum / static_cast<double>(off_n) : 0.0);
  out[3] = (wend_n ? wend_sum / static_cast<double>(wend_n) : 0.0) -
           (wday_n ? wday_sum / static_cast<double>(wday_n) : 0.0);
  out[4] = lag1 / static_cast<double>(n - 1);
  out[5] = lag_day / static_cast<double>(n - kSlotsPerDay);
  out[6] = hi;
  out[7] = lo;
}

// Expected unsuccessful-search path length of an n-point isolation subtree
// (Liu et al.'s c(n)); 0 for n <= 1.
double c_factor(std::size_t n) {
  if (n <= 1) return 0.0;
  constexpr double kEulerGamma = 0.57721566490153286;
  const double m = static_cast<double>(n);
  return 2.0 * (std::log(m - 1.0) + kEulerGamma) - 2.0 * (m - 1.0) / m;
}

}  // namespace

IsolationForestDetector::IsolationForestDetector(
    IsolationForestDetectorConfig config)
    : config_(config) {
  validate_config(config_);
}

void IsolationForestDetector::standardize(const double* raw,
                                          double* out) const {
  for (std::size_t f = 0; f < kF; ++f) {
    out[f] = (raw[f] - feature_mean_[f]) / feature_std_[f];
  }
}

void IsolationForestDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "IsolationForestDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4,
          "IsolationForestDetector: need at least four training weeks");

  // Feature matrix (weeks x kF), then per-feature standardization so random
  // split values treat all features on a comparable scale.
  std::vector<double> features(weeks * kF);
  for (std::size_t w = 0; w < weeks; ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    weekly_features(week, 0, features.data() + w * kF);
  }
  feature_mean_.assign(kF, 0.0);
  feature_std_.assign(kF, 0.0);
  for (std::size_t f = 0; f < kF; ++f) {
    double mean = 0.0;
    for (std::size_t w = 0; w < weeks; ++w) mean += features[w * kF + f];
    mean /= static_cast<double>(weeks);
    double ss = 0.0;
    for (std::size_t w = 0; w < weeks; ++w) {
      const double d = features[w * kF + f] - mean;
      ss += d * d;
    }
    feature_mean_[f] = mean;
    const double sd = std::sqrt(ss / static_cast<double>(weeks));
    feature_std_[f] = sd < 1e-12 ? 1.0 : sd;  // constant feature: identity
  }
  for (std::size_t w = 0; w < weeks; ++w) {
    double* row = features.data() + w * kF;
    standardize(row, row);
  }

  // Cap the subsample strictly below the week count so every week has
  // out-of-bag trees (trees whose subsample excludes it).  The original
  // min(sample_size, weeks) put every training week in every tree on short
  // histories, making the training scores fully in-sample and the
  // (1 - significance) quantile land on the in-sample maximum — a threshold
  // no out-of-sample test week could reach (the zero-recall bug).
  sample_size_ =
      std::min(config_.sample_size,
               std::max<std::size_t>(2, (3 * weeks) / 4));
  depth_limit_ = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(sample_size_))));

  trees_.clear();
  trees_.resize(config_.trees);
  const Rng root_rng(config_.seed);
  std::vector<std::size_t> indices(weeks);
  std::vector<std::size_t> scratch;
  // Per-tree subsample membership, kept only through fit: training weeks are
  // scored over their out-of-bag trees so the reference scores live on the
  // same scale as test weeks (which are in no tree's subsample).
  std::vector<char> in_sample(config_.trees * weeks, 0);
  for (std::size_t t = 0; t < config_.trees; ++t) {
    Rng rng = root_rng.spawn(t);
    // Subsample without replacement: partial Fisher-Yates over week indices.
    std::iota(indices.begin(), indices.end(), 0);
    for (std::size_t i = 0; i < sample_size_; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(
                                    rng.below(weeks - i));
      std::swap(indices[i], indices[j]);
    }
    scratch.assign(indices.begin(),
                   indices.begin() + static_cast<std::ptrdiff_t>(sample_size_));
    for (std::size_t i = 0; i < sample_size_; ++i) {
      in_sample[t * weeks + indices[i]] = 1;
    }

    // Recursive build over [begin, end) of `scratch`; preorder node layout
    // (node, left subtree, right subtree) keeps serialization canonical.
    Tree& tree = trees_[t];
    tree.nodes.clear();
    const auto build = [&](auto&& self, std::size_t begin, std::size_t end,
                           std::size_t depth) -> std::uint32_t {
      const std::uint32_t node_index =
          static_cast<std::uint32_t>(tree.nodes.size());
      tree.nodes.emplace_back();
      const std::size_t count = end - begin;
      if (count <= 1 || depth >= depth_limit_) {
        tree.nodes[node_index].feature = kLeaf;
        tree.nodes[node_index].size = static_cast<std::uint32_t>(count);
        return node_index;
      }
      // Features with spread among the node's points are splittable.
      std::array<std::uint32_t, kF> splittable{};
      std::array<double, kF> f_lo{}, f_hi{};
      std::size_t n_splittable = 0;
      for (std::size_t f = 0; f < kF; ++f) {
        double lo = features[scratch[begin] * kF + f];
        double hi = lo;
        for (std::size_t i = begin + 1; i < end; ++i) {
          const double v = features[scratch[i] * kF + f];
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        if (hi > lo) {
          splittable[n_splittable] = static_cast<std::uint32_t>(f);
          f_lo[n_splittable] = lo;
          f_hi[n_splittable] = hi;
          ++n_splittable;
        }
      }
      if (n_splittable == 0) {  // duplicate points: cannot isolate further
        tree.nodes[node_index].feature = kLeaf;
        tree.nodes[node_index].size = static_cast<std::uint32_t>(count);
        return node_index;
      }
      const std::size_t pick =
          static_cast<std::size_t>(rng.below(n_splittable));
      const std::uint32_t feature = splittable[pick];
      const double split = rng.uniform(f_lo[pick], f_hi[pick]);
      const auto mid = std::stable_partition(
          scratch.begin() + static_cast<std::ptrdiff_t>(begin),
          scratch.begin() + static_cast<std::ptrdiff_t>(end),
          [&](std::size_t w) { return features[w * kF + feature] < split; });
      const std::size_t split_at =
          static_cast<std::size_t>(mid - scratch.begin());
      const std::uint32_t left = self(self, begin, split_at, depth + 1);
      const std::uint32_t right = self(self, split_at, end, depth + 1);
      Node& node = tree.nodes[node_index];  // emplace_backs may reallocate
      node.feature = feature;
      node.split = split;
      node.left = left;
      node.right = right;
      node.size = static_cast<std::uint32_t>(count);
      return node_index;
    };
    build(build, 0, sample_size_, 0);
  }
  fitted_ = true;

  // Out-of-bag training scores: each week is averaged over the trees whose
  // subsample excluded it, so reference and test-time scores are drawn from
  // the same distribution.  (A week sampled into every tree — impossible
  // under the 3/4 cap unless trees are few — falls back to all trees.)
  training_scores_.clear();
  training_scores_.reserve(weeks);
  for (std::size_t w = 0; w < weeks; ++w) {
    double total = 0.0;
    std::size_t oob = 0;
    for (std::size_t t = 0; t < config_.trees; ++t) {
      if (in_sample[t * weeks + w]) continue;
      total += tree_path_length(trees_[t], features.data() + w * kF);
      ++oob;
    }
    const double avg =
        oob > 0 ? total / static_cast<double>(oob)
                : average_path_length(features.data() + w * kF);
    training_scores_.push_back(std::exp2(-avg / c_factor(sample_size_)));
  }

  // Contamination-adjusted threshold quantile.  The naive (1 - significance)
  // quantile of the training scores lands next to the sample maximum — the
  // score of the most anomalous (vacation/outlier) training week, which no
  // attack week reliably exceeds (the zero-recall bug).  Unlike the KLD
  // families, whose training divergences are a clean null sample, the
  // forest's reference is contaminated by the very anomalies it exists to
  // find, so the uncontaminated weeks occupy only the lower (1 - c) of the
  // order statistics: the honest (1 - significance) tail of the *inlier*
  // score distribution is the (1 - c) * (1 - significance) empirical
  // quantile of the full reference.
  threshold_ = stats::threshold_quantile(
      training_scores_,
      (1.0 - config_.contamination) * (1.0 - config_.significance));
  calibration_ = ScoreCalibration::from_reference(training_scores_, threshold_,
                                                  config_.significance);
}

double IsolationForestDetector::tree_path_length(const Tree& tree,
                                                 const double* features) {
  std::size_t node = 0;
  double depth = 0.0;
  while (tree.nodes[node].feature != kLeaf) {
    const Node& n = tree.nodes[node];
    node = features[n.feature] < n.split ? n.left : n.right;
    depth += 1.0;
  }
  return depth + c_factor(tree.nodes[node].size);
}

double IsolationForestDetector::average_path_length(
    const double* features) const {
  double total = 0.0;
  for (const Tree& tree : trees_) total += tree_path_length(tree, features);
  return total / static_cast<double>(trees_.size());
}

double IsolationForestDetector::raw_score_week(std::span<const Kw> week,
                                               SlotIndex first_slot) const {
  require(fitted_, "IsolationForestDetector: fit() not called");
  require(week.size() == static_cast<std::size_t>(kSlotsPerWeek),
          "IsolationForestDetector: week must be kSlotsPerWeek readings");
  double raw[kF];
  double z[kF];
  weekly_features(week,
                  static_cast<std::size_t>(first_slot) %
                      static_cast<std::size_t>(kSlotsPerWeek),
                  raw);
  standardize(raw, z);
  return std::exp2(-average_path_length(z) / c_factor(sample_size_));
}

double IsolationForestDetector::raw_decision_threshold() const {
  require(fitted_, "IsolationForestDetector: fit() not called");
  return threshold_;
}

const std::vector<double>& IsolationForestDetector::training_scores() const {
  require(fitted_, "IsolationForestDetector: fit() not called");
  return training_scores_;
}

std::string IsolationForestDetector::config_fingerprint() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "iforest(trees=%zu,sample=%zu,sig=%.17g,contam=%.17g,"
                "seed=%016llx)",
                config_.trees, config_.sample_size, config_.significance,
                config_.contamination,
                static_cast<unsigned long long>(config_.seed));
  return buf;
}

void IsolationForestDetector::save_state(persist::Encoder& enc) const {
  require(fitted_, "IsolationForestDetector::save_state: fit() not called");
  enc.u64(config_.trees);
  enc.u64(config_.sample_size);
  enc.f64(config_.significance);
  enc.f64(config_.contamination);  // added in checkpoint format v5
  enc.u64(config_.seed);
  enc.u64(sample_size_);
  enc.u64(depth_limit_);
  enc.doubles(feature_mean_);
  enc.doubles(feature_std_);
  for (const Tree& tree : trees_) {
    enc.u64(tree.nodes.size());
    for (const Node& node : tree.nodes) {
      enc.u32(node.feature);
      enc.f64(node.split);
      enc.u32(node.left);
      enc.u32(node.right);
      enc.u32(node.size);
    }
  }
  enc.doubles(training_scores_);
  enc.f64(threshold_);
}

void IsolationForestDetector::restore_state(persist::Decoder& dec,
                                            std::uint32_t format_version) {
  IsolationForestDetectorConfig config;
  config.trees = dec.count("iforest trees", 1u << 16);
  config.sample_size = dec.count("iforest sample size", 1u << 20);
  config.significance = dec.f64();
  // v4 payloads predate the contamination knob; the restored value only
  // matters for a refit, so old files pick up the current default.
  config.contamination = format_version >= 5 ? dec.f64() : 0.20;
  config.seed = dec.u64();
  validate_config(config);
  const std::size_t sample_size = dec.count("iforest sample", 1u << 20);
  const std::size_t depth_limit = dec.count("iforest depth", 64);
  if (sample_size < 2 || sample_size > config.sample_size) {
    throw DataError("checkpoint: iforest effective sample out of range");
  }
  std::vector<double> feature_mean =
      dec.doubles("iforest feature means", kF);
  std::vector<double> feature_std = dec.doubles("iforest feature stds", kF);
  if (feature_mean.size() != kF || feature_std.size() != kF) {
    throw DataError("checkpoint: iforest feature stats have wrong width");
  }
  for (const double sd : feature_std) {
    if (!(sd > 0.0)) {
      throw DataError("checkpoint: iforest feature std not positive");
    }
  }
  std::vector<Tree> trees(config.trees);
  for (Tree& tree : trees) {
    const std::size_t count = dec.count("iforest tree nodes", 1u << 22);
    if (count == 0) throw DataError("checkpoint: iforest tree is empty");
    tree.nodes.resize(count);
    for (Node& node : tree.nodes) {
      node.feature = dec.u32();
      node.split = dec.f64();
      node.left = dec.u32();
      node.right = dec.u32();
      node.size = dec.u32();
      if (node.feature == kLeaf) continue;
      if (node.feature >= kF || node.left >= count || node.right >= count) {
        throw DataError("checkpoint: iforest node out of range");
      }
    }
  }
  std::vector<double> training_scores =
      dec.doubles("iforest training scores", 1u << 20);
  if (training_scores.empty()) {
    throw DataError("checkpoint: iforest training scores missing");
  }
  const double threshold = dec.f64();

  config_ = config;
  sample_size_ = sample_size;
  depth_limit_ = depth_limit;
  feature_mean_ = std::move(feature_mean);
  feature_std_ = std::move(feature_std);
  trees_ = std::move(trees);
  training_scores_ = std::move(training_scores);
  threshold_ = threshold;
  // Pure function of the persisted parts: restored calibration is bit-exact.
  calibration_ = ScoreCalibration::from_reference(
      training_scores_, threshold_, config_.significance);
  fitted_ = true;
}

}  // namespace fdeta::core
