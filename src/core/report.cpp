#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "pricing/statement.h"

namespace fdeta::core {

namespace {

void append_line(std::string& out, const char* format, auto... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), format, args...);
  out += buffer;
  out += '\n';
}

// A non-finite score or threshold would render as a bare "inf"/"nan" token
// and poison any parser downstream of the report; refuse to emit it (with
// the default epsilon smoothing enabled, scores are finite by construction).
double finite(double value, const char* what) {
  if (!std::isfinite(value)) {
    throw NumericalError(std::string("render_report: ") + what +
                         " is non-finite (enable KldDetectorConfig::epsilon "
                         "smoothing to keep out-of-support scores finite)");
  }
  return value;
}

}  // namespace

std::string render_report(const PipelineReport& report,
                          const meter::Dataset& actual,
                          const meter::Dataset& reported, std::size_t week,
                          const pricing::PriceSchedule& schedule,
                          const ReportOptions& options) {
  require(actual.consumer_count() == reported.consumer_count(),
          "render_report: dataset size mismatch");
  require(report.verdicts.size() == reported.consumer_count(),
          "render_report: verdict count mismatch");

  std::string out;
  append_line(out, "=== F-DETA weekly report: week %zu ===", week);

  std::size_t normal = 0;
  for (const auto& v : report.verdicts) {
    if (v.status == VerdictStatus::kNormal) ++normal;
  }
  append_line(out, "meters: %zu total, %zu normal, %zu needing attention",
              report.verdicts.size(), normal,
              report.verdicts.size() - normal);

  const SlotIndex first_slot = week * kSlotsPerWeek;
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const auto& v = report.verdicts[i];
    if (options.anomalies_only && v.status == VerdictStatus::kNormal) {
      continue;
    }
    append_line(out, "- meter %u: %s (KLD %.3f / threshold %.3f)", v.id,
                to_string(v.status), finite(v.kld_score, "KLD score"),
                finite(v.kld_threshold, "KLD threshold"));
    if (v.excuse) {
      append_line(out, "    excused by %s: %s",
                  to_string(v.excuse->kind), v.excuse->description.c_str());
    }
    if (v.explanation) {
      // Only bins carrying week mass contribute (0 * log(0/q) := 0); a
      // non-finite score was already rejected above, so bits are finite.
      append_line(out, "    KLD per-bin contributions:");
      for (const auto& c : v.explanation->bins) {
        if (c.bits == 0.0) continue;
        append_line(out,
                    "      bin %zu [%.3f, %.3f) kW: week %.4f vs baseline "
                    "%.4f -> %+.4f bits",
                    c.bin, c.lower, c.upper, c.p, c.q, c.bits);
      }
    }
    if (options.include_billing) {
      const auto impact = pricing::statement_impact(
          actual.consumer(i).week(week), reported.consumer(i).week(week),
          schedule, first_slot);
      if (impact.overbilled > 0.005) {
        append_line(out, "    billing impact: over-billed $%.2f (victim)",
                    impact.overbilled);
      } else if (impact.overbilled < -0.005) {
        append_line(out, "    billing impact: under-billed $%.2f (suspect)",
                    -impact.overbilled);
      }
    }
  }

  if (report.investigation) {
    append_line(out,
                "investigation: %zu portable-meter checks, localized node %d",
                report.investigation->checks_performed,
                report.investigation->localized_node);
    if (report.investigation->suspects.empty()) {
      append_line(out, "  books balance; no field visit required");
    } else {
      out += "  inspect meters:";
      for (const std::size_t s : report.investigation->suspects) {
        char buffer[16];
        std::snprintf(buffer, sizeof(buffer), " %u",
                      reported.consumer(s).id);
        out += buffer;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace fdeta::core
