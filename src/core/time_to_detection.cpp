#include "core/time_to_detection.h"

#include "common/error.h"

namespace fdeta::core {

SlidingWeekMonitor::SlidingWeekMonitor(const Detector& detector,
                                       std::span<const Kw> reference_week)
    : detector_(&detector),
      window_(reference_week.begin(), reference_week.end()) {
  require(window_.size() == kSlotsPerWeek,
          "SlidingWeekMonitor: reference week must be one week long");
}

bool SlidingWeekMonitor::push(Kw reading) {
  window_[next_slot_] = reading;
  next_slot_ = (next_slot_ + 1) % window_.size();
  ++count_;
  return detector_->flag_week(window_);
}

std::optional<std::size_t> time_to_detection(
    const Detector& detector, std::span<const Kw> reference_week,
    std::span<const Kw> readings) {
  SlidingWeekMonitor monitor(detector, reference_week);
  for (std::size_t i = 0; i < readings.size(); ++i) {
    if (monitor.push(readings[i])) return i + 1;
  }
  return std::nullopt;
}

}  // namespace fdeta::core
