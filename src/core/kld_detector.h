// The Kullback-Leibler divergence detector (Section VII-D) - the paper's
// main contribution.
//
// For each consumer, the M x 336 training matrix X (one row per week) is
// histogrammed with B bins; the same frozen bin edges give each training
// week X_i a distribution, and K_i = D_KL(X_i || X) in bits (eq. 12) forms
// the KLD distribution.  A new week is anomalous when its divergence K_A
// exceeds the (1 - significance) quantile of {K_i} - the paper evaluates
// significance levels of 5% and 10% (95th/90th percentile thresholds).
//
// Non-parametric by construction: no distributional assumption on the
// consumption readings, which is what lets it catch the Integrated ARIMA
// attack that individual-reading and mean/variance checks cannot.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/detector.h"
#include "persist/checkpoint.h"
#include "stats/histogram.h"

namespace fdeta::core {

struct KldDetectorConfig {
  std::size_t bins = 10;       ///< B of Section VIII-D
  double significance = 0.05;  ///< alpha: 0.05 or 0.10 in the paper
  /// Laplace-style smoothing mass added to every baseline bin before
  /// scoring: q'_j = (q_j + epsilon) / (1 + B * epsilon).  With the paper's
  /// bare eq. (12) (epsilon = 0), a scored week that puts ANY mass in a bin
  /// that happened to be empty across the training weeks scores +infinity -
  /// one out-of-support reading saturates the score, and with it thresholds,
  /// time-to-detection, and every downstream metric.  The default keeps an
  /// out-of-support bin worth ~30 bits per unit of week mass: still a strong
  /// anomaly signal, never non-finite.  Set 0 for paper-exact scores.
  double epsilon = 1e-9;
  /// When true (default), readings of a scored week that fall outside the
  /// frozen training support are tallied as underflow/overflow instead of
  /// being clamped into the outer bins: a quarantine-escaped negative or
  /// absurd reading no longer masquerades as legitimate lowest/highest-bin
  /// consumption mass, and the week distribution is normalised over the
  /// in-support readings only (an all-out-of-support week falls back to
  /// clamping; see Histogram::probabilities_into).  Training weeks are in
  /// support by construction, so thresholds are unaffected either way.  Set
  /// false for the historical (pre-v3 checkpoint) clamping semantics.
  bool exclude_out_of_support = true;
};

/// Reusable per-thread scoring scratch: score(week, scratch) bins into this
/// buffer instead of allocating a fresh distribution per call, which is what
/// keeps the fleet scoring hot path allocation-free.
struct KldScratch {
  std::vector<double> p;
};

/// One bin's share of a week's K_A score: the p_j * log2(p_j / q_j) term of
/// eq. (12), where p is the scored week's distribution and q the (smoothed)
/// training baseline.
struct KldBinContribution {
  std::size_t bin = 0;  ///< bin index in [0, B)
  double lower = 0.0;   ///< bin lower edge (kW)
  double upper = 0.0;   ///< bin upper edge (kW)
  double p = 0.0;       ///< week mass in the bin
  double q = 0.0;       ///< baseline (scoring) mass in the bin
  double bits = 0.0;    ///< contribution to K_A; 0 when p == 0
};

/// A full per-bin breakdown of one scored week.  Invariant: the sum of
/// bins[*].bits equals score up to the same clamp kl_divergence_bits
/// applies (tiny negative totals snap to 0).
struct KldExplanation {
  double score = 0.0;      ///< K_A, identical to score(week)
  double threshold = 0.0;  ///< the detector's decision threshold
  std::vector<KldBinContribution> bins;
};

class KldDetector final : public Detector {
 public:
  explicit KldDetector(KldDetectorConfig config = {});

  std::string_view name() const override { return "KLD"; }
  const KldDetectorConfig& config() const { return config_; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// K_A: the divergence score of a week.  Finite for any input when
  /// config.epsilon > 0; with epsilon = 0 it is +infinity whenever the week
  /// puts mass where the training distribution has none.
  double score(std::span<const Kw> week) const;

  /// Allocation-free score: identical result, binning into the caller's
  /// scratch buffer (resized to B on first use).
  double score(std::span<const Kw> week, KldScratch& scratch) const;

  /// Per-bin breakdown of score(week): which consumption bins drove the
  /// divergence and by how many bits.  Accumulates terms in the same order
  /// as kl_divergence_bits, so the bits sum reproduces score(week) exactly.
  KldExplanation explain(std::span<const Kw> week) const;

  /// The decision threshold (the (1-alpha) quantile of training K_i).
  double threshold() const;

  /// Training-week divergences K_i (the "KLD distribution", Fig. 4b).
  const std::vector<double>& training_divergences() const;

  /// The frozen-edge histogram and the baseline X distribution (Fig. 4a).
  /// The exposed baseline is the raw eq.-(12) p(X^(j)); epsilon smoothing
  /// applies only to the internal scoring copy.
  const stats::Histogram& histogram() const;
  const std::vector<double>& baseline_distribution() const;

  /// Serializes the fitted state (config, frozen edges, baseline, training
  /// K_i, threshold) for model checkpoints; requires fit() to have run.
  void save(persist::Encoder& enc) const;
  /// Restores state saved by save(), replacing this detector's config and
  /// fit; scores bit-exactly match the detector that was saved.
  /// `format_version` is the enclosing checkpoint's format version: v2
  /// payloads predate the out-of-support flag and restore with it OFF, so a
  /// detector saved by an older build keeps producing the exact scores it
  /// was producing when saved.
  void restore(persist::Decoder& dec,
               std::uint32_t format_version = persist::kFormatVersion);

  /// Reassembles a fitted detector from already-decoded parts (the monitor's
  /// bulk Struct-of-Arrays checkpoint decodes whole fleets of detectors from
  /// flat arrays; see OnlineMonitor::restore).  Validates exactly like
  /// restore() and rebuilds the smoothed scoring baseline deterministically.
  static KldDetector from_fitted_parts(KldDetectorConfig config,
                                       std::vector<double> edges,
                                       std::vector<double> baseline,
                                       std::vector<double> k_training,
                                       double threshold);

 private:
  void rebuild_scoring_baseline();

  KldDetectorConfig config_;
  std::optional<stats::Histogram> histogram_;
  std::vector<double> baseline_;   // p(X^(j)), raw
  std::vector<double> scoring_;    // epsilon-smoothed baseline used to score
  std::vector<double> k_training_; // K_i
  double threshold_ = 0.0;
};

}  // namespace fdeta::core
