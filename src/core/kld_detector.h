// The Kullback-Leibler divergence detector (Section VII-D) - the paper's
// main contribution.
//
// For each consumer, the M x 336 training matrix X (one row per week) is
// histogrammed with B bins; the same frozen bin edges give each training
// week X_i a distribution, and K_i = D_KL(X_i || X) in bits (eq. 12) forms
// the KLD distribution.  A new week is anomalous when its divergence K_A
// exceeds the (1 - significance) quantile of {K_i} - the paper evaluates
// significance levels of 5% and 10% (95th/90th percentile thresholds).
//
// Non-parametric by construction: no distributional assumption on the
// consumption readings, which is what lets it catch the Integrated ARIMA
// attack that individual-reading and mean/variance checks cannot.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/detector_plugin.h"
#include "persist/checkpoint.h"
#include "stats/histogram.h"

namespace fdeta::core {

struct KldDetectorConfig {
  std::size_t bins = 10;       ///< B of Section VIII-D
  double significance = 0.05;  ///< alpha: 0.05 or 0.10 in the paper
  /// Laplace-style smoothing mass added to every baseline bin before
  /// scoring: q'_j = (q_j + epsilon) / (1 + B * epsilon).  With the paper's
  /// bare eq. (12) (epsilon = 0), a scored week that puts ANY mass in a bin
  /// that happened to be empty across the training weeks scores +infinity -
  /// one out-of-support reading saturates the score, and with it thresholds,
  /// time-to-detection, and every downstream metric.  The default keeps an
  /// out-of-support bin worth ~30 bits per unit of week mass: still a strong
  /// anomaly signal, never non-finite.  Set 0 for paper-exact scores.
  double epsilon = 1e-9;
  /// When true (default), readings of a scored week that fall outside the
  /// frozen training support are tallied as underflow/overflow instead of
  /// being clamped into the outer bins: a quarantine-escaped negative or
  /// absurd reading no longer masquerades as legitimate lowest/highest-bin
  /// consumption mass, and the week distribution is normalised over the
  /// in-support readings only (an all-out-of-support week falls back to
  /// clamping; see Histogram::probabilities_into).  Training weeks are in
  /// support by construction, so thresholds are unaffected either way.  Set
  /// false for the historical (pre-v3 checkpoint) clamping semantics.
  bool exclude_out_of_support = true;
};

/// Reusable per-thread scoring scratch: score(week, scratch) bins into this
/// buffer instead of allocating a fresh distribution per call, which is what
/// keeps the fleet scoring hot path allocation-free.
struct KldScratch {
  std::vector<double> p;
};

// KldBinContribution / KldExplanation live in detector_plugin.h (the plugin
// interface's explanation vocabulary is the KLD families' bin breakdown).

class KldDetector final : public ScoringDetector {
 public:
  explicit KldDetector(KldDetectorConfig config = {});

  std::string_view name() const override { return "KLD"; }
  std::string_view id() const override { return "kld"; }
  const KldDetectorConfig& config() const { return config_; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  // --- ScoringDetector plugin surface ------------------------------------
  /// score(week) through the plugin interface; keeps the fleet hot path
  /// allocation-free via an internal thread-local scratch.  The calibration
  /// reference is the training K_i distribution, so the base class's
  /// score_week reports the week's anomaly quantile among them.
  double raw_score_week(std::span<const Kw> week,
                        SlotIndex first_slot = 0) const override;
  double raw_decision_threshold() const override { return threshold(); }
  KldExplanation raw_explain_week(std::span<const Kw> week,
                                  SlotIndex first_slot = 0) const override {
    (void)first_slot;
    return explain(week);
  }
  void save_state(persist::Encoder& enc) const override { save(enc); }
  void restore_state(persist::Decoder& dec,
                     std::uint32_t format_version) override {
    restore(dec, format_version);
  }
  std::string config_fingerprint() const override;
  std::unique_ptr<ScoringDetector> clone() const override {
    return std::make_unique<KldDetector>(*this);
  }

  /// K_A: the divergence score of a week.  Finite for any input when
  /// config.epsilon > 0; with epsilon = 0 it is +infinity whenever the week
  /// puts mass where the training distribution has none.
  double score(std::span<const Kw> week) const;

  /// Allocation-free score: identical result, binning into the caller's
  /// scratch buffer (resized to B on first use).
  double score(std::span<const Kw> week, KldScratch& scratch) const;

  /// Per-bin breakdown of score(week): which consumption bins drove the
  /// divergence and by how many bits.  Accumulates terms in the same order
  /// as kl_divergence_bits, so the bits sum reproduces score(week) exactly.
  KldExplanation explain(std::span<const Kw> week) const;

  /// The decision threshold (the (1-alpha) quantile of training K_i).
  double threshold() const;

  /// Training-week divergences K_i (the "KLD distribution", Fig. 4b).
  const std::vector<double>& training_divergences() const;

  /// The frozen-edge histogram and the baseline X distribution (Fig. 4a).
  /// The exposed baseline is the raw eq.-(12) p(X^(j)); epsilon smoothing
  /// applies only to the internal scoring copy.
  const stats::Histogram& histogram() const;
  const std::vector<double>& baseline_distribution() const;

  /// Serializes the fitted state (config, frozen edges, baseline, training
  /// K_i, threshold) for model checkpoints; requires fit() to have run.
  void save(persist::Encoder& enc) const;
  /// Restores state saved by save(), replacing this detector's config and
  /// fit; scores bit-exactly match the detector that was saved.
  /// `format_version` is the enclosing checkpoint's format version: v2
  /// payloads predate the out-of-support flag and restore with it OFF, so a
  /// detector saved by an older build keeps producing the exact scores it
  /// was producing when saved.
  void restore(persist::Decoder& dec,
               std::uint32_t format_version = persist::kFormatVersion);

  /// Reassembles a fitted detector from already-decoded parts (the monitor's
  /// bulk Struct-of-Arrays checkpoint decodes whole fleets of detectors from
  /// flat arrays; see OnlineMonitor::restore).  Validates exactly like
  /// restore() and rebuilds the smoothed scoring baseline deterministically.
  static KldDetector from_fitted_parts(KldDetectorConfig config,
                                       std::vector<double> edges,
                                       std::vector<double> baseline,
                                       std::vector<double> k_training,
                                       double threshold);

 private:
  void rebuild_scoring_baseline();

  KldDetectorConfig config_;
  std::optional<stats::Histogram> histogram_;
  std::vector<double> baseline_;   // p(X^(j)), raw
  std::vector<double> scoring_;    // epsilon-smoothed baseline used to score
  std::vector<double> k_training_; // K_i
  double threshold_ = 0.0;
};

}  // namespace fdeta::core
