// The Kullback-Leibler divergence detector (Section VII-D) - the paper's
// main contribution.
//
// For each consumer, the M x 336 training matrix X (one row per week) is
// histogrammed with B bins; the same frozen bin edges give each training
// week X_i a distribution, and K_i = D_KL(X_i || X) in bits (eq. 12) forms
// the KLD distribution.  A new week is anomalous when its divergence K_A
// exceeds the (1 - significance) quantile of {K_i} - the paper evaluates
// significance levels of 5% and 10% (95th/90th percentile thresholds).
//
// Non-parametric by construction: no distributional assumption on the
// consumption readings, which is what lets it catch the Integrated ARIMA
// attack that individual-reading and mean/variance checks cannot.
#pragma once

#include <optional>
#include <vector>

#include "core/detector.h"
#include "stats/histogram.h"

namespace fdeta::core {

struct KldDetectorConfig {
  std::size_t bins = 10;       ///< B of Section VIII-D
  double significance = 0.05;  ///< alpha: 0.05 or 0.10 in the paper
};

class KldDetector final : public Detector {
 public:
  explicit KldDetector(KldDetectorConfig config = {});

  std::string_view name() const override { return "KLD"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// K_A: the divergence score of a week (may be +infinity when the week
  /// puts mass where the training distribution has none).
  double score(std::span<const Kw> week) const;

  /// The decision threshold (the (1-alpha) quantile of training K_i).
  double threshold() const;

  /// Training-week divergences K_i (the "KLD distribution", Fig. 4b).
  const std::vector<double>& training_divergences() const;

  /// The frozen-edge histogram and the baseline X distribution (Fig. 4a).
  const stats::Histogram& histogram() const;
  const std::vector<double>& baseline_distribution() const;

 private:
  KldDetectorConfig config_;
  std::optional<stats::Histogram> histogram_;
  std::vector<double> baseline_;   // p(X^(j))
  std::vector<double> k_training_; // K_i
  double threshold_ = 0.0;
};

}  // namespace fdeta::core
