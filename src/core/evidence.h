// Step 4 of the F-DETA detection process (Section VII): "use external
// evidence (severe weather conditions, holiday periods, special events,
// etc.) to determine whether the anomalous consumption may be a false
// positive".
//
// The calendar records week-granularity events; an anomaly verdict during a
// recorded event is downgraded to "excused" instead of triggering a field
// investigation.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace fdeta::core {

enum class EvidenceKind : std::uint8_t {
  kSevereWeather,
  kHoliday,
  kSpecialEvent,
};

const char* to_string(EvidenceKind kind);

struct EvidenceEvent {
  std::size_t first_week = 0;
  std::size_t last_week = 0;  ///< inclusive
  EvidenceKind kind = EvidenceKind::kHoliday;
  std::string description;
};

class EvidenceCalendar {
 public:
  /// Records an event spanning weeks [first_week, last_week].
  void add(EvidenceEvent event);

  /// The first event covering `week`, if any: external evidence that a
  /// consumption anomaly in that week may be benign.
  std::optional<EvidenceEvent> excuse(std::size_t week) const;

  std::size_t event_count() const { return events_.size(); }

 private:
  std::vector<EvidenceEvent> events_;
};

}  // namespace fdeta::core
