// The first-class detector plugin interface (ROADMAP item 2).
//
// Detector (detector.h) is the minimal fit/flag contract the evaluation
// harness consumes.  ScoringDetector is the full plugin contract the serving
// layers (FdetaPipeline, OnlineMonitor, the model checkpoints, the CLI's
// --detector flag) thread through:
//
//   - a scalar anomaly score per week plus a decision threshold (the flag
//     decision is score > threshold, uniformly, so alerts/verdicts carry a
//     comparable score regardless of family).  Since the calibration layer
//     landed, score_week is the CALIBRATED anomaly quantile in [0, 1] (see
//     ScoreCalibration below) and decision_threshold() is uniformly
//     1 - significance; each family's native score scale stays reachable
//     through raw_score_week / raw_decision_threshold,
//   - a per-bin explanation (families without a bin decomposition return the
//     score/threshold header with no bins),
//   - symmetric save_state/restore_state for checkpoints,
//   - a registry id + config fingerprint, so a checkpoint names the family
//     that wrote it and a fleet's uniformity is checkable in O(consumers).
//
// Implementations must be usable concurrently from multiple threads after
// fit() returns: every scoring entry point is const and may not mutate
// observable state (the property suite in tests/test_property_invariants.cpp
// enforces this for every registered family).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/detector.h"

namespace fdeta::persist {
class Decoder;
class Encoder;
}  // namespace fdeta::persist

namespace fdeta::core {

/// One bin's share of a week's K_A score: the p_j * log2(p_j / q_j) term of
/// eq. (12), where p is the scored week's distribution and q the (smoothed)
/// training baseline.
struct KldBinContribution {
  std::size_t bin = 0;  ///< bin index in [0, B)
  double lower = 0.0;   ///< bin lower edge (kW)
  double upper = 0.0;   ///< bin upper edge (kW)
  double p = 0.0;       ///< week mass in the bin
  double q = 0.0;       ///< baseline (scoring) mass in the bin
  double bits = 0.0;    ///< contribution to K_A; 0 when p == 0
};

/// A full per-bin breakdown of one scored week.  Invariant for the KLD
/// families: the sum of bins[*].bits equals raw_score up to the same clamp
/// kl_divergence_bits applies (tiny negative totals snap to 0).  Families
/// without a bin decomposition leave `bins` empty.
struct KldExplanation {
  double score = 0.0;          ///< identical to score_week(week) (calibrated)
  double threshold = 0.0;      ///< identical to decision_threshold()
  double raw_score = 0.0;      ///< the family-native score (bins sum to this)
  double raw_threshold = 0.0;  ///< the family-native decision threshold
  std::vector<KldBinContribution> bins;
};

/// Maps a family's native score scale onto a registry-uniform calibrated
/// scale: the empirical anomaly quantile in [0, 1] of the family's training
/// reference scores, anchored at the family's raw decision threshold.
///
/// The map is monotone non-decreasing and FLAG-PRESERVING by construction:
///
///   calibrate(raw) > 1 - significance   iff   raw > raw_threshold()
///
/// which is what lets decision_threshold() be the uniform 1 - significance
/// across every family without moving a single flag decision.  Raw scores at
/// or below the raw threshold land in [0, 1 - significance] by their position
/// in the reference distribution (linear between sorted reference points, the
/// left inverse of the Hyndman-Fan-7 quantile); raw scores above it land in
/// (1 - significance, 1].  Calibration is a pure function of (reference,
/// raw_threshold, significance), so restored checkpoints and sharded fleets
/// reproduce calibrated scores bit-exactly.
class ScoreCalibration {
 public:
  ScoreCalibration() = default;

  /// Calibration over a reference sample of raw scores (the family's
  /// training scores on the same scale raw_score_week reports).  The
  /// reference is sorted internally; it may be empty, which degrades to
  /// threshold_anchored().  `significance` must be in (0, 1).
  static ScoreCalibration from_reference(std::vector<double> reference,
                                         double raw_threshold,
                                         double significance);

  /// Fallback for legacy checkpoints that persisted a threshold but no
  /// training reference: anchors the flag boundary exactly and squashes raw
  /// margins monotonically into the two segments.
  static ScoreCalibration threshold_anchored(double raw_threshold,
                                             double significance);

  bool fitted() const { return fitted_; }
  double significance() const { return significance_; }
  double raw_threshold() const { return raw_threshold_; }
  /// The uniform calibrated decision threshold: 1 - significance.
  double decision_threshold() const { return 1.0 - significance_; }
  /// The sorted reference sample (empty for threshold_anchored).
  const std::vector<double>& reference() const { return reference_; }

  /// The calibrated anomaly quantile of a raw score, in [0, 1].  NaN inputs
  /// propagate; +-infinity map to the segment extremes.
  double calibrate(double raw) const;

 private:
  /// Position of x in the sorted reference, in [0, 1]: the left inverse of
  /// quantile_sorted (x below the min is 0, above the max is 1, linear
  /// between adjacent order statistics).
  double position(double x) const;

  std::vector<double> reference_;  // sorted ascending; empty = legacy anchor
  double raw_threshold_ = 0.0;
  double significance_ = 0.05;
  double threshold_position_ = 0.0;  // cached position(raw_threshold_)
  bool fitted_ = false;
};

class ScoringDetector : public Detector {
 public:
  /// Registry id ("kld", "ckld", "kld-lite", "iforest"; see
  /// detector_registry.h).  Stable across processes: checkpoints persist it.
  virtual std::string_view id() const = 0;

  /// The family-native anomaly score of a week (divergence bits, a group
  /// margin, a forest score...).  `first_slot` is the week's absolute slot
  /// index (weeks are slot-aligned), needed by slot-of-week aware families.
  /// Finite for any input under the default configs.
  virtual double raw_score_week(std::span<const Kw> week,
                                SlotIndex first_slot = 0) const = 0;

  /// The family-native decision threshold: a week is anomalous iff
  /// raw_score_week(week) > raw_decision_threshold().
  virtual double raw_decision_threshold() const = 0;

  /// The CALIBRATED anomaly score of a week: the raw score mapped through
  /// the family's ScoreCalibration into [0, 1], comparable across families
  /// (0.97 means "further out than the 1 - significance training quantile"
  /// whatever the family).  The flag decision is unchanged from the raw
  /// rule: score_week(week) > decision_threshold() iff
  /// raw_score_week(week) > raw_decision_threshold().
  double score_week(std::span<const Kw> week, SlotIndex first_slot = 0) const {
    return calibration_.calibrate(raw_score_week(week, first_slot));
  }

  /// The uniform calibrated decision threshold: 1 - significance, for every
  /// family.
  double decision_threshold() const {
    return calibration_.decision_threshold();
  }

  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override {
    // Decided on the raw scale; identical to the calibrated comparison by
    // ScoreCalibration's flag-preservation invariant.
    return raw_score_week(week, first_slot) > raw_decision_threshold();
  }

  /// The family's score calibration; fitted once fit() (or a restore) has
  /// run.
  const ScoreCalibration& calibration() const { return calibration_; }

  /// Per-bin breakdown of a week.  The header carries the calibrated score
  /// and threshold (matching score_week/decision_threshold exactly) plus the
  /// family-native raw_score/raw_threshold the bins decompose.
  KldExplanation explain_week(std::span<const Kw> week,
                              SlotIndex first_slot = 0) const;

  /// Family hook behind explain_week: score and threshold on the RAW scale
  /// (explain_week rebases the header).  The default carries the raw score
  /// and threshold with no bins; histogram families override with the full
  /// eq.-(12) decomposition.
  virtual KldExplanation raw_explain_week(std::span<const Kw> week,
                                          SlotIndex first_slot = 0) const;

  /// Serializes the fitted state; requires fit() to have run.  Symmetric
  /// with restore_state: the byte stream carries its own framing, so
  /// consecutive per-consumer payloads need no length prefixes.
  virtual void save_state(persist::Encoder& enc) const = 0;

  /// Restores state saved by save_state, replacing this detector's config
  /// and fit; scores bit-exactly match the detector that was saved.
  /// `format_version` is the enclosing checkpoint's format version (families
  /// that existed before v4 decode their historical layouts).
  virtual void restore_state(persist::Decoder& dec,
                             std::uint32_t format_version) = 0;

  /// Deterministic one-line config summary (id + every scoring-relevant
  /// parameter).  Two fitted detectors with equal fingerprints are
  /// interchangeable members of one uniform fleet; checkpoints persist it
  /// as a cross-check.
  virtual std::string config_fingerprint() const = 0;

  /// Deep copy, fitted state included (the fleet layers clone a configured
  /// prototype per consumer before fit).
  virtual std::unique_ptr<ScoringDetector> clone() const = 0;

 protected:
  /// Every family assigns this at the end of fit() and of a state restore
  /// (copies and clones carry it along).  Until then score_week /
  /// decision_threshold throw via ScoreCalibration's fitted check.
  ScoreCalibration calibration_;
};

}  // namespace fdeta::core
