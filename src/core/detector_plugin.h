// The first-class detector plugin interface (ROADMAP item 2).
//
// Detector (detector.h) is the minimal fit/flag contract the evaluation
// harness consumes.  ScoringDetector is the full plugin contract the serving
// layers (FdetaPipeline, OnlineMonitor, the model checkpoints, the CLI's
// --detector flag) thread through:
//
//   - a scalar anomaly score per week plus a decision threshold (the flag
//     decision is score > threshold, uniformly, so alerts/verdicts carry a
//     comparable score regardless of family),
//   - a per-bin explanation (families without a bin decomposition return the
//     score/threshold header with no bins),
//   - symmetric save_state/restore_state for checkpoints,
//   - a registry id + config fingerprint, so a checkpoint names the family
//     that wrote it and a fleet's uniformity is checkable in O(consumers).
//
// Implementations must be usable concurrently from multiple threads after
// fit() returns: every scoring entry point is const and may not mutate
// observable state (the property suite in tests/test_property_invariants.cpp
// enforces this for every registered family).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/detector.h"

namespace fdeta::persist {
class Decoder;
class Encoder;
}  // namespace fdeta::persist

namespace fdeta::core {

/// One bin's share of a week's K_A score: the p_j * log2(p_j / q_j) term of
/// eq. (12), where p is the scored week's distribution and q the (smoothed)
/// training baseline.
struct KldBinContribution {
  std::size_t bin = 0;  ///< bin index in [0, B)
  double lower = 0.0;   ///< bin lower edge (kW)
  double upper = 0.0;   ///< bin upper edge (kW)
  double p = 0.0;       ///< week mass in the bin
  double q = 0.0;       ///< baseline (scoring) mass in the bin
  double bits = 0.0;    ///< contribution to K_A; 0 when p == 0
};

/// A full per-bin breakdown of one scored week.  Invariant for the KLD
/// families: the sum of bins[*].bits equals score up to the same clamp
/// kl_divergence_bits applies (tiny negative totals snap to 0).  Families
/// without a bin decomposition leave `bins` empty.
struct KldExplanation {
  double score = 0.0;      ///< identical to score_week(week)
  double threshold = 0.0;  ///< the detector's decision threshold
  std::vector<KldBinContribution> bins;
};

class ScoringDetector : public Detector {
 public:
  /// Registry id ("kld", "ckld", "kld-lite", "iforest"; see
  /// detector_registry.h).  Stable across processes: checkpoints persist it.
  virtual std::string_view id() const = 0;

  /// The scalar anomaly score of a week.  `first_slot` is the week's
  /// absolute slot index (weeks are slot-aligned), needed by slot-of-week
  /// aware families.  Finite for any input under the default configs.
  virtual double score_week(std::span<const Kw> week,
                            SlotIndex first_slot = 0) const = 0;

  /// The decision threshold: a week is anomalous iff
  /// score_week(week) > decision_threshold().
  virtual double decision_threshold() const = 0;

  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override {
    return score_week(week, first_slot) > decision_threshold();
  }

  /// Per-bin breakdown of score_week.  The default carries the score and
  /// threshold with no bins; histogram families override with the full
  /// eq.-(12) decomposition.
  virtual KldExplanation explain_week(std::span<const Kw> week,
                                      SlotIndex first_slot = 0) const;

  /// Serializes the fitted state; requires fit() to have run.  Symmetric
  /// with restore_state: the byte stream carries its own framing, so
  /// consecutive per-consumer payloads need no length prefixes.
  virtual void save_state(persist::Encoder& enc) const = 0;

  /// Restores state saved by save_state, replacing this detector's config
  /// and fit; scores bit-exactly match the detector that was saved.
  /// `format_version` is the enclosing checkpoint's format version (families
  /// that existed before v4 decode their historical layouts).
  virtual void restore_state(persist::Decoder& dec,
                             std::uint32_t format_version) = 0;

  /// Deterministic one-line config summary (id + every scoring-relevant
  /// parameter).  Two fitted detectors with equal fingerprints are
  /// interchangeable members of one uniform fleet; checkpoints persist it
  /// as a cross-check.
  virtual std::string config_fingerprint() const = 0;

  /// Deep copy, fitted state included (the fleet layers clone a configured
  /// prototype per consumer before fit).
  virtual std::unique_ptr<ScoringDetector> clone() const = 0;
};

}  // namespace fdeta::core
