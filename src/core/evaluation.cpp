#include "core/evaluation.h"

#include <algorithm>
#include <exception>

#include "attack/arima_attack.h"
#include "attack/integrated_arima_attack.h"
#include "attack/optimal_swap.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/arima_detector.h"
#include "core/conditioned_kld_detector.h"
#include "core/integrated_arima_detector.h"
#include "core/isolation_forest_detector.h"
#include "core/kld_detector.h"
#include "core/reduced_kld_detector.h"
#include "pricing/billing.h"

namespace fdeta::core {

const char* to_string(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kArima: return "ARIMA detector";
    case DetectorKind::kIntegratedArima: return "Integrated ARIMA detector";
    case DetectorKind::kKld5: return "KLD detector (5% significance)";
    case DetectorKind::kKld10: return "KLD detector (10% significance)";
    case DetectorKind::kIsolationForest: return "Isolation forest detector";
    case DetectorKind::kKldLite: return "Reduced-input KLD detector";
  }
  return "?";
}

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::k1B: return "1B";
    case AttackKind::k2A2B: return "2A/2B";
    case AttackKind::k3A3B: return "3A/3B";
  }
  return "?";
}

namespace {

/// One injected reported week plus its theft value.
struct Candidate {
  std::vector<Kw> readings;
  KWh kwh = 0.0;
  double profit = 0.0;
  /// Whether this candidate belongs to the Metric-1 attack realization (the
  /// plain ARIMA attack is a Metric-2-only candidate).
  bool metric1 = true;
};

struct ColumnDetectors {
  // Row order matches DetectorKind.
  std::array<const Detector*, kDetectorCount> rows{};
};

CellOutcome judge(const std::vector<Candidate>& candidates,
                  const Detector& detector,
                  std::span<const Kw> clean_week) {
  CellOutcome out;
  out.false_positive = detector.flag_week(clean_week);
  out.all_detected = true;
  double best_profit = 0.0;
  KWh best_kwh = 0.0;
  double best_any_profit = 0.0;
  KWh best_any_kwh = 0.0;
  for (const Candidate& c : candidates) {
    const bool flagged = detector.flag_week(c.readings);
    if (!flagged && c.metric1) out.all_detected = false;
    if (!flagged && c.profit > best_profit) {
      best_profit = c.profit;
      best_kwh = c.kwh;
    }
    if (c.profit > best_any_profit) {
      best_any_profit = c.profit;
      best_any_kwh = c.kwh;
    }
  }
  out.success = out.all_detected && !out.false_positive;
  if (out.false_positive) {
    // Section VIII-E: a false positive means the detector failed for this
    // consumer and Mallory's gain is assumed maximised.
    out.undetected_kwh = best_any_kwh;
    out.undetected_profit = best_any_profit;
  } else {
    out.undetected_kwh = best_kwh;
    out.undetected_profit = best_profit;
  }
  return out;
}

}  // namespace

ConsumerEvaluation evaluate_consumer(const meter::ConsumerSeries& series,
                                     const EvaluationConfig& config) {
  ConsumerEvaluation result;
  result.id = series.id;
  try {
    const auto train = config.split.train(series);
    const auto clean_week =
        config.split.test_week(series, config.attack_test_week);
    const pricing::TimeOfUse tou = pricing::nightsaver();

    // --- Detectors -------------------------------------------------------
    ArimaDetectorConfig arima_cfg;
    arima_cfg.order = config.order;
    arima_cfg.z = config.z;
    ArimaDetector arima(arima_cfg);
    arima.fit(train);

    IntegratedArimaDetectorConfig integ_cfg;
    integ_cfg.arima = arima_cfg;
    integ_cfg.bound_slack = config.bound_slack;
    IntegratedArimaDetector integrated(integ_cfg);
    integrated.fit(train);

    KldDetector kld5({config.kld_bins, 0.05});
    KldDetector kld10({config.kld_bins, 0.10});
    kld5.fit(train);
    kld10.fit(train);

    ConditionedKldDetectorConfig ckld_cfg5;
    ckld_cfg5.bins = config.kld_bins;
    ckld_cfg5.significance = 0.05;
    ckld_cfg5.slot_group = tou_slot_groups(tou);
    ConditionedKldDetector ckld5(ckld_cfg5);
    ConditionedKldDetectorConfig ckld_cfg10 = ckld_cfg5;
    ckld_cfg10.significance = 0.10;
    ConditionedKldDetector ckld10(ckld_cfg10);
    ckld5.fit(train);
    ckld10.fit(train);

    IsolationForestDetector iforest;
    iforest.fit(train);

    ReducedKldDetectorConfig lite_cfg;
    lite_cfg.selected_slots = config.reduced_slots;
    lite_cfg.kld = KldDetectorConfig{config.kld_bins, 0.05};
    ReducedKldDetector kld_lite(lite_cfg);
    kld_lite.fit(train);

    // --- Attacker state (replicated models, Section VIII-B1) -------------
    const ts::ArimaModel& model = arima.model();
    const std::span<const Kw> history =
        train.subspan(train.size() - 2 * kSlotsPerWeek);
    const meter::WeeklyStats& wstats = integrated.training_stats();
    Rng rng = Rng(config.seed).spawn(series.id);

    const std::vector<Kw> actual(clean_week.begin(), clean_week.end());

    // --- Candidates per attack column -------------------------------------
    std::array<std::vector<Candidate>, kAttackKindCount> candidates;

    // Column 1B: victim over-report.
    {
      auto& col = candidates[static_cast<std::size_t>(AttackKind::k1B)];
      attack::ArimaAttackConfig aa;
      aa.direction = attack::Direction::kOverReport;
      aa.z = config.z;
      Candidate plain;
      plain.readings =
          attack::arima_attack_vector(model, history, kSlotsPerWeek, aa);
      plain.metric1 = false;  // Metric-2 candidate vs the ARIMA detector
      plain.kwh = std::max(0.0, pricing::energy(plain.readings) -
                                    pricing::energy(actual));
      plain.profit = pricing::neighbor_loss(actual, plain.readings, tou);
      col.push_back(std::move(plain));

      attack::IntegratedAttackConfig ia;
      ia.over_report = true;
      ia.z = config.z;
      for (std::size_t v = 0; v < config.attack_vectors; ++v) {
        Candidate c;
        c.readings = attack::integrated_arima_attack_vector(
            model, history, wstats, kSlotsPerWeek, rng, ia);
        c.kwh = std::max(0.0, pricing::energy(c.readings) -
                                  pricing::energy(actual));
        c.profit = pricing::neighbor_loss(actual, c.readings, tou);
        col.push_back(std::move(c));
      }
    }

    // Column 2A/2B: Mallory under-reports herself.
    {
      auto& col = candidates[static_cast<std::size_t>(AttackKind::k2A2B)];
      attack::ArimaAttackConfig aa;
      aa.direction = attack::Direction::kUnderReport;
      aa.z = config.z;
      Candidate plain;
      plain.readings =
          attack::arima_attack_vector(model, history, kSlotsPerWeek, aa);
      plain.metric1 = false;
      plain.kwh = std::max(0.0, pricing::energy(actual) -
                                    pricing::energy(plain.readings));
      plain.profit = pricing::attacker_profit(actual, plain.readings, tou);
      col.push_back(std::move(plain));

      attack::IntegratedAttackConfig ia;
      ia.over_report = false;
      ia.z = config.z;
      for (std::size_t v = 0; v < config.attack_vectors; ++v) {
        Candidate c;
        c.readings = attack::integrated_arima_attack_vector(
            model, history, wstats, kSlotsPerWeek, rng, ia);
        c.kwh = std::max(0.0, pricing::energy(actual) -
                                  pricing::energy(c.readings));
        c.profit = pricing::attacker_profit(actual, c.readings, tou);
        col.push_back(std::move(c));
      }
    }

    // Column 3A/3B: the Optimal Swap week.
    {
      auto& col = candidates[static_cast<std::size_t>(AttackKind::k3A3B)];
      attack::OptimalSwapConfig sc;
      sc.z = config.z;
      // Mallory replicates the detector, so she knows its calibrated weekly
      // violation budget and repairs only as much as evasion requires.
      sc.violation_budget = arima.violation_threshold();
      const auto swap =
          attack::optimal_swap_attack(actual, tou, 0, &model, history, sc);
      Candidate c;
      c.readings = swap.reported;
      c.kwh = 0.0;  // the multiset of readings is unchanged: no net theft
      c.profit = pricing::attacker_profit(actual, c.readings, tou);
      col.push_back(std::move(c));
    }

    // --- Judge every (detector, attack) cell -------------------------------
    // Rows use the plain detectors for 1B and 2A/2B; the KLD rows switch to
    // the price-conditioned variant for 3A/3B, as in Section VIII-F3.
    std::array<ColumnDetectors, kAttackKindCount> table;
    for (std::size_t a = 0; a < kAttackKindCount; ++a) {
      table[a].rows[static_cast<std::size_t>(DetectorKind::kArima)] = &arima;
      table[a].rows[static_cast<std::size_t>(DetectorKind::kIntegratedArima)] =
          &integrated;
      const bool swap_column = a == static_cast<std::size_t>(AttackKind::k3A3B);
      table[a].rows[static_cast<std::size_t>(DetectorKind::kKld5)] =
          swap_column ? static_cast<const Detector*>(&ckld5) : &kld5;
      table[a].rows[static_cast<std::size_t>(DetectorKind::kKld10)] =
          swap_column ? static_cast<const Detector*>(&ckld10) : &kld10;
      // The plugin families run as-is in every column: their 3A/3B rows
      // measure how the unconditioned variants fare against the swap.
      table[a].rows[static_cast<std::size_t>(DetectorKind::kIsolationForest)] =
          &iforest;
      table[a].rows[static_cast<std::size_t>(DetectorKind::kKldLite)] =
          &kld_lite;
    }

    for (std::size_t d = 0; d < kDetectorCount; ++d) {
      for (std::size_t a = 0; a < kAttackKindCount; ++a) {
        result.cells[d][a] =
            judge(candidates[a], *table[a].rows[d], clean_week);
      }
    }
  } catch (const std::exception&) {
    result.skipped = true;
  }
  return result;
}

EvaluationResult run_evaluation(const meter::Dataset& dataset,
                                const EvaluationConfig& config) {
  require(dataset.week_count() >= config.split.total_weeks(),
          "run_evaluation: dataset shorter than the train/test split");
  EvaluationResult result;
  result.consumers.resize(dataset.consumer_count());
  parallel_for(
      dataset.consumer_count(),
      [&](std::size_t i) {
        result.consumers[i] = evaluate_consumer(dataset.consumer(i), config);
      },
      config.threads);
  return result;
}

std::size_t EvaluationResult::evaluated_count() const {
  std::size_t n = 0;
  for (const auto& c : consumers) {
    if (!c.skipped) ++n;
  }
  return n;
}

double EvaluationResult::metric1_percent(DetectorKind d, AttackKind a) const {
  const std::size_t total = evaluated_count();
  if (total == 0) return 0.0;
  std::size_t detected = 0;
  for (const auto& c : consumers) {
    if (!c.skipped && c.cell(d, a).success) ++detected;
  }
  return 100.0 * static_cast<double>(detected) / static_cast<double>(total);
}

KWh EvaluationResult::metric2_kwh(DetectorKind d, AttackKind a) const {
  KWh agg = 0.0;
  for (const auto& c : consumers) {
    if (c.skipped) continue;
    const KWh v = c.cell(d, a).undetected_kwh;
    if (a == AttackKind::k1B) {
      agg += v;  // total stolen from all victims
    } else {
      agg = std::max(agg, v);  // a single attacker's worst case
    }
  }
  return agg;
}

double EvaluationResult::metric2_profit(DetectorKind d, AttackKind a) const {
  double agg = 0.0;
  for (const auto& c : consumers) {
    if (c.skipped) continue;
    const double v = c.cell(d, a).undetected_profit;
    if (a == AttackKind::k1B) {
      agg += v;
    } else {
      agg = std::max(agg, v);
    }
  }
  return agg;
}

}  // namespace fdeta::core
