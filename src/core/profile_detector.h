// Weekly-profile (seasonal z-score) detector: a simple shape-based baseline
// in the spirit of the per-load pattern monitors of ref [20] (AMIDS).
//
// Each slot-of-week has a trained mean/stddev; a week is anomalous when the
// count of readings beyond `z` standard deviations from their slot's mean
// exceeds a threshold calibrated on the training weeks.  Because it keys on
// the *position* of each reading in the weekly cycle, it is sensitive to
// load shifting (3A/3B) that distribution-only checks miss - but, unlike
// the rolling ARIMA detector, it cannot be poisoned by the reported stream.
#pragma once

#include <optional>

#include "core/detector.h"
#include "timeseries/seasonal.h"

namespace fdeta::core {

struct ProfileDetectorConfig {
  double z = 3.0;            ///< per-slot z-score considered deviant
  double count_slack = 0.25; ///< threshold = worst training count * (1+slack)
  std::size_t count_margin = 2;
};

class ProfileDetector final : public Detector {
 public:
  explicit ProfileDetector(ProfileDetectorConfig config = {});

  std::string_view name() const override { return "Weekly profile"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// Number of readings in the week deviating beyond z sigmas.
  std::size_t deviant_count(std::span<const Kw> week) const;
  std::size_t deviant_threshold() const { return threshold_; }

 private:
  ProfileDetectorConfig config_;
  std::optional<ts::WeeklyProfile> profile_;
  std::size_t threshold_ = 0;
};

}  // namespace fdeta::core
