// Continuous online monitoring for a whole population.
//
// The detection methods are "centralized online algorithms that would run at
// an electric utility's control center" (Section VII-A).  This service is
// that control-center loop: per-consumer sliding week vectors (the ref [3]
// time-to-detection machinery) are rescored as reported readings stream in
// from the AMI head-end, emitting alert events with a per-consumer cooldown
// so a single anomaly does not flood the operator queue.
#pragma once

#include <optional>
#include <vector>

#include "core/kld_detector.h"
#include "core/time_to_detection.h"
#include "meter/dataset.h"

namespace fdeta::core {

struct AlertEvent {
  std::size_t consumer_index = 0;
  meter::ConsumerId consumer_id = 0;
  SlotIndex slot = 0;      ///< absolute slot of the triggering reading
  double score = 0.0;      ///< KLD of the sliding week vector
  double threshold = 0.0;
};

struct OnlineMonitorConfig {
  KldDetectorConfig kld{};
  /// Rescore the sliding vector every `stride` readings (1 = every reading;
  /// 4 = every two hours) - an operator-tunable cost/latency trade.
  std::size_t stride = 4;
  /// After an alert, suppress further alerts for this consumer until this
  /// many readings have passed (default: one day).
  std::size_t cooldown_slots = 48;
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(OnlineMonitorConfig config = {});

  /// Trains per-consumer detectors on the first `split.train_weeks` weeks of
  /// `history` and primes each sliding vector with the last training week.
  void fit(const meter::Dataset& history, const meter::TrainTestSplit& split);

  /// Ingests one reported reading; returns an alert when the consumer's
  /// sliding week vector crosses its threshold (subject to stride/cooldown).
  std::optional<AlertEvent> ingest(std::size_t consumer_index, SlotIndex slot,
                                   Kw reading);

  /// All alerts raised so far, in ingestion order.
  const std::vector<AlertEvent>& alerts() const { return alerts_; }

  std::size_t consumer_count() const { return detectors_.size(); }

 private:
  struct ConsumerState {
    std::vector<Kw> window;    // sliding week vector
    std::size_t next_slot = 0;
    std::size_t since_score = 0;
    std::size_t cooldown = 0;
  };

  OnlineMonitorConfig config_;
  std::vector<KldDetector> detectors_;
  std::vector<meter::ConsumerId> ids_;
  std::vector<ConsumerState> state_;
  std::vector<AlertEvent> alerts_;
  bool fitted_ = false;
};

}  // namespace fdeta::core
