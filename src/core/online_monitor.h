// Continuous online monitoring for a whole population.
//
// The detection methods are "centralized online algorithms that would run at
// an electric utility's control center" (Section VII-A).  This service is
// that control-center loop: per-consumer sliding week vectors (the ref [3]
// time-to-detection machinery) are rescored as reported readings stream in
// from the AMI head-end, emitting alert events with a per-consumer cooldown
// so a single anomaly does not flood the operator queue.
//
// Thread-safety: fit() and ingest_batch() parallelise internally on the
// shared pool; external calls into one OnlineMonitor must still be
// serialised by the caller (single head-end feed).
//
// Telemetry (obs/metrics.h, "monitor." prefix): readings ingested / missing
// / in-cooldown, scores evaluated, alerts raised split by direction, fit and
// per-batch latency histograms.  All counters are deterministic under a
// fixed seed and identical between the ingest() and ingest_batch() paths.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <vector>

#include "core/kld_detector.h"
#include "core/time_to_detection.h"
#include "meter/dataset.h"

namespace fdeta {
namespace obs {
class Counter;
class EventLog;
class Histogram;
class MetricsRegistry;
}  // namespace obs
}  // namespace fdeta

namespace fdeta::core {

/// Which way the triggering week vector deviates from the consumer's
/// training mean: under-reporting marks a suspected attacker (Proposition
/// 1), over-reporting a suspected victim (Proposition 2).
enum class AlertDirection : std::uint8_t { kUnderReport, kOverReport };

const char* to_string(AlertDirection direction);

struct AlertEvent {
  std::size_t consumer_index = 0;
  meter::ConsumerId consumer_id = 0;
  SlotIndex slot = 0;      ///< absolute slot of the triggering reading
  double score = 0.0;      ///< KLD of the sliding week vector
  double threshold = 0.0;
  AlertDirection direction = AlertDirection::kUnderReport;
};

/// One reported reading as delivered by the AMI head-end.  `missing` marks
/// a slot the head-end never received (see HeadEnd::consumer_readings with
/// a mask): it is counted, not imputed - the sliding window keeps its last
/// slot-aligned value and no score is evaluated for it.
struct Reading {
  std::size_t consumer_index = 0;
  SlotIndex slot = 0;  ///< absolute slot of the reading
  Kw kw = 0.0;
  bool missing = false;
};

struct OnlineMonitorConfig {
  KldDetectorConfig kld{};
  /// Rescore the sliding vector every `stride` readings (1 = every reading;
  /// 4 = every two hours) - an operator-tunable cost/latency trade.
  std::size_t stride = 4;
  /// After an alert, suppress further alerts for this consumer until this
  /// many readings have passed (default: one day).
  std::size_t cooldown_slots = 48;
  /// Coverage gate: when more than this fraction of a consumer's sliding
  /// week vector is marked missing, the vector is NOT scored (the stale
  /// slot-aligned fill would otherwise be judged as if observed, and a lossy
  /// week reads as an under-report attack).  Counted under
  /// monitor.scores_coverage_gated.
  double max_missing_fraction = 0.25;
  /// Parallelism cap for fit()/ingest_batch() on the shared pool
  /// (0 = full pool width, 1 = serial).
  std::size_t threads = 0;
  /// Telemetry sink; null = the process-wide obs::default_registry().
  obs::MetricsRegistry* metrics = nullptr;
  /// Domain-event sink; null = the process-wide obs::default_event_log().
  /// Emits alert_raised per alert (in alerts() order) and model_restored on
  /// restore().
  obs::EventLog* events = nullptr;
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(OnlineMonitorConfig config = {});

  /// Trains per-consumer detectors on the first `split.train_weeks` weeks of
  /// `history` and primes each sliding vector with the last training week.
  void fit(const meter::Dataset& history, const meter::TrainTestSplit& split);

  /// Ingests one reported reading; returns an alert when the consumer's
  /// sliding week vector crosses its threshold (subject to stride/cooldown).
  std::optional<AlertEvent> ingest(std::size_t consumer_index, SlotIndex slot,
                                   Kw reading);

  /// As above, honouring `reading.missing` (counted, never applied).
  std::optional<AlertEvent> ingest(const Reading& reading);

  /// Ingests a batch of readings (one head-end delivery), scoring consumers
  /// in parallel on the shared pool.  Per-consumer readings are applied in
  /// batch order, so the returned alerts (also appended to alerts()) are
  /// identical to calling ingest() once per reading, in the same order.
  /// Validates every consumer index up front; on failure nothing is applied.
  std::vector<AlertEvent> ingest_batch(std::span<const Reading> readings);

  /// All alerts raised so far, in ingestion order.
  const std::vector<AlertEvent>& alerts() const { return alerts_; }

  /// Serializes the fitted monitor (detectors, sliding windows, stride /
  /// cooldown counters, alert log) as a checkpoint (persist/checkpoint.h).
  /// Requires fit() to have run.
  void save(std::ostream& out) const;

  /// Restores a save() checkpoint, replacing this monitor's fit, window
  /// state, and the fit-related config (kld, stride, cooldown_slots;
  /// `threads` and `metrics` keep their constructed values).  Subsequent
  /// ingest calls behave bit-identically to the monitor that was saved.
  /// Throws DataError on a corrupted/truncated/version-mismatched file.
  void restore(std::istream& in);

  /// The consumer's sliding week vector, indexed by slot-of-week (exposed
  /// for diagnostics and alignment tests).
  std::span<const Kw> window(std::size_t consumer_index) const;

  std::size_t consumer_count() const { return detectors_.size(); }

 private:
  struct ConsumerState {
    // Sliding week vector, indexed by slot-of-week: window[s % kSlotsPerWeek]
    // always holds the freshest reading for that slot position, so the
    // vector handed to the detector is slot-aligned by construction (a ring
    // buffer rotated by its write cursor is only accidentally correct for
    // the order-insensitive plain KLD and breaks slot-aligned detectors
    // such as the price-conditioned KLD).
    std::vector<Kw> window;
    /// Slot-of-week positions whose freshest value was never delivered
    /// (parallel to `window`; cleared when a real reading arrives).
    std::vector<char> missing;
    std::size_t missing_in_window = 0;  ///< popcount of `missing`, O(1) gate
    std::size_t since_score = 0;
    std::size_t cooldown = 0;
    double train_mean = 0.0;  ///< training-span mean, for alert direction
  };

  /// Applies one reading to its consumer's state; does NOT touch alerts_
  /// (callers append, preserving ingestion order across a parallel batch).
  /// Counter updates are atomic, so concurrent calls for distinct consumers
  /// keep the totals exact.
  std::optional<AlertEvent> apply(const Reading& reading);

  /// Emits an alert_raised event for `event` (no-op while the sink is
  /// disabled).  Called serially, in alerts() order.
  void emit_alert(const AlertEvent& event) const;

  OnlineMonitorConfig config_;
  std::vector<KldDetector> detectors_;
  std::vector<meter::ConsumerId> ids_;
  std::vector<ConsumerState> state_;
  std::vector<AlertEvent> alerts_;
  bool fitted_ = false;

  // Cached at construction; updates are lock-free (see obs/metrics.h).
  obs::Counter* consumers_fitted_ = nullptr;
  obs::Counter* consumers_restored_ = nullptr;
  obs::Counter* readings_ingested_ = nullptr;
  obs::Counter* readings_missing_ = nullptr;
  obs::Counter* readings_in_cooldown_ = nullptr;
  obs::Counter* scores_evaluated_ = nullptr;
  obs::Counter* scores_coverage_gated_ = nullptr;
  obs::Counter* alerts_raised_ = nullptr;
  obs::Counter* alerts_over_ = nullptr;
  obs::Counter* alerts_under_ = nullptr;
  obs::Histogram* fit_seconds_ = nullptr;
  obs::Histogram* batch_seconds_ = nullptr;
  obs::EventLog* events_ = nullptr;  // never null after construction
};

}  // namespace fdeta::core
