// Continuous online monitoring for a whole population.
//
// The detection methods are "centralized online algorithms that would run at
// an electric utility's control center" (Section VII-A).  This service is
// that control-center loop: per-consumer sliding week vectors (the ref [3]
// time-to-detection machinery) are rescored as reported readings stream in
// from the AMI head-end, emitting alert events with a per-consumer cooldown
// so a single anomaly does not flood the operator queue.
//
// Thread-safety: fit() and ingest_batch() parallelise internally on the
// shared pool.  Per-consumer state is split into N independent shards
// (consistent hash of the consumer index; common/sharding.h), each behind
// its own mutex, so concurrent ingest()/ingest_batch() calls from multiple
// head-end feeds are safe and scale until feeds collide on a shard.
// Determinism: for a fixed reading order, scores / alerts / counters /
// checkpoint bytes are identical for ANY shard count and thread count -
// sharding moves locks around, never results.  alerts()/window()/save()
// still require no concurrent writer (quiesce feeds first).
//
// Telemetry (obs/metrics.h, "monitor." prefix): readings ingested / missing
// / in-cooldown, scores evaluated, alerts raised split by direction, fit and
// per-batch latency histograms.  All counters are deterministic under a
// fixed seed and identical between the ingest() and ingest_batch() paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/detector_registry.h"
#include "core/kld_detector.h"
#include "core/time_to_detection.h"
#include "grid/hierarchy/feeder_monitor.h"
#include "meter/dataset.h"

namespace fdeta {
namespace obs {
class Counter;
class EventLog;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs
}  // namespace fdeta

namespace fdeta::core {

/// Which way the triggering week vector deviates from the consumer's
/// training mean: under-reporting marks a suspected attacker (Proposition
/// 1), over-reporting a suspected victim (Proposition 2).
enum class AlertDirection : std::uint8_t { kUnderReport, kOverReport };

const char* to_string(AlertDirection direction);

struct AlertEvent {
  std::size_t consumer_index = 0;
  meter::ConsumerId consumer_id = 0;
  SlotIndex slot = 0;      ///< absolute slot of the triggering reading
  double score = 0.0;      ///< KLD of the sliding week vector
  double threshold = 0.0;
  AlertDirection direction = AlertDirection::kUnderReport;
};

/// One reported reading as delivered by the AMI head-end.  `missing` marks
/// a slot the head-end never received (see HeadEnd::consumer_readings with
/// a mask): it is counted, not imputed - the sliding window keeps its last
/// slot-aligned value and no score is evaluated for it.
struct Reading {
  std::size_t consumer_index = 0;
  SlotIndex slot = 0;  ///< absolute slot of the reading
  Kw kw = 0.0;
  bool missing = false;
};

struct OnlineMonitorConfig {
  /// Registered detector family run per consumer (core/detector_registry.h).
  std::string detector = "kld";
  KldDetectorConfig kld{};
  /// Knobs for the non-default families; `kld` above stays authoritative
  /// for the KLD histogram knobs (copied into detector_options.kld before
  /// detectors are built).
  DetectorOptions detector_options{};
  /// Rescore the sliding vector every `stride` readings (1 = every reading;
  /// 4 = every two hours) - an operator-tunable cost/latency trade.
  std::size_t stride = 4;
  /// After an alert, suppress further alerts for this consumer until this
  /// many readings have passed (default: one day).
  std::size_t cooldown_slots = 48;
  /// Coverage gate: when more than this fraction of a consumer's sliding
  /// week vector is marked missing, the vector is NOT scored (the stale
  /// slot-aligned fill would otherwise be judged as if observed, and a lossy
  /// week reads as an under-report attack).  Counted under
  /// monitor.scores_coverage_gated.
  double max_missing_fraction = 0.25;
  /// Parallelism cap for fit()/ingest_batch() on the shared pool
  /// (0 = full pool width, 1 = serial).
  std::size_t threads = 0;
  /// Independent per-consumer state shards, each behind its own lock (0 =
  /// auto-size from the parallelism; see common/sharding.h).  Purely a
  /// concurrency knob: results are bit-identical for any value.
  std::size_t shards = 0;
  /// Telemetry sink; null = the process-wide obs::default_registry().
  obs::MetricsRegistry* metrics = nullptr;
  /// Domain-event sink; null = the process-wide obs::default_event_log().
  /// Emits alert_raised per alert (in alerts() order) and model_restored on
  /// restore().
  obs::EventLog* events = nullptr;
  /// Optional feeder-hierarchy layer (ROADMAP item 3): when non-null, fit()
  /// also fits a hierarchy::FeederMonitor over this radial tree and
  /// evaluate_feeders() scores its internal nodes over the sliding windows.
  /// Must outlive the monitor; its consumer count must match the fleet.
  const grid::Topology* topology = nullptr;
  /// Hierarchy knobs; `threads`/`metrics`/`events` inherit the monitor's
  /// values when left at their defaults.
  hierarchy::FeederConfig feeder{};
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(OnlineMonitorConfig config = {});

  /// Trains per-consumer detectors on the first `split.train_weeks` weeks of
  /// `history` and primes each sliding vector with the last training week.
  void fit(const meter::Dataset& history, const meter::TrainTestSplit& split);

  /// As fit(), but materialises one consumer series at a time via `source`
  /// instead of requiring the whole fleet's history in memory at once (a
  /// million-consumer horizon is tens of gigabytes of readings; the fitted
  /// state is a fraction of that).  `source(i)` must return consumer i's
  /// series and be safe to call concurrently for distinct i.  Produces state
  /// bit-identical to fit() on a dataset holding the same series.
  void fit_streaming(
      std::size_t count,
      const std::function<meter::ConsumerSeries(std::size_t)>& source,
      const meter::TrainTestSplit& split);

  /// Ingests one reported reading; returns an alert when the consumer's
  /// sliding week vector crosses its threshold (subject to stride/cooldown).
  /// Thread-safe: takes the consumer's shard lock.
  std::optional<AlertEvent> ingest(std::size_t consumer_index, SlotIndex slot,
                                   Kw reading);

  /// As above, honouring `reading.missing` (counted, never applied).
  std::optional<AlertEvent> ingest(const Reading& reading);

  /// Ingests a batch of readings (one head-end delivery), processing shards
  /// in parallel on the shared pool.  Per-consumer readings are applied in
  /// batch order and the raised alerts are merged back into batch arrival
  /// order, so the returned alerts (also appended to alerts()) and the
  /// emitted events are identical to calling ingest() once per reading, in
  /// the same order - for any shard count x thread count.
  /// Validates every consumer index up front; on failure nothing is applied.
  std::vector<AlertEvent> ingest_batch(std::span<const Reading> readings);

  /// All alerts raised so far, in ingestion order.
  const std::vector<AlertEvent>& alerts() const { return alerts_; }

  /// Serializes the fitted monitor (detectors, sliding windows, stride /
  /// cooldown counters, alert log) as a checkpoint (persist/checkpoint.h).
  /// Requires fit() to have run.
  void save(std::ostream& out) const;

  /// Restores a save() checkpoint, replacing this monitor's fit, window
  /// state, and the fit-related config (detector family, kld, stride,
  /// cooldown_slots; `threads`, `metrics` and `shards` keep their
  /// constructed values).  Subsequent ingest calls behave bit-identically to
  /// the monitor that was saved.  Reads the v4 layout (a detector-id block;
  /// "kld" fleets keep the v3 bulk Struct-of-Arrays detector encoding, other
  /// families store a shared config fingerprint plus per-consumer
  /// save_state payloads), the v3 Struct-of-Arrays layout (bulk array
  /// blocks; the large-fleet warm start is a handful of memcpys plus a
  /// parallel detector rebuild) and the v2 per-consumer interleaved layout
  /// written by older builds (restored with out-of-support clamping,
  /// preserving the saved scores bit-exactly).  Throws DataError on a
  /// corrupted/truncated/version-mismatched file.
  void restore(std::istream& in);

  /// The consumer's sliding week vector, indexed by slot-of-week (exposed
  /// for diagnostics and alignment tests).
  std::span<const Kw> window(std::size_t consumer_index) const;

  std::size_t consumer_count() const { return detectors_.size(); }

  /// Resolved shard count (config.shards, or the auto-sized value).
  std::size_t shard_count() const { return shard_count_; }

  /// Recomputes the two fleet-health gauges from the readings ingested since
  /// the previous refresh: `monitor.population_drift_milli_bits` (KL
  /// divergence, in milli-bits, of the recent reading-magnitude distribution
  /// against the population baseline captured at fit/restore time) and
  /// `monitor.alert_burst_milli` (recent alert rate over the lifetime alert
  /// rate, x1000).  Deterministic for a fixed reading order when called at
  /// fixed points in that order (e.g. every N slots); call quiesced - it
  /// reads and resets the recent-window accumulators.  No-op before fit().
  void refresh_health_gauges();

  /// Scores every feeder node of config.topology over the current sliding
  /// windows (emitting feeder_alert_raised / collusion_suspected events and
  /// updating the hierarchy gauges).  Consumers in cooldown count as
  /// individually flagged and are excluded from collusion groups.  Call
  /// quiesced at deterministic points in the reading order (e.g. week
  /// boundaries): the windows and cooldowns are layout-invariant, so the
  /// report is byte-identical for any shard x thread layout.  Requires
  /// fit() with a configured topology.
  hierarchy::FeederReport evaluate_feeders(SlotIndex slot);

  /// The feeder-hierarchy layer, or null when no topology is configured.
  const hierarchy::FeederMonitor* feeder() const { return feeder_.get(); }

 private:
  /// The hierarchy config with `threads`/`metrics`/`events` defaulted from
  /// the monitor's own values.
  hierarchy::FeederConfig resolved_feeder_config() const;

  /// Sizes the Struct-of-Arrays fleet state and shard locks for `count`
  /// consumers (everything zeroed; unfitted detectors cloned from a
  /// registry-built prototype).
  void init_fleet(std::size_t count);

  /// Resolves the per-shard health metric pointers for the current
  /// shard_count_ (bounded cardinality: at most 64 instrumented slots;
  /// larger fleets alias shard s onto slot s % 64).
  void init_shard_metrics();

  /// Rebuilds the population-health baseline (linear reading-magnitude bins
  /// over the primed sliding windows) and zeroes the recent-window
  /// accumulators.  Called at the end of fit/fit_streaming/restore, so drift
  /// is always measured against the population distribution at service
  /// start.
  void rebuild_health_baseline();

  /// Bin index into the health histogram for one reading value.
  std::size_t health_bin(double v) const;

  /// Fits consumer i's detector and primes its sliding window from `series`
  /// (shared by fit() and fit_streaming(); safe concurrently for distinct i).
  void fit_one(std::size_t i, const meter::ConsumerSeries& series,
               const meter::TrainTestSplit& split);

  /// Applies one reading to its consumer's state; does NOT touch alerts_
  /// (callers append, preserving ingestion order across a parallel batch).
  /// The caller must hold the consumer's shard lock.  Counter updates are
  /// atomic, so concurrent calls for distinct shards keep the totals exact.
  std::optional<AlertEvent> apply(const Reading& reading);

  /// Emits an alert_raised event for `event` (no-op while the sink is
  /// disabled).  Called serially, in alerts() order.
  void emit_alert(const AlertEvent& event) const;

  OnlineMonitorConfig config_;
  std::vector<std::unique_ptr<ScoringDetector>> detectors_;
  std::vector<meter::ConsumerId> ids_;

  // Per-consumer sliding-window state, Struct-of-Arrays: one flat array per
  // field, indexed consumer-major, so the binning / KLD hot loops stream
  // contiguous memory instead of chasing per-consumer vectors.
  //
  // windows_[i*336 + s] is consumer i's freshest reading for slot-of-week s:
  // the vector handed to the detector is slot-aligned by construction (a
  // ring buffer rotated by its write cursor is only accidentally correct
  // for the order-insensitive plain KLD and breaks slot-aligned detectors
  // such as the price-conditioned KLD).
  std::vector<Kw> windows_;            // count x kSlotsPerWeek
  /// Slot-of-week positions whose freshest value was never delivered
  /// (parallel to windows_; cleared when a real reading arrives).
  std::vector<unsigned char> missing_; // count x kSlotsPerWeek
  std::vector<std::uint32_t> missing_in_window_;  ///< popcount, O(1) gate
  std::vector<std::uint32_t> since_score_;
  std::vector<std::uint32_t> cooldown_;
  std::vector<double> train_mean_;  ///< training-span mean, alert direction

  // Shard layer: shard_of(i, shard_count_) owns consumer i's state above.
  std::size_t shard_count_ = 1;
  std::unique_ptr<std::mutex[]> shard_locks_;
  mutable std::mutex alerts_mutex_;  // guards alerts_ + serialised emission

  std::vector<AlertEvent> alerts_;
  bool fitted_ = false;

  /// Feeder-hierarchy layer; built by fit()/restore() when config_.topology
  /// is set (and, for restore, the checkpoint carries a hierarchy block).
  std::unique_ptr<hierarchy::FeederMonitor> feeder_;

  // Cached at construction; updates are lock-free (see obs/metrics.h).
  obs::Counter* consumers_fitted_ = nullptr;
  obs::Counter* consumers_restored_ = nullptr;
  obs::Counter* readings_ingested_ = nullptr;
  obs::Counter* readings_missing_ = nullptr;
  obs::Counter* readings_in_cooldown_ = nullptr;
  obs::Counter* scores_evaluated_ = nullptr;
  obs::Counter* scores_coverage_gated_ = nullptr;
  obs::Counter* alerts_raised_ = nullptr;
  obs::Counter* alerts_over_ = nullptr;
  obs::Counter* alerts_under_ = nullptr;
  obs::Histogram* fit_seconds_ = nullptr;
  obs::Histogram* batch_seconds_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;  // never null after construction
  obs::EventLog* events_ = nullptr;           // never null after construction

  // Per-shard health series ("monitor.shardNN.*"), resolved by
  // init_shard_metrics(); at most 64 instrumented slots (shards alias via
  // s % 64 past that - a fixed cardinality budget, never per-shard names
  // without bound).  Updated only on the batched ingest path.
  std::vector<obs::Gauge*> shard_pending_;
  std::vector<obs::Gauge*> shard_highwater_;
  std::vector<obs::Histogram*> shard_lock_wait_;
  obs::Gauge* shard_imbalance_ = nullptr;
  /// Cumulative readings applied per shard (guarded by that shard's lock;
  /// summed after the batch barrier for the imbalance gauge).
  std::vector<std::uint64_t> shard_applied_;

  // Population-health state (ROADMAP item 5 seed).  The baseline is frozen
  // at fit/restore; the recent window accumulates in relaxed atomics on the
  // hot path and is drained by refresh_health_gauges().
  double health_bin_scale_ = 0.0;  ///< bins / max_kw (0 = not yet baselined)
  std::vector<std::uint64_t> health_baseline_counts_;
  std::uint64_t health_baseline_total_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> health_recent_;
  std::atomic<std::uint64_t> health_readings_{0};
  std::atomic<std::uint64_t> health_alerts_{0};
  std::uint64_t last_health_readings_ = 0;
  std::uint64_t last_health_alerts_ = 0;
  obs::Gauge* drift_gauge_ = nullptr;
  obs::Gauge* burst_gauge_ = nullptr;
};

}  // namespace fdeta::core
