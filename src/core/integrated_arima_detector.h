// The Integrated ARIMA detector of ref [2]: the per-reading ARIMA CI check
// plus window checks that the week's mean lies within the range of training
// weekly means and that its variance does not exceed the training maximum
// ("checks on the mean and variance of a set of readings",
// Section VIII-B1; the attack is designed so that these statistics "do not
// exceed thresholds based on historic data").
#pragma once

#include <optional>

#include "core/arima_detector.h"
#include "meter/weekly_stats.h"

namespace fdeta::core {

struct IntegratedArimaDetectorConfig {
  ArimaDetectorConfig arima{};
  /// Relative slack applied to the historical bounds, absorbing smart-meter
  /// measurement error (+/-0.5%, ref [11]) plus sampling wobble.
  double bound_slack = 0.02;
};

class IntegratedArimaDetector final : public Detector {
 public:
  explicit IntegratedArimaDetector(IntegratedArimaDetectorConfig config = {});

  std::string_view name() const override { return "Integrated ARIMA"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// The window-check component alone (mean/variance bounds).
  bool window_checks_fail(std::span<const Kw> week) const;

  const ArimaDetector& arima() const { return arima_; }
  const meter::WeeklyStats& training_stats() const;

 private:
  IntegratedArimaDetectorConfig config_;
  ArimaDetector arima_;
  std::optional<meter::WeeklyStats> stats_;
};

}  // namespace fdeta::core
