#include "core/detector_plugin.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fdeta::core {

namespace {

// Floor of the over-threshold segment fraction.  Large enough that
// (1 - sig) + sig * kMinOverThreshold still rounds strictly above 1 - sig in
// IEEE doubles for any significance >= 1e-6 (the flag-preservation
// invariant), small enough to be invisible on the calibrated scale.
constexpr double kMinOverThreshold = 1e-9;

void validate_significance(double significance) {
  require(significance > 0.0 && significance < 1.0,
          "ScoreCalibration: significance must be in (0,1)");
}

}  // namespace

ScoreCalibration ScoreCalibration::from_reference(std::vector<double> reference,
                                                  double raw_threshold,
                                                  double significance) {
  validate_significance(significance);
  std::sort(reference.begin(), reference.end());
  ScoreCalibration out;
  out.reference_ = std::move(reference);
  out.raw_threshold_ = raw_threshold;
  out.significance_ = significance;
  out.threshold_position_ =
      out.reference_.empty() ? 0.0 : out.position(raw_threshold);
  out.fitted_ = true;
  return out;
}

ScoreCalibration ScoreCalibration::threshold_anchored(double raw_threshold,
                                                      double significance) {
  return from_reference({}, raw_threshold, significance);
}

double ScoreCalibration::position(double x) const {
  const std::vector<double>& r = reference_;
  if (x <= r.front()) return 0.0;
  if (x >= r.back()) return 1.0;
  // r.front() < x < r.back(), so n >= 2 and a bracketing pair with spread
  // exists: r[j] <= x < r[j + 1] with r[j] < r[j + 1].
  const auto it = std::upper_bound(r.begin(), r.end(), x);
  const std::size_t j = static_cast<std::size_t>(it - r.begin()) - 1;
  const double frac = (x - r[j]) / (r[j + 1] - r[j]);
  return (static_cast<double>(j) + frac) / static_cast<double>(r.size() - 1);
}

double ScoreCalibration::calibrate(double raw) const {
  require(fitted_, "ScoreCalibration: not fitted (fit() not called?)");
  if (std::isnan(raw)) return raw;
  const double base = 1.0 - significance_;  // the uniform decision threshold

  if (raw > raw_threshold_) {
    // Over-threshold segment: (1 - sig, 1].  The fraction is the raw score's
    // reference position beyond the threshold's; the floor keeps the result
    // strictly above the decision threshold (flag preservation).
    double frac;
    if (reference_.empty()) {
      const double margin = raw - raw_threshold_;
      frac = 1.0 - 1.0 / (1.0 + margin);  // squashes (0, inf] into (0, 1]
    } else if (threshold_position_ >= 1.0) {
      frac = 1.0;  // threshold at/above the reference max: any excess is "1"
    } else {
      frac = (position(raw) - threshold_position_) /
             (1.0 - threshold_position_);
    }
    frac = std::min(1.0, std::max(frac, kMinOverThreshold));
    return std::min(1.0, base + significance_ * frac);
  }

  // At-or-under segment: [0, 1 - sig], hitting 1 - sig exactly at the raw
  // threshold.  Multiplying by base <= 1 cannot round above base, so the
  // result never crosses the decision threshold.
  if (reference_.empty()) {
    const double margin = raw_threshold_ - raw;  // >= 0
    return base / (1.0 + margin);
  }
  if (threshold_position_ <= 0.0) return 0.0;
  return base * std::min(1.0, position(raw) / threshold_position_);
}

KldExplanation ScoringDetector::explain_week(std::span<const Kw> week,
                                             SlotIndex first_slot) const {
  KldExplanation out = raw_explain_week(week, first_slot);
  out.raw_score = out.score;
  out.raw_threshold = out.threshold;
  out.score = calibration_.calibrate(out.raw_score);
  out.threshold = calibration_.decision_threshold();
  return out;
}

KldExplanation ScoringDetector::raw_explain_week(std::span<const Kw> week,
                                                 SlotIndex first_slot) const {
  KldExplanation out;
  out.score = raw_score_week(week, first_slot);
  out.threshold = raw_decision_threshold();
  return out;
}

}  // namespace fdeta::core
