#include "core/detector_plugin.h"

namespace fdeta::core {

KldExplanation ScoringDetector::explain_week(std::span<const Kw> week,
                                             SlotIndex first_slot) const {
  KldExplanation out;
  out.score = score_week(week, first_slot);
  out.threshold = decision_threshold();
  return out;
}

}  // namespace fdeta::core
