// CUSUM detector: classic two-sided cumulative-sum change detection on the
// seasonally-adjusted reading stream.
//
// A standard sequential baseline in AMI anomaly detection (the broader
// family surveyed in ref [15]): residuals against the weekly profile are
// standardised and accumulated with drift k; an attack that persistently
// shifts consumption (1B up, 2A/2B down) drives one of the two sums across
// the decision threshold h, while zero-mean noise is absorbed by the drift.
// Like the KLD detector - and unlike the rolling ARIMA CI - it cannot be
// poisoned by the reported stream, but it keys on the *mean* shift rather
// than the distribution, so cleverly variance-matched attacks degrade it.
#pragma once

#include <optional>

#include "core/detector.h"
#include "timeseries/seasonal.h"

namespace fdeta::core {

struct CusumDetectorConfig {
  double drift_k = 0.5;  ///< reference value (in sigmas) absorbed per step
  /// Decision threshold h (in accumulated sigmas); calibrated upward if the
  /// training weeks themselves exceed it.
  double threshold_h = 15.0;
  double threshold_slack = 1.25;  ///< calibrated h = max(h, worst * slack)
};

class CusumDetector final : public Detector {
 public:
  explicit CusumDetector(CusumDetectorConfig config = {});

  std::string_view name() const override { return "CUSUM"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// Peak of max(S+, S-) over the week (the decision statistic).
  double peak_statistic(std::span<const Kw> week) const;
  double threshold() const { return calibrated_h_; }

 private:
  CusumDetectorConfig config_;
  std::optional<ts::WeeklyProfile> profile_;
  double calibrated_h_ = 0.0;
};

/// EWMA detector: exponentially weighted moving average of the standardised
/// residuals with control limits - the other textbook sequential baseline.
struct EwmaDetectorConfig {
  double lambda = 0.1;    ///< smoothing weight of the newest residual
  double limit_l = 4.0;   ///< control limit in EWMA standard deviations
  double limit_slack = 1.25;
};

class EwmaDetector final : public Detector {
 public:
  explicit EwmaDetector(EwmaDetectorConfig config = {});

  std::string_view name() const override { return "EWMA"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  /// Peak |EWMA| (in asymptotic control-limit units) over the week.
  double peak_statistic(std::span<const Kw> week) const;
  double threshold() const { return calibrated_l_; }

 private:
  EwmaDetectorConfig config_;
  std::optional<ts::WeeklyProfile> profile_;
  double calibrated_l_ = 0.0;
};

}  // namespace fdeta::core
