#include "core/detector_registry.h"

#include <array>
#include <charconv>
#include <stdexcept>

#include "core/conditioned_kld_detector.h"
#include "pricing/tariff.h"

namespace fdeta::core {

namespace {

constexpr std::array<std::string_view, 4> kNames = {"kld", "ckld", "kld-lite",
                                                    "iforest"};

constexpr std::string_view kOptionHelp =
    "  kld.bins=<n>                    histogram bins (default 10)\n"
    "  kld.significance=<a>            alpha in (0,1) for every family's\n"
    "                                  threshold (default 0.05)\n"
    "  kld.epsilon=<e>                 baseline smoothing mass (default 1e-9)\n"
    "  kld.exclude_out_of_support=0|1  out-of-support reading handling\n"
    "                                  (default 1)\n"
    "  kld-lite.slots=<k>              slot-of-week positions kept (default "
    "48)\n"
    "  iforest.trees=<n>               trees per forest (default 64)\n"
    "  iforest.samples=<n>             subsample size per tree (default 32)\n"
    "  iforest.contamination=<c>       assumed anomalous training fraction\n"
    "                                  in [0,1) (default 0.20)\n"
    "  iforest.seed=<u64>              tree-building RNG seed";

[[noreturn]] void bad_option(const std::string& message) {
  throw std::invalid_argument("--detector-opt: " + message +
                              "\nknown keys:\n" + std::string(kOptionHelp));
}

double parse_f64(std::string_view key, std::string_view text) {
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_option(std::string(key) + ": not a number: \"" + std::string(text) +
               "\"");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view key, std::string_view text) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_option(std::string(key) + ": not a non-negative integer: \"" +
               std::string(text) + "\"");
  }
  return value;
}

bool parse_bool(std::string_view key, std::string_view text) {
  if (text == "1" || text == "true") return true;
  if (text == "0" || text == "false") return false;
  bad_option(std::string(key) + ": expected 0/1/true/false, got \"" +
             std::string(text) + "\"");
}

}  // namespace

std::span<const std::string_view> registered_detector_names() {
  return kNames;
}

bool is_registered_detector(std::string_view name) {
  for (const std::string_view known : kNames) {
    if (known == name) return true;
  }
  return false;
}

std::string registered_detector_names_joined() {
  std::string out;
  for (const std::string_view name : kNames) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string detector_option_help() { return std::string(kOptionHelp); }

void apply_detector_option(DetectorOptions& options, std::string_view spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    bad_option("expected key=value, got \"" + std::string(spec) + "\"");
  }
  const std::string_view key = spec.substr(0, eq);
  const std::string_view value = spec.substr(eq + 1);

  if (key == "kld.bins") {
    const std::uint64_t bins = parse_u64(key, value);
    if (bins < 2) bad_option("kld.bins: need at least two bins");
    options.kld.bins = static_cast<std::size_t>(bins);
  } else if (key == "kld.significance") {
    const double sig = parse_f64(key, value);
    if (!(sig > 0.0 && sig < 1.0)) {
      bad_option("kld.significance: must be in (0,1)");
    }
    options.kld.significance = sig;
  } else if (key == "kld.epsilon") {
    const double eps = parse_f64(key, value);
    if (!(eps >= 0.0)) bad_option("kld.epsilon: must be >= 0");
    options.kld.epsilon = eps;
  } else if (key == "kld.exclude_out_of_support") {
    options.kld.exclude_out_of_support = parse_bool(key, value);
  } else if (key == "kld-lite.slots") {
    const std::uint64_t slots = parse_u64(key, value);
    if (slots < 1 || slots > static_cast<std::uint64_t>(kSlotsPerWeek)) {
      bad_option("kld-lite.slots: must be in [1, 336]");
    }
    options.reduced_slots = static_cast<std::size_t>(slots);
  } else if (key == "iforest.trees") {
    const std::uint64_t trees = parse_u64(key, value);
    if (trees < 1) bad_option("iforest.trees: need at least one tree");
    options.iforest_trees = static_cast<std::size_t>(trees);
  } else if (key == "iforest.samples") {
    const std::uint64_t samples = parse_u64(key, value);
    if (samples < 2) bad_option("iforest.samples: need at least two");
    options.iforest_samples = static_cast<std::size_t>(samples);
  } else if (key == "iforest.contamination") {
    const double contamination = parse_f64(key, value);
    if (!(contamination >= 0.0 && contamination < 1.0)) {
      bad_option("iforest.contamination: must be in [0,1)");
    }
    options.iforest_contamination = contamination;
  } else if (key == "iforest.seed") {
    options.iforest_seed = parse_u64(key, value);
  } else {
    bad_option("unknown key \"" + std::string(key) + "\"");
  }
}

std::unique_ptr<ScoringDetector> make_detector(std::string_view name,
                                               const DetectorOptions& options) {
  if (name == "kld") {
    return std::make_unique<KldDetector>(options.kld);
  }
  if (name == "ckld") {
    ConditionedKldDetectorConfig config;
    config.bins = options.kld.bins;
    config.significance = options.kld.significance;
    config.epsilon = options.kld.epsilon;
    config.exclude_out_of_support = options.kld.exclude_out_of_support;
    config.slot_group = tou_slot_groups(pricing::nightsaver());
    config.groups = 2;
    return std::make_unique<ConditionedKldDetector>(std::move(config));
  }
  if (name == "kld-lite") {
    ReducedKldDetectorConfig config;
    config.selected_slots = options.reduced_slots;
    config.kld = options.kld;
    return std::make_unique<ReducedKldDetector>(config);
  }
  if (name == "iforest") {
    IsolationForestDetectorConfig config;
    config.trees = options.iforest_trees;
    config.sample_size = options.iforest_samples;
    config.significance = options.kld.significance;
    config.contamination = options.iforest_contamination;
    config.seed = options.iforest_seed;
    return std::make_unique<IsolationForestDetector>(config);
  }
  throw std::invalid_argument("make_detector: unknown detector \"" +
                              std::string(name) + "\" (registered: " +
                              registered_detector_names_joined() + ")");
}

}  // namespace fdeta::core
