#include "core/detector_registry.h"

#include <array>
#include <stdexcept>

#include "core/conditioned_kld_detector.h"
#include "pricing/tariff.h"

namespace fdeta::core {

namespace {

constexpr std::array<std::string_view, 4> kNames = {"kld", "ckld", "kld-lite",
                                                    "iforest"};

}  // namespace

std::span<const std::string_view> registered_detector_names() {
  return kNames;
}

bool is_registered_detector(std::string_view name) {
  for (const std::string_view known : kNames) {
    if (known == name) return true;
  }
  return false;
}

std::unique_ptr<ScoringDetector> make_detector(std::string_view name,
                                               const DetectorOptions& options) {
  if (name == "kld") {
    return std::make_unique<KldDetector>(options.kld);
  }
  if (name == "ckld") {
    ConditionedKldDetectorConfig config;
    config.bins = options.kld.bins;
    config.significance = options.kld.significance;
    config.epsilon = options.kld.epsilon;
    config.exclude_out_of_support = options.kld.exclude_out_of_support;
    config.slot_group = tou_slot_groups(pricing::nightsaver());
    config.groups = 2;
    return std::make_unique<ConditionedKldDetector>(std::move(config));
  }
  if (name == "kld-lite") {
    ReducedKldDetectorConfig config;
    config.selected_slots = options.reduced_slots;
    config.kld = options.kld;
    return std::make_unique<ReducedKldDetector>(config);
  }
  if (name == "iforest") {
    IsolationForestDetectorConfig config;
    config.trees = options.iforest_trees;
    config.sample_size = options.iforest_samples;
    config.significance = options.kld.significance;
    config.seed = options.iforest_seed;
    return std::make_unique<IsolationForestDetector>(config);
  }
  throw std::invalid_argument("make_detector: unknown detector \"" +
                              std::string(name) + "\"");
}

}  // namespace fdeta::core
