// The price-conditioned KLD detector (Section VIII-F3).
//
// The Optimal Swap attack changes only the *temporal ordering* of readings,
// so the unconditioned KLD detector is blind to it.  Conditioning splits the
// X distribution into one distribution per price group (peak / off-peak for
// TOU; price bands for RTP) and runs the eq.-(12) machinery within each
// group.  A week is anomalous if ANY group's divergence exceeds that group's
// training threshold.  The paper notes the same conditioning extends to
// detecting Attack Class 4B under RTP.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/detector_plugin.h"
#include "core/kld_detector.h"
#include "pricing/tariff.h"
#include "stats/histogram.h"

namespace fdeta::persist {
class Encoder;
class Decoder;
}  // namespace fdeta::persist

namespace fdeta::core {

struct ConditionedKldDetectorConfig {
  std::size_t bins = 10;
  double significance = 0.05;
  /// Per-group Laplace-style baseline smoothing, as KldDetectorConfig's
  /// epsilon: keeps group scores finite when a scored week puts mass in a
  /// bin empty across that group's training readings.  0 = paper-exact.
  double epsilon = 1e-9;
  /// As KldDetectorConfig::exclude_out_of_support, applied per price group:
  /// scored readings outside a group's frozen training support are excluded
  /// from that group's bin mass instead of clamped into the outer bins.
  bool exclude_out_of_support = true;
  /// Maps a slot-of-week [0, 336) to a price-group id [0, groups).
  /// Defaults (set by the constructor) to Nightsaver peak/off-peak.
  std::function<std::size_t(std::size_t)> slot_group;
  std::size_t groups = 2;
};

/// Builds a slot->group function from a TOU schedule (group 0 = off-peak,
/// group 1 = peak).
std::function<std::size_t(std::size_t)> tou_slot_groups(
    const pricing::TimeOfUse& tou);

/// Builds a slot->group function banding an RTP stream's prices into
/// `bands` quantile bands over the first `slots` slots.
std::function<std::size_t(std::size_t)> rtp_slot_groups(
    const pricing::RealTimePricing& rtp, std::size_t slots, std::size_t bands);

class ConditionedKldDetector final : public ScoringDetector {
 public:
  explicit ConditionedKldDetector(ConditionedKldDetectorConfig config = {});

  std::string_view name() const override { return "Conditioned KLD"; }
  std::string_view id() const override { return "ckld"; }
  void fit(std::span<const Kw> training) override;
  bool flag_week(std::span<const Kw> week,
                 SlotIndex first_slot = 0) const override;

  // --- ScoringDetector plugin surface ------------------------------------
  /// The family-native scalar score is the worst per-group threshold margin,
  /// max_g(scores(week)[g] - thresholds()[g]), so raw_decision_threshold()
  /// is 0 and the raw score > threshold decision reproduces flag_week's
  /// "any group over its own threshold" rule exactly (for IEEE doubles,
  /// a - b > 0 iff a > b).  The calibration reference is the training weeks'
  /// margins on that same scale (persisted since checkpoint format v5).
  double raw_score_week(std::span<const Kw> week,
                        SlotIndex first_slot = 0) const override;
  double raw_decision_threshold() const override { return 0.0; }
  /// The explanation of the worst-margin group (the one driving the score).
  /// The header is rebased to the scalar margin scale (score ==
  /// raw_score_week(week), threshold == raw_decision_threshold() == 0) per
  /// the plugin contract; the bins keep the worst group's raw eq.-(12)
  /// decomposition, so their bits sum to that group's raw divergence, score
  /// + its threshold.  explain() exposes the raw per-group headers.
  KldExplanation raw_explain_week(std::span<const Kw> week,
                                  SlotIndex first_slot = 0) const override;
  void save_state(persist::Encoder& enc) const override { save(enc); }
  void restore_state(persist::Decoder& dec,
                     std::uint32_t format_version) override {
    restore(dec, format_version);
  }
  std::string config_fingerprint() const override;
  std::unique_ptr<ScoringDetector> clone() const override {
    return std::make_unique<ConditionedKldDetector>(*this);
  }

  /// Per-group divergence scores for a week.
  std::vector<double> scores(std::span<const Kw> week) const;

  /// Per-group thresholds.
  const std::vector<double>& thresholds() const;

  /// The training weeks' scalar margins (the calibration reference): one
  /// max_g(K_i[g] - thresholds()[g]) per training week.  Empty when restored
  /// from a pre-v5 checkpoint (those calibrate threshold-anchored).
  const std::vector<double>& training_margins() const;

  /// Per-group per-bin breakdowns: explanations[g].score equals
  /// scores(week)[g] and explanations[g].threshold equals thresholds()[g].
  std::vector<KldExplanation> explain(std::span<const Kw> week) const;

  /// Serializes the fitted state for model checkpoints.  The slot->group
  /// function is captured as its evaluated table over the kSlotsPerWeek
  /// slot-of-week positions (all fit/score paths reduce slots mod week, so
  /// the table is the function's entire observable behaviour).
  void save(persist::Encoder& enc) const;
  /// Restores state saved by save(); scores bit-exactly match the saved
  /// detector.  As KldDetector::restore, `format_version` is the enclosing
  /// checkpoint version: v2 payloads restore with out-of-support clamping.
  void restore(persist::Decoder& dec,
               std::uint32_t format_version = persist::kFormatVersion);

 private:
  /// Readings of `week` falling into group `g`.
  std::vector<double> group_values(std::span<const Kw> week,
                                   std::size_t g) const;

  /// Derives the smoothed scoring baseline for one group (see
  /// KldDetector::rebuild_scoring_baseline).
  std::vector<double> scoring_baseline(std::size_t g) const;

  ConditionedKldDetectorConfig config_;
  std::vector<std::optional<stats::Histogram>> histograms_;  // per group
  std::vector<std::vector<double>> baselines_;               // per group, raw
  std::vector<std::vector<double>> scorings_;  // per group, smoothed
  std::vector<double> thresholds_;             // per group
  std::vector<double> training_margins_;       // per training week (v5+)
  bool fitted_ = false;
};

}  // namespace fdeta::core
