#include "core/online_monitor.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"

namespace fdeta::core {

OnlineMonitor::OnlineMonitor(OnlineMonitorConfig config) : config_(config) {
  require(config_.stride >= 1, "OnlineMonitor: stride must be >= 1");
}

void OnlineMonitor::fit(const meter::Dataset& history,
                        const meter::TrainTestSplit& split) {
  fitted_ = false;
  alerts_.clear();

  const std::size_t count = history.consumer_count();
  detectors_.assign(count, KldDetector(config_.kld));
  ids_.assign(count, meter::ConsumerId{});
  state_.assign(count, ConsumerState{});
  // Per-consumer fits are independent; run them on the shared pool.
  parallel_for(
      count,
      [&](std::size_t i) {
        const auto& series = history.consumer(i);
        const auto train = split.train(series);
        detectors_[i].fit(train);
        ids_[i] = series.id;
        // Prime with the last (trusted) training week.  Training spans start
        // at a week boundary, so the primed vector is slot-of-week aligned.
        state_[i].window.assign(train.end() - kSlotsPerWeek, train.end());
      },
      config_.threads);
  fitted_ = true;
}

std::optional<AlertEvent> OnlineMonitor::apply(std::size_t consumer_index,
                                               SlotIndex slot, Kw reading) {
  ConsumerState& cs = state_[consumer_index];

  cs.window[slot % cs.window.size()] = reading;
  if (cs.cooldown > 0) {
    --cs.cooldown;
    return std::nullopt;
  }
  if (++cs.since_score < config_.stride) return std::nullopt;
  cs.since_score = 0;

  const KldDetector& detector = detectors_[consumer_index];
  const double score = detector.score(cs.window);
  if (score <= detector.threshold()) return std::nullopt;

  cs.cooldown = config_.cooldown_slots;
  return AlertEvent{consumer_index, ids_[consumer_index], slot, score,
                    detector.threshold()};
}

std::optional<AlertEvent> OnlineMonitor::ingest(std::size_t consumer_index,
                                                SlotIndex slot, Kw reading) {
  require(fitted_, "OnlineMonitor: fit() not called");
  require(consumer_index < state_.size(),
          "OnlineMonitor: consumer index out of range");
  auto event = apply(consumer_index, slot, reading);
  if (event) alerts_.push_back(*event);
  return event;
}

std::vector<AlertEvent> OnlineMonitor::ingest_batch(
    std::span<const Reading> readings) {
  require(fitted_, "OnlineMonitor: fit() not called");
  for (const auto& r : readings) {  // validate before mutating any state
    require(r.consumer_index < state_.size(),
            "OnlineMonitor: consumer index out of range");
  }

  // Group the batch by consumer, preserving each consumer's arrival order.
  // Distinct consumers have disjoint state, so they score in parallel; the
  // (batch position, alert) pairs are then merged back into arrival order
  // to match repeated ingest() exactly.
  std::vector<std::vector<std::size_t>> by_consumer(state_.size());
  for (std::size_t r = 0; r < readings.size(); ++r) {
    by_consumer[readings[r].consumer_index].push_back(r);
  }
  std::vector<std::size_t> touched;
  for (std::size_t c = 0; c < by_consumer.size(); ++c) {
    if (!by_consumer[c].empty()) touched.push_back(c);
  }

  std::vector<std::optional<AlertEvent>> raised(readings.size());
  parallel_for(
      touched.size(),
      [&](std::size_t t) {
        for (const std::size_t r : by_consumer[touched[t]]) {
          raised[r] = apply(readings[r].consumer_index, readings[r].slot,
                            readings[r].kw);
        }
      },
      config_.threads);

  std::vector<AlertEvent> events;
  for (auto& event : raised) {
    if (event) events.push_back(*event);
  }
  alerts_.insert(alerts_.end(), events.begin(), events.end());
  return events;
}

std::span<const Kw> OnlineMonitor::window(std::size_t consumer_index) const {
  require(fitted_, "OnlineMonitor: fit() not called");
  require(consumer_index < state_.size(),
          "OnlineMonitor: consumer index out of range");
  return state_[consumer_index].window;
}

}  // namespace fdeta::core
