#include "core/online_monitor.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "stats/descriptive.h"

namespace fdeta::core {

const char* to_string(AlertDirection direction) {
  switch (direction) {
    case AlertDirection::kUnderReport: return "under-report";
    case AlertDirection::kOverReport: return "over-report";
  }
  return "?";
}

OnlineMonitor::OnlineMonitor(OnlineMonitorConfig config) : config_(config) {
  require(config_.stride >= 1, "OnlineMonitor: stride must be >= 1");
  require(config_.max_missing_fraction >= 0.0 &&
              config_.max_missing_fraction <= 1.0,
          "OnlineMonitor: max_missing_fraction out of [0,1]");
  obs::MetricsRegistry& registry = config_.metrics != nullptr
                                       ? *config_.metrics
                                       : obs::default_registry();
  consumers_fitted_ = &registry.counter("monitor.consumers_fitted");
  consumers_restored_ = &registry.counter("monitor.consumers_restored");
  readings_ingested_ = &registry.counter("monitor.readings_ingested");
  readings_missing_ = &registry.counter("monitor.readings_missing");
  readings_in_cooldown_ = &registry.counter("monitor.readings_in_cooldown");
  scores_evaluated_ = &registry.counter("monitor.scores_evaluated");
  scores_coverage_gated_ =
      &registry.counter("monitor.scores_coverage_gated");
  alerts_raised_ = &registry.counter("monitor.alerts_raised");
  alerts_over_ = &registry.counter("monitor.alerts_over_report");
  alerts_under_ = &registry.counter("monitor.alerts_under_report");
  fit_seconds_ = &registry.histogram("monitor.fit_seconds");
  batch_seconds_ = &registry.histogram("monitor.ingest_batch_seconds");
  events_ = config_.events != nullptr ? config_.events
                                      : &obs::default_event_log();
}

void OnlineMonitor::emit_alert(const AlertEvent& event) const {
  if (!events_->enabled()) return;
  events_->emit(
      "alert_raised",
      obs::EventFields{}
          .str("source", "monitor")
          .u64("consumer", event.consumer_id)
          .u64("week", event.slot / static_cast<SlotIndex>(kSlotsPerWeek))
          .u64("slot", event.slot)
          .f64("k_a", event.score)
          .f64("threshold", event.threshold)
          .str("direction", to_string(event.direction)));
}

void OnlineMonitor::fit(const meter::Dataset& history,
                        const meter::TrainTestSplit& split) {
  obs::TraceSpan span("monitor.fit", "monitor");
  obs::ScopedTimer timer(*fit_seconds_);
  fitted_ = false;
  alerts_.clear();

  const std::size_t count = history.consumer_count();
  detectors_.assign(count, KldDetector(config_.kld));
  ids_.assign(count, meter::ConsumerId{});
  state_.assign(count, ConsumerState{});
  // Per-consumer fits are independent; run them on the shared pool.
  parallel_for(
      count,
      [&](std::size_t i) {
        const auto& series = history.consumer(i);
        const auto train = split.train(series);
        detectors_[i].fit(train);
        ids_[i] = series.id;
        // Prime with the last (trusted) training week.  Training spans start
        // at a week boundary, so the primed vector is slot-of-week aligned.
        state_[i].window.assign(train.end() - kSlotsPerWeek, train.end());
        state_[i].missing.assign(state_[i].window.size(), 0);
        state_[i].train_mean = stats::mean(train);
      },
      config_.threads);
  fitted_ = true;
  consumers_fitted_->add(count);
}

std::optional<AlertEvent> OnlineMonitor::apply(const Reading& reading) {
  ConsumerState& cs = state_[reading.consumer_index];
  const std::size_t position = reading.slot % cs.window.size();

  if (reading.missing) {
    // A dropped report carries no information: keep the last slot-aligned
    // value (do NOT impute 0 - a zero week is exactly what an under-report
    // attack looks like) and account for the gap.  The slot position goes
    // stale, which feeds the coverage gate below.
    readings_missing_->add();
    if (!cs.missing[position]) {
      cs.missing[position] = 1;
      ++cs.missing_in_window;
    }
    return std::nullopt;
  }
  readings_ingested_->add();

  cs.window[position] = reading.kw;
  if (cs.missing[position]) {
    cs.missing[position] = 0;
    --cs.missing_in_window;
  }
  if (cs.cooldown > 0) {
    --cs.cooldown;
    readings_in_cooldown_->add();
    return std::nullopt;
  }
  if (++cs.since_score < config_.stride) return std::nullopt;
  cs.since_score = 0;

  if (static_cast<double>(cs.missing_in_window) >
      config_.max_missing_fraction * static_cast<double>(cs.window.size())) {
    // Too much of the sliding vector is a stale fill: scoring it would let
    // delivery loss masquerade as theft.  Skip until coverage recovers.
    scores_coverage_gated_->add();
    return std::nullopt;
  }

  scores_evaluated_->add();
  const KldDetector& detector = detectors_[reading.consumer_index];
  const double score = detector.score(cs.window);
  if (score <= detector.threshold()) return std::nullopt;

  cs.cooldown = config_.cooldown_slots;
  const AlertDirection direction = stats::mean(cs.window) > cs.train_mean
                                       ? AlertDirection::kOverReport
                                       : AlertDirection::kUnderReport;
  alerts_raised_->add();
  (direction == AlertDirection::kOverReport ? alerts_over_ : alerts_under_)
      ->add();
  return AlertEvent{reading.consumer_index, ids_[reading.consumer_index],
                    reading.slot, score, detector.threshold(), direction};
}

std::optional<AlertEvent> OnlineMonitor::ingest(std::size_t consumer_index,
                                                SlotIndex slot, Kw reading) {
  return ingest(Reading{consumer_index, slot, reading, /*missing=*/false});
}

std::optional<AlertEvent> OnlineMonitor::ingest(const Reading& reading) {
  obs::TraceSpan span("monitor.ingest", "monitor");
  require(fitted_, "OnlineMonitor: fit() not called");
  require(reading.consumer_index < state_.size(),
          "OnlineMonitor: consumer index out of range");
  auto event = apply(reading);
  if (event) {
    alerts_.push_back(*event);
    emit_alert(*event);
  }
  return event;
}

std::vector<AlertEvent> OnlineMonitor::ingest_batch(
    std::span<const Reading> readings) {
  obs::TraceSpan span("monitor.ingest_batch", "monitor");
  require(fitted_, "OnlineMonitor: fit() not called");
  for (const auto& r : readings) {  // validate before mutating any state
    require(r.consumer_index < state_.size(),
            "OnlineMonitor: consumer index out of range");
  }
  obs::ScopedTimer timer(*batch_seconds_);

  // Group the batch by consumer, preserving each consumer's arrival order.
  // Distinct consumers have disjoint state, so they score in parallel; the
  // (batch position, alert) pairs are then merged back into arrival order
  // to match repeated ingest() exactly.
  std::vector<std::vector<std::size_t>> by_consumer(state_.size());
  for (std::size_t r = 0; r < readings.size(); ++r) {
    by_consumer[readings[r].consumer_index].push_back(r);
  }
  std::vector<std::size_t> touched;
  for (std::size_t c = 0; c < by_consumer.size(); ++c) {
    if (!by_consumer[c].empty()) touched.push_back(c);
  }

  std::vector<std::optional<AlertEvent>> raised(readings.size());
  parallel_for(
      touched.size(),
      [&](std::size_t t) {
        for (const std::size_t r : by_consumer[touched[t]]) {
          raised[r] = apply(readings[r]);
        }
      },
      config_.threads);

  std::vector<AlertEvent> events;
  for (auto& event : raised) {
    if (event) {
      events.push_back(*event);
      // Serial emission in merged arrival order: the event log matches a
      // reading-by-reading ingest() replay byte for byte.
      emit_alert(*event);
    }
  }
  alerts_.insert(alerts_.end(), events.begin(), events.end());
  return events;
}

void OnlineMonitor::save(std::ostream& out) const {
  obs::TraceSpan span("monitor.save", "monitor");
  require(fitted_, "OnlineMonitor::save: fit() not called");
  persist::Encoder enc;
  enc.u64(config_.stride);
  enc.u64(config_.cooldown_slots);
  enc.f64(config_.max_missing_fraction);
  enc.u64(detectors_.size());
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    detectors_[i].save(enc);
    enc.u32(ids_[i]);
    const ConsumerState& cs = state_[i];
    enc.doubles(cs.window);
    for (const char m : cs.missing) enc.u8(m != 0 ? 1 : 0);
    enc.u64(cs.since_score);
    enc.u64(cs.cooldown);
    enc.f64(cs.train_mean);
  }
  enc.u64(alerts_.size());
  for (const AlertEvent& a : alerts_) {
    enc.u64(a.consumer_index);
    enc.u32(a.consumer_id);
    enc.u64(a.slot);
    enc.f64(a.score);
    enc.f64(a.threshold);
    enc.u8(static_cast<std::uint8_t>(a.direction));
  }
  persist::write_checkpoint(out, persist::Section::kOnlineMonitor,
                            enc.bytes());
}

void OnlineMonitor::restore(std::istream& in) {
  obs::TraceSpan span("monitor.restore", "monitor");
  const std::string payload =
      persist::read_checkpoint(in, persist::Section::kOnlineMonitor);
  persist::Decoder dec(payload);

  OnlineMonitorConfig config = config_;  // threads/metrics survive
  config.stride = dec.count("stride", 1u << 20);
  config.cooldown_slots = dec.count("cooldown slots", 1u << 20);
  config.max_missing_fraction = dec.f64();
  require(config.stride >= 1, "checkpoint: monitor stride must be >= 1");
  if (!(config.max_missing_fraction >= 0.0 &&
        config.max_missing_fraction <= 1.0)) {
    throw DataError("checkpoint: monitor max_missing_fraction out of [0,1]");
  }

  const std::size_t count = dec.count("monitor consumers", 100u << 20);
  std::vector<KldDetector> detectors;
  std::vector<meter::ConsumerId> ids;
  std::vector<ConsumerState> state;
  detectors.reserve(count);
  ids.reserve(count);
  state.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    KldDetector detector;
    detector.restore(dec);
    detectors.push_back(std::move(detector));
    ids.push_back(dec.u32());
    ConsumerState cs;
    cs.window = dec.doubles("monitor window", 1u << 20);
    if (cs.window.size() != static_cast<std::size_t>(kSlotsPerWeek)) {
      throw DataError("checkpoint: monitor window is not one week");
    }
    cs.missing.resize(cs.window.size());
    for (char& m : cs.missing) {
      const std::uint8_t flag = dec.u8();
      if (flag > 1) throw DataError("checkpoint: bad monitor missing flag");
      m = static_cast<char>(flag);
      if (m) ++cs.missing_in_window;
    }
    cs.since_score = dec.count("since_score", 1u << 20);
    cs.cooldown = dec.count("cooldown", 1u << 20);
    cs.train_mean = dec.f64();
    state.push_back(std::move(cs));
  }

  const std::size_t alert_count = dec.count("alerts", 100u << 20);
  std::vector<AlertEvent> alerts;
  alerts.reserve(alert_count);
  for (std::size_t i = 0; i < alert_count; ++i) {
    AlertEvent a;
    a.consumer_index = dec.count("alert consumer", 100u << 20);
    if (a.consumer_index >= count) {
      throw DataError("checkpoint: alert consumer index out of range");
    }
    a.consumer_id = dec.u32();
    a.slot = static_cast<SlotIndex>(dec.u64());
    a.score = dec.f64();
    a.threshold = dec.f64();
    const std::uint8_t direction = dec.u8();
    if (direction > static_cast<std::uint8_t>(AlertDirection::kOverReport)) {
      throw DataError("checkpoint: bad alert direction");
    }
    a.direction = static_cast<AlertDirection>(direction);
    alerts.push_back(a);
  }
  dec.require_exhausted("monitor model");

  config_ = config;
  detectors_ = std::move(detectors);
  ids_ = std::move(ids);
  state_ = std::move(state);
  alerts_ = std::move(alerts);
  fitted_ = true;
  consumers_restored_->add(count);
  events_->emit("model_restored",
                obs::EventFields{}
                    .str("component", "monitor")
                    .u64("consumers", count)
                    .u64("alerts_restored", alert_count));
}

std::span<const Kw> OnlineMonitor::window(std::size_t consumer_index) const {
  require(fitted_, "OnlineMonitor: fit() not called");
  require(consumer_index < state_.size(),
          "OnlineMonitor: consumer index out of range");
  return state_[consumer_index].window;
}

}  // namespace fdeta::core
