#include "core/online_monitor.h"

#include "common/error.h"

namespace fdeta::core {

OnlineMonitor::OnlineMonitor(OnlineMonitorConfig config) : config_(config) {
  require(config_.stride >= 1, "OnlineMonitor: stride must be >= 1");
}

void OnlineMonitor::fit(const meter::Dataset& history,
                        const meter::TrainTestSplit& split) {
  detectors_.clear();
  ids_.clear();
  state_.clear();
  alerts_.clear();

  detectors_.reserve(history.consumer_count());
  for (const auto& series : history.consumers()) {
    const auto train = split.train(series);
    KldDetector detector(config_.kld);
    detector.fit(train);
    detectors_.push_back(std::move(detector));
    ids_.push_back(series.id);

    ConsumerState cs;
    // Prime with the last (trusted) training week.
    cs.window.assign(train.end() - kSlotsPerWeek, train.end());
    state_.push_back(std::move(cs));
  }
  fitted_ = true;
}

std::optional<AlertEvent> OnlineMonitor::ingest(std::size_t consumer_index,
                                                SlotIndex slot, Kw reading) {
  require(fitted_, "OnlineMonitor: fit() not called");
  require(consumer_index < state_.size(),
          "OnlineMonitor: consumer index out of range");
  ConsumerState& cs = state_[consumer_index];

  cs.window[cs.next_slot] = reading;
  cs.next_slot = (cs.next_slot + 1) % cs.window.size();
  if (cs.cooldown > 0) {
    --cs.cooldown;
    return std::nullopt;
  }
  if (++cs.since_score < config_.stride) return std::nullopt;
  cs.since_score = 0;

  const KldDetector& detector = detectors_[consumer_index];
  const double score = detector.score(cs.window);
  if (score <= detector.threshold()) return std::nullopt;

  cs.cooldown = config_.cooldown_slots;
  AlertEvent event{consumer_index, ids_[consumer_index], slot, score,
                   detector.threshold()};
  alerts_.push_back(event);
  return event;
}

}  // namespace fdeta::core
