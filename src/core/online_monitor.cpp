#include "core/online_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>

#include "common/error.h"
#include "common/sharding.h"
#include "common/thread_pool.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "stats/descriptive.h"

namespace fdeta::core {

namespace {

constexpr std::size_t kWindow = static_cast<std::size_t>(kSlotsPerWeek);

// Population-health histogram: linear reading-magnitude bins over the fleet's
// primed sliding windows.  32 bins keeps the KLD estimate stable at modest
// window sizes while staying cheap to drain per refresh.
constexpr std::size_t kHealthBins = 32;

// Per-shard metric-name cardinality budget: at most this many "shardNN"
// series per component; fleets sharded wider alias onto s % kMaxShardSeries.
constexpr std::size_t kMaxShardSeries = 64;

std::string shard_metric_name(const char* component, std::size_t slot,
                              const char* what) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s.shard%02zu.%s", component, slot, what);
  return buf;
}

// KL divergence, in bits, of the `recent` counts against the `baseline`
// counts with +0.5 additive smoothing per bin (both sides), so empty bins
// never produce infinities.
double smoothed_kld_bits(const std::uint64_t* recent,
                         std::uint64_t recent_total,
                         const std::uint64_t* baseline,
                         std::uint64_t baseline_total, std::size_t bins) {
  const double half_bins = 0.5 * static_cast<double>(bins);
  const double p_norm = static_cast<double>(recent_total) + half_bins;
  const double q_norm = static_cast<double>(baseline_total) + half_bins;
  double kld = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double p = (static_cast<double>(recent[b]) + 0.5) / p_norm;
    const double q = (static_cast<double>(baseline[b]) + 0.5) / q_norm;
    kld += p * std::log2(p / q);
  }
  return kld < 0.0 ? 0.0 : kld;  // numerically clamp; KLD >= 0
}

}  // namespace

const char* to_string(AlertDirection direction) {
  switch (direction) {
    case AlertDirection::kUnderReport: return "under-report";
    case AlertDirection::kOverReport: return "over-report";
  }
  return "?";
}

OnlineMonitor::OnlineMonitor(OnlineMonitorConfig config) : config_(config) {
  require(config_.stride >= 1, "OnlineMonitor: stride must be >= 1");
  require(config_.max_missing_fraction >= 0.0 &&
              config_.max_missing_fraction <= 1.0,
          "OnlineMonitor: max_missing_fraction out of [0,1]");
  obs::MetricsRegistry& registry = config_.metrics != nullptr
                                       ? *config_.metrics
                                       : obs::default_registry();
  consumers_fitted_ = &registry.counter("monitor.consumers_fitted");
  consumers_restored_ = &registry.counter("monitor.consumers_restored");
  readings_ingested_ = &registry.counter("monitor.readings_ingested");
  readings_missing_ = &registry.counter("monitor.readings_missing");
  readings_in_cooldown_ = &registry.counter("monitor.readings_in_cooldown");
  scores_evaluated_ = &registry.counter("monitor.scores_evaluated");
  scores_coverage_gated_ =
      &registry.counter("monitor.scores_coverage_gated");
  alerts_raised_ = &registry.counter("monitor.alerts_raised");
  alerts_over_ = &registry.counter("monitor.alerts_over_report");
  alerts_under_ = &registry.counter("monitor.alerts_under_report");
  fit_seconds_ = &registry.histogram("monitor.fit_seconds");
  batch_seconds_ = &registry.histogram("monitor.ingest_batch_seconds");
  shard_imbalance_ = &registry.gauge("monitor.shard_imbalance_milli");
  drift_gauge_ = &registry.gauge("monitor.population_drift_milli_bits");
  burst_gauge_ = &registry.gauge("monitor.alert_burst_milli");
  registry_ = &registry;
  events_ = config_.events != nullptr ? config_.events
                                      : &obs::default_event_log();
}

void OnlineMonitor::init_shard_metrics() {
  const std::size_t instrumented = std::min(shard_count_, kMaxShardSeries);
  shard_pending_.resize(instrumented);
  shard_highwater_.resize(instrumented);
  shard_lock_wait_.resize(instrumented);
  for (std::size_t s = 0; s < instrumented; ++s) {
    shard_pending_[s] =
        &registry_->gauge(shard_metric_name("monitor", s, "pending_depth"));
    shard_highwater_[s] = &registry_->gauge(
        shard_metric_name("monitor", s, "pending_highwater"));
    shard_lock_wait_[s] = &registry_->histogram(
        shard_metric_name("monitor", s, "lock_wait_seconds"));
  }
  shard_applied_.assign(shard_count_, 0);
}

std::size_t OnlineMonitor::health_bin(double v) const {
  // Linear bins over [0, max_kw], upper-inclusive edges at max_kw * b / bins,
  // everything past max_kw merged into the top bin.  Arithmetic instead of a
  // binary search over an edge table: this runs per reading in apply() and
  // per stored window in rebuild_health_baseline(), where the extra ~5
  // branches of a lower_bound measurably slowed the warm-restore path.
  if (!(v > 0.0)) return 0;
  const double scaled = std::ceil(v * health_bin_scale_);
  if (scaled >= static_cast<double>(kHealthBins)) return kHealthBins - 1;
  return static_cast<std::size_t>(scaled) - 1;
}

void OnlineMonitor::rebuild_health_baseline() {
  // Two passes over count x 336 windows (max, then bin counts).  At mega
  // fleet scale this sits on the warm-restore path, so both passes run
  // chunked on the shared pool; per-chunk partials keep the reduction
  // order-independent (max and sums commute), preserving determinism.
  const std::size_t total = windows_.size();
  const std::size_t per_chunk = 1 << 16;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(64, (total + per_chunk - 1) / per_chunk));
  const std::size_t stride = (total + chunks - 1) / chunks;
  std::vector<double> chunk_max(chunks, 0.0);
  parallel_for(
      chunks,
      [&](std::size_t k) {
        double m = 0.0;
        const std::size_t hi = std::min(total, (k + 1) * stride);
        for (std::size_t i = k * stride; i < hi; ++i) {
          m = std::max(m, windows_[i]);
        }
        chunk_max[k] = m;
      },
      config_.threads);
  double max_kw = 0.0;
  for (const double m : chunk_max) max_kw = std::max(max_kw, m);
  if (max_kw <= 0.0) max_kw = 1.0;
  health_bin_scale_ = static_cast<double>(kHealthBins) / max_kw;

  std::vector<std::vector<std::uint64_t>> chunk_counts(
      chunks, std::vector<std::uint64_t>(kHealthBins, 0));
  parallel_for(
      chunks,
      [&](std::size_t k) {
        auto& counts = chunk_counts[k];
        const std::size_t hi = std::min(total, (k + 1) * stride);
        for (std::size_t i = k * stride; i < hi; ++i) {
          ++counts[health_bin(windows_[i])];
        }
      },
      config_.threads);
  health_baseline_counts_.assign(kHealthBins, 0);
  for (const auto& counts : chunk_counts) {
    for (std::size_t b = 0; b < kHealthBins; ++b) {
      health_baseline_counts_[b] += counts[b];
    }
  }
  health_baseline_total_ = total;
  health_recent_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(kHealthBins);
  for (std::size_t b = 0; b < kHealthBins; ++b) {
    health_recent_[b].store(0, std::memory_order_relaxed);
  }
  health_readings_.store(0, std::memory_order_relaxed);
  health_alerts_.store(0, std::memory_order_relaxed);
  last_health_readings_ = 0;
  last_health_alerts_ = 0;
  drift_gauge_->set(0);
  burst_gauge_->set(0);
}

void OnlineMonitor::refresh_health_gauges() {
  if (!fitted_ || health_bin_scale_ <= 0.0) return;
  const std::uint64_t readings_total =
      health_readings_.load(std::memory_order_relaxed);
  const std::uint64_t alerts_total =
      health_alerts_.load(std::memory_order_relaxed);
  const std::uint64_t readings_delta = readings_total - last_health_readings_;
  const std::uint64_t alerts_delta = alerts_total - last_health_alerts_;
  if (readings_delta == 0) return;  // nothing new: gauges keep their values

  std::uint64_t recent[kHealthBins];
  for (std::size_t b = 0; b < kHealthBins; ++b) {
    recent[b] = health_recent_[b].exchange(0, std::memory_order_relaxed);
  }
  const double kld = smoothed_kld_bits(
      recent, readings_delta, health_baseline_counts_.data(),
      health_baseline_total_, kHealthBins);
  drift_gauge_->set(std::llround(1000.0 * kld));

  // Burst factor: the recent window's alert rate over the lifetime alert
  // rate (1000 = steady state).  Zero until any alert has ever been raised.
  if (alerts_total > 0 && readings_total > 0) {
    const double recent_rate = static_cast<double>(alerts_delta) /
                               static_cast<double>(readings_delta);
    const double lifetime_rate = static_cast<double>(alerts_total) /
                                 static_cast<double>(readings_total);
    burst_gauge_->set(std::llround(1000.0 * recent_rate / lifetime_rate));
  } else {
    burst_gauge_->set(0);
  }
  last_health_readings_ = readings_total;
  last_health_alerts_ = alerts_total;
}

void OnlineMonitor::emit_alert(const AlertEvent& event) const {
  if (!events_->enabled()) return;
  events_->emit(
      "alert_raised",
      obs::EventFields{}
          .str("source", "monitor")
          .u64("consumer", event.consumer_id)
          .u64("week", event.slot / static_cast<SlotIndex>(kSlotsPerWeek))
          .u64("slot", event.slot)
          .f64("k_a", event.score)
          .f64("threshold", event.threshold)
          .str("direction", to_string(event.direction)));
}

void OnlineMonitor::init_fleet(std::size_t count) {
  DetectorOptions options = config_.detector_options;
  options.kld = config_.kld;
  const std::unique_ptr<ScoringDetector> prototype =
      make_detector(config_.detector, options);
  detectors_.clear();
  detectors_.resize(count);
  for (auto& detector : detectors_) detector = prototype->clone();
  ids_.assign(count, meter::ConsumerId{});
  windows_.assign(count * kWindow, 0.0);
  missing_.assign(count * kWindow, 0);
  missing_in_window_.assign(count, 0);
  since_score_.assign(count, 0);
  cooldown_.assign(count, 0);
  train_mean_.assign(count, 0.0);
  const std::size_t hint = config_.threads != 0
                               ? config_.threads
                               : shared_pool().thread_count() + 1;
  shard_count_ = resolve_shard_count(config_.shards, count, hint);
  shard_locks_ = std::make_unique<std::mutex[]>(shard_count_);
  init_shard_metrics();
}

void OnlineMonitor::fit_one(std::size_t i, const meter::ConsumerSeries& series,
                            const meter::TrainTestSplit& split) {
  const auto train = split.train(series);
  detectors_[i]->fit(train);
  ids_[i] = series.id;
  // Prime with the last (trusted) training week.  Training spans start at a
  // week boundary, so the primed vector is slot-of-week aligned.
  std::copy(train.end() - kWindow, train.end(),
            windows_.begin() + static_cast<std::ptrdiff_t>(i * kWindow));
  train_mean_[i] = stats::mean(train);
}

hierarchy::FeederConfig OnlineMonitor::resolved_feeder_config() const {
  // The hierarchy layer shares the monitor's pool cap and telemetry/event
  // sinks unless the caller pinned its own.
  hierarchy::FeederConfig cfg = config_.feeder;
  if (cfg.threads == 0) cfg.threads = config_.threads;
  if (cfg.metrics == nullptr) cfg.metrics = config_.metrics;
  if (cfg.events == nullptr) cfg.events = config_.events;
  return cfg;
}

void OnlineMonitor::fit(const meter::Dataset& history,
                        const meter::TrainTestSplit& split) {
  obs::TraceSpan span("monitor.fit", "monitor");
  obs::ScopedTimer timer(*fit_seconds_);
  fitted_ = false;
  alerts_.clear();
  feeder_.reset();

  const std::size_t count = history.consumer_count();
  init_fleet(count);
  // Per-consumer fits are independent; run them on the shared pool.
  parallel_for(
      count, [&](std::size_t i) { fit_one(i, history.consumer(i), split); },
      config_.threads);
  if (config_.topology != nullptr) {
    feeder_ = std::make_unique<hierarchy::FeederMonitor>(
        *config_.topology, resolved_feeder_config());
    feeder_->fit(history, split);
  }
  rebuild_health_baseline();
  fitted_ = true;
  consumers_fitted_->add(count);
}

void OnlineMonitor::fit_streaming(
    std::size_t count,
    const std::function<meter::ConsumerSeries(std::size_t)>& source,
    const meter::TrainTestSplit& split) {
  obs::TraceSpan span("monitor.fit_streaming", "monitor");
  obs::ScopedTimer timer(*fit_seconds_);
  require(static_cast<bool>(source), "OnlineMonitor: null series source");
  fitted_ = false;
  alerts_.clear();
  feeder_.reset();

  init_fleet(count);
  // Each iteration materialises exactly one consumer's series, fits, and
  // drops it: peak memory is the fitted state plus `threads` series, never
  // the fleet's full history.
  parallel_for(
      count,
      [&](std::size_t i) {
        const meter::ConsumerSeries series = source(i);
        fit_one(i, series, split);
      },
      config_.threads);
  if (config_.topology != nullptr) {
    // A second (serial) pass over the source: the feeder layer accumulates
    // per-node aggregates in ascending consumer order, producing state
    // bit-identical to the in-memory fit() path.
    feeder_ = std::make_unique<hierarchy::FeederMonitor>(
        *config_.topology, resolved_feeder_config());
    feeder_->fit_streaming(count, source, split);
  }
  rebuild_health_baseline();
  fitted_ = true;
  consumers_fitted_->add(count);
}

hierarchy::FeederReport OnlineMonitor::evaluate_feeders(SlotIndex slot) {
  require(fitted_, "OnlineMonitor: fit() not called");
  require(feeder_ != nullptr,
          "OnlineMonitor: evaluate_feeders requires a configured topology");
  // Consumers still in their alert cooldown were individually flagged
  // recently; the hierarchy layer only localizes the sub-threshold rest.
  // Windows and cooldowns are layout-invariant state, so this mask - and
  // the whole report - is byte-identical for any shard x thread layout.
  std::vector<unsigned char> flagged(detectors_.size(), 0);
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    flagged[i] = cooldown_[i] > 0 ? 1 : 0;
  }
  return feeder_->evaluate_windows(
      [this](std::size_t i) {
        return std::span<const Kw>(windows_.data() + i * kWindow, kWindow);
      },
      slot, flagged);
}

std::optional<AlertEvent> OnlineMonitor::apply(const Reading& reading) {
  const std::size_t i = reading.consumer_index;
  const std::size_t base = i * kWindow;
  const std::size_t position = static_cast<std::size_t>(reading.slot) % kWindow;

  if (reading.missing) {
    // A dropped report carries no information: keep the last slot-aligned
    // value (do NOT impute 0 - a zero week is exactly what an under-report
    // attack looks like) and account for the gap.  The slot position goes
    // stale, which feeds the coverage gate below.  The stride and cooldown
    // clocks advance on OBSERVED readings only - an outage must not eat a
    // consumer's cooldown or stride budget while nothing is being measured.
    readings_missing_->add();
    if (!missing_[base + position]) {
      missing_[base + position] = 1;
      ++missing_in_window_[i];
    }
    return std::nullopt;
  }
  readings_ingested_->add();
  // Population-health accounting: one relaxed increment per observed
  // reading (bins shared across shards, so the counts are layout-invariant).
  health_recent_[health_bin(reading.kw)].fetch_add(1,
                                                   std::memory_order_relaxed);
  health_readings_.fetch_add(1, std::memory_order_relaxed);

  windows_[base + position] = reading.kw;
  if (missing_[base + position]) {
    missing_[base + position] = 0;
    --missing_in_window_[i];
  }
  if (cooldown_[i] > 0) {
    --cooldown_[i];
    readings_in_cooldown_->add();
    return std::nullopt;
  }
  if (++since_score_[i] < config_.stride) return std::nullopt;
  since_score_[i] = 0;

  if (static_cast<double>(missing_in_window_[i]) >
      config_.max_missing_fraction * static_cast<double>(kWindow)) {
    // Too much of the sliding vector is a stale fill: scoring it would let
    // delivery loss masquerade as theft.  Skip until coverage recovers.
    scores_coverage_gated_->add();
    return std::nullopt;
  }

  scores_evaluated_->add();
  // windows_ is slot-of-week aligned (index s = slot-of-week s), so the
  // vector scores as a week starting at slot-of-week 0.  Detectors keep the
  // hot path allocation-free internally (thread-local scratch).
  const std::span<const Kw> window{windows_.data() + base, kWindow};
  const ScoringDetector& detector = *detectors_[i];
  const double score = detector.score_week(window, 0);
  const double threshold = detector.decision_threshold();
  if (score <= threshold) return std::nullopt;

  cooldown_[i] = static_cast<std::uint32_t>(config_.cooldown_slots);
  const AlertDirection direction = stats::mean(window) > train_mean_[i]
                                       ? AlertDirection::kOverReport
                                       : AlertDirection::kUnderReport;
  alerts_raised_->add();
  (direction == AlertDirection::kOverReport ? alerts_over_ : alerts_under_)
      ->add();
  health_alerts_.fetch_add(1, std::memory_order_relaxed);
  return AlertEvent{i, ids_[i], reading.slot, score, threshold, direction};
}

std::optional<AlertEvent> OnlineMonitor::ingest(std::size_t consumer_index,
                                                SlotIndex slot, Kw reading) {
  return ingest(Reading{consumer_index, slot, reading, /*missing=*/false});
}

std::optional<AlertEvent> OnlineMonitor::ingest(const Reading& reading) {
  obs::TraceSpan span("monitor.ingest", "monitor");
  require(fitted_, "OnlineMonitor: fit() not called");
  require(reading.consumer_index < consumer_count(),
          "OnlineMonitor: consumer index out of range");
  std::optional<AlertEvent> event;
  {
    std::lock_guard<std::mutex> lock(
        shard_locks_[shard_of(reading.consumer_index, shard_count_)]);
    event = apply(reading);
  }
  if (event) {
    std::lock_guard<std::mutex> lock(alerts_mutex_);
    alerts_.push_back(*event);
    emit_alert(*event);
  }
  return event;
}

std::vector<AlertEvent> OnlineMonitor::ingest_batch(
    std::span<const Reading> readings) {
  obs::TraceSpan span("monitor.ingest_batch", "monitor");
  require(fitted_, "OnlineMonitor: fit() not called");
  for (const auto& r : readings) {  // validate before mutating any state
    require(r.consumer_index < consumer_count(),
            "OnlineMonitor: consumer index out of range");
  }
  obs::ScopedTimer timer(*batch_seconds_);

  // Bucket the batch by shard, preserving arrival order inside each bucket
  // (stable bucketing, so per-consumer order == batch order).  Shards own
  // disjoint consumer state and proceed in parallel under their own lock;
  // the (batch position -> alert) results are then merged back into arrival
  // order, so the returned alerts, alerts(), the counters and the emitted
  // events are byte-identical to a reading-by-reading ingest() replay for
  // ANY shard count x thread count.
  std::vector<std::vector<std::size_t>> by_shard(shard_count_);
  for (auto& bucket : by_shard) {
    bucket.reserve(readings.size() / shard_count_ + 1);
  }
  for (std::size_t r = 0; r < readings.size(); ++r) {
    by_shard[shard_of(readings[r].consumer_index, shard_count_)].push_back(r);
  }

  std::vector<std::optional<AlertEvent>> raised(readings.size());
  parallel_for(
      shard_count_,
      [&](std::size_t s) {
        if (by_shard[s].empty()) return;
        // Per-shard health: the lock-wait histogram times only the
        // acquisition (contention, not work); the depth gauges cover the
        // bucket this delivery parked on the shard.  One histogram
        // observation and three gauge stores per shard per batch - the
        // per-reading loop below stays untouched.
        const std::size_t m = s % shard_pending_.size();
        const std::int64_t depth =
            static_cast<std::int64_t>(by_shard[s].size());
        shard_pending_[m]->set(depth);
        shard_highwater_[m]->update_max(depth);
        obs::ScopedTimer wait(*shard_lock_wait_[m]);
        std::lock_guard<std::mutex> lock(shard_locks_[s]);
        wait.stop();
        for (const std::size_t r : by_shard[s]) {
          raised[r] = apply(readings[r]);
        }
        shard_applied_[s] += by_shard[s].size();
        shard_pending_[m]->set(0);
      },
      config_.threads);

  // Shard-imbalance gauge: max over mean cumulative per-shard load, x1000
  // (1000 = perfectly balanced).  Reads happen after the parallel_for
  // barrier, so the plain-vector accumulators are quiescent here.
  std::uint64_t total_applied = 0;
  std::uint64_t max_applied = 0;
  for (const std::uint64_t a : shard_applied_) {
    total_applied += a;
    max_applied = std::max(max_applied, a);
  }
  if (total_applied > 0) {
    const double mean = static_cast<double>(total_applied) /
                        static_cast<double>(shard_count_);
    shard_imbalance_->set(
        std::llround(1000.0 * static_cast<double>(max_applied) / mean));
  }

  std::vector<AlertEvent> events;
  for (auto& event : raised) {
    if (event) events.push_back(*event);
  }
  {
    std::lock_guard<std::mutex> lock(alerts_mutex_);
    // Serial emission in merged arrival order: the event log matches a
    // reading-by-reading ingest() replay byte for byte.
    for (const AlertEvent& event : events) emit_alert(event);
    alerts_.insert(alerts_.end(), events.begin(), events.end());
  }
  return events;
}

void OnlineMonitor::save(std::ostream& out) const {
  obs::TraceSpan span("monitor.save", "monitor");
  require(fitted_, "OnlineMonitor::save: fit() not called");
  const std::size_t count = detectors_.size();
  persist::Encoder enc;
  enc.u64(config_.stride);
  enc.u64(config_.cooldown_slots);
  enc.f64(config_.max_missing_fraction);
  enc.u64(count);
  // v4 detector block: the registry id of the (uniform) fleet.  "kld" keeps
  // the v3 bulk Struct-of-Arrays encoding below; other families store one
  // shared config fingerprint plus per-consumer save_state payloads.
  enc.str(config_.detector);

  if (count > 0 && config_.detector == "kld") {
    // Uniform detector block: one fit gives every consumer the same config
    // and training-week count, so the per-field arrays below need no
    // per-consumer framing and restore as bulk reads.
    const auto& front = static_cast<const KldDetector&>(*detectors_.front());
    const KldDetectorConfig& kld = front.config();
    const std::size_t train_weeks = front.training_divergences().size();
    for (const auto& dp : detectors_) {
      const auto& d = static_cast<const KldDetector&>(*dp);
      require(d.config().bins == kld.bins &&
                  d.config().significance == kld.significance &&
                  d.config().epsilon == kld.epsilon &&
                  d.config().exclude_out_of_support ==
                      kld.exclude_out_of_support &&
                  d.training_divergences().size() == train_weeks,
              "OnlineMonitor::save: detector fleet is not uniform");
    }
    enc.u64(kld.bins);
    enc.f64(kld.significance);
    enc.f64(kld.epsilon);
    enc.u8(kld.exclude_out_of_support ? 1 : 0);
    enc.u64(train_weeks);
    // Consecutive per-consumer appends produce the same bytes as one flat
    // count x width array; the decoder reads each block in one memcpy.
    for (const auto& dp : detectors_) {
      enc.f64_array(static_cast<const KldDetector&>(*dp).histogram().edges());
    }
    for (const auto& dp : detectors_) {
      enc.f64_array(
          static_cast<const KldDetector&>(*dp).baseline_distribution());
    }
    for (const auto& dp : detectors_) {
      enc.f64_array(
          static_cast<const KldDetector&>(*dp).training_divergences());
    }
    std::vector<double> thresholds(count);
    for (std::size_t i = 0; i < count; ++i) {
      thresholds[i] =
          static_cast<const KldDetector&>(*detectors_[i]).threshold();
    }
    enc.f64_array(thresholds);
  } else if (count > 0) {
    const std::string fingerprint = detectors_.front()->config_fingerprint();
    for (const auto& d : detectors_) {
      require(d->id() == config_.detector &&
                  d->config_fingerprint() == fingerprint,
              "OnlineMonitor::save: detector fleet is not uniform");
    }
    enc.str(fingerprint);
    for (const auto& d : detectors_) d->save_state(enc);
  }

  if (count > 0) {
    // Fleet sliding-window state, one bulk array per field
    // (missing_in_window_ is a derived popcount, recomputed on restore).
    enc.u32_array(ids_);
    enc.f64_array(windows_);
    enc.u8_array(missing_);
    enc.u32_array(since_score_);
    enc.u32_array(cooldown_);
    enc.f64_array(train_mean_);
  }

  enc.u64(alerts_.size());
  for (const AlertEvent& a : alerts_) {
    enc.u64(a.consumer_index);
    enc.u32(a.consumer_id);
    enc.u64(a.slot);
    enc.f64(a.score);
    enc.f64(a.threshold);
    enc.u8(static_cast<std::uint8_t>(a.direction));
  }
  // v6 feeder-hierarchy block, behind a presence flag: a monitor fitted
  // without a topology keeps writing (and restoring) hierarchy-free state.
  enc.u8(feeder_ != nullptr ? 1 : 0);
  if (feeder_ != nullptr) feeder_->save_state(enc);
  persist::write_checkpoint(out, persist::Section::kOnlineMonitor,
                            enc.bytes());
}

void OnlineMonitor::restore(std::istream& in) {
  obs::TraceSpan span("monitor.restore", "monitor");
  std::uint32_t version = persist::kFormatVersion;
  const std::string payload =
      persist::read_checkpoint(in, persist::Section::kOnlineMonitor, &version);
  persist::Decoder dec(payload);

  OnlineMonitorConfig config = config_;  // threads/metrics/shards survive
  config.stride = dec.count("stride", 1u << 20);
  config.cooldown_slots = dec.count("cooldown slots", 1u << 20);
  config.max_missing_fraction = dec.f64();
  require(config.stride >= 1, "checkpoint: monitor stride must be >= 1");
  if (!(config.max_missing_fraction >= 0.0 &&
        config.max_missing_fraction <= 1.0)) {
    throw DataError("checkpoint: monitor max_missing_fraction out of [0,1]");
  }

  const std::size_t count = dec.count("monitor consumers", 100u << 20);
  // v2/v3 checkpoints predate the detector-id block and are always "kld".
  const std::string detector_id =
      version >= 4 ? dec.str("detector id", 256) : std::string("kld");
  if (!is_registered_detector(detector_id)) {
    throw DataError("checkpoint: unknown detector id \"" + detector_id + "\"");
  }
  std::vector<std::unique_ptr<ScoringDetector>> detectors;
  std::vector<meter::ConsumerId> ids;
  std::vector<Kw> windows;
  std::vector<unsigned char> missing;
  std::vector<std::uint32_t> missing_in_window;
  std::vector<std::uint32_t> since_score;
  std::vector<std::uint32_t> cooldown;
  std::vector<double> train_mean;

  // Everything except the v2 interleaved layout reads a detector block
  // first, then the bulk per-field fleet arrays.
  const bool v2_interleaved = detector_id == "kld" && version < 3;
  if (count > 0 && !v2_interleaved && detector_id == "kld") {
    // v3+ Struct-of-Arrays: a uniform detector block followed by bulk
    // per-field fleet arrays.  The byte-level decode is a handful of
    // bounds-checked memcpys; only the per-consumer detector objects need
    // rebuilding, and those rebuild in parallel.
    KldDetectorConfig kld;
    kld.bins = dec.count("kld bins", 1u << 20);
    kld.significance = dec.f64();
    kld.epsilon = dec.f64();
    kld.exclude_out_of_support = dec.u8() != 0;
    const std::size_t train_weeks = dec.count("train weeks", 1u << 20);
    if (train_weeks == 0) {
      throw DataError("checkpoint: kld training divergences missing");
    }
    const std::size_t edge_n = kld.bins + 1;
    std::vector<double> edges_flat(count * edge_n);
    dec.f64_array(edges_flat);
    std::vector<double> baselines_flat(count * kld.bins);
    dec.f64_array(baselines_flat);
    std::vector<double> k_flat(count * train_weeks);
    dec.f64_array(k_flat);
    std::vector<double> thresholds(count);
    dec.f64_array(thresholds);

    detectors.resize(count);
    parallel_for(
        count,
        [&](std::size_t i) {
          detectors[i] = std::make_unique<KldDetector>(
              KldDetector::from_fitted_parts(
                  kld,
                  {edges_flat.begin() +
                       static_cast<std::ptrdiff_t>(i * edge_n),
                   edges_flat.begin() +
                       static_cast<std::ptrdiff_t>((i + 1) * edge_n)},
                  {baselines_flat.begin() +
                       static_cast<std::ptrdiff_t>(i * kld.bins),
                   baselines_flat.begin() +
                       static_cast<std::ptrdiff_t>((i + 1) * kld.bins)},
                  {k_flat.begin() +
                       static_cast<std::ptrdiff_t>(i * train_weeks),
                   k_flat.begin() +
                       static_cast<std::ptrdiff_t>((i + 1) * train_weeks)},
                  thresholds[i]));
        },
        config_.threads);
  } else if (count > 0 && !v2_interleaved) {
    // v4 generic detector block: one shared config fingerprint, then each
    // consumer's self-describing save_state payload.
    const std::string fingerprint = dec.str("detector fingerprint", 1024);
    detectors.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::unique_ptr<ScoringDetector> detector =
          make_detector(detector_id, config.detector_options);
      detector->restore_state(dec, version);
      if (detector->config_fingerprint() != fingerprint) {
        throw DataError("checkpoint: detector fingerprint mismatch");
      }
      detectors.push_back(std::move(detector));
    }
  }

  if (count > 0 && !v2_interleaved) {
    ids.resize(count);
    dec.u32_array(ids);
    windows.resize(count * kWindow);
    dec.f64_array(windows);
    missing.resize(count * kWindow);
    dec.u8_array(missing);
    since_score.resize(count);
    dec.u32_array(since_score);
    cooldown.resize(count);
    dec.u32_array(cooldown);
    train_mean.resize(count);
    dec.f64_array(train_mean);

    missing_in_window.assign(count, 0);
    for (std::size_t i = 0; i < count; ++i) {
      std::uint32_t gaps = 0;
      for (std::size_t s = 0; s < kWindow; ++s) {
        const unsigned char flag = missing[i * kWindow + s];
        if (flag > 1) {
          throw DataError("checkpoint: bad monitor missing flag");
        }
        gaps += flag;
      }
      missing_in_window[i] = gaps;
    }
  } else if (count > 0) {
    // v2: per-consumer interleaved layout written by older builds.
    detectors.reserve(count);
    ids.reserve(count);
    windows.resize(count * kWindow);
    missing.resize(count * kWindow);
    missing_in_window.assign(count, 0);
    since_score.resize(count);
    cooldown.resize(count);
    train_mean.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      auto detector = std::make_unique<KldDetector>();
      detector->restore(dec, version);
      detectors.push_back(std::move(detector));
      ids.push_back(dec.u32());
      const std::vector<double> window =
          dec.doubles("monitor window", 1u << 20);
      if (window.size() != kWindow) {
        throw DataError("checkpoint: monitor window is not one week");
      }
      std::copy(window.begin(), window.end(),
                windows.begin() + static_cast<std::ptrdiff_t>(i * kWindow));
      for (std::size_t s = 0; s < kWindow; ++s) {
        const std::uint8_t flag = dec.u8();
        if (flag > 1) throw DataError("checkpoint: bad monitor missing flag");
        missing[i * kWindow + s] = flag;
        missing_in_window[i] += flag;
      }
      since_score[i] =
          static_cast<std::uint32_t>(dec.count("since_score", 1u << 20));
      cooldown[i] =
          static_cast<std::uint32_t>(dec.count("cooldown", 1u << 20));
      train_mean[i] = dec.f64();
    }
  }

  const std::size_t alert_count = dec.count("alerts", 100u << 20);
  std::vector<AlertEvent> alerts;
  alerts.reserve(alert_count);
  for (std::size_t i = 0; i < alert_count; ++i) {
    AlertEvent a;
    a.consumer_index = dec.count("alert consumer", 100u << 20);
    if (a.consumer_index >= count) {
      throw DataError("checkpoint: alert consumer index out of range");
    }
    a.consumer_id = dec.u32();
    a.slot = static_cast<SlotIndex>(dec.u64());
    a.score = dec.f64();
    a.threshold = dec.f64();
    const std::uint8_t direction = dec.u8();
    if (direction > static_cast<std::uint8_t>(AlertDirection::kOverReport)) {
      throw DataError("checkpoint: bad alert direction");
    }
    a.direction = static_cast<AlertDirection>(direction);
    alerts.push_back(a);
  }
  // v6 feeder-hierarchy block; pre-v6 checkpoints carry none (restore
  // proceeds hierarchy-free; refit to regain the feeder layer).
  std::unique_ptr<hierarchy::FeederMonitor> feeder;
  if (version >= 6) {
    const std::uint8_t has_feeder = dec.u8();
    if (has_feeder > 1) throw DataError("checkpoint: bad feeder flag");
    if (has_feeder == 1) {
      if (config_.topology == nullptr) {
        throw DataError(
            "checkpoint: feeder-hierarchy state present but the monitor has "
            "no configured topology");
      }
      feeder = std::make_unique<hierarchy::FeederMonitor>(
          *config_.topology, resolved_feeder_config());
      feeder->restore_state(dec, version);
    }
  }
  dec.require_exhausted("monitor model");

  // Everything decoded cleanly; commit the restore atomically.
  config.detector = detector_id;
  if (detector_id == "kld" && count > 0) {
    config.kld = static_cast<const KldDetector&>(*detectors.front()).config();
  }
  config_ = std::move(config);
  detectors_ = std::move(detectors);
  ids_ = std::move(ids);
  windows_ = std::move(windows);
  missing_ = std::move(missing);
  missing_in_window_ = std::move(missing_in_window);
  since_score_ = std::move(since_score);
  cooldown_ = std::move(cooldown);
  train_mean_ = std::move(train_mean);
  const std::size_t hint = config_.threads != 0
                               ? config_.threads
                               : shared_pool().thread_count() + 1;
  shard_count_ = resolve_shard_count(config_.shards, count, hint);
  shard_locks_ = std::make_unique<std::mutex[]>(shard_count_);
  init_shard_metrics();
  // Drift is measured against the population distribution at service start:
  // a restored monitor baselines on its restored sliding windows, exactly as
  // a freshly fitted one baselines on the primed training windows.
  rebuild_health_baseline();
  alerts_ = std::move(alerts);
  feeder_ = std::move(feeder);
  fitted_ = true;
  consumers_restored_->add(count);
  events_->emit("model_restored",
                obs::EventFields{}
                    .str("component", "monitor")
                    .u64("consumers", count)
                    .u64("alerts_restored", alert_count));
}

std::span<const Kw> OnlineMonitor::window(std::size_t consumer_index) const {
  require(fitted_, "OnlineMonitor: fit() not called");
  require(consumer_index < consumer_count(),
          "OnlineMonitor: consumer index out of range");
  return {windows_.data() + consumer_index * kWindow, kWindow};
}

}  // namespace fdeta::core
