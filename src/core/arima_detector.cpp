#include "core/arima_detector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fdeta::core {

ArimaDetector::ArimaDetector(ArimaDetectorConfig config) : config_(config) {
  require(config_.z > 0.0, "ArimaDetector: z must be positive");
  require(config_.history_slots >= 8, "ArimaDetector: history too short");
}

void ArimaDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "ArimaDetector: training must be whole weeks");
  require(training.size() >= 4 * kSlotsPerWeek,
          "ArimaDetector: need at least four training weeks");
  model_ = ts::ArimaModel::fit(training, config_.order);
  const std::size_t tail =
      std::min<std::size_t>(config_.history_slots, training.size());
  history_tail_.assign(training.end() - tail, training.end());

  // Empirical calibration: roll the forecaster through the training weeks
  // (after a warm-up) and record per-week violation counts.  Honest weeks
  // violate a 95% CI at roughly the nominal rate (model misspecification can
  // push it higher); the threshold sits above the worst training week.
  const std::size_t warmup_weeks = 2;
  ts::RollingForecaster forecaster =
      model_->forecaster(training.subspan(0, warmup_weeks * kSlotsPerWeek));
  std::size_t worst = 0;
  std::size_t count = 0;
  for (std::size_t t = warmup_weeks * kSlotsPerWeek; t < training.size();
       ++t) {
    const ts::Forecast f = forecaster.next();
    if (!f.contains(training[t], config_.z)) ++count;
    forecaster.observe(training[t]);
    if ((t + 1) % kSlotsPerWeek == 0) {
      worst = std::max(worst, count);
      count = 0;
    }
  }
  violation_threshold_ = static_cast<std::size_t>(std::ceil(
                             static_cast<double>(worst) *
                             (1.0 + config_.count_slack))) +
                         config_.count_margin;
}

const ts::ArimaModel& ArimaDetector::model() const {
  require(model_.has_value(), "ArimaDetector: fit() not called");
  return *model_;
}

std::size_t ArimaDetector::violation_count(std::span<const Kw> week) const {
  require(model_.has_value(), "ArimaDetector: fit() not called");
  ts::RollingForecaster forecaster = model_->forecaster(history_tail_);
  std::size_t count = 0;
  for (double reading : week) {
    const ts::Forecast f = forecaster.next();
    if (!f.contains(reading, config_.z)) ++count;
    forecaster.observe(reading);  // reported stream advances (poisons) state
  }
  return count;
}

std::optional<SlotIndex> ArimaDetector::first_violation(
    std::span<const Kw> week) const {
  require(model_.has_value(), "ArimaDetector: fit() not called");
  ts::RollingForecaster forecaster = model_->forecaster(history_tail_);
  for (std::size_t t = 0; t < week.size(); ++t) {
    const ts::Forecast f = forecaster.next();
    if (!f.contains(week[t], config_.z)) return t;
    forecaster.observe(week[t]);
  }
  return std::nullopt;
}

bool ArimaDetector::flag_week(std::span<const Kw> week,
                              SlotIndex /*first_slot*/) const {
  return violation_count(week) > violation_threshold_;
}

}  // namespace fdeta::core
