// The Section-VIII evaluation harness: false-data injection against every
// consumer, six detector rows x three attack realizations (the paper's four
// plus the plugin families of core/detector_registry.h), Metric 1 (detection
// percentage) and Metric 2 (worst-case weekly theft while circumventing each
// detector).
//
// Protocol (per consumer, parallelised across consumers):
//  1. Fit all detectors on the 60-week training span.
//  2. The clean version of the attacked test week gives the false-positive
//     verdict per detector (Section VIII-E: an FP makes the detector "fail"
//     for that consumer and the attacker's gain is maximised).
//  3. Inject:
//       - 1B: 50 Integrated-ARIMA over-report vectors (+ the plain ARIMA
//             attack as the Metric-2 candidate against the ARIMA detector),
//       - 2A/2B: the same, under-reporting,
//       - 3A/3B: the Optimal Swap week (CI-repaired).
//  4. Metric 1 success = every injected vector flagged AND no FP.
//     Metric 2 gain = max gain among candidates evading the detector (all
//     candidates when the detector false-positives).
//  5. Aggregate: Metric 1 -> percentage of consumers; Metric 2 -> sum over
//     consumers (1B, all victims together) or max over consumers (2A/2B and
//     3A/3B, a single attacker).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "meter/dataset.h"
#include "meter/series.h"
#include "pricing/tariff.h"
#include "timeseries/arima.h"

namespace fdeta::core {

enum class DetectorKind : std::size_t {
  kArima = 0,
  kIntegratedArima = 1,
  kKld5 = 2,   ///< KLD detector at 5% significance
  kKld10 = 3,  ///< KLD detector at 10% significance
  kIsolationForest = 4,  ///< isolation forest over weekly features (5%)
  kKldLite = 5,          ///< reduced-input KLD, k selected slots (5%)
};
inline constexpr std::size_t kDetectorCount = 6;

enum class AttackKind : std::size_t {
  k1B = 0,    ///< Integrated ARIMA attack on a victim (over-report)
  k2A2B = 1,  ///< Integrated ARIMA attack by Mallory (under-report)
  k3A3B = 2,  ///< Optimal Swap attack
};
inline constexpr std::size_t kAttackKindCount = 3;

const char* to_string(DetectorKind kind);
const char* to_string(AttackKind kind);

struct EvaluationConfig {
  meter::TrainTestSplit split{};       // 60 train / 14 test
  std::size_t attack_vectors = 50;     // TND trials per consumer
  double z = 1.96;
  ts::ArimaOrder order{};
  std::size_t kld_bins = 10;
  std::size_t reduced_slots = 48;      // kKldLite: selected slots per week
  std::size_t attack_test_week = 0;    // which test week is attacked
  std::uint64_t seed = 7;
  std::size_t threads = 0;             // 0 = hardware concurrency
  double bound_slack = 0.02;           // Integrated detector bound slack
};

/// One consumer x detector x attack cell.
struct CellOutcome {
  bool all_detected = false;    ///< every injected vector flagged
  bool false_positive = false;  ///< clean week flagged
  bool success = false;         ///< all_detected && !false_positive
  KWh undetected_kwh = 0.0;     ///< Metric-2 energy contribution
  double undetected_profit = 0.0;  ///< Metric-2 dollar contribution
};

struct ConsumerEvaluation {
  meter::ConsumerId id = 0;
  bool skipped = false;  ///< degenerate series; excluded from aggregates
  std::array<std::array<CellOutcome, kAttackKindCount>, kDetectorCount> cells{};

  const CellOutcome& cell(DetectorKind d, AttackKind a) const {
    return cells[static_cast<std::size_t>(d)][static_cast<std::size_t>(a)];
  }
};

struct EvaluationResult {
  std::vector<ConsumerEvaluation> consumers;

  std::size_t evaluated_count() const;

  /// Metric 1: percentage of consumers for whom the detector successfully
  /// detected the attack (Table II).
  double metric1_percent(DetectorKind d, AttackKind a) const;

  /// Metric 2: worst-case energy stolen in one week while circumventing the
  /// detector (Table III "Stolen"): sum over consumers for 1B, max over
  /// consumers otherwise.
  KWh metric2_kwh(DetectorKind d, AttackKind a) const;

  /// Metric 2: the corresponding monetary gain (Table III "Profit").
  double metric2_profit(DetectorKind d, AttackKind a) const;
};

/// Runs the full evaluation over a dataset with the paper's TOU pricing.
EvaluationResult run_evaluation(const meter::Dataset& dataset,
                                const EvaluationConfig& config);

/// Evaluates a single consumer (exposed for tests and examples).
ConsumerEvaluation evaluate_consumer(const meter::ConsumerSeries& series,
                                     const EvaluationConfig& config);

}  // namespace fdeta::core
