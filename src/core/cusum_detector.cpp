#include "core/cusum_detector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fdeta::core {

namespace {

/// Standardised residual of a reading against the weekly profile; slots with
/// zero variance contribute zero.
double zscore(const ts::WeeklyProfile& profile, std::size_t slot, Kw value) {
  return profile.zscore(slot % kSlotsPerWeek, value);
}

}  // namespace

// --- CUSUM -----------------------------------------------------------------

CusumDetector::CusumDetector(CusumDetectorConfig config) : config_(config) {
  require(config_.drift_k >= 0.0, "CusumDetector: negative drift");
  require(config_.threshold_h > 0.0, "CusumDetector: threshold must be > 0");
}

double CusumDetector::peak_statistic(std::span<const Kw> week) const {
  require(profile_.has_value(), "CusumDetector: fit() not called");
  double s_hi = 0.0, s_lo = 0.0, peak = 0.0;
  for (std::size_t t = 0; t < week.size(); ++t) {
    const double z = zscore(*profile_, t, week[t]);
    s_hi = std::max(0.0, s_hi + z - config_.drift_k);
    s_lo = std::max(0.0, s_lo - z - config_.drift_k);
    peak = std::max({peak, s_hi, s_lo});
  }
  return peak;
}

void CusumDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "CusumDetector: training must be whole weeks");
  require(training.size() >= 4 * kSlotsPerWeek,
          "CusumDetector: need at least four training weeks");
  profile_.emplace(training, kSlotsPerWeek);

  // Calibrate h above the worst honest training week (which includes the
  // natural anomalies of Section VIII-A).
  double worst = 0.0;
  for (std::size_t w = 0; w * kSlotsPerWeek < training.size(); ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    worst = std::max(worst, peak_statistic(week));
  }
  calibrated_h_ =
      std::max(config_.threshold_h, worst * config_.threshold_slack);
}

bool CusumDetector::flag_week(std::span<const Kw> week,
                              SlotIndex /*first_slot*/) const {
  return peak_statistic(week) > calibrated_h_;
}

// --- EWMA --------------------------------------------------------------------

EwmaDetector::EwmaDetector(EwmaDetectorConfig config) : config_(config) {
  require(config_.lambda > 0.0 && config_.lambda <= 1.0,
          "EwmaDetector: lambda must be in (0,1]");
  require(config_.limit_l > 0.0, "EwmaDetector: limit must be > 0");
}

double EwmaDetector::peak_statistic(std::span<const Kw> week) const {
  require(profile_.has_value(), "EwmaDetector: fit() not called");
  // Asymptotic EWMA sigma for unit-variance residuals.
  const double sigma_ewma =
      std::sqrt(config_.lambda / (2.0 - config_.lambda));
  double ewma = 0.0, peak = 0.0;
  for (std::size_t t = 0; t < week.size(); ++t) {
    const double z = zscore(*profile_, t, week[t]);
    ewma = config_.lambda * z + (1.0 - config_.lambda) * ewma;
    peak = std::max(peak, std::fabs(ewma) / sigma_ewma);
  }
  return peak;
}

void EwmaDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "EwmaDetector: training must be whole weeks");
  require(training.size() >= 4 * kSlotsPerWeek,
          "EwmaDetector: need at least four training weeks");
  profile_.emplace(training, kSlotsPerWeek);

  double worst = 0.0;
  for (std::size_t w = 0; w * kSlotsPerWeek < training.size(); ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    worst = std::max(worst, peak_statistic(week));
  }
  calibrated_l_ = std::max(config_.limit_l, worst * config_.limit_slack);
}

bool EwmaDetector::flag_week(std::span<const Kw> week,
                             SlotIndex /*first_slot*/) const {
  return peak_statistic(week) > calibrated_l_;
}

}  // namespace fdeta::core
