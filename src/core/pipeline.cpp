#include "core/pipeline.h"

#include "common/error.h"
#include "meter/weekly_stats.h"
#include "stats/descriptive.h"
#include "stats/quantile.h"

namespace fdeta::core {

const char* to_string(VerdictStatus status) {
  switch (status) {
    case VerdictStatus::kNormal: return "normal";
    case VerdictStatus::kSuspectedAttacker: return "suspected attacker";
    case VerdictStatus::kSuspectedVictim: return "suspected victim";
    case VerdictStatus::kSuspectedAnomaly: return "suspected anomaly";
    case VerdictStatus::kExcused: return "excused";
  }
  return "?";
}

std::vector<meter::ConsumerId> PipelineReport::suspected_attackers() const {
  std::vector<meter::ConsumerId> out;
  for (const auto& v : verdicts) {
    if (v.status == VerdictStatus::kSuspectedAttacker) out.push_back(v.id);
  }
  return out;
}

std::vector<meter::ConsumerId> PipelineReport::suspected_victims() const {
  std::vector<meter::ConsumerId> out;
  for (const auto& v : verdicts) {
    if (v.status == VerdictStatus::kSuspectedVictim) out.push_back(v.id);
  }
  return out;
}

FdetaPipeline::FdetaPipeline(PipelineConfig config) : config_(config) {}

void FdetaPipeline::fit(const meter::Dataset& actual) {
  detectors_.clear();
  train_stats_.clear();
  detectors_.reserve(actual.consumer_count());
  train_stats_.reserve(actual.consumer_count());
  for (const auto& series : actual.consumers()) {
    const auto train = config_.split.train(series);
    KldDetector detector(config_.kld);
    detector.fit(train);
    detectors_.push_back(std::move(detector));
    train_stats_.push_back(meter::weekly_stats(train));
  }
  fitted_ = true;
}

PipelineReport FdetaPipeline::evaluate_week(
    const meter::Dataset& actual, const meter::Dataset& reported,
    std::size_t week, const EvidenceCalendar& calendar,
    const grid::Topology* topology) const {
  require(fitted_, "FdetaPipeline: fit() not called");
  require(reported.consumer_count() == detectors_.size(),
          "FdetaPipeline: reported dataset size mismatch");
  require(week < reported.week_count(), "FdetaPipeline: week out of range");

  PipelineReport report;
  report.verdicts.reserve(reported.consumer_count());

  for (std::size_t i = 0; i < reported.consumer_count(); ++i) {
    const auto& series = reported.consumer(i);
    const auto week_readings = series.week(week);

    ConsumerVerdict verdict;
    verdict.id = series.id;
    verdict.kld_score = detectors_[i].score(week_readings);       // step 2
    verdict.kld_threshold = detectors_[i].threshold();

    if (verdict.kld_score > verdict.kld_threshold) {
      // Step 3: classify the anomaly direction by the week's mean relative
      // to the training weekly-mean range.
      // Direction is judged against the bulk of the training weekly means
      // (upper/lower quartile), not the extremes: a flagged week whose mean
      // sits in the top quartile reads as over-reporting (victim), bottom
      // quartile as under-reporting (attacker).
      const double m = stats::mean(week_readings);
      const auto& ts = train_stats_[i];
      const double hi = stats::quantile(ts.means, 0.75) *
                        (1.0 + config_.direction_margin);
      const double lo = stats::quantile(ts.means, 0.25) *
                        (1.0 - config_.direction_margin);
      if (m > hi) {
        verdict.status = VerdictStatus::kSuspectedVictim;
      } else if (m < lo) {
        verdict.status = VerdictStatus::kSuspectedAttacker;
      } else {
        verdict.status = VerdictStatus::kSuspectedAnomaly;
      }

      // Step 4: external evidence can excuse the anomaly.
      if (auto excuse = calendar.excuse(week)) {
        verdict.status = VerdictStatus::kExcused;
        verdict.excuse = std::move(excuse);
      }
    }
    report.verdicts.push_back(std::move(verdict));
  }

  // Step 5: systematic investigation via the topology's balance checks,
  // using the attacked week's average demands.
  if (topology != nullptr) {
    require(topology->consumer_count() == reported.consumer_count(),
            "FdetaPipeline: topology consumer count mismatch");
    std::vector<Kw> actual_avg(reported.consumer_count());
    std::vector<Kw> reported_avg(reported.consumer_count());
    for (std::size_t i = 0; i < reported.consumer_count(); ++i) {
      actual_avg[i] = stats::mean(actual.consumer(i).week(week));
      reported_avg[i] = stats::mean(reported.consumer(i).week(week));
    }
    report.investigation =
        grid::investigate_case2(*topology, actual_avg, reported_avg,
                                /*tolerance_kw=*/1e-6);
  }
  return report;
}

}  // namespace fdeta::core
