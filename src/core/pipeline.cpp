#include "core/pipeline.h"

#include <cstdio>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/thread_pool.h"
#include "meter/weekly_stats.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/checkpoint.h"
#include "stats/descriptive.h"
#include "stats/quantile.h"

namespace fdeta::core {

namespace {

/// The alert's reporting direction as forensics vocabulary: a suspected
/// attacker under-reports their own meter, a suspected victim's meter
/// over-reports to absorb a neighbour's theft (Propositions 1 and 2).
const char* alert_direction(VerdictStatus status) {
  switch (status) {
    case VerdictStatus::kSuspectedAttacker: return "under-report";
    case VerdictStatus::kSuspectedVictim: return "over-report";
    default: return "unclear";
  }
}

}  // namespace

const char* to_string(VerdictStatus status) {
  switch (status) {
    case VerdictStatus::kNormal: return "normal";
    case VerdictStatus::kSuspectedAttacker: return "suspected attacker";
    case VerdictStatus::kSuspectedVictim: return "suspected victim";
    case VerdictStatus::kSuspectedAnomaly: return "suspected anomaly";
    case VerdictStatus::kExcused: return "excused";
    case VerdictStatus::kInsufficientData: return "insufficient data";
  }
  return "?";
}

std::vector<meter::ConsumerId> PipelineReport::suspected_attackers() const {
  std::vector<meter::ConsumerId> out;
  for (const auto& v : verdicts) {
    if (v.status == VerdictStatus::kSuspectedAttacker) out.push_back(v.id);
  }
  return out;
}

std::vector<meter::ConsumerId> PipelineReport::suspected_victims() const {
  std::vector<meter::ConsumerId> out;
  for (const auto& v : verdicts) {
    if (v.status == VerdictStatus::kSuspectedVictim) out.push_back(v.id);
  }
  return out;
}

FdetaPipeline::FdetaPipeline(PipelineConfig config) : config_(config) {
  obs::MetricsRegistry& registry = config_.metrics != nullptr
                                       ? *config_.metrics
                                       : obs::default_registry();
  consumers_fitted_ = &registry.counter("pipeline.consumers_fitted");
  consumers_restored_ = &registry.counter("pipeline.consumers_restored");
  thresholds_recomputed_ = &registry.counter("pipeline.thresholds_recomputed");
  weeks_scored_ = &registry.counter("pipeline.weeks_scored");
  verdicts_ = &registry.counter("pipeline.verdicts");
  verdict_normal_ = &registry.counter("pipeline.verdict_normal");
  verdict_attacker_ = &registry.counter("pipeline.verdict_attacker");
  verdict_victim_ = &registry.counter("pipeline.verdict_victim");
  verdict_anomaly_ = &registry.counter("pipeline.verdict_anomaly");
  verdict_excused_ = &registry.counter("pipeline.verdict_excused");
  verdict_insufficient_ = &registry.counter("pipeline.verdict_insufficient");
  coverage_missing_slots_ =
      &registry.counter("pipeline.coverage_missing_slots");
  investigations_ = &registry.counter("pipeline.investigations");
  fit_seconds_ = &registry.histogram("pipeline.fit_seconds");
  evaluate_seconds_ = &registry.histogram("pipeline.evaluate_seconds");
  events_ = config_.events != nullptr ? config_.events
                                      : &obs::default_event_log();
}

void FdetaPipeline::fit(const meter::Dataset& actual) {
  obs::TraceSpan span("pipeline.fit", "pipeline");
  obs::ScopedTimer timer(*fit_seconds_);
  fitted_ = false;
  feeder_.reset();  // refitted lazily against the new training data
  const std::size_t count = actual.consumer_count();
  // One unfitted prototype through the registry, cloned per consumer; the
  // `kld` config block stays authoritative for the KLD histogram knobs.
  DetectorOptions options = config_.detector_options;
  options.kld = config_.kld;
  const std::unique_ptr<ScoringDetector> prototype =
      make_detector(config_.detector, options);
  detectors_.clear();
  detectors_.resize(count);
  train_stats_.assign(count, meter::WeeklyStats{});
  // Per-consumer fits are independent; run them on the shared pool.
  parallel_for(
      count,
      [&](std::size_t i) {
        const auto train = config_.split.train(actual.consumer(i));
        detectors_[i] = prototype->clone();
        detectors_[i]->fit(train);
        train_stats_[i] = meter::weekly_stats(train);
      },
      config_.threads);
  fitted_ = true;
  consumers_fitted_->add(count);
  // Each detector fit recomputes its (1-alpha) quantile threshold.
  thresholds_recomputed_->add(count);
}

void FdetaPipeline::save_model(std::ostream& out) const {
  obs::TraceSpan span("pipeline.save_model", "pipeline");
  require(fitted_, "FdetaPipeline::save_model: fit() not called");
  persist::Encoder enc;
  enc.u64(config_.split.train_weeks);
  enc.u64(config_.split.test_weeks);
  enc.f64(config_.direction_margin);
  enc.f64(config_.direction_floor_kw);
  // v4 detector block: registry id, consumer count, one shared config
  // fingerprint (the fleet must be uniform), then each consumer's
  // self-describing save_state payload.  For "kld" the per-consumer bytes
  // are the v3 KldDetector::save layout unchanged.
  enc.str(config_.detector);
  enc.u64(detectors_.size());
  if (!detectors_.empty()) {
    const std::string fingerprint = detectors_.front()->config_fingerprint();
    for (const auto& detector : detectors_) {
      require(detector->config_fingerprint() == fingerprint,
              "FdetaPipeline::save_model: detector fleet is not uniform");
    }
    enc.str(fingerprint);
  }
  for (std::size_t i = 0; i < detectors_.size(); ++i) {
    detectors_[i]->save_state(enc);
    meter::save_weekly_stats(train_stats_[i], enc);
  }
  persist::write_checkpoint(out, persist::Section::kPipeline, enc.bytes());
}

void FdetaPipeline::load_model(std::istream& in) {
  obs::TraceSpan span("pipeline.load_model", "pipeline");
  feeder_.reset();  // refitted lazily against the restored split
  std::uint32_t version = persist::kFormatVersion;
  const std::string payload =
      persist::read_checkpoint(in, persist::Section::kPipeline, &version);
  persist::Decoder dec(payload);

  PipelineConfig config = config_;  // threads/metrics survive the restore
  config.split.train_weeks = dec.count("train weeks", 1u << 20);
  config.split.test_weeks = dec.count("test weeks", 1u << 20);
  config.direction_margin = dec.f64();
  config.direction_floor_kw = dec.f64();

  // v2/v3 checkpoints predate the detector block and are always "kld".
  const std::string detector_id =
      version >= 4 ? dec.str("detector id", 256) : std::string("kld");
  if (!is_registered_detector(detector_id)) {
    throw DataError("checkpoint: unknown detector id \"" + detector_id + "\"");
  }
  const std::size_t count = dec.count("consumers", 100u << 20);
  std::string fingerprint;
  if (version >= 4 && count > 0) {
    fingerprint = dec.str("detector fingerprint", 1024);
  }
  std::vector<std::unique_ptr<ScoringDetector>> detectors;
  std::vector<meter::WeeklyStats> train_stats;
  detectors.reserve(count);
  train_stats.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // restore_state payloads are self-describing, so the options only seed
    // the factory; every field is overwritten from the checkpoint.
    std::unique_ptr<ScoringDetector> detector =
        make_detector(detector_id, config.detector_options);
    detector->restore_state(dec, version);
    if (version >= 4 && detector->config_fingerprint() != fingerprint) {
      throw DataError("checkpoint: detector fingerprint mismatch");
    }
    detectors.push_back(std::move(detector));
    train_stats.push_back(meter::load_weekly_stats(dec));
  }
  dec.require_exhausted("pipeline model");

  // All consumers decoded cleanly; commit the restore atomically.
  config.detector = detector_id;
  if (detector_id == "kld" && count > 0) {
    config.kld = static_cast<const KldDetector&>(*detectors.front()).config();
  }
  config_ = std::move(config);
  detectors_ = std::move(detectors);
  train_stats_ = std::move(train_stats);
  fitted_ = true;
  consumers_restored_->add(count);
  events_->emit("model_restored",
                obs::EventFields{}
                    .str("component", "pipeline")
                    .u64("consumers", count)
                    .u64("train_weeks", config_.split.train_weeks)
                    .u64("bins", config_.kld.bins));
}

PipelineReport FdetaPipeline::evaluate_week(
    const meter::Dataset& actual, const meter::Dataset& reported,
    std::size_t week, const EvidenceCalendar& calendar,
    const grid::Topology* topology, const WeekCoverage* coverage) const {
  require(fitted_, "FdetaPipeline: fit() not called");
  if (coverage != nullptr) {
    require(coverage->missing_slots.size() == reported.consumer_count(),
            "FdetaPipeline: coverage consumer count mismatch");
    require(coverage->week_slots > 0,
            "FdetaPipeline: coverage week_slots must be positive");
  }
  require(reported.consumer_count() == detectors_.size(),
          "FdetaPipeline: reported dataset size mismatch");
  require(week < reported.week_count(), "FdetaPipeline: week out of range");
  require(actual.consumer_count() == detectors_.size(),
          "FdetaPipeline: actual dataset size mismatch");
  require(week < actual.week_count(),
          "FdetaPipeline: week out of range in actual dataset");
  obs::TraceSpan span("pipeline.evaluate_week", "pipeline");
  obs::ScopedTimer timer(*evaluate_seconds_);

  PipelineReport report;
  report.verdicts.resize(reported.consumer_count());

  // Steps 2-4 are independent per consumer; KLD scoring is ~microseconds,
  // so schedule in chunks to amortise the work-counter contention.
  parallel_for(
      reported.consumer_count(),
      [&](std::size_t i) {
        const auto& series = reported.consumer(i);
        const auto week_readings = series.week(week);
        const SlotIndex first_slot =
            week * static_cast<std::size_t>(kSlotsPerWeek);

        ConsumerVerdict verdict;
        verdict.id = series.id;
        verdict.kld_threshold = detectors_[i]->decision_threshold();

        // Coverage gate: a week this lossy would be scored on imputed
        // values, and imputation looks exactly like under-reporting.
        // Refuse to judge instead.
        if (coverage != nullptr) {
          verdict.missing_slots = coverage->missing_slots[i];
          const double missing_fraction =
              static_cast<double>(verdict.missing_slots) /
              static_cast<double>(coverage->week_slots);
          if (missing_fraction > config_.max_missing_fraction) {
            verdict.status = VerdictStatus::kInsufficientData;
            report.verdicts[i] = std::move(verdict);
            return;
          }
        }

        verdict.kld_score =
            detectors_[i]->score_week(week_readings, first_slot);  // step 2

        if (verdict.kld_score > verdict.kld_threshold) {
          // Step 3: classify the anomaly direction by the week's mean
          // relative to the training weekly-mean range.
          // Direction is judged against the bulk of the training weekly means
          // (upper/lower quartile), not the extremes: a flagged week whose
          // mean sits in the top quartile reads as over-reporting (victim),
          // bottom quartile as under-reporting (attacker).
          const double m = stats::mean(week_readings);
          const auto& ts = train_stats_[i];
          const double q75 = stats::quantile(ts.means, 0.75);
          const double q25 = stats::quantile(ts.means, 0.25);
          if (q25 < config_.direction_floor_kw ||
              q75 < config_.direction_floor_kw) {
            // Quartile means ~0 (vacant property, dead meter): the lower
            // band collapses to 0 and no week could ever read as
            // under-reporting, so direction is indeterminate.
            verdict.status = VerdictStatus::kSuspectedAnomaly;
          } else {
            const double hi = q75 * (1.0 + config_.direction_margin);
            const double lo = q25 * (1.0 - config_.direction_margin);
            if (m > hi) {
              verdict.status = VerdictStatus::kSuspectedVictim;
            } else if (m < lo) {
              verdict.status = VerdictStatus::kSuspectedAttacker;
            } else {
              verdict.status = VerdictStatus::kSuspectedAnomaly;
            }
          }

          // Step 4: external evidence can excuse the anomaly.
          if (auto excuse = calendar.excuse(week)) {
            verdict.status = VerdictStatus::kExcused;
            verdict.excuse = std::move(excuse);
          }

          if (config_.explain) {
            verdict.explanation =
                detectors_[i]->explain_week(week_readings, first_slot);
          }
        }
        report.verdicts[i] = std::move(verdict);
      },
      config_.threads, /*grain=*/16);

  // Tally verdicts serially after the parallel sweep: one add per status,
  // and the totals stay byte-identical between serial and pooled runs.
  weeks_scored_->add();
  verdicts_->add(report.verdicts.size());
  for (const auto& v : report.verdicts) {
    switch (v.status) {
      case VerdictStatus::kNormal: verdict_normal_->add(); break;
      case VerdictStatus::kSuspectedAttacker: verdict_attacker_->add(); break;
      case VerdictStatus::kSuspectedVictim: verdict_victim_->add(); break;
      case VerdictStatus::kSuspectedAnomaly: verdict_anomaly_->add(); break;
      case VerdictStatus::kExcused: verdict_excused_->add(); break;
      case VerdictStatus::kInsufficientData:
        verdict_insufficient_->add();
        break;
    }
  }
  if (coverage != nullptr) {
    std::uint64_t total_missing = 0;
    for (const std::uint32_t m : coverage->missing_slots) total_missing += m;
    coverage_missing_slots_->add(total_missing);
  }

  // Forensic events, emitted serially in consumer index order so a
  // fixed-seed run produces a byte-identical log regardless of `threads`.
  if (events_->enabled()) {
    for (const auto& v : report.verdicts) {
      if (v.status == VerdictStatus::kNormal) continue;
      if (v.status == VerdictStatus::kInsufficientData) {
        // Excused for lack of evidence, not judged innocent: the forensic
        // log records why no score exists for this consumer-week.
        events_->emit("alert_excused",
                      obs::EventFields{}
                          .str("source", "pipeline")
                          .u64("consumer", v.id)
                          .u64("week", week)
                          .str("reason", "insufficient_coverage")
                          .u64("missing_slots", v.missing_slots)
                          .u64("week_slots",
                               coverage != nullptr ? coverage->week_slots : 0));
        continue;
      }
      if (v.status == VerdictStatus::kExcused) {
        obs::EventFields fields;
        fields.str("source", "pipeline")
            .u64("consumer", v.id)
            .u64("week", week)
            .f64("k_a", v.kld_score)
            .f64("threshold", v.kld_threshold);
        if (v.excuse.has_value()) {
          fields.str("evidence", to_string(v.excuse->kind))
              .str("description", v.excuse->description);
        }
        events_->emit("alert_excused", fields);
        continue;
      }
      obs::EventFields fields;
      fields.str("source", "pipeline")
          .u64("consumer", v.id)
          .u64("week", week)
          .f64("k_a", v.kld_score)
          .f64("threshold", v.kld_threshold)
          .str("direction", alert_direction(v.status));
      if (v.explanation.has_value()) {
        // Nested array of the dominant bins: [bin, bits] pairs for every
        // bin contributing non-zero divergence.
        std::string contrib = "[";
        bool first = true;
        for (const auto& c : v.explanation->bins) {
          if (c.bits == 0.0) continue;
          if (!first) contrib += ',';
          char buf[96];
          std::snprintf(buf, sizeof(buf), "[%zu,%.17g]", c.bin, c.bits);
          contrib += buf;
          first = false;
        }
        contrib += ']';
        fields.raw("bin_bits", contrib);
      }
      events_->emit("alert_raised", fields);
    }
  }

  // Step 5: systematic investigation via the topology's balance checks,
  // using the attacked week's average demands.
  if (topology != nullptr) {
    require(topology->consumer_count() == reported.consumer_count(),
            "FdetaPipeline: topology consumer count mismatch");
    std::vector<Kw> actual_avg(reported.consumer_count());
    std::vector<Kw> reported_avg(reported.consumer_count());
    parallel_for(
        reported.consumer_count(),
        [&](std::size_t i) {
          actual_avg[i] = stats::mean(actual.consumer(i).week(week));
          reported_avg[i] = stats::mean(reported.consumer(i).week(week));
        },
        config_.threads, /*grain=*/32);
    report.investigation =
        grid::investigate_case2(*topology, actual_avg, reported_avg,
                                /*tolerance_kw=*/1e-6, events_);
    investigations_->add();
  }

  // Feeder-hierarchy layer, strictly AFTER the per-consumer events and the
  // investigation trail: a hierarchy-enabled run's event log is the
  // hierarchy-free log plus appended feeder events, never a reordering.
  if (config_.hierarchy && topology != nullptr) {
    ensure_feeder(*topology, actual);
    std::vector<unsigned char> flagged(report.verdicts.size(), 0);
    for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
      const VerdictStatus status = report.verdicts[i].status;
      // Anomalous at the per-consumer layer (excused or not): already
      // localized individually, so excluded from collusion groups.
      flagged[i] = (status != VerdictStatus::kNormal &&
                    status != VerdictStatus::kInsufficientData)
                       ? 1
                       : 0;
    }
    // Balance mode: the trusted `actual` dataset stands in for the feeder
    // balance meters, so clean fleets have exactly-zero physical residuals.
    report.feeder = feeder_->evaluate_week(actual, reported, week, flagged);
  }
  return report;
}

void FdetaPipeline::ensure_feeder(const grid::Topology& topology,
                                  const meter::Dataset& actual) const {
  if (feeder_ != nullptr) {
    require(&topology == &feeder_->topology(),
            "FdetaPipeline: topology changed between hierarchy evaluations");
    return;
  }
  hierarchy::FeederConfig cfg = config_.feeder;
  if (cfg.threads == 0) cfg.threads = config_.threads;
  if (cfg.metrics == nullptr) cfg.metrics = config_.metrics;
  if (cfg.events == nullptr) cfg.events = config_.events;
  feeder_ = std::make_unique<hierarchy::FeederMonitor>(topology, cfg);
  feeder_->fit(actual, config_.split);
}

}  // namespace fdeta::core
