#include "core/pca_detector.h"

#include "common/error.h"
#include "stats/matrix.h"
#include "stats/quantile.h"

namespace fdeta::core {

PcaDetector::PcaDetector(PcaDetectorConfig config) : config_(config) {
  require(config_.significance > 0.0 && config_.significance < 1.0,
          "PcaDetector: significance must be in (0,1)");
}

void PcaDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "PcaDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "PcaDetector: need at least four training weeks");

  stats::Matrix x(weeks, kSlotsPerWeek);
  for (std::size_t w = 0; w < weeks; ++w) {
    for (std::size_t s = 0; s < static_cast<std::size_t>(kSlotsPerWeek); ++s) {
      x(w, s) = training[w * kSlotsPerWeek + s];
    }
  }
  pca_.emplace(x, config_.explained_fraction);

  // Threshold calibration must be OUT-of-sample: a basis fitted on all weeks
  // reconstructs those same weeks optimistically, and a quantile of
  // in-sample errors flags nearly every honest future week.  Two-fold
  // cross-validation gives honest error magnitudes: fit on even weeks, score
  // odd weeks, and vice versa.
  std::vector<double> errors;
  errors.reserve(weeks);
  for (int fold = 0; fold < 2; ++fold) {
    std::vector<std::size_t> fit_rows, score_rows;
    for (std::size_t w = 0; w < weeks; ++w) {
      if (static_cast<int>(w % 2) == fold) {
        fit_rows.push_back(w);
      } else {
        score_rows.push_back(w);
      }
    }
    stats::Matrix half(fit_rows.size(), kSlotsPerWeek);
    for (std::size_t r = 0; r < fit_rows.size(); ++r) {
      for (std::size_t s = 0; s < static_cast<std::size_t>(kSlotsPerWeek);
           ++s) {
        half(r, s) = x(fit_rows[r], s);
      }
    }
    const stats::Pca fold_pca(half, config_.explained_fraction);
    for (std::size_t w : score_rows) {
      errors.push_back(fold_pca.reconstruction_error(x.row(w)));
    }
  }
  threshold_ = stats::quantile(errors, 1.0 - config_.significance);
}

double PcaDetector::score(std::span<const Kw> week) const {
  require(pca_.has_value(), "PcaDetector: fit() not called");
  return pca_->reconstruction_error(week);
}

double PcaDetector::threshold() const {
  require(pca_.has_value(), "PcaDetector: fit() not called");
  return threshold_;
}

bool PcaDetector::flag_week(std::span<const Kw> week,
                            SlotIndex /*first_slot*/) const {
  return score(week) > threshold_;
}

}  // namespace fdeta::core
