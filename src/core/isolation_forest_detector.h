// An unsupervised isolation-forest scorer over engineered weekly features.
//
// The spatio-temporal line of related work (*Towards Intelligent Energy
// Security*, PAPERS.md) motivates an unsupervised feature-space detector
// alongside the distributional KLD families: each week is summarised by a
// small engineered feature vector (level, spread, peak/off-peak and
// weekend/weekday structure, lag-1 and daily-lag roughness - the feature set
// of SNIPPETS.md Snippet 1), the training weeks are standardised in that
// space, and a forest of random isolation trees estimates how few random
// axis-aligned splits isolate a week from its own history.  Anomalous weeks
// isolate early: the score 2^(-E[path]/c(n)) approaches 1 for outliers and
// stays near 0.5 and below for inliers.  Training weeks are scored
// out-of-bag (over the trees whose subsample excluded them) so the
// reference distribution is comparable to test-time scores, and the
// threshold is the (1 - contamination) * (1 - significance) quantile of
// that reference (see IsolationForestDetectorConfig::contamination).
//
// Everything is deterministic under the config seed (fit draws from a
// seeded xoshiro stream, scoring draws nothing), so fleet results are
// reproducible and checkpoints restore bit-exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/detector_plugin.h"

namespace fdeta::core {

struct IsolationForestDetectorConfig {
  std::size_t trees = 64;
  /// Training weeks subsampled per tree (capped at the fitted week count).
  std::size_t sample_size = 32;
  /// Alpha of the training-score quantile threshold, as the KLD families.
  double significance = 0.05;
  /// Assumed anomalous fraction of the training weeks themselves.  The
  /// decision threshold is the (1 - contamination) * (1 - significance)
  /// quantile of the out-of-bag training scores: the (1 - significance)
  /// tail of the *uncontaminated* order statistics, not of a reference the
  /// forest itself considers partly anomalous.
  double contamination = 0.20;
  /// Seed of the tree-building stream; fixed default keeps fit() a pure
  /// function of the training data.
  std::uint64_t seed = 0x150F07357ULL;
};

class IsolationForestDetector final : public ScoringDetector {
 public:
  /// Weekly feature vector width (see weekly_features in the .cpp).
  static constexpr std::size_t kFeatureCount = 8;

  explicit IsolationForestDetector(IsolationForestDetectorConfig config = {});

  std::string_view name() const override { return "Isolation forest"; }
  std::string_view id() const override { return "iforest"; }
  const IsolationForestDetectorConfig& config() const { return config_; }
  void fit(std::span<const Kw> training) override;

  double raw_score_week(std::span<const Kw> week,
                        SlotIndex first_slot = 0) const override;
  double raw_decision_threshold() const override;
  void save_state(persist::Encoder& enc) const override;
  void restore_state(persist::Decoder& dec,
                     std::uint32_t format_version) override;
  std::string config_fingerprint() const override;
  std::unique_ptr<ScoringDetector> clone() const override {
    return std::make_unique<IsolationForestDetector>(*this);
  }

  /// Training-week scores (the threshold's quantile base).
  const std::vector<double>& training_scores() const;

 private:
  // One tree node; nodes of a tree live in a flat vector, children by index.
  // A leaf has feature == kLeaf and carries the point count it absorbed.
  struct Node {
    std::uint32_t feature = 0;
    double split = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::uint32_t size = 0;
  };
  static constexpr std::uint32_t kLeaf = 0xFFFFFFFFu;

  struct Tree {
    std::vector<Node> nodes;  // nodes[0] is the root
  };

  void standardize(const double* raw, double* out) const;
  static double tree_path_length(const Tree& tree, const double* features);
  double average_path_length(const double* features) const;

  IsolationForestDetectorConfig config_;
  bool fitted_ = false;
  std::vector<double> feature_mean_;  // kFeatureCount
  std::vector<double> feature_std_;   // kFeatureCount, floored at 1
  std::vector<Tree> trees_;
  std::size_t sample_size_ = 0;   // effective (capped) subsample
  std::size_t depth_limit_ = 0;   // ceil(log2(sample_size_))
  std::vector<double> training_scores_;
  double threshold_ = 0.0;
};

}  // namespace fdeta::core
