#include "core/profile_detector.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::core {

ProfileDetector::ProfileDetector(ProfileDetectorConfig config)
    : config_(config) {
  require(config_.z > 0.0, "ProfileDetector: z must be positive");
}

void ProfileDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "ProfileDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "ProfileDetector: need at least four training weeks");
  profile_.emplace(training, kSlotsPerWeek);

  // Calibrate the weekly deviant-count threshold on the training weeks
  // themselves (they include the natural anomalies of Section VIII-A).
  std::size_t worst = 0;
  for (std::size_t w = 0; w < weeks; ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    worst = std::max(worst, deviant_count(week));
  }
  threshold_ = static_cast<std::size_t>(std::ceil(
                   static_cast<double>(worst) * (1.0 + config_.count_slack))) +
               config_.count_margin;
}

std::size_t ProfileDetector::deviant_count(std::span<const Kw> week) const {
  require(profile_.has_value(), "ProfileDetector: fit() not called");
  std::size_t count = 0;
  for (std::size_t s = 0; s < week.size(); ++s) {
    if (std::fabs(profile_->zscore(s % kSlotsPerWeek, week[s])) > config_.z) {
      ++count;
    }
  }
  return count;
}

bool ProfileDetector::flag_week(std::span<const Kw> week,
                                SlotIndex /*first_slot*/) const {
  return deviant_count(week) > threshold_;
}

}  // namespace fdeta::core
