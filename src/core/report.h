// Investigation report rendering: turns a week's PipelineReport into the
// document a utility's revenue-protection team would act on - flagged
// meters with direction and scores, excused anomalies with their evidence,
// the topology investigation's suspect list, and the billing impact of any
// confirmed divergence.
#pragma once

#include <string>

#include "core/pipeline.h"
#include "meter/dataset.h"
#include "pricing/tariff.h"

namespace fdeta::core {

struct ReportOptions {
  /// Include per-meter billing impact lines (requires the actual dataset to
  /// be trustworthy for the reported week, e.g. after field verification).
  bool include_billing = true;
  /// Omit meters with a normal verdict.
  bool anomalies_only = true;
};

/// Renders a human-readable weekly report.  `actual` supplies ground truth
/// for billing impact (pass the reported dataset itself when no field
/// verification exists yet - impacts then show as zero).
std::string render_report(const PipelineReport& report,
                          const meter::Dataset& actual,
                          const meter::Dataset& reported, std::size_t week,
                          const pricing::PriceSchedule& schedule,
                          const ReportOptions& options = {});

}  // namespace fdeta::core
