#include "core/evidence.h"

#include "common/error.h"

namespace fdeta::core {

const char* to_string(EvidenceKind kind) {
  switch (kind) {
    case EvidenceKind::kSevereWeather: return "severe weather";
    case EvidenceKind::kHoliday: return "holiday";
    case EvidenceKind::kSpecialEvent: return "special event";
  }
  return "?";
}

void EvidenceCalendar::add(EvidenceEvent event) {
  require(event.first_week <= event.last_week,
          "EvidenceCalendar: event range reversed");
  events_.push_back(std::move(event));
}

std::optional<EvidenceEvent> EvidenceCalendar::excuse(std::size_t week) const {
  for (const auto& e : events_) {
    if (week >= e.first_week && week <= e.last_week) return e;
  }
  return std::nullopt;
}

}  // namespace fdeta::core
