// Time-to-detection via the sliding week vector (Section VII-D).
//
// "The new week vector can be completed with trusted data from a week in the
// training set (historic readings).  As new consumption readings are
// recorded, they will replace the historic readings in the week vector.  If
// the week vector contains sufficiently anomalous readings right at the
// beginning, it may appear anomalous before a full week of new data has been
// collected.  This approach was used by the authors of [3] to calculate the
// time-to-detection."
//
// The monitor keeps a 336-slot vector primed with a trusted reference week;
// each incoming reading replaces one slot, the detector rescoring after each
// replacement.  Detection latency is the number of attack readings consumed
// before the first flag.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/detector.h"

namespace fdeta::core {

/// Streams readings through a sliding week vector scored by `detector`.
class SlidingWeekMonitor {
 public:
  /// `reference_week` supplies the trusted initial contents (typically the
  /// last training week).  The detector must already be fitted.
  SlidingWeekMonitor(const Detector& detector,
                     std::span<const Kw> reference_week);

  /// Consumes the next reading (slot-of-week position advances cyclically);
  /// returns true if the detector flags the current mixed vector.
  bool push(Kw reading);

  /// Number of readings consumed so far.
  std::size_t readings_seen() const { return count_; }

  const std::vector<Kw>& window() const { return window_; }

 private:
  const Detector* detector_;
  std::vector<Kw> window_;
  std::size_t next_slot_ = 0;
  std::size_t count_ = 0;
};

/// Feeds `readings` into a fresh monitor and returns how many were consumed
/// before the first flag (1-based), or nullopt if the stream ends silent.
/// This is the time-to-detection in polling periods; multiply by Delta-t for
/// hours.
std::optional<std::size_t> time_to_detection(
    const Detector& detector, std::span<const Kw> reference_week,
    std::span<const Kw> readings);

}  // namespace fdeta::core
