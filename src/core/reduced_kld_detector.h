// The feature-reduced "lightweight" KLD detector ("kld-lite").
//
// *Lightweight LSTM Model for Energy Theft Detection via Input Data
// Reduction* (PAPERS.md) shows that aggressively reduced weekly inputs can
// hold a detector's operating point.  This family applies the idea to the
// paper's eq.-(12) machinery: fit selects the k slot-of-week positions with
// the highest training variance (the slots that carry the distribution's
// information; ties break on the lower slot index, so selection is
// deterministic), and both the baseline histogram and every scored week are
// built from those k readings only.  Scoring cost drops from 336 to k
// binning operations per week - the lever for serving millions of meters on
// the sharded monitor hot path.  bench/ablation_input_reduction sweeps k
// against recall/FPR at the paper's operating point; see EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/detector_plugin.h"
#include "core/kld_detector.h"
#include "stats/histogram.h"

namespace fdeta::core {

struct ReducedKldDetectorConfig {
  /// k: slot-of-week positions kept per week (1..336; 336 = plain KLD over
  /// a variance-reordered week).
  std::size_t selected_slots = 48;
  /// Histogram / threshold knobs, as KldDetectorConfig (epsilon smoothing
  /// and out-of-support handling apply to the reduced distribution).
  KldDetectorConfig kld{};
};

class ReducedKldDetector final : public ScoringDetector {
 public:
  explicit ReducedKldDetector(ReducedKldDetectorConfig config = {});

  std::string_view name() const override { return "Reduced-input KLD"; }
  std::string_view id() const override { return "kld-lite"; }
  const ReducedKldDetectorConfig& config() const { return config_; }
  void fit(std::span<const Kw> training) override;

  double raw_score_week(std::span<const Kw> week,
                        SlotIndex first_slot = 0) const override;
  double raw_decision_threshold() const override;
  /// Full eq.-(12) bin breakdown over the reduced histogram: the bits sum
  /// reproduces raw_score_week exactly.
  KldExplanation raw_explain_week(std::span<const Kw> week,
                                  SlotIndex first_slot = 0) const override;
  void save_state(persist::Encoder& enc) const override;
  void restore_state(persist::Decoder& dec,
                     std::uint32_t format_version) override;
  std::string config_fingerprint() const override;
  std::unique_ptr<ScoringDetector> clone() const override {
    return std::make_unique<ReducedKldDetector>(*this);
  }

  /// The selected slot-of-week positions, ascending (exposed for tests and
  /// the input-reduction sweep).
  const std::vector<std::uint32_t>& selected_slots() const;
  /// Training-week divergences over the reduced input.
  const std::vector<double>& training_divergences() const;

 private:
  void rebuild_scoring_baseline();
  /// Gathers the selected slots of a slot-aligned week into `out`
  /// (out.size() == selected_.size()).
  void gather(std::span<const Kw> week, SlotIndex first_slot,
              std::span<double> out) const;

  ReducedKldDetectorConfig config_;
  std::vector<std::uint32_t> selected_;  // ascending slot-of-week positions
  std::optional<stats::Histogram> histogram_;
  std::vector<double> baseline_;    // raw p(X^(j)) over the reduced matrix
  std::vector<double> scoring_;     // epsilon-smoothed scoring copy
  std::vector<double> k_training_;  // K_i over the reduced weeks
  double threshold_ = 0.0;
};

}  // namespace fdeta::core
