#include "core/conditioned_kld_detector.h"

#include <algorithm>

#include "common/error.h"
#include "stats/kl_divergence.h"
#include "stats/quantile.h"

namespace fdeta::core {

std::function<std::size_t(std::size_t)> tou_slot_groups(
    const pricing::TimeOfUse& tou) {
  // TOU calendars repeat daily, so slot-of-week position fixes the price.
  std::vector<std::size_t> groups(kSlotsPerWeek);
  for (std::size_t s = 0; s < groups.size(); ++s) {
    groups[s] = tou.is_peak(s) ? 1 : 0;
  }
  return [groups = std::move(groups)](std::size_t slot) {
    return groups[slot % kSlotsPerWeek];
  };
}

std::function<std::size_t(std::size_t)> rtp_slot_groups(
    const pricing::RealTimePricing& rtp, std::size_t slots,
    std::size_t bands) {
  require(bands >= 2, "rtp_slot_groups: need at least two bands");
  require(slots >= bands, "rtp_slot_groups: too few slots");
  std::vector<double> prices(slots);
  for (std::size_t t = 0; t < slots; ++t) prices[t] = rtp.price(t);
  std::vector<double> sorted = prices;
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> cut(bands - 1);
  for (std::size_t b = 1; b < bands; ++b) {
    cut[b - 1] = stats::quantile_sorted(
        sorted, static_cast<double>(b) / static_cast<double>(bands));
  }
  std::vector<std::size_t> groups(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    std::size_t g = 0;
    while (g < cut.size() && prices[t] > cut[g]) ++g;
    groups[t] = g;
  }
  return [groups = std::move(groups)](std::size_t slot) {
    return groups[slot % groups.size()];
  };
}

ConditionedKldDetector::ConditionedKldDetector(
    ConditionedKldDetectorConfig config)
    : config_(std::move(config)) {
  require(config_.bins >= 2, "ConditionedKldDetector: need >= 2 bins");
  require(config_.significance > 0.0 && config_.significance < 1.0,
          "ConditionedKldDetector: significance must be in (0,1)");
  require(config_.groups >= 2, "ConditionedKldDetector: need >= 2 groups");
  if (!config_.slot_group) {
    const pricing::TimeOfUse tou = pricing::nightsaver();
    config_.slot_group = tou_slot_groups(tou);
    config_.groups = 2;
  }
}

std::vector<double> ConditionedKldDetector::group_values(
    std::span<const Kw> week, std::size_t g) const {
  std::vector<double> values;
  values.reserve(week.size() / config_.groups + 1);
  for (std::size_t s = 0; s < week.size(); ++s) {
    if (config_.slot_group(s % kSlotsPerWeek) == g) values.push_back(week[s]);
  }
  return values;
}

void ConditionedKldDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "ConditionedKldDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "ConditionedKldDetector: need >= 4 training weeks");

  histograms_.assign(config_.groups, std::nullopt);
  baselines_.assign(config_.groups, {});
  thresholds_.assign(config_.groups, 0.0);

  for (std::size_t g = 0; g < config_.groups; ++g) {
    // All training readings in this price group (across all weeks).
    const std::vector<double> all = group_values(training, g);
    require(!all.empty(),
            "ConditionedKldDetector: a price group matched no slots");
    histograms_[g].emplace(all, config_.bins);
    baselines_[g] = histograms_[g]->probabilities(all);

    std::vector<double> k;
    k.reserve(weeks);
    for (std::size_t w = 0; w < weeks; ++w) {
      const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                     static_cast<std::size_t>(kSlotsPerWeek)};
      const auto values = group_values(week, g);
      const auto p = histograms_[g]->probabilities(values);
      k.push_back(stats::kl_divergence_bits(p, baselines_[g]));
    }
    thresholds_[g] = stats::quantile(k, 1.0 - config_.significance);
  }
  fitted_ = true;
}

std::vector<double> ConditionedKldDetector::scores(
    std::span<const Kw> week) const {
  require(fitted_, "ConditionedKldDetector: fit() not called");
  std::vector<double> out(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    const auto values = group_values(week, g);
    const auto p = histograms_[g]->probabilities(values);
    out[g] = stats::kl_divergence_bits(p, baselines_[g]);
  }
  return out;
}

bool ConditionedKldDetector::flag_week(std::span<const Kw> week,
                                       SlotIndex /*first_slot*/) const {
  const auto s = scores(week);
  for (std::size_t g = 0; g < s.size(); ++g) {
    if (s[g] > thresholds_[g]) return true;
  }
  return false;
}

const std::vector<double>& ConditionedKldDetector::thresholds() const {
  require(fitted_, "ConditionedKldDetector: fit() not called");
  return thresholds_;
}

}  // namespace fdeta::core
