#include "core/conditioned_kld_detector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"
#include "persist/binary_io.h"
#include "stats/kl_divergence.h"
#include "stats/quantile.h"

namespace fdeta::core {

std::function<std::size_t(std::size_t)> tou_slot_groups(
    const pricing::TimeOfUse& tou) {
  // TOU calendars repeat daily, so slot-of-week position fixes the price.
  std::vector<std::size_t> groups(kSlotsPerWeek);
  for (std::size_t s = 0; s < groups.size(); ++s) {
    groups[s] = tou.is_peak(s) ? 1 : 0;
  }
  return [groups = std::move(groups)](std::size_t slot) {
    return groups[slot % kSlotsPerWeek];
  };
}

std::function<std::size_t(std::size_t)> rtp_slot_groups(
    const pricing::RealTimePricing& rtp, std::size_t slots,
    std::size_t bands) {
  require(bands >= 2, "rtp_slot_groups: need at least two bands");
  require(slots >= bands, "rtp_slot_groups: too few slots");
  std::vector<double> prices(slots);
  for (std::size_t t = 0; t < slots; ++t) prices[t] = rtp.price(t);
  std::vector<double> sorted = prices;
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> cut(bands - 1);
  for (std::size_t b = 1; b < bands; ++b) {
    cut[b - 1] = stats::quantile_sorted(
        sorted, static_cast<double>(b) / static_cast<double>(bands));
  }
  std::vector<std::size_t> groups(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    std::size_t g = 0;
    while (g < cut.size() && prices[t] > cut[g]) ++g;
    groups[t] = g;
  }
  return [groups = std::move(groups)](std::size_t slot) {
    return groups[slot % groups.size()];
  };
}

ConditionedKldDetector::ConditionedKldDetector(
    ConditionedKldDetectorConfig config)
    : config_(std::move(config)) {
  require(config_.bins >= 2, "ConditionedKldDetector: need >= 2 bins");
  require(config_.significance > 0.0 && config_.significance < 1.0,
          "ConditionedKldDetector: significance must be in (0,1)");
  require(config_.epsilon >= 0.0,
          "ConditionedKldDetector: epsilon must be >= 0");
  require(config_.groups >= 2, "ConditionedKldDetector: need >= 2 groups");
  if (!config_.slot_group) {
    const pricing::TimeOfUse tou = pricing::nightsaver();
    config_.slot_group = tou_slot_groups(tou);
    config_.groups = 2;
  }
}

std::vector<double> ConditionedKldDetector::group_values(
    std::span<const Kw> week, std::size_t g) const {
  std::vector<double> values;
  values.reserve(week.size() / config_.groups + 1);
  for (std::size_t s = 0; s < week.size(); ++s) {
    if (config_.slot_group(s % kSlotsPerWeek) == g) values.push_back(week[s]);
  }
  return values;
}

std::vector<double> ConditionedKldDetector::scoring_baseline(
    std::size_t g) const {
  if (config_.epsilon <= 0.0) return baselines_[g];  // paper-exact
  std::vector<double> out(baselines_[g].size());
  const double norm =
      1.0 + config_.epsilon * static_cast<double>(out.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    out[j] = (baselines_[g][j] + config_.epsilon) / norm;
  }
  return out;
}

void ConditionedKldDetector::fit(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "ConditionedKldDetector: training must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 4, "ConditionedKldDetector: need >= 4 training weeks");

  histograms_.assign(config_.groups, std::nullopt);
  baselines_.assign(config_.groups, {});
  scorings_.assign(config_.groups, {});
  thresholds_.assign(config_.groups, 0.0);

  std::vector<std::vector<double>> k_per_group(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    // All training readings in this price group (across all weeks).
    const std::vector<double> all = group_values(training, g);
    require(!all.empty(),
            "ConditionedKldDetector: a price group matched no slots");
    histograms_[g].emplace(all, config_.bins);
    baselines_[g] = histograms_[g]->probabilities(all);
    scorings_[g] = scoring_baseline(g);

    std::vector<double>& k = k_per_group[g];
    k.reserve(weeks);
    for (std::size_t w = 0; w < weeks; ++w) {
      const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                     static_cast<std::size_t>(kSlotsPerWeek)};
      const auto values = group_values(week, g);
      const auto p = histograms_[g]->probabilities(values);
      k.push_back(stats::kl_divergence_bits(p, scorings_[g]));
    }
    thresholds_[g] = stats::quantile(k, 1.0 - config_.significance);
  }

  // Each training week's scalar margin on the plugin scale: the calibration
  // reference, exactly what raw_score_week would report for that week.
  training_margins_.assign(weeks, 0.0);
  for (std::size_t w = 0; w < weeks; ++w) {
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < config_.groups; ++g) {
      worst = std::max(worst, k_per_group[g][w] - thresholds_[g]);
    }
    training_margins_[w] = worst;
  }
  calibration_ = ScoreCalibration::from_reference(training_margins_, 0.0,
                                                  config_.significance);
  fitted_ = true;
}

std::vector<double> ConditionedKldDetector::scores(
    std::span<const Kw> week) const {
  require(fitted_, "ConditionedKldDetector: fit() not called");
  std::vector<double> out(config_.groups);
  std::vector<double> p(config_.bins);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    const auto values = group_values(week, g);
    histograms_[g]->probabilities_into(values, p,
                                       config_.exclude_out_of_support);
    out[g] = stats::kl_divergence_bits(p, scorings_[g]);
  }
  return out;
}

bool ConditionedKldDetector::flag_week(std::span<const Kw> week,
                                       SlotIndex /*first_slot*/) const {
  const auto s = scores(week);
  for (std::size_t g = 0; g < s.size(); ++g) {
    if (s[g] > thresholds_[g]) return true;
  }
  return false;
}

double ConditionedKldDetector::raw_score_week(std::span<const Kw> week,
                                              SlotIndex /*first_slot*/) const {
  const auto s = scores(week);
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < s.size(); ++g) {
    worst = std::max(worst, s[g] - thresholds_[g]);
  }
  return worst;
}

KldExplanation ConditionedKldDetector::raw_explain_week(
    std::span<const Kw> week, SlotIndex /*first_slot*/) const {
  const auto s = scores(week);
  std::size_t worst = 0;
  for (std::size_t g = 1; g < s.size(); ++g) {
    if (s[g] - thresholds_[g] > s[worst] - thresholds_[worst]) worst = g;
  }
  KldExplanation out = explain(week)[worst];
  // Rebase the header to the scalar margin scale so it matches
  // raw_score_week/raw_decision_threshold exactly (the bins stay on the
  // per-group divergence scale).
  out.score = s[worst] - thresholds_[worst];
  out.threshold = 0.0;
  return out;
}

std::string ConditionedKldDetector::config_fingerprint() const {
  // The slot->group table is part of the scoring behaviour; fold it into the
  // fingerprint so two detectors conditioned on different calendars never
  // pass a uniformity check.
  std::uint64_t table_hash = 0xcbf29ce484222325ULL;
  for (std::size_t s = 0; s < kSlotsPerWeek; ++s) {
    table_hash ^= static_cast<std::uint64_t>(config_.slot_group(s));
    table_hash *= 0x100000001b3ULL;
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "ckld(groups=%zu,bins=%zu,sig=%.17g,eps=%.17g,oos=%d,"
                "slots=%016llx)",
                config_.groups, config_.bins, config_.significance,
                config_.epsilon, config_.exclude_out_of_support ? 1 : 0,
                static_cast<unsigned long long>(table_hash));
  return buf;
}

std::vector<KldExplanation> ConditionedKldDetector::explain(
    std::span<const Kw> week) const {
  require(fitted_, "ConditionedKldDetector: fit() not called");
  std::vector<KldExplanation> out(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    const auto values = group_values(week, g);
    std::vector<double> p(config_.bins);
    histograms_[g]->probabilities_into(values, p,
                                       config_.exclude_out_of_support);
    const std::vector<double>& edges = histograms_[g]->edges();
    const std::vector<double>& q = scorings_[g];

    KldExplanation& exp = out[g];
    exp.threshold = thresholds_[g];
    exp.bins.reserve(p.size());
    double total = 0.0;
    bool infinite = false;
    for (std::size_t j = 0; j < p.size(); ++j) {
      KldBinContribution c;
      c.bin = j;
      c.lower = edges[j];
      c.upper = edges[j + 1];
      c.p = p[j];
      c.q = q[j];
      if (p[j] > 0.0) {
        if (q[j] <= 0.0) {
          c.bits = std::numeric_limits<double>::infinity();
          infinite = true;
        } else {
          c.bits = p[j] * std::log2(p[j] / q[j]);
          total += c.bits;
        }
      }
      exp.bins.push_back(c);
    }
    if (infinite) {
      exp.score = std::numeric_limits<double>::infinity();
    } else {
      exp.score = total < 0.0 && total > -1e-12 ? 0.0 : total;
    }
  }
  return out;
}

const std::vector<double>& ConditionedKldDetector::thresholds() const {
  require(fitted_, "ConditionedKldDetector: fit() not called");
  return thresholds_;
}

const std::vector<double>& ConditionedKldDetector::training_margins() const {
  require(fitted_, "ConditionedKldDetector: fit() not called");
  return training_margins_;
}

void ConditionedKldDetector::save(persist::Encoder& enc) const {
  require(fitted_, "ConditionedKldDetector::save: fit() not called");
  enc.u64(config_.groups);
  enc.u64(config_.bins);
  enc.f64(config_.significance);
  enc.f64(config_.epsilon);
  enc.u8(config_.exclude_out_of_support ? 1 : 0);  // v3+
  for (std::size_t s = 0; s < kSlotsPerWeek; ++s) {
    enc.u32(static_cast<std::uint32_t>(config_.slot_group(s)));
  }
  for (std::size_t g = 0; g < config_.groups; ++g) {
    histograms_[g]->save(enc);
    enc.doubles(baselines_[g]);
    enc.f64(thresholds_[g]);
  }
  // v5+: the training weeks' scalar margins, the calibration reference.
  enc.doubles(training_margins_);
}

void ConditionedKldDetector::restore(persist::Decoder& dec,
                                     std::uint32_t format_version) {
  ConditionedKldDetectorConfig config;
  config.groups = dec.count("ckld groups", 1u << 16);
  config.bins = dec.count("ckld bins", 1u << 20);
  config.significance = dec.f64();
  config.epsilon = dec.f64();
  // v2 payloads predate the flag; clamping keeps saved scores bit-exact.
  config.exclude_out_of_support =
      format_version >= 3 ? dec.u8() != 0 : false;
  require(config.groups >= 2, "checkpoint: ckld needs >= 2 groups");
  require(config.bins >= 2, "checkpoint: ckld needs >= 2 bins");
  require(config.significance > 0.0 && config.significance < 1.0,
          "checkpoint: ckld significance out of range");
  require(config.epsilon >= 0.0, "checkpoint: ckld epsilon negative");

  std::vector<std::size_t> table(kSlotsPerWeek);
  for (auto& g : table) {
    g = dec.u32();
    if (g >= config.groups) {
      throw DataError("checkpoint: ckld slot group id out of range");
    }
  }
  config.slot_group = [table = std::move(table)](std::size_t slot) {
    return table[slot % kSlotsPerWeek];
  };

  std::vector<std::optional<stats::Histogram>> histograms;
  std::vector<std::vector<double>> baselines;
  std::vector<double> thresholds;
  for (std::size_t g = 0; g < config.groups; ++g) {
    stats::Histogram histogram = stats::Histogram::load(dec);
    if (histogram.bin_count() != config.bins) {
      throw DataError("checkpoint: ckld histogram bin count mismatch");
    }
    histograms.emplace_back(std::move(histogram));
    baselines.push_back(dec.doubles("ckld baseline", 1u << 20));
    if (baselines.back().size() != config.bins) {
      throw DataError("checkpoint: ckld baseline size mismatch");
    }
    thresholds.push_back(dec.f64());
  }

  // v5 payloads carry the training margins (the calibration reference);
  // older checkpoints never persisted them, so those calibrate anchored at
  // the margin threshold alone - the flag decisions are identical either
  // way, only the sub-threshold score resolution differs.
  std::vector<double> training_margins;
  if (format_version >= 5) {
    training_margins = dec.doubles("ckld training margins", 1u << 20);
  }

  config_ = std::move(config);
  histograms_ = std::move(histograms);
  baselines_ = std::move(baselines);
  scorings_.clear();
  scorings_.reserve(config_.groups);
  for (std::size_t g = 0; g < config_.groups; ++g) {
    scorings_.push_back(scoring_baseline(g));
  }
  thresholds_ = std::move(thresholds);
  training_margins_ = std::move(training_margins);
  calibration_ =
      training_margins_.empty()
          ? ScoreCalibration::threshold_anchored(0.0, config_.significance)
          : ScoreCalibration::from_reference(training_margins_, 0.0,
                                             config_.significance);
  fitted_ = true;
}

}  // namespace fdeta::core
