// The F-DETA detector interface.
//
// A detector is a centralized online algorithm at the utility's control
// center (Section VII-A): it is trained per consumer on historic readings
// and then judges each new week of *reported* readings.  Implementations
// must be usable concurrently from multiple threads after fit() returns
// (flag_week is const).
#pragma once

#include <span>
#include <string_view>

#include "common/units.h"

namespace fdeta::core {

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string_view name() const = 0;

  /// Trains the per-consumer model.  `training` must be a whole number of
  /// weeks of half-hour readings (the paper uses 60 weeks).
  virtual void fit(std::span<const Kw> training) = 0;

  /// Judges one week of reported readings.  `first_slot` is the week's
  /// absolute slot index (weeks are always slot-aligned), needed by
  /// price-aware detectors.  Returns true if the week is anomalous.
  virtual bool flag_week(std::span<const Kw> week,
                         SlotIndex first_slot = 0) const = 0;
};

}  // namespace fdeta::core
