// Ordinary least squares.  Used by the AR / Hannan-Rissanen ARIMA fitters.
#pragma once

#include <span>
#include <vector>

#include "stats/matrix.h"

namespace fdeta::stats {

struct OlsResult {
  std::vector<double> beta;       ///< fitted coefficients
  std::vector<double> residuals;  ///< y - X beta
  double sigma2 = 0.0;            ///< residual variance, SSR / (n - k)
};

/// Solves min ||y - X beta||^2 via the normal equations with Cholesky;
/// retries with a small ridge (lambda * I) if X^T X is near-singular.
/// Requires X.rows() == y.size() and X.rows() >= X.cols().
OlsResult ols(const Matrix& x, std::span<const double> y);

}  // namespace fdeta::stats
