#include "stats/truncated_normal.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/normal.h"

namespace fdeta::stats {

TruncatedNormal::TruncatedNormal(double mu, double sigma, double lo, double hi)
    : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {
  require(sigma > 0.0, "TruncatedNormal: sigma must be positive");
  require(lo < hi, "TruncatedNormal: lo must be < hi");
  alpha_ = (lo_ - mu_) / sigma_;
  beta_ = (hi_ - mu_) / sigma_;
  cdf_lo_ = normal_cdf(alpha_);
  cdf_span_ = normal_cdf(beta_) - cdf_lo_;
  // With extreme truncation the span can underflow; fall back to a uniform
  // sliver so sampling still terminates (the attack code never gets here for
  // sane CIs, but robustness matters for pathological consumers).
  if (cdf_span_ < 1e-300) cdf_span_ = 1e-300;
}

double TruncatedNormal::mean() const {
  const double z = cdf_span_;
  return mu_ + sigma_ * (normal_pdf(alpha_) - normal_pdf(beta_)) / z;
}

double TruncatedNormal::variance() const {
  const double z = cdf_span_;
  const double pa = normal_pdf(alpha_);
  const double pb = normal_pdf(beta_);
  const double term1 = (alpha_ * pa - beta_ * pb) / z;
  const double term2 = (pa - pb) / z;
  return sigma_ * sigma_ * (1.0 + term1 - term2 * term2);
}

double TruncatedNormal::sample(Rng& rng) const {
  const double u = rng.uniform();
  const double p = cdf_lo_ + u * cdf_span_;
  const double clamped = std::clamp(p, 1e-16, 1.0 - 1e-16);
  const double value = mu_ + sigma_ * normal_quantile(clamped);
  return std::clamp(value, lo_, hi_);
}

}  // namespace fdeta::stats
