#include "stats/pca.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::stats {

Pca::Pca(const Matrix& data, double explained_fraction) {
  require(data.rows() >= 2, "Pca: need at least two observations");
  require(explained_fraction > 0.0 && explained_fraction <= 1.0,
          "Pca: explained_fraction must be in (0,1]");
  features_ = data.cols();
  const std::size_t n = data.rows();

  mean_.assign(features_, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < features_; ++c) mean_[c] += data(r, c);
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  Matrix centered(n, features_);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < features_; ++c) {
      centered(r, c) = data(r, c) - mean_[c];
    }
  }

  // When observations are fewer than features (the usual case here: 60
  // weeks x 336 slots), eigen-decompose the small n x n Gram matrix
  // G = C C^T / (n-1); the covariance eigenvectors are C^T u / ||C^T u||
  // with the same non-zero eigenvalues.  Otherwise decompose the covariance
  // directly.
  const bool use_gram_trick = n < features_;
  EigenResult eig;
  if (use_gram_trick) {
    Matrix gram(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        double s = 0.0;
        for (std::size_t c = 0; c < features_; ++c) {
          s += centered(i, c) * centered(j, c);
        }
        gram(i, j) = gram(j, i) = s / static_cast<double>(n - 1);
      }
    }
    eig = jacobi_eigen(std::move(gram));
  } else {
    Matrix cov = centered.gram();
    cov *= 1.0 / static_cast<double>(n - 1);
    eig = jacobi_eigen(std::move(cov));
  }
  eigenvalues_ = eig.values;

  double total = 0.0;
  for (double v : eigenvalues_) total += std::max(v, 0.0);
  if (total <= 0.0) total = 1.0;

  double cum = 0.0;
  components_ = 0;
  for (double v : eigenvalues_) {
    if (v <= 1e-12 * total) break;  // null space: skip degenerate directions
    cum += v;
    ++components_;
    if (cum / total >= explained_fraction) break;
  }
  if (components_ == 0) components_ = 1;

  basis_ = Matrix(features_, components_);
  if (use_gram_trick) {
    // Map Gram eigenvectors u_k (length n) to feature space: v_k ~ C^T u_k.
    for (std::size_t k = 0; k < components_; ++k) {
      double norm2 = 0.0;
      std::vector<double> v(features_, 0.0);
      for (std::size_t c = 0; c < features_; ++c) {
        double s = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
          s += centered(r, c) * eig.vectors(r, k);
        }
        v[c] = s;
        norm2 += s * s;
      }
      const double norm = std::sqrt(norm2);
      const double inv = norm > 1e-300 ? 1.0 / norm : 0.0;
      for (std::size_t c = 0; c < features_; ++c) basis_(c, k) = v[c] * inv;
    }
  } else {
    for (std::size_t k = 0; k < components_; ++k) {
      for (std::size_t c = 0; c < features_; ++c) {
        basis_(c, k) = eig.vectors(c, k);
      }
    }
  }
}

std::vector<double> Pca::project(std::span<const double> observation) const {
  require(observation.size() == features_, "Pca::project: size mismatch");
  std::vector<double> scores(components_, 0.0);
  for (std::size_t c = 0; c < components_; ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < features_; ++r) {
      s += (observation[r] - mean_[r]) * basis_(r, c);
    }
    scores[c] = s;
  }
  return scores;
}

double Pca::reconstruction_error(std::span<const double> observation) const {
  const auto scores = project(observation);
  double err = 0.0;
  for (std::size_t r = 0; r < features_; ++r) {
    double rec = mean_[r];
    for (std::size_t c = 0; c < components_; ++c) {
      rec += basis_(r, c) * scores[c];
    }
    const double diff = observation[r] - rec;
    err += diff * diff;
  }
  return err;
}

}  // namespace fdeta::stats
