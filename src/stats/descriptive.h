// Descriptive statistics over contiguous samples.
#pragma once

#include <span>

namespace fdeta::stats {

/// Arithmetic mean; throws InvalidArgument on an empty sample.
double mean(std::span<const double> sample);

/// Unbiased sample variance (divides by n-1); requires n >= 2.
double variance(std::span<const double> sample);

/// Population variance (divides by n); requires n >= 1.
double population_variance(std::span<const double> sample);

/// Square root of the unbiased sample variance.
double stddev(std::span<const double> sample);

/// Sum of the sample (0 for empty).
double sum(std::span<const double> sample);

/// Minimum; throws InvalidArgument on an empty sample.
double min(std::span<const double> sample);

/// Maximum; throws InvalidArgument on an empty sample.
double max(std::span<const double> sample);

/// Median (average of middle two for even n); throws on empty.
double median(std::span<const double> sample);

/// Pearson correlation of two equally-sized samples; requires n >= 2 and
/// non-zero variance in both.
double correlation(std::span<const double> a, std::span<const double> b);

}  // namespace fdeta::stats
