#include "stats/kl_divergence.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace fdeta::stats {

double kl_divergence_bits(std::span<const double> p,
                          std::span<const double> q) {
  require(p.size() == q.size(), "kl_divergence: size mismatch");
  require(!p.empty(), "kl_divergence: empty distributions");
  double total = 0.0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    if (p[j] <= 0.0) continue;  // 0 * log(0/q) := 0
    if (q[j] <= 0.0) return std::numeric_limits<double>::infinity();
    total += p[j] * std::log2(p[j] / q[j]);
  }
  // Round-off can produce a tiny negative value when p == q.
  return total < 0.0 && total > -1e-12 ? 0.0 : total;
}

double jeffreys_divergence_bits(std::span<const double> p,
                                std::span<const double> q) {
  return kl_divergence_bits(p, q) + kl_divergence_bits(q, p);
}

}  // namespace fdeta::stats
