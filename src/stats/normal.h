// Standard normal pdf/cdf/quantile helpers used by the truncated-normal
// sampler and by ARIMA confidence intervals.
#pragma once

namespace fdeta::stats {

/// Standard normal density phi(x).
double normal_pdf(double x);

/// Standard normal CDF Phi(x), via erfc for accuracy in the tails.
double normal_cdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; absolute error < 1e-9 over (0, 1)).
double normal_quantile(double p);

/// Two-sided z-value such that P(|Z| <= z) = 1 - alpha
/// (e.g. alpha = 0.05 -> 1.95996).
double two_sided_z(double alpha);

}  // namespace fdeta::stats
