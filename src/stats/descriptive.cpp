#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace fdeta::stats {

double mean(std::span<const double> sample) {
  require(!sample.empty(), "mean: empty sample");
  double total = 0.0;
  for (double x : sample) total += x;
  return total / static_cast<double>(sample.size());
}

double variance(std::span<const double> sample) {
  require(sample.size() >= 2, "variance: need at least two samples");
  const double m = mean(sample);
  double ss = 0.0;
  for (double x : sample) ss += (x - m) * (x - m);
  return ss / static_cast<double>(sample.size() - 1);
}

double population_variance(std::span<const double> sample) {
  require(!sample.empty(), "population_variance: empty sample");
  const double m = mean(sample);
  double ss = 0.0;
  for (double x : sample) ss += (x - m) * (x - m);
  return ss / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) {
  return std::sqrt(variance(sample));
}

double sum(std::span<const double> sample) {
  double total = 0.0;
  for (double x : sample) total += x;
  return total;
}

double min(std::span<const double> sample) {
  require(!sample.empty(), "min: empty sample");
  return *std::min_element(sample.begin(), sample.end());
}

double max(std::span<const double> sample) {
  require(!sample.empty(), "max: empty sample");
  return *std::max_element(sample.begin(), sample.end());
}

double median(std::span<const double> sample) {
  require(!sample.empty(), "median: empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  const std::size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  const double upper = sorted[mid];
  if (sorted.size() % 2 == 1) return upper;
  const double lower = *std::max_element(sorted.begin(), sorted.begin() + mid);
  return 0.5 * (lower + upper);
}

double correlation(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "correlation: size mismatch");
  require(a.size() >= 2, "correlation: need at least two samples");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  require(saa > 0.0 && sbb > 0.0, "correlation: zero variance");
  return sab / std::sqrt(saa * sbb);
}

}  // namespace fdeta::stats
