#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fdeta::stats {

double quantile_sorted(std::span<const double> sorted, double p) {
  require(!sorted.empty(), "quantile: empty sample");
  require(p >= 0.0 && p <= 1.0, "quantile: p out of [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> sample, double p) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, p);
}

double threshold_quantile_sorted(std::span<const double> sorted, double p) {
  const double q = quantile_sorted(sorted, p);
  if (sorted.size() > 2 && sorted.front() < sorted.back()) return q;
  // Degenerate reference: nudge strictly above the interpolated value so the
  // threshold is never exactly a sample point (1e-9 is relative: far above
  // float noise on any realistic score scale, far below a real deviation).
  return q + 1e-9 * std::max(1.0, std::abs(q));
}

double threshold_quantile(std::span<const double> sample, double p) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  return threshold_quantile_sorted(sorted, p);
}

std::vector<double> quantiles(std::span<const double> sample,
                              std::span<const double> probabilities) {
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(probabilities.size());
  for (double p : probabilities) out.push_back(quantile_sorted(sorted, p));
  return out;
}

}  // namespace fdeta::stats
