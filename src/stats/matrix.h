// Small dense-matrix linear algebra: just enough for OLS (ARIMA fitting,
// Hannan-Rissanen) and PCA (the ref [3] baseline detector).  Row-major
// storage, value semantics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace fdeta::stats {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// Construct from nested initializer lists (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double scalar);

  /// y = A * x for a vector x (x.size() == cols()).
  std::vector<double> apply(std::span<const double> x) const;

  /// Gram matrix A^T * A (symmetric positive semi-definite).
  Matrix gram() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws NumericalError if A is not (numerically) positive definite.
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Solves A x = b for general square A via LU with partial pivoting.
/// Throws NumericalError if A is singular.
std::vector<double> lu_solve(Matrix a, std::vector<double> b);

/// Eigen-decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns eigenvalues in descending order with matching unit eigenvectors
/// (columns of `vectors`).
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  // column k is the eigenvector for values[k]
};
EigenResult jacobi_eigen(Matrix a, int max_sweeps = 64);

}  // namespace fdeta::stats
