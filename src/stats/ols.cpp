#include "stats/ols.h"

#include <numeric>

#include "common/error.h"

namespace fdeta::stats {

OlsResult ols(const Matrix& x, std::span<const double> y) {
  require(x.rows() == y.size(), "ols: row count mismatch");
  require(x.rows() >= x.cols(), "ols: underdetermined system");
  require(x.cols() >= 1, "ols: no regressors");

  Matrix xtx = x.gram();
  // X^T y
  std::vector<double> xty(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    const double yr = y[r];
    for (std::size_t c = 0; c < x.cols(); ++c) xty[c] += xr[c] * yr;
  }

  OlsResult result;
  try {
    result.beta = cholesky_solve(xtx, xty);
  } catch (const NumericalError&) {
    // Collinear regressors (e.g. a constant consumer): ridge-regularise.
    const double trace_avg = [&] {
      double t = 0.0;
      for (std::size_t i = 0; i < xtx.rows(); ++i) t += xtx(i, i);
      return t / static_cast<double>(xtx.rows());
    }();
    const double ridge = std::max(1e-8 * trace_avg, 1e-10);
    for (std::size_t i = 0; i < xtx.rows(); ++i) xtx(i, i) += ridge;
    result.beta = cholesky_solve(xtx, xty);
  }

  result.residuals.resize(y.size());
  double ssr = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto xr = x.row(r);
    const double fit =
        std::inner_product(xr.begin(), xr.end(), result.beta.begin(), 0.0);
    result.residuals[r] = y[r] - fit;
    ssr += result.residuals[r] * result.residuals[r];
  }
  const auto dof = x.rows() > x.cols() ? x.rows() - x.cols() : 1;
  result.sigma2 = ssr / static_cast<double>(dof);
  return result;
}

}  // namespace fdeta::stats
