// Truncated normal distribution.
//
// The Integrated ARIMA attack (Section VIII-B1) injects false readings drawn
// from a truncated normal so that each sample lies inside the ARIMA
// confidence interval while the window mean/variance stay inside historical
// bounds.  The class exposes the analytical moments of the truncated
// distribution so that the attacker (and our tests) can pick (mu, sigma)
// achieving a desired realised mean.
#pragma once

#include "common/rng.h"

namespace fdeta::stats {

/// Normal(mu, sigma^2) conditioned on [lo, hi].
class TruncatedNormal {
 public:
  /// Requires sigma > 0 and lo < hi.
  TruncatedNormal(double mu, double sigma, double lo, double hi);

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Mean of the truncated distribution (differs from mu).
  double mean() const;

  /// Variance of the truncated distribution.
  double variance() const;

  /// Draws one sample via inverse-CDF on the truncated range, which is exact
  /// and cheap for the moderate truncations used here.
  double sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
  double lo_;
  double hi_;
  double alpha_;     // (lo - mu) / sigma
  double beta_;      // (hi - mu) / sigma
  double cdf_lo_;    // Phi(alpha)
  double cdf_span_;  // Phi(beta) - Phi(alpha)
};

}  // namespace fdeta::stats
