#include "stats/matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace fdeta::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    require(r.size() == cols_, "Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  require(cols_ == rhs.rows_, "Matrix multiply: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix add: size mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix sub: size mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  require(x.size() == cols_, "Matrix::apply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    y[r] = std::inner_product(row(r).begin(), row(r).end(), x.begin(), 0.0);
  }
  return y;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto x = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) g(i, j) += xi * x[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "cholesky_solve: matrix not square");
  require(b.size() == n, "cholesky_solve: rhs size mismatch");

  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw NumericalError("cholesky_solve: matrix not positive definite");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

std::vector<double> lu_solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "lu_solve: matrix not square");
  require(b.size() == n, "lu_solve: rhs size mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double cand = std::abs(a(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-14) throw NumericalError("lu_solve: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x[c];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

EigenResult jacobi_eigen(Matrix a, int max_sweeps) {
  const std::size_t n = a.rows();
  require(a.cols() == n, "jacobi_eigen: matrix not square");
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.values[k] = a(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) {
      result.vectors(r, k) = v(r, order[k]);
    }
  }
  return result;
}

}  // namespace fdeta::stats
