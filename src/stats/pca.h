// Principal component analysis.
//
// Ref [3] of the paper ("PCA-Based Method for Detecting Integrity Attacks on
// AMI", QEST'15, by the same group) projects week vectors onto the leading
// principal components of the training matrix and flags weeks whose residual
// (reconstruction error) is anomalous.  We provide PCA here and the detector
// in src/core/pca_detector.* as an additional related-work baseline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace fdeta::stats {

class Pca {
 public:
  /// Fits PCA on `data` (rows = observations, cols = features), keeping the
  /// smallest number of components explaining at least `explained_fraction`
  /// of total variance (and at least one).
  Pca(const Matrix& data, double explained_fraction = 0.95);

  std::size_t component_count() const { return components_; }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

  /// Projects an observation onto the retained components.
  std::vector<double> project(std::span<const double> observation) const;

  /// Squared reconstruction error of an observation: the anomaly score of the
  /// PCA detector.
  double reconstruction_error(std::span<const double> observation) const;

 private:
  std::size_t features_ = 0;
  std::size_t components_ = 0;
  std::vector<double> mean_;         // per-feature mean
  std::vector<double> eigenvalues_;  // all, descending
  Matrix basis_;                     // features x components
};

}  // namespace fdeta::stats
