// Kullback-Leibler divergence between discrete distributions, eq. (12):
//
//   K_i = sum_j p(X_i^(j)) * log2( p(X_i^(j)) / p(X^(j)) )
//
// Conventions: terms with p(X_i^(j)) = 0 contribute 0; a bin with
// p(X_i^(j)) > 0 but p(X^(j)) = 0 yields +infinity (the observed week put
// mass where the baseline has none - maximally anomalous).
#pragma once

#include <span>

namespace fdeta::stats {

/// KL divergence D(p || q) in bits.  Requires equal sizes; p and q are
/// assumed normalised (sums ~1), which Histogram::probabilities guarantees.
/// Returns +infinity when p has mass on a q-zero bin.
double kl_divergence_bits(std::span<const double> p, std::span<const double> q);

/// Symmetrised KL (Jeffreys divergence), provided for diagnostics.
double jeffreys_divergence_bits(std::span<const double> p,
                                std::span<const double> q);

}  // namespace fdeta::stats
