// Empirical quantiles (Hyndman-Fan type 7, the common linear-interpolation
// definition).  The KLD detector sets its decision thresholds at the 90th and
// 95th percentiles of the training KLD distribution (Section VII-D).
#pragma once

#include <span>
#include <vector>

namespace fdeta::stats {

/// Quantile of `sample` at probability `p` in [0, 1].  Copies and sorts.
double quantile(std::span<const double> sample, double p);

/// Quantile of an already-sorted (ascending) sample; no copy.
double quantile_sorted(std::span<const double> sorted, double p);

/// Convenience: percentile in [0, 100].
inline double percentile(std::span<const double> sample, double pct) {
  return quantile(sample, pct / 100.0);
}

/// Quantiles at several probabilities with a single sort.
std::vector<double> quantiles(std::span<const double> sample,
                              std::span<const double> probabilities);

/// Quantile intended for use as a strict `score > threshold` decision
/// threshold.  Identical to quantile() on any sample with spread and more
/// than two points.  On degenerate samples (n <= 2, or all values equal) the
/// empirical quantile collapses onto the sample min/max, where a strict
/// comparison degenerates (threshold == max never fires on ties; threshold
/// == min always fires): the result is widened upward by a relative epsilon
/// so a score equal to the reference never flags but a real deviation does.
double threshold_quantile(std::span<const double> sample, double p);

/// threshold_quantile over an already-sorted (ascending) sample; no copy.
double threshold_quantile_sorted(std::span<const double> sorted, double p);

}  // namespace fdeta::stats
