// Fixed-edge histograms.
//
// The KLD detector (Section VII-D) builds a histogram of the full training
// matrix X with B bins and then evaluates every week vector X_i against the
// *same* bin edges ("It is essential to use the exact same bin edges
// determined from the X distribution").  Values outside the reference range
// (as attack vectors often are) are absorbed by the outermost bins, so the
// detector still sees their probability mass.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fdeta::persist {
class Encoder;
class Decoder;
}  // namespace fdeta::persist

namespace fdeta::stats {

/// A histogram with B equal-width bins whose edges were frozen from a
/// reference sample.
class Histogram {
 public:
  /// Builds `bins` equal-width bins covering [min(reference), max(reference)].
  /// If the reference is constant, a degenerate single-point range is widened
  /// by +/- 0.5 to stay usable.  Requires bins >= 1 and a non-empty sample.
  Histogram(std::span<const double> reference, std::size_t bins);

  /// Constructs directly from explicit ascending edges (bins = edges-1).
  explicit Histogram(std::vector<double> edges);

  std::size_t bin_count() const { return edges_.size() - 1; }
  const std::vector<double>& edges() const { return edges_; }

  /// Index of the bin receiving `value`.
  ///
  /// Clamping semantics (deliberate, per Section VII-D): the outer bins are
  /// open, so a value below edges().front() lands in bin 0 and a value above
  /// edges().back() in the last bin.  The detector must still see the
  /// probability mass of out-of-range readings (attack vectors often sit
  /// outside the training range), but the clamp is silent - bin_of(v) == 0
  /// cannot tell "v was in the lowest training bin" from "v was below the
  /// training support entirely".  Callers that need the distinction count
  /// out-of-support values with underflow_count()/overflow_count().
  std::size_t bin_of(double value) const;

  /// Number of values in `sample` strictly below edges().front() - readings
  /// outside the training support that bin_of() clamps into bin 0.
  std::size_t underflow_count(std::span<const double> sample) const;

  /// Number of values in `sample` strictly above edges().back().
  std::size_t overflow_count(std::span<const double> sample) const;

  /// Raw counts of `sample` per bin.
  std::vector<std::size_t> counts(std::span<const double> sample) const;

  /// Relative frequencies per bin (counts / sample size).  This is the
  /// p(X^(j)) of eq. (12).  Requires a non-empty sample.
  std::vector<double> probabilities(std::span<const double> sample) const;

  /// Serialization hooks for model checkpoints (persist/checkpoint.h): the
  /// frozen edges are the histogram's entire state.
  void save(persist::Encoder& enc) const;
  static Histogram load(persist::Decoder& dec);

 private:
  std::vector<double> edges_;  // ascending, size = bins + 1
};

}  // namespace fdeta::stats
