// Fixed-edge histograms.
//
// The KLD detector (Section VII-D) builds a histogram of the full training
// matrix X with B bins and then evaluates every week vector X_i against the
// *same* bin edges ("It is essential to use the exact same bin edges
// determined from the X distribution").  Values outside the reference range
// (as attack vectors often are) are absorbed by the outermost bins, so the
// detector still sees their probability mass.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fdeta::persist {
class Encoder;
class Decoder;
}  // namespace fdeta::persist

namespace fdeta::stats {

/// A histogram with B equal-width bins whose edges were frozen from a
/// reference sample.
class Histogram {
 public:
  /// Builds `bins` equal-width bins covering [min(reference), max(reference)].
  /// If the reference is constant, a degenerate single-point range is widened
  /// by +/- 0.5 to stay usable.  Requires bins >= 1 and a non-empty sample.
  Histogram(std::span<const double> reference, std::size_t bins);

  /// Constructs directly from explicit ascending edges (bins = edges-1).
  explicit Histogram(std::vector<double> edges);

  std::size_t bin_count() const { return edges_.size() - 1; }
  const std::vector<double>& edges() const { return edges_; }

  /// Index of the bin receiving `value`.
  ///
  /// Clamping semantics (deliberate, per Section VII-D): the outer bins are
  /// open, so a value below edges().front() lands in bin 0 and a value above
  /// edges().back() in the last bin.  The detector must still see the
  /// probability mass of out-of-range readings (attack vectors often sit
  /// outside the training range), but the clamp is silent - bin_of(v) == 0
  /// cannot tell "v was in the lowest training bin" from "v was below the
  /// training support entirely".  Callers that need the distinction use
  /// counts_into()/probabilities_into() with exclude_out_of_support, which
  /// route out-of-support values to the underflow/overflow tallies instead
  /// of inflating the outer bins' probability mass.
  ///
  /// O(1): an arithmetic index guess from the (uniform-width) edge grid,
  /// corrected by a short fixup walk, replaces the upper_bound binary
  /// search; the result is identical for every input, non-uniform explicit
  /// edges and NaN included.
  std::size_t bin_of(double value) const;

  /// Out-of-support accounting for one binning pass.
  struct BinningStats {
    std::size_t underflow = 0;   ///< values strictly below edges().front()
    std::size_t overflow = 0;    ///< values strictly above edges().back()
    std::size_t in_support = 0;  ///< values counted into the bins
  };

  /// Bins `sample` into `out` (size bin_count(), zeroed here) without
  /// allocating - the fleet hot path.  With exclude_out_of_support, values
  /// outside [edges().front(), edges().back()] are tallied in the returned
  /// BinningStats and NOT counted into the outer bins (a negative or absurd
  /// reading no longer masquerades as lowest-bin consumption mass, which
  /// previously skewed KLD toward under-report alerts); with it false the
  /// historical clamping semantics apply and in_support == sample.size().
  BinningStats counts_into(std::span<const double> sample,
                           std::span<std::size_t> out,
                           bool exclude_out_of_support) const;

  /// Relative frequencies into `out` (size bin_count()), normalised over
  /// the in-support count when excluding so the distribution still sums to
  /// 1.  Degenerate guard: when every value is out of support there is no
  /// in-support mass to normalise, so the pass falls back to the clamping
  /// semantics (the outer bins are then the only honest place for the mass,
  /// and a detector still sees a maximally anomalous week rather than a
  /// divide-by-zero).  Requires a non-empty sample.
  BinningStats probabilities_into(std::span<const double> sample,
                                  std::span<double> out,
                                  bool exclude_out_of_support) const;

  /// Number of values in `sample` strictly below edges().front() - readings
  /// outside the training support that bin_of() clamps into bin 0.
  std::size_t underflow_count(std::span<const double> sample) const;

  /// Number of values in `sample` strictly above edges().back().
  std::size_t overflow_count(std::span<const double> sample) const;

  /// Raw counts of `sample` per bin.
  std::vector<std::size_t> counts(std::span<const double> sample) const;

  /// Relative frequencies per bin (counts / sample size).  This is the
  /// p(X^(j)) of eq. (12).  Requires a non-empty sample.
  std::vector<double> probabilities(std::span<const double> sample) const;

  /// Serialization hooks for model checkpoints (persist/checkpoint.h): the
  /// frozen edges are the histogram's entire state.
  void save(persist::Encoder& enc) const;
  static Histogram load(persist::Decoder& dec);

 private:
  void init_grid();

  std::vector<double> edges_;  // ascending, size = bins + 1
  // Arithmetic guess grid for bin_of (derived from edges_, not serialized).
  double lo_ = 0.0;
  double inv_width_ = 0.0;
};

}  // namespace fdeta::stats
