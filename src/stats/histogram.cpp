#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "persist/binary_io.h"

namespace fdeta::stats {

Histogram::Histogram(std::span<const double> reference, std::size_t bins) {
  require(bins >= 1, "Histogram: need at least one bin");
  require(!reference.empty(), "Histogram: empty reference sample");
  const auto [lo_it, hi_it] =
      std::minmax_element(reference.begin(), reference.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (lo == hi) {  // degenerate constant sample
    lo -= 0.5;
    hi += 0.5;
  }
  edges_.resize(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t j = 0; j <= bins; ++j) {
    edges_[j] = lo + width * static_cast<double>(j);
  }
  edges_.back() = hi;  // avoid round-off excluding the max
  init_grid();
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  require(edges_.size() >= 2, "Histogram: need at least two edges");
  require(std::is_sorted(edges_.begin(), edges_.end()),
          "Histogram: edges must be ascending");
  init_grid();
}

void Histogram::init_grid() {
  lo_ = edges_.front();
  // A guess grid assuming uniform widths; the fixup walk in bin_of makes the
  // result exact for non-uniform explicit edges too.  A zero-width histogram
  // (all edges equal) yields an infinite inv_width_, which the NaN/negative
  // clamp below absorbs.
  inv_width_ = static_cast<double>(bin_count()) / (edges_.back() - lo_);
}

std::size_t Histogram::bin_of(double value) const {
  // Semantics pinned to upper_bound (first edge strictly greater than value):
  // bins are [e_j, e_{j+1}) except the last, which is closed on the right;
  // below-range clamps to bin 0, above-range (and NaN, for which every
  // comparison is false) to the last bin.
  if (std::isnan(value)) return bin_count() - 1;
  double guess = (value - lo_) * inv_width_;
  // Clamp BEFORE the float->int cast: an out-of-range double->size_t cast is
  // UB (UBSan float-cast-overflow), and `!(guess > 0)` also catches the NaN
  // produced by 0 * inf on a zero-width histogram.
  const double top = static_cast<double>(bin_count() - 1);
  if (!(guess > 0.0)) guess = 0.0;
  if (guess > top) guess = top;
  std::size_t j = static_cast<std::size_t>(guess);
  // Round-off (or non-uniform edges) can leave the guess off; walk to the
  // exact bin.  For uniform edges this is at most one step.
  while (j > 0 && value < edges_[j]) --j;
  while (j + 1 < bin_count() && value >= edges_[j + 1]) ++j;
  return j;
}

Histogram::BinningStats Histogram::counts_into(
    std::span<const double> sample, std::span<std::size_t> out,
    bool exclude_out_of_support) const {
  require(out.size() == bin_count(), "Histogram::counts_into: out span size");
  std::fill(out.begin(), out.end(), std::size_t{0});
  BinningStats stats;
  const double lo = edges_.front();
  const double hi = edges_.back();
  if (exclude_out_of_support) {
    for (double v : sample) {
      // NaN compares false on both, so it stays "in support" and clamps to
      // the last bin - identical to bin_of's semantics.
      if (v < lo) {
        ++stats.underflow;
      } else if (v > hi) {
        ++stats.overflow;
      } else {
        ++out[bin_of(v)];
        ++stats.in_support;
      }
    }
  } else {
    for (double v : sample) {
      if (v < lo) {
        ++stats.underflow;
      } else if (v > hi) {
        ++stats.overflow;
      }
      ++out[bin_of(v)];
    }
    stats.in_support = sample.size();
  }
  return stats;
}

Histogram::BinningStats Histogram::probabilities_into(
    std::span<const double> sample, std::span<double> out,
    bool exclude_out_of_support) const {
  require(!sample.empty(), "Histogram::probabilities_into: empty sample");
  require(out.size() == bin_count(),
          "Histogram::probabilities_into: out span size");
  // Counts accumulate directly in the double output (week-scale counts are
  // integer-exact in a double), so the pass needs no scratch allocation.
  std::fill(out.begin(), out.end(), 0.0);
  BinningStats stats;
  const double lo = edges_.front();
  const double hi = edges_.back();
  if (exclude_out_of_support) {
    for (double v : sample) {
      if (v < lo) {
        ++stats.underflow;
      } else if (v > hi) {
        ++stats.overflow;
      } else {
        out[bin_of(v)] += 1.0;
        ++stats.in_support;
      }
    }
    if (stats.in_support > 0) {
      const double n = static_cast<double>(stats.in_support);
      for (double& p : out) p /= n;
      return stats;
    }
    // Every value is out of support: no in-support mass to normalise over,
    // so fall back to the clamping semantics (see the header).  The stats
    // keep in_support == 0 and the full out-of-support tallies, so a caller
    // can still see the fallback fired.
    for (double v : sample) out[bin_of(v)] += 1.0;
    const double n = static_cast<double>(sample.size());
    for (double& p : out) p /= n;
    return stats;
  }
  for (double v : sample) {
    if (v < lo) {
      ++stats.underflow;
    } else if (v > hi) {
      ++stats.overflow;
    }
    out[bin_of(v)] += 1.0;
  }
  stats.in_support = sample.size();
  const double n = static_cast<double>(sample.size());
  for (double& p : out) p /= n;
  return stats;
}

std::size_t Histogram::underflow_count(std::span<const double> sample) const {
  std::size_t n = 0;
  for (double v : sample) n += v < edges_.front() ? 1 : 0;
  return n;
}

std::size_t Histogram::overflow_count(std::span<const double> sample) const {
  std::size_t n = 0;
  for (double v : sample) n += v > edges_.back() ? 1 : 0;
  return n;
}

std::vector<std::size_t> Histogram::counts(std::span<const double> sample) const {
  std::vector<std::size_t> out(bin_count(), 0);
  for (double v : sample) ++out[bin_of(v)];
  return out;
}

std::vector<double> Histogram::probabilities(
    std::span<const double> sample) const {
  require(!sample.empty(), "Histogram::probabilities: empty sample");
  const auto raw = counts(sample);
  std::vector<double> out(raw.size());
  const double n = static_cast<double>(sample.size());
  for (std::size_t j = 0; j < raw.size(); ++j) {
    out[j] = static_cast<double>(raw[j]) / n;
  }
  return out;
}

void Histogram::save(persist::Encoder& enc) const { enc.doubles(edges_); }

Histogram Histogram::load(persist::Decoder& dec) {
  // The explicit-edges constructor revalidates (>= 2 edges, ascending), so
  // a corrupted edge array is rejected rather than silently misbinned.
  return Histogram(dec.doubles("histogram edges", 1u << 20));
}

}  // namespace fdeta::stats
