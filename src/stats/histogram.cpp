#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "persist/binary_io.h"

namespace fdeta::stats {

Histogram::Histogram(std::span<const double> reference, std::size_t bins) {
  require(bins >= 1, "Histogram: need at least one bin");
  require(!reference.empty(), "Histogram: empty reference sample");
  const auto [lo_it, hi_it] =
      std::minmax_element(reference.begin(), reference.end());
  double lo = *lo_it;
  double hi = *hi_it;
  if (lo == hi) {  // degenerate constant sample
    lo -= 0.5;
    hi += 0.5;
  }
  edges_.resize(bins + 1);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t j = 0; j <= bins; ++j) {
    edges_[j] = lo + width * static_cast<double>(j);
  }
  edges_.back() = hi;  // avoid round-off excluding the max
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  require(edges_.size() >= 2, "Histogram: need at least two edges");
  require(std::is_sorted(edges_.begin(), edges_.end()),
          "Histogram: edges must be ascending");
}

std::size_t Histogram::bin_of(double value) const {
  // upper_bound gives the first edge strictly greater than value; bins are
  // [e_j, e_{j+1}) except the last, which is closed on the right.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  if (it == edges_.begin()) return 0;                       // below range
  const auto idx = static_cast<std::size_t>(it - edges_.begin()) - 1;
  return std::min(idx, bin_count() - 1);                    // above range/max
}

std::size_t Histogram::underflow_count(std::span<const double> sample) const {
  std::size_t n = 0;
  for (double v : sample) n += v < edges_.front() ? 1 : 0;
  return n;
}

std::size_t Histogram::overflow_count(std::span<const double> sample) const {
  std::size_t n = 0;
  for (double v : sample) n += v > edges_.back() ? 1 : 0;
  return n;
}

std::vector<std::size_t> Histogram::counts(std::span<const double> sample) const {
  std::vector<std::size_t> out(bin_count(), 0);
  for (double v : sample) ++out[bin_of(v)];
  return out;
}

std::vector<double> Histogram::probabilities(
    std::span<const double> sample) const {
  require(!sample.empty(), "Histogram::probabilities: empty sample");
  const auto raw = counts(sample);
  std::vector<double> out(raw.size());
  const double n = static_cast<double>(sample.size());
  for (std::size_t j = 0; j < raw.size(); ++j) {
    out[j] = static_cast<double>(raw[j]) / n;
  }
  return out;
}

void Histogram::save(persist::Encoder& enc) const { enc.doubles(edges_); }

Histogram Histogram::load(persist::Decoder& dec) {
  // The explicit-edges constructor revalidates (>= 2 edges, ascending), so
  // a corrupted edge array is rejected rather than silently misbinned.
  return Histogram(dec.doubles("histogram edges", 1u << 20));
}

}  // namespace fdeta::stats
