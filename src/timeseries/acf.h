// Autocorrelation and partial autocorrelation.
#pragma once

#include <span>
#include <vector>

namespace fdeta::ts {

/// Sample autocorrelations r_1..r_max_lag (r_0 = 1 is omitted).
/// Requires max_lag < series.size() and a non-constant series.
std::vector<double> acf(std::span<const double> series, std::size_t max_lag);

/// Partial autocorrelations via Durbin-Levinson from the ACF.
std::vector<double> pacf(std::span<const double> series, std::size_t max_lag);

}  // namespace fdeta::ts
