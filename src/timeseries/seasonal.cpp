#include "timeseries/seasonal.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::ts {

WeeklyProfile::WeeklyProfile(std::span<const double> series, std::size_t period)
    : period_(period) {
  require(period >= 1, "WeeklyProfile: period must be >= 1");
  require(series.size() >= 2 * period,
          "WeeklyProfile: need at least two full periods");
  require(series.size() % period == 0,
          "WeeklyProfile: series must be a whole number of periods");

  const std::size_t weeks = series.size() / period;
  means_.assign(period, 0.0);
  stddevs_.assign(period, 0.0);

  for (std::size_t w = 0; w < weeks; ++w) {
    for (std::size_t s = 0; s < period; ++s) {
      means_[s] += series[w * period + s];
    }
  }
  for (double& m : means_) m /= static_cast<double>(weeks);

  for (std::size_t w = 0; w < weeks; ++w) {
    for (std::size_t s = 0; s < period; ++s) {
      const double d = series[w * period + s] - means_[s];
      stddevs_[s] += d * d;
    }
  }
  for (double& sd : stddevs_) {
    sd = std::sqrt(sd / static_cast<double>(weeks - 1));
  }
}

double WeeklyProfile::zscore(std::size_t s, double value) const {
  const double sd = stddev(s);
  if (sd <= 0.0) return 0.0;
  return (value - mean(s)) / sd;
}

}  // namespace fdeta::ts
