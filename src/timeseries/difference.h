// Differencing utilities for ARIMA's "I" component.
#pragma once

#include <span>
#include <vector>

namespace fdeta::ts {

/// First difference: out[t] = in[t+1] - in[t]; size shrinks by one.
/// Requires at least two elements.
std::vector<double> difference(std::span<const double> series);

/// Applies first differencing `times` times.  Requires the series to stay
/// non-empty throughout.
std::vector<double> difference_n(std::span<const double> series, int times);

/// Inverts one level of differencing given the anchor value preceding the
/// differenced range: out[0] = anchor + diffs[0], out[t] = out[t-1]+diffs[t].
std::vector<double> undifference(std::span<const double> diffs, double anchor);

}  // namespace fdeta::ts
