// ARIMA(p,d,q) modelling, fitted by the Hannan-Rissanen procedure, with a
// rolling one-step-ahead forecaster.
//
// This is the model behind the ARIMA detector of ref [2] ("ARIMA-Based
// Modeling and Validation of Consumption Readings in Power Grids"), which the
// paper evaluates against.  The detector needs only one-step-ahead forecasts
// with Gaussian confidence intervals; the forecaster is *rolling*: it is fed
// the reported readings as they arrive, so a compromised stream poisons the
// model state and the confidence interval "follows the attack vector"
// (Section VIII-B) - exactly the behaviour the paper exploits.
//
// We default to a stationary model (d = 0).  A stationary fit makes the
// CI-riding ARIMA attack saturate at the mean-reverting plateau
// (c + z*sigma) / (1 - sum(phi)) instead of diverging, matching the bounded
// but large weekly theft the paper reports (Table III).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace fdeta::ts {

struct ArimaOrder {
  std::size_t p = 3;   ///< autoregressive order
  int d = 0;           ///< differencing order (0 or 1 supported)
  std::size_t q = 1;   ///< moving-average order
  std::size_t sp = 0;  ///< seasonal AR order (0 disables seasonality)
  std::size_t season = 48;  ///< seasonal period in slots (48 = daily)
};

/// One-step-ahead forecast with Gaussian uncertainty.
struct Forecast {
  double mean = 0.0;
  double stddev = 0.0;

  double lower(double z) const { return mean - z * stddev; }
  double upper(double z) const { return mean + z * stddev; }
  bool contains(double value, double z) const {
    return value >= lower(z) && value <= upper(z);
  }
};

class RollingForecaster;

/// Fitted (seasonal) ARIMA parameters.  Immutable after fit().  With
/// sp > 0 the model adds seasonal AR terms at lags season, 2*season, ...
/// (a multiplicative-free additive SAR formulation), which captures the
/// strong daily cycle of consumption data.
class ArimaModel {
 public:
  /// Fits via Hannan-Rissanen: (1) long-AR OLS for residual estimates,
  /// (2) OLS of the differenced series on its own lags and lagged residuals.
  /// The AR polynomial is clamped to sum(phi) <= 0.98 (preserving the implied
  /// mean) to guarantee a stationary, mean-reverting forecaster even for
  /// near-unit-root consumers.  Requires a series comfortably longer than
  /// 2 * (p + q) + 20 observations.
  static ArimaModel fit(std::span<const double> series, ArimaOrder order = {});

  const ArimaOrder& order() const { return order_; }
  double intercept() const { return intercept_; }
  const std::vector<double>& ar() const { return phi_; }
  const std::vector<double>& ma() const { return theta_; }
  const std::vector<double>& seasonal_ar() const { return sphi_; }
  double sigma2() const { return sigma2_; }

  /// Unconditional mean of the (differenced) process, c / (1 - sum(phi)).
  double process_mean() const;

  /// Creates a rolling forecaster primed with `history` (typically the tail
  /// of the training series).  History must contain at least
  /// max(p, sp*season) + q + d + 1 observations.
  RollingForecaster forecaster(std::span<const double> history) const;

 private:
  ArimaOrder order_;
  double intercept_ = 0.0;
  std::vector<double> phi_;
  std::vector<double> theta_;
  std::vector<double> sphi_;  ///< seasonal AR coefficients (lags s, 2s, ...)
  double sigma2_ = 0.0;
};

/// Streams raw readings through the fitted model, producing a one-step-ahead
/// forecast before each observation.  State advances only via observe(), so
/// feeding *reported* readings reproduces the utility's (poisonable) view.
class RollingForecaster {
 public:
  RollingForecaster(const ArimaModel& model, std::span<const double> history);

  /// Forecast of the next raw reading.
  Forecast next() const;

  /// Consumes the actual (or reported) next reading, updating model state.
  void observe(double actual);

 private:
  double forecast_differenced() const;

  ArimaOrder order_;
  double intercept_;
  std::vector<double> phi_;
  std::vector<double> theta_;
  std::vector<double> sphi_;
  std::size_t z_depth_;  // max(p, sp * season): differenced history needed
  double stddev_ = 0.0;

  std::deque<double> z_tail_;  // last z_depth_ differenced values, newest first
  std::deque<double> e_tail_;  // last q residuals, newest in front
  double last_raw_ = 0.0;      // last raw value (anchor for d = 1)
};

}  // namespace fdeta::ts
