// Weekly seasonal profile: per slot-of-week mean and standard deviation.
//
// Consumers' "weekly consumption patterns tend to repeat" (Section VII-D);
// this profile captures that structure.  It serves as a simple seasonal
// baseline forecaster, as a building block of the dataset generator's
// validation tests, and for diagnostics in the examples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fdeta::ts {

class WeeklyProfile {
 public:
  /// Builds the profile from a series whose length is a whole number of
  /// weeks (period = slots per week, default 336).  Requires >= 2 weeks.
  explicit WeeklyProfile(std::span<const double> series,
                         std::size_t period = 336);

  std::size_t period() const { return period_; }

  /// Mean demand at slot-of-week `s`.
  double mean(std::size_t s) const { return means_[s % period_]; }

  /// Standard deviation of demand at slot-of-week `s` (sample stddev across
  /// weeks; 0 if constant).
  double stddev(std::size_t s) const { return stddevs_[s % period_]; }

  const std::vector<double>& means() const { return means_; }

  /// z-score of a reading at slot-of-week `s` (0 when the slot is constant).
  double zscore(std::size_t s, double value) const;

 private:
  std::size_t period_;
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace fdeta::ts
