// Autoregressive model fitting: Yule-Walker (from the ACF) and conditional
// OLS.  The OLS variant is stage 1 of the Hannan-Rissanen ARIMA fit.
#pragma once

#include <span>
#include <vector>

namespace fdeta::ts {

struct ArFit {
  double intercept = 0.0;
  std::vector<double> phi;        ///< AR coefficients phi_1..phi_p
  std::vector<double> residuals;  ///< conditional residuals (size n - p)
  double sigma2 = 0.0;            ///< residual variance
};

/// Fits AR(p) by conditional least squares (regression of y_t on
/// 1, y_{t-1}, ..., y_{t-p}).  Requires series.size() > 2 * p.
ArFit fit_ar_ols(std::span<const double> series, std::size_t p);

/// Fits AR(p) via Yule-Walker equations (no intercept; series is demeaned
/// internally and the implied intercept is reported).
ArFit fit_ar_yule_walker(std::span<const double> series, std::size_t p);

}  // namespace fdeta::ts
