#include "timeseries/arima.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/matrix.h"
#include "stats/ols.h"
#include "timeseries/ar.h"
#include "timeseries/difference.h"

namespace fdeta::ts {

namespace {

constexpr double kMaxArSum = 0.98;

/// History depth required in the differenced series.
std::size_t z_depth_of(const ArimaOrder& order) {
  return std::max(order.p, order.sp * order.season);
}

/// The model's prediction of z_t given access to z_{t-1}..., e_{t-1}...
/// via the accessor lambdas (index 1 = most recent).
template <typename ZAt, typename EAt>
double predict(const ArimaOrder& order, double intercept,
               const std::vector<double>& phi, const std::vector<double>& sphi,
               const std::vector<double>& theta, ZAt&& z_at, EAt&& e_at) {
  double pred = intercept;
  for (std::size_t j = 0; j < order.p; ++j) pred += phi[j] * z_at(j + 1);
  for (std::size_t j = 0; j < order.sp; ++j) {
    pred += sphi[j] * z_at((j + 1) * order.season);
  }
  for (std::size_t j = 0; j < order.q; ++j) pred += theta[j] * e_at(j + 1);
  return pred;
}

}  // namespace

ArimaModel ArimaModel::fit(std::span<const double> series, ArimaOrder order) {
  require(order.d == 0 || order.d == 1, "ArimaModel: only d in {0,1} supported");
  require(order.p + order.q + order.sp >= 1,
          "ArimaModel: p + q + sp must be >= 1");
  require(order.sp == 0 || order.season >= 2,
          "ArimaModel: seasonal period must be >= 2");
  const std::size_t depth = z_depth_of(order);
  const std::size_t min_len =
      2 * (order.p + order.q + order.sp) + 24 + order.d + depth;
  require(series.size() >= min_len, "ArimaModel: series too short for order");

  const std::vector<double> z = difference_n(series, order.d);
  const std::size_t n = z.size();

  ArimaModel model;
  model.order_ = order;

  if (order.q == 0 && order.sp == 0) {
    // Pure AR: single OLS stage.
    const ArFit ar = fit_ar_ols(z, order.p);
    model.intercept_ = ar.intercept;
    model.phi_ = ar.phi;
  } else {
    // Stage 1: long AR to estimate innovations (covering the seasonal lag
    // when seasonal terms are requested).
    const std::size_t m_want = std::max<std::size_t>(
        {20, 2 * (order.p + order.q), order.sp > 0 ? order.season + 2 : 0});
    const std::size_t m =
        std::max<std::size_t>(1, std::min<std::size_t>(m_want, n / 4));
    const ArFit long_ar = fit_ar_ols(z, m);
    std::vector<double> e(n, 0.0);
    for (std::size_t t = m; t < n; ++t) e[t] = long_ar.residuals[t - m];

    // Stage 2: regress z_t on [1, z lags, seasonal z lags, e lags].
    const std::size_t t0 = std::max(depth, m + order.q);
    require(n > t0 + order.p + order.q + order.sp + 2,
            "ArimaModel: series too short");
    const std::size_t rows = n - t0;
    const std::size_t cols = 1 + order.p + order.sp + order.q;
    stats::Matrix x(rows, cols);
    std::vector<double> y(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t t = t0 + r;
      std::size_t c = 0;
      x(r, c++) = 1.0;
      for (std::size_t j = 0; j < order.p; ++j) x(r, c++) = z[t - 1 - j];
      for (std::size_t j = 0; j < order.sp; ++j) {
        x(r, c++) = z[t - (j + 1) * order.season];
      }
      for (std::size_t j = 0; j < order.q; ++j) x(r, c++) = e[t - 1 - j];
      y[r] = z[t];
    }
    const auto fit = stats::ols(x, y);
    std::size_t c = 0;
    model.intercept_ = fit.beta[c++];
    model.phi_.assign(fit.beta.begin() + c, fit.beta.begin() + c + order.p);
    c += order.p;
    model.sphi_.assign(fit.beta.begin() + c, fit.beta.begin() + c + order.sp);
    c += order.sp;
    model.theta_.assign(fit.beta.begin() + c, fit.beta.end());
  }

  // Clamp the total AR weight (plain + seasonal) to keep the forecaster
  // mean-reverting, preserving the implied process mean.
  double ar_sum = 0.0;
  for (double v : model.phi_) ar_sum += v;
  for (double v : model.sphi_) ar_sum += v;
  if (ar_sum > kMaxArSum) {
    const double implied_mean = model.intercept_ / (1.0 - ar_sum);
    const double scale = kMaxArSum / ar_sum;
    for (double& v : model.phi_) v *= scale;
    for (double& v : model.sphi_) v *= scale;
    model.intercept_ = implied_mean * (1.0 - kMaxArSum);
  }
  for (double& t : model.theta_) t = std::clamp(t, -0.98, 0.98);

  // The sum clamp does not guarantee stability for mixed-sign polynomials
  // (a root can sit outside the unit circle while the coefficients sum
  // below 1).  Check the impulse response of the AR recursion and shrink
  // all AR coefficients geometrically until it decays - a stable forecaster
  // is non-negotiable: the detectors feed it attacker-controlled streams.
  const std::size_t ir_depth = z_depth_of(order);
  if (ir_depth > 0) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      double peak_tail = 0.0;
      const std::size_t steps = 8 * ir_depth + 64;
      std::vector<double> hist(ir_depth, 0.0);
      hist[0] = 1.0;  // unit impulse
      for (std::size_t step = 1; step < steps; ++step) {
        double next = 0.0;
        for (std::size_t j = 0; j < order.p; ++j) {
          next += model.phi_[j] * hist[j];
        }
        for (std::size_t j = 0; j < order.sp; ++j) {
          const std::size_t lag = (j + 1) * order.season;
          if (lag <= hist.size()) next += model.sphi_[j] * hist[lag - 1];
        }
        for (std::size_t k = hist.size(); k-- > 1;) hist[k] = hist[k - 1];
        hist[0] = next;
        if (step + 2 * ir_depth >= steps) {
          peak_tail = std::max(peak_tail, std::abs(next));
        }
      }
      if (peak_tail < 0.5) break;  // decayed: stable enough
      const double implied_mean = model.process_mean();
      for (double& v : model.phi_) v *= 0.9;
      for (double& v : model.sphi_) v *= 0.9;
      double new_sum = 0.0;
      for (double v : model.phi_) new_sum += v;
      for (double v : model.sphi_) new_sum += v;
      model.intercept_ = implied_mean * (1.0 - new_sum);
    }
  }

  // Final residual pass with the (possibly clamped) parameters for sigma2.
  const std::size_t start = std::max(depth, order.q);
  std::vector<double> e(n, 0.0);
  double ssr = 0.0;
  std::size_t count = 0;
  for (std::size_t t = start; t < n; ++t) {
    const double pred = predict(
        order, model.intercept_, model.phi_, model.sphi_, model.theta_,
        [&](std::size_t lag) { return z[t - lag]; },
        [&](std::size_t lag) { return e[t - lag]; });
    e[t] = z[t] - pred;
    ssr += e[t] * e[t];
    ++count;
  }
  const std::size_t params = order.p + order.sp + order.q + 1;
  const std::size_t dof = count > params ? count - params : 1;
  model.sigma2_ = ssr / static_cast<double>(dof);
  if (model.sigma2_ <= 0.0 || !std::isfinite(model.sigma2_)) {
    throw NumericalError("ArimaModel: degenerate residual variance");
  }
  return model;
}

double ArimaModel::process_mean() const {
  double ar_sum = 0.0;
  for (double v : phi_) ar_sum += v;
  for (double v : sphi_) ar_sum += v;
  return intercept_ / (1.0 - ar_sum);
}

RollingForecaster ArimaModel::forecaster(
    std::span<const double> history) const {
  return RollingForecaster(*this, history);
}

RollingForecaster::RollingForecaster(const ArimaModel& model,
                                     std::span<const double> history)
    : order_(model.order()),
      intercept_(model.intercept()),
      phi_(model.ar()),
      theta_(model.ma()),
      sphi_(model.seasonal_ar()),
      z_depth_(std::max<std::size_t>(z_depth_of(order_), 1)) {
  const std::size_t need = z_depth_ + order_.q + order_.d + 1;
  require(history.size() >= need, "RollingForecaster: history too short");
  stddev_ = std::sqrt(model.sigma2());

  const std::vector<double> z = difference_n(history, order_.d);
  last_raw_ = history.back();

  // Warm up residual state by replaying the history through the recursion.
  std::vector<double> e(z.size(), 0.0);
  const std::size_t start = std::max(z_depth_, order_.q);
  for (std::size_t t = start; t < z.size(); ++t) {
    const double pred = predict(
        order_, intercept_, phi_, sphi_, theta_,
        [&](std::size_t lag) { return z[t - lag]; },
        [&](std::size_t lag) { return e[t - lag]; });
    e[t] = z[t] - pred;
  }
  for (std::size_t j = 0; j < z_depth_; ++j) {
    z_tail_.push_back(z[z.size() - 1 - j]);
  }
  for (std::size_t j = 0; j < order_.q; ++j) {
    e_tail_.push_back(e[e.size() - 1 - j]);
  }
}

double RollingForecaster::forecast_differenced() const {
  return predict(
      order_, intercept_, phi_, sphi_, theta_,
      [&](std::size_t lag) { return z_tail_[lag - 1]; },
      [&](std::size_t lag) { return e_tail_[lag - 1]; });
}

Forecast RollingForecaster::next() const {
  const double dz = forecast_differenced();
  Forecast f;
  f.mean = order_.d == 0 ? dz : last_raw_ + dz;
  f.stddev = stddev_;
  return f;
}

void RollingForecaster::observe(double actual) {
  const double dz_hat = forecast_differenced();
  const double dz = order_.d == 0 ? actual : actual - last_raw_;
  const double residual = dz - dz_hat;
  z_tail_.push_front(dz);
  z_tail_.pop_back();
  if (!theta_.empty()) {
    e_tail_.push_front(residual);
    e_tail_.pop_back();
  }
  last_raw_ = actual;
}

}  // namespace fdeta::ts
