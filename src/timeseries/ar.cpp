#include "timeseries/ar.h"

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/matrix.h"
#include "stats/ols.h"
#include "timeseries/acf.h"

namespace fdeta::ts {

ArFit fit_ar_ols(std::span<const double> series, std::size_t p) {
  require(p >= 1, "fit_ar_ols: p must be >= 1");
  require(series.size() > 2 * p, "fit_ar_ols: series too short");

  const std::size_t n = series.size() - p;
  stats::Matrix x(n, p + 1);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    x(t, 0) = 1.0;
    for (std::size_t j = 0; j < p; ++j) {
      x(t, j + 1) = series[p + t - 1 - j];
    }
    y[t] = series[p + t];
  }
  const auto fit = stats::ols(x, y);

  ArFit out;
  out.intercept = fit.beta[0];
  out.phi.assign(fit.beta.begin() + 1, fit.beta.end());
  out.residuals = fit.residuals;
  out.sigma2 = fit.sigma2;
  return out;
}

ArFit fit_ar_yule_walker(std::span<const double> series, std::size_t p) {
  require(p >= 1, "fit_ar_yule_walker: p must be >= 1");
  require(series.size() > p + 1, "fit_ar_yule_walker: series too short");

  const auto r = acf(series, p);
  // Toeplitz system R phi = r with R[i][j] = r_{|i-j|} (r_0 = 1).
  stats::Matrix toeplitz(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      toeplitz(i, j) = i == j ? 1.0 : r[(i > j ? i - j : j - i) - 1];
    }
  }
  std::vector<double> rhs(r.begin(), r.end());
  auto phi = stats::lu_solve(toeplitz, rhs);

  ArFit out;
  out.phi = std::move(phi);
  const double m = stats::mean(series);
  double phi_sum = 0.0;
  for (double c : out.phi) phi_sum += c;
  out.intercept = m * (1.0 - phi_sum);

  // Conditional residuals for sigma2.
  double ssr = 0.0;
  std::size_t count = 0;
  out.residuals.reserve(series.size() - p);
  for (std::size_t t = p; t < series.size(); ++t) {
    double fit_val = out.intercept;
    for (std::size_t j = 0; j < p; ++j) fit_val += out.phi[j] * series[t - 1 - j];
    const double e = series[t] - fit_val;
    out.residuals.push_back(e);
    ssr += e * e;
    ++count;
  }
  out.sigma2 = count > p ? ssr / static_cast<double>(count - p) : ssr;
  return out;
}

}  // namespace fdeta::ts
