#include "timeseries/difference.h"

#include "common/error.h"

namespace fdeta::ts {

std::vector<double> difference(std::span<const double> series) {
  require(series.size() >= 2, "difference: need at least two points");
  std::vector<double> out(series.size() - 1);
  for (std::size_t t = 0; t + 1 < series.size(); ++t) {
    out[t] = series[t + 1] - series[t];
  }
  return out;
}

std::vector<double> difference_n(std::span<const double> series, int times) {
  require(times >= 0, "difference_n: negative order");
  std::vector<double> out(series.begin(), series.end());
  for (int i = 0; i < times; ++i) out = difference(out);
  return out;
}

std::vector<double> undifference(std::span<const double> diffs, double anchor) {
  std::vector<double> out(diffs.size());
  double level = anchor;
  for (std::size_t t = 0; t < diffs.size(); ++t) {
    level += diffs[t];
    out[t] = level;
  }
  return out;
}

}  // namespace fdeta::ts
