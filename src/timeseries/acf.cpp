#include "timeseries/acf.h"

#include "common/error.h"
#include "stats/descriptive.h"

namespace fdeta::ts {

std::vector<double> acf(std::span<const double> series, std::size_t max_lag) {
  require(max_lag >= 1, "acf: max_lag must be >= 1");
  require(series.size() > max_lag, "acf: series too short for max_lag");
  const double m = stats::mean(series);
  double denom = 0.0;
  for (double x : series) denom += (x - m) * (x - m);
  require(denom > 0.0, "acf: constant series");

  std::vector<double> out(max_lag);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (std::size_t t = lag; t < series.size(); ++t) {
      num += (series[t] - m) * (series[t - lag] - m);
    }
    out[lag - 1] = num / denom;
  }
  return out;
}

std::vector<double> pacf(std::span<const double> series, std::size_t max_lag) {
  const auto r = acf(series, max_lag);
  // Durbin-Levinson recursion; phi[k][j] are AR(k) coefficients.
  std::vector<double> out(max_lag);
  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi_curr(max_lag + 1, 0.0);

  phi_prev[1] = r[0];
  out[0] = r[0];
  double v = 1.0 - r[0] * r[0];
  for (std::size_t k = 2; k <= max_lag; ++k) {
    double num = r[k - 1];
    for (std::size_t j = 1; j < k; ++j) num -= phi_prev[j] * r[k - 1 - j];
    const double phi_kk = v > 1e-15 ? num / v : 0.0;
    phi_curr[k] = phi_kk;
    for (std::size_t j = 1; j < k; ++j) {
      phi_curr[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
    }
    v *= (1.0 - phi_kk * phi_kk);
    out[k - 1] = phi_kk;
    phi_prev = phi_curr;
  }
  return out;
}

}  // namespace fdeta::ts
