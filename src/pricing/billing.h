// Billing (eq. 2) and the attacker/neighbor money flows of Sections IV & VI.
#pragma once

#include <span>

#include "common/units.h"
#include "pricing/tariff.h"

namespace fdeta::pricing {

/// Utility bill for a demand series starting at absolute slot `first_slot`:
///   B = sum_t lambda(t) * D(t) * Delta-t            [eq. (2) terms]
Dollars bill(std::span<const Kw> demand, const PriceSchedule& schedule,
             SlotIndex first_slot = 0);

/// Total energy of a demand series in kWh.
KWh energy(std::span<const Kw> demand);

/// Mallory's monetary advantage alpha = B(actual) - B(reported), eq. (2).
/// Positive iff the attack condition (1) holds.
Dollars attacker_profit(std::span<const Kw> actual,
                        std::span<const Kw> reported,
                        const PriceSchedule& schedule,
                        SlotIndex first_slot = 0);

/// Energy stolen: sum of positive under-reports (actual minus reported where
/// actual > reported), in kWh.  For Attack Class 1B the same quantity on the
/// *neighbor's* series (reported minus actual) is the energy billed to the
/// victim.
KWh energy_under_reported(std::span<const Kw> actual,
                          std::span<const Kw> reported);

/// Victim's loss L_n = Delta-t * sum_t lambda(t) * (D'_n(t) - D_n(t)),
/// eq. (10).
Dollars neighbor_loss(std::span<const Kw> actual, std::span<const Kw> reported,
                      const PriceSchedule& schedule, SlotIndex first_slot = 0);

/// Attack condition (1): sum_t lambda(t) [D(t) - D'(t)] > 0.
bool attack_condition_holds(std::span<const Kw> actual,
                            std::span<const Kw> reported,
                            const PriceSchedule& schedule,
                            SlotIndex first_slot = 0);

}  // namespace fdeta::pricing
