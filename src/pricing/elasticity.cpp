#include "pricing/elasticity.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::pricing {

OwnElasticity::OwnElasticity(double elasticity, DollarsPerKWh reference_price)
    : elasticity_(elasticity), reference_price_(reference_price) {
  require(elasticity >= 0.0, "OwnElasticity: elasticity must be >= 0");
  require(reference_price > 0.0, "OwnElasticity: reference price must be > 0");
}

Kw OwnElasticity::respond(Kw baseline_demand, DollarsPerKWh price) const {
  require(price > 0.0, "OwnElasticity::respond: price must be > 0");
  return baseline_demand * std::pow(price / reference_price_, -elasticity_);
}

}  // namespace fdeta::pricing
