#include "pricing/statement.h"

#include <cstdio>

#include "common/error.h"

namespace fdeta::pricing {

Statement make_statement(std::span<const Kw> demand,
                         const PriceSchedule& schedule, SlotIndex first_slot) {
  Statement s;
  s.first_slot = first_slot;
  s.slots = demand.size();
  for (std::size_t t = 0; t < demand.size(); ++t) {
    const SlotIndex slot = first_slot + t;
    const KWh energy = slot_energy(demand[t]);
    const Dollars charge = schedule.price(slot) * energy;
    if (schedule.is_peak(slot)) {
      s.peak_kwh += energy;
      s.peak_charge += charge;
    } else {
      s.off_peak_kwh += energy;
      s.off_peak_charge += charge;
    }
  }
  return s;
}

StatementImpact statement_impact(std::span<const Kw> actual,
                                 std::span<const Kw> reported,
                                 const PriceSchedule& schedule,
                                 SlotIndex first_slot) {
  require(actual.size() == reported.size(), "statement_impact: size mismatch");
  StatementImpact impact;
  impact.honest = make_statement(actual, schedule, first_slot);
  impact.billed = make_statement(reported, schedule, first_slot);
  impact.overbilled =
      impact.billed.total_charge() - impact.honest.total_charge();
  return impact;
}

std::string format_statement(const Statement& statement) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "peak     %8.1f kWh  $%8.2f\n"
                "off-peak %8.1f kWh  $%8.2f\n"
                "total    %8.1f kWh  $%8.2f",
                statement.peak_kwh, statement.peak_charge,
                statement.off_peak_kwh, statement.off_peak_charge,
                statement.total_kwh(), statement.total_charge());
  return buffer;
}

}  // namespace fdeta::pricing
