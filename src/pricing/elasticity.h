// Automated Demand Response (ADR) and the Consumer Own Elasticity model
// (ref [26]): consumption is a monotonically decreasing function of price.
//
// Attack Class 4B compromises a neighbor's ADR interface by inflating the
// price signal lambda'_n(t) > lambda(t), so the victim's ADR automatically
// curtails demand; Mallory consumes the freed power while the balance check
// still passes.
#pragma once

#include "common/units.h"

namespace fdeta::pricing {

/// Constant-elasticity demand response:
///   D(lambda) = D_base * (lambda / lambda_ref)^(-elasticity)
/// with elasticity > 0, so demand strictly decreases in price.
class OwnElasticity {
 public:
  /// Requires elasticity >= 0 and reference_price > 0.
  OwnElasticity(double elasticity, DollarsPerKWh reference_price);

  double elasticity() const { return elasticity_; }

  /// Demand after responding to `price`, given the baseline demand the
  /// consumer would have had at the reference price.
  Kw respond(Kw baseline_demand, DollarsPerKWh price) const;

 private:
  double elasticity_;
  DollarsPerKWh reference_price_;
};

/// A consumer-side ADR controller: applies the elasticity model to each
/// slot's baseline demand using the (possibly compromised) price signal it
/// receives.
class AdrInterface {
 public:
  explicit AdrInterface(OwnElasticity model) : model_(model) {}

  /// The demand the consumer actually draws when shown `signalled_price`.
  Kw actual_demand(Kw baseline_demand, DollarsPerKWh signalled_price) const {
    return model_.respond(baseline_demand, signalled_price);
  }

  const OwnElasticity& model() const { return model_; }

 private:
  OwnElasticity model_;
};

}  // namespace fdeta::pricing
