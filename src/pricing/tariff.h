// Electricity pricing schemes (Section III): flat-rate, time-of-use (TOU),
// and real-time pricing (RTP).  A PriceSchedule maps a slot index to the
// price lambda(t) in $/kWh.
//
// The evaluation's TOU scheme follows Electric Ireland's Nightsaver plan
// (Section VIII-C): peak 09:00-24:00 at 0.21 $/kWh, off-peak 00:00-09:00 at
// 0.18 $/kWh.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace fdeta::pricing {

/// Interface: price during polling period `slot`.
class PriceSchedule {
 public:
  virtual ~PriceSchedule() = default;

  /// Price lambda(t) in $/kWh for the given absolute slot index.
  virtual DollarsPerKWh price(SlotIndex slot) const = 0;

  /// Whether the slot is inside a designated peak window (always false for
  /// schemes without a peak/off-peak structure).
  virtual bool is_peak(SlotIndex /*slot*/) const { return false; }
};

/// Constant price over the whole billing cycle.
class FlatRate final : public PriceSchedule {
 public:
  explicit FlatRate(DollarsPerKWh rate);
  DollarsPerKWh price(SlotIndex) const override { return rate_; }

 private:
  DollarsPerKWh rate_;
};

/// Two-period daily TOU: [peak_start_hour, peak_end_hour) is peak, the rest
/// off-peak.  peak_end_hour may be 24 (midnight).
class TimeOfUse final : public PriceSchedule {
 public:
  TimeOfUse(DollarsPerKWh peak_rate, DollarsPerKWh off_peak_rate,
            double peak_start_hour, double peak_end_hour);

  DollarsPerKWh price(SlotIndex slot) const override;
  bool is_peak(SlotIndex slot) const override;

  DollarsPerKWh peak_rate() const { return peak_rate_; }
  DollarsPerKWh off_peak_rate() const { return off_peak_rate_; }

 private:
  DollarsPerKWh peak_rate_;
  DollarsPerKWh off_peak_rate_;
  int peak_start_slot_;
  int peak_end_slot_;
};

/// The paper's Nightsaver-based TOU scheme: 0.21 $/kWh from 09:00 to
/// midnight, 0.18 $/kWh from midnight to 09:00.
TimeOfUse nightsaver();

/// Real-time pricing: an explicit per-slot price stream.
class RealTimePricing final : public PriceSchedule {
 public:
  explicit RealTimePricing(std::vector<DollarsPerKWh> prices);

  DollarsPerKWh price(SlotIndex slot) const override;
  std::size_t horizon() const { return prices_.size(); }

  /// Peak = price above the stream's mean.
  bool is_peak(SlotIndex slot) const override;

  /// Generates a mean-reverting lognormal price stream around `base` with
  /// a diurnal component (prices higher in the evening), for the Attack
  /// Class 4B study.
  static RealTimePricing simulate(std::size_t slots, DollarsPerKWh base,
                                  Rng& rng);

 private:
  std::vector<DollarsPerKWh> prices_;
  DollarsPerKWh mean_ = 0.0;
};

}  // namespace fdeta::pricing
