#include "pricing/tariff.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::pricing {

FlatRate::FlatRate(DollarsPerKWh rate) : rate_(rate) {
  require(rate >= 0.0, "FlatRate: negative rate");
}

TimeOfUse::TimeOfUse(DollarsPerKWh peak_rate, DollarsPerKWh off_peak_rate,
                     double peak_start_hour, double peak_end_hour)
    : peak_rate_(peak_rate), off_peak_rate_(off_peak_rate) {
  require(peak_rate >= 0.0 && off_peak_rate >= 0.0, "TimeOfUse: negative rate");
  require(peak_start_hour >= 0.0 && peak_start_hour < peak_end_hour &&
              peak_end_hour <= 24.0,
          "TimeOfUse: invalid peak window");
  peak_start_slot_ = static_cast<int>(peak_start_hour * kSlotsPerHour);
  peak_end_slot_ = static_cast<int>(peak_end_hour * kSlotsPerHour);
}

bool TimeOfUse::is_peak(SlotIndex slot) const {
  const int s = slot_of_day(slot);
  return s >= peak_start_slot_ && s < peak_end_slot_;
}

DollarsPerKWh TimeOfUse::price(SlotIndex slot) const {
  return is_peak(slot) ? peak_rate_ : off_peak_rate_;
}

TimeOfUse nightsaver() {
  return TimeOfUse(/*peak_rate=*/0.21, /*off_peak_rate=*/0.18,
                   /*peak_start_hour=*/9.0, /*peak_end_hour=*/24.0);
}

RealTimePricing::RealTimePricing(std::vector<DollarsPerKWh> prices)
    : prices_(std::move(prices)) {
  require(!prices_.empty(), "RealTimePricing: empty price stream");
  double total = 0.0;
  for (double p : prices_) {
    require(p >= 0.0, "RealTimePricing: negative price");
    total += p;
  }
  mean_ = total / static_cast<double>(prices_.size());
}

DollarsPerKWh RealTimePricing::price(SlotIndex slot) const {
  require(slot < prices_.size(), "RealTimePricing: slot beyond horizon");
  return prices_[slot];
}

bool RealTimePricing::is_peak(SlotIndex slot) const {
  return price(slot) > mean_;
}

RealTimePricing RealTimePricing::simulate(std::size_t slots,
                                          DollarsPerKWh base, Rng& rng) {
  require(slots >= 1, "RealTimePricing::simulate: need at least one slot");
  std::vector<DollarsPerKWh> prices(slots);
  double log_dev = 0.0;  // mean-reverting log-deviation from base
  for (std::size_t t = 0; t < slots; ++t) {
    // Diurnal shape: market prices peak in the evening.
    const double hour = hour_of_day(t);
    const double diurnal = 1.0 + 0.25 * std::sin((hour - 6.0) / 24.0 * 2.0 *
                                                 3.14159265358979);
    log_dev = 0.95 * log_dev + rng.normal(0.0, 0.05);
    prices[t] = base * diurnal * std::exp(log_dev);
  }
  return RealTimePricing(std::move(prices));
}

}  // namespace fdeta::pricing
