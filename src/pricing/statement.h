// Billing statements: the consumer-facing artifact of eq. (2).
//
// The attack model is ultimately about money on bills (Section IV: Mallory
// profits "at the expense of the utility or her neighbors"), so the library
// can render what each party is actually charged: a per-cycle statement
// with peak/off-peak breakdown, and a comparison report quantifying the
// impact of an integrity attack on a statement (what the victim was
// over-billed, eq. (10); what Mallory dodged, eq. (2)).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/units.h"
#include "pricing/tariff.h"

namespace fdeta::pricing {

/// One billing cycle's statement for a consumer.
struct Statement {
  SlotIndex first_slot = 0;
  std::size_t slots = 0;

  KWh peak_kwh = 0.0;
  KWh off_peak_kwh = 0.0;
  Dollars peak_charge = 0.0;
  Dollars off_peak_charge = 0.0;

  KWh total_kwh() const { return peak_kwh + off_peak_kwh; }
  Dollars total_charge() const { return peak_charge + off_peak_charge; }
};

/// Builds the statement for `demand` starting at `first_slot` under
/// `schedule`.  Slots the schedule marks as peak accumulate into the peak
/// bucket, the rest into off-peak (flat-rate schedules bill everything
/// off-peak).
Statement make_statement(std::span<const Kw> demand,
                         const PriceSchedule& schedule,
                         SlotIndex first_slot = 0);

/// The delta between what a consumer is billed on reported readings and
/// what honest metering would have billed.
struct StatementImpact {
  Statement honest;    ///< from actual consumption
  Statement billed;    ///< from reported readings
  Dollars overbilled = 0.0;  ///< billed - honest (positive: victim pays more)

  bool is_victim() const { return overbilled > 0.0; }
  bool is_beneficiary() const { return overbilled < 0.0; }
};

StatementImpact statement_impact(std::span<const Kw> actual,
                                 std::span<const Kw> reported,
                                 const PriceSchedule& schedule,
                                 SlotIndex first_slot = 0);

/// Renders a human-readable statement block (used by examples/CLI output).
std::string format_statement(const Statement& statement);

}  // namespace fdeta::pricing
