#include "pricing/billing.h"

#include "common/error.h"

namespace fdeta::pricing {

Dollars bill(std::span<const Kw> demand, const PriceSchedule& schedule,
             SlotIndex first_slot) {
  Dollars total = 0.0;
  for (std::size_t t = 0; t < demand.size(); ++t) {
    total += schedule.price(first_slot + t) * demand[t] * kHoursPerSlot;
  }
  return total;
}

KWh energy(std::span<const Kw> demand) {
  KWh total = 0.0;
  for (double kw : demand) total += slot_energy(kw);
  return total;
}

Dollars attacker_profit(std::span<const Kw> actual,
                        std::span<const Kw> reported,
                        const PriceSchedule& schedule, SlotIndex first_slot) {
  require(actual.size() == reported.size(), "attacker_profit: size mismatch");
  return bill(actual, schedule, first_slot) -
         bill(reported, schedule, first_slot);
}

KWh energy_under_reported(std::span<const Kw> actual,
                          std::span<const Kw> reported) {
  require(actual.size() == reported.size(),
          "energy_under_reported: size mismatch");
  KWh total = 0.0;
  for (std::size_t t = 0; t < actual.size(); ++t) {
    if (actual[t] > reported[t]) total += slot_energy(actual[t] - reported[t]);
  }
  return total;
}

Dollars neighbor_loss(std::span<const Kw> actual, std::span<const Kw> reported,
                      const PriceSchedule& schedule, SlotIndex first_slot) {
  require(actual.size() == reported.size(), "neighbor_loss: size mismatch");
  Dollars total = 0.0;
  for (std::size_t t = 0; t < actual.size(); ++t) {
    total += schedule.price(first_slot + t) * (reported[t] - actual[t]) *
             kHoursPerSlot;
  }
  return total;
}

bool attack_condition_holds(std::span<const Kw> actual,
                            std::span<const Kw> reported,
                            const PriceSchedule& schedule,
                            SlotIndex first_slot) {
  return attacker_profit(actual, reported, schedule, first_slot) > 0.0;
}

}  // namespace fdeta::pricing
