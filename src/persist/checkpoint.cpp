#include "persist/checkpoint.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "obs/trace.h"

namespace fdeta::persist {

const char* to_string(Section section) {
  switch (section) {
    case Section::kPipeline: return "pipeline";
    case Section::kOnlineMonitor: return "online-monitor";
  }
  return "?";
}

void write_checkpoint(std::ostream& out, Section section,
                      std::string_view payload) {
  obs::TraceSpan span("persist.write_checkpoint", "persist");
  Encoder header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(section));
  header.u64(payload.size());
  header.u64(fnv1a64(payload));

  out.write(header.bytes().data(),
            static_cast<std::streamsize>(header.bytes().size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw DataError("checkpoint: write failed");
}

std::string read_checkpoint(std::istream& in, Section expected_section,
                            std::uint32_t* version_out) {
  obs::TraceSpan span("persist.read_checkpoint", "persist");
  std::string magic(kMagic.size(), '\0');
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (!in || magic != kMagic) {
    throw DataError("checkpoint: bad magic (not a model checkpoint)");
  }

  // Header fields after the magic: version, section, size, checksum.
  std::string fixed(4 + 4 + 8 + 8, '\0');
  in.read(fixed.data(), static_cast<std::streamsize>(fixed.size()));
  if (!in) throw DataError("checkpoint: truncated header");
  Decoder header(fixed);
  const std::uint32_t version = header.u32();
  if (version < kMinReadVersion || version > kFormatVersion) {
    throw DataError("checkpoint: format version " + std::to_string(version) +
                    " unsupported (this build reads versions " +
                    std::to_string(kMinReadVersion) + ".." +
                    std::to_string(kFormatVersion) + "); refit the model");
  }
  if (version_out != nullptr) *version_out = version;
  const std::uint32_t section = header.u32();
  if (section != static_cast<std::uint32_t>(expected_section)) {
    throw DataError("checkpoint: holds section " + std::to_string(section) +
                    ", expected " +
                    std::string(to_string(expected_section)));
  }
  const std::uint64_t size = header.u64();
  const std::uint64_t checksum = header.u64();

  std::string payload(static_cast<std::size_t>(size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (in.gcount() != static_cast<std::streamsize>(size)) {
    throw DataError("checkpoint: truncated payload (header promised " +
                    std::to_string(size) + " bytes, got " +
                    std::to_string(in.gcount()) + ")");
  }
  if (fnv1a64(payload) != checksum) {
    throw DataError("checkpoint: payload checksum mismatch (corrupted file)");
  }
  return payload;
}

void save_checkpoint_file(const std::string& path, Section section,
                          std::string_view payload) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw DataError("checkpoint: cannot open " + path +
                            " for writing");
  write_checkpoint(out, section, payload);
}

std::string load_checkpoint_file(const std::string& path,
                                 Section expected_section) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DataError("checkpoint: cannot open " + path);
  return read_checkpoint(in, expected_section);
}

}  // namespace fdeta::persist
