// Endian-stable binary encoding primitives for model checkpoints.
//
// Fitted pipeline state (histogram edges, baseline distributions, training
// KLD vectors, thresholds, monitor windows) must restore bit-exactly on any
// host, so every integer is written byte-by-byte least-significant-first and
// every double travels as the little-endian bytes of its IEEE-754 bit
// pattern - the in-memory representation never leaks into the format.
//
// Encoder appends to an in-memory buffer (the checkpoint framing in
// checkpoint.h checksums and writes it in one piece); Decoder walks a byte
// view with bounds checks and throws DataError on any overrun, so a
// truncated or corrupted payload can never read uninitialised memory.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fdeta::persist {

/// Appends fixed-width little-endian values to a growing byte buffer.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern, little-endian (bit-exact round trip).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// Element count (u64) followed by each element as f64.
  void doubles(std::span<const double> values);
  /// Byte length (u64) followed by the raw bytes (detector ids and config
  /// fingerprints in v4 checkpoints).
  void str(std::string_view value);

  /// Bulk raw arrays WITHOUT a leading count: the caller's schema fixes the
  /// element count (e.g. consumers x slots-per-week), so the decoder can
  /// read the whole block in one bounds-checked memcpy instead of a
  /// per-element loop - the difference between a multi-second and a
  /// sub-second million-consumer warm start.  On a little-endian host the
  /// append IS a memcpy; the big-endian fallback keeps the format stable.
  void f64_array(std::span<const double> values);
  void u32_array(std::span<const std::uint32_t> values);
  void u8_array(std::span<const unsigned char> values);

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Reads the Encoder format back; throws DataError on overrun.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64() { return std::bit_cast<double>(u64()); }

  /// Reads a u64 count and validates it against `max_count` (a structural
  /// sanity bound - a corrupted length must not drive a multi-gigabyte
  /// allocation) and against the bytes actually remaining.
  std::size_t count(std::string_view what, std::size_t max_count);
  /// Reads a doubles() sequence.
  std::vector<double> doubles(std::string_view what, std::size_t max_count);
  /// Reads a str() sequence; `max_len` bounds the byte length.
  std::string str(std::string_view what, std::size_t max_len);

  /// Bulk reads of the countless Encoder::*_array blocks; `out.size()`
  /// elements are consumed (bounds-checked up front, single memcpy on
  /// little-endian hosts).
  void f64_array(std::span<double> out);
  void u32_array(std::span<std::uint32_t> out);
  void u8_array(std::span<unsigned char> out);

  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Throws DataError if any payload bytes were left unread (a section that
  /// decodes "successfully" but short is as corrupt as a truncated one).
  void require_exhausted(std::string_view what) const;

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit checksum over a byte string (the header checksum of
/// checkpoint.h; detects truncation and bit rot, not adversarial tampering).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace fdeta::persist
