// Checkpoint file framing for fitted models (the warm-start layer).
//
// The paper fits each detector once on the M x 336 training week-matrix and
// then scores new weeks indefinitely; a fleet head-end therefore fits
// offline (`fdeta fit --save-model`) and serving restores the fitted state
// in milliseconds (`fdeta detect --model`) instead of refitting from raw
// readings on every process start.
//
// File layout (all integers little-endian; see binary_io.h):
//
//   offset  size  field
//        0     8  magic "FDETAMDL"
//        8     4  format version (kFormatVersion)
//       12     4  section id (what model the payload holds)
//       16     8  payload size in bytes
//       24     8  FNV-1a 64 checksum of the payload bytes
//       32     -  payload (section-specific; encoded via persist::Encoder)
//
// Compatibility policy: the version is bumped on ANY payload layout change.
// Writers always emit kFormatVersion; readers accept the window
// [kMinReadVersion, kFormatVersion] and surface the actual version so each
// section decoder can pick the matching layout (v2 checkpoints written by
// older builds restore bit-exactly - a refit is cheap, but a fleet refit of
// a million consumers is not). Anything outside the window is rejected
// outright; there is no in-place migration of the bytes themselves. Readers
// validate magic -> version -> section -> size -> checksum in that order,
// then require the section decoder to consume the payload exactly.
// Conventions follow src/grid/serialize.*: free save/load functions,
// DataError on every structural violation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "persist/binary_io.h"

namespace fdeta::persist {

inline constexpr std::string_view kMagic = "FDETAMDL";
// v2: OnlineMonitor payload gained the per-consumer missing mask and the
// coverage-gate threshold.
// v3: KLD detector payloads carry the out-of-support binning flag, and the
// OnlineMonitor payload switched to the Struct-of-Arrays fleet layout
// (uniform detector config + bulk per-field arrays) so a large-fleet warm
// start is bulk reads instead of a per-consumer decode pass.
// v4: pipeline and monitor payloads lead their detector block with the
// registry id of the detector family (core/detector_registry.h), so a
// checkpoint can hold any registered ScoringDetector; "kld" fleets keep the
// v3 bulk Struct-of-Arrays layout, other families add a uniform config
// fingerprint followed by consecutive per-consumer save_state payloads.
// v2/v3 payloads carry no id and decode as "kld".
// v5: score-calibration state.  "ckld" payloads append the training weeks'
// scalar margins (the calibration reference); "iforest" payloads carry the
// contamination knob after the significance.  The other families rebuild
// their calibration from state persisted since v2 (training divergences +
// threshold + significance).  Pre-v5 ckld payloads calibrate anchored at
// the margin threshold alone - same flags, coarser sub-threshold scores.
// v6: the OnlineMonitor payload ends with a feeder-hierarchy block behind a
// presence flag (per-node detector fleet, rolling baselines, deviations,
// consumer training means; see grid/hierarchy/feeder_monitor.h).  Pre-v6
// payloads restore with no hierarchy state.
inline constexpr std::uint32_t kFormatVersion = 6;
/// Oldest version this build still reads (see the per-section decoders).
inline constexpr std::uint32_t kMinReadVersion = 2;

/// What fitted model a checkpoint holds. A reader asks for the section it
/// expects; a pipeline checkpoint can never be restored into a monitor.
enum class Section : std::uint32_t {
  kPipeline = 1,       ///< FdetaPipeline (detectors + weekly stats)
  kOnlineMonitor = 2,  ///< OnlineMonitor (detectors + window state)
};

const char* to_string(Section section);

/// Writes header + checksummed payload; throws DataError on stream failure.
void write_checkpoint(std::ostream& out, Section section,
                      std::string_view payload);

/// Reads and validates a checkpoint written by write_checkpoint, returning
/// the payload bytes. Accepts format versions in
/// [kMinReadVersion, kFormatVersion] and stores the file's actual version
/// through `version` (when non-null) so the caller can decode the matching
/// payload layout. Throws DataError on bad magic, an out-of-window version,
/// section mismatch, truncation, or checksum failure.
std::string read_checkpoint(std::istream& in, Section expected_section,
                            std::uint32_t* version = nullptr);

/// Convenience file wrappers (binary mode; DataError on open failure).
void save_checkpoint_file(const std::string& path, Section section,
                          std::string_view payload);
std::string load_checkpoint_file(const std::string& path,
                                 Section expected_section);

}  // namespace fdeta::persist
