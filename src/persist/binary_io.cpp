#include "persist/binary_io.h"

#include <cstring>

#include "common/error.h"

namespace fdeta::persist {

void Encoder::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void Encoder::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void Encoder::doubles(std::span<const double> values) {
  u64(values.size());
  for (double v : values) f64(v);
}

void Encoder::str(std::string_view value) {
  u64(value.size());
  buf_.append(value.data(), value.size());
}

void Encoder::f64_array(std::span<const double> values) {
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(double));
  } else {
    for (double v : values) f64(v);
  }
}

void Encoder::u32_array(std::span<const std::uint32_t> values) {
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(values.data()),
                values.size() * sizeof(std::uint32_t));
  } else {
    for (std::uint32_t v : values) u32(v);
  }
}

void Encoder::u8_array(std::span<const unsigned char> values) {
  buf_.append(reinterpret_cast<const char*>(values.data()), values.size());
}

void Decoder::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw DataError("checkpoint: truncated payload (wanted " +
                    std::to_string(n) + " bytes, " +
                    std::to_string(bytes_.size() - pos_) + " left)");
  }
}

std::uint8_t Decoder::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_++]))
         << shift;
  }
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_++]))
         << shift;
  }
  return v;
}

std::size_t Decoder::count(std::string_view what, std::size_t max_count) {
  const std::uint64_t n = u64();
  if (n > max_count) {
    throw DataError("checkpoint: implausible " + std::string(what) +
                    " count " + std::to_string(n));
  }
  return static_cast<std::size_t>(n);
}

std::vector<double> Decoder::doubles(std::string_view what,
                                     std::size_t max_count) {
  const std::size_t n = count(what, max_count);
  need(n * sizeof(double));
  std::vector<double> out(n);
  for (auto& v : out) v = f64();
  return out;
}

std::string Decoder::str(std::string_view what, std::size_t max_len) {
  const std::size_t n = count(what, max_len);
  need(n);
  std::string out(bytes_.substr(pos_, n));
  pos_ += n;
  return out;
}

void Decoder::f64_array(std::span<double> out) {
  need(out.size() * sizeof(double));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), bytes_.data() + pos_,
                out.size() * sizeof(double));
    pos_ += out.size() * sizeof(double);
  } else {
    for (auto& v : out) v = f64();
  }
}

void Decoder::u32_array(std::span<std::uint32_t> out) {
  need(out.size() * sizeof(std::uint32_t));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), bytes_.data() + pos_,
                out.size() * sizeof(std::uint32_t));
    pos_ += out.size() * sizeof(std::uint32_t);
  } else {
    for (auto& v : out) v = u32();
  }
}

void Decoder::u8_array(std::span<unsigned char> out) {
  need(out.size());
  std::memcpy(out.data(), bytes_.data() + pos_, out.size());
  pos_ += out.size();
}

void Decoder::require_exhausted(std::string_view what) const {
  if (pos_ != bytes_.size()) {
    throw DataError("checkpoint: " + std::string(what) + " left " +
                    std::to_string(bytes_.size() - pos_) +
                    " undecoded payload bytes");
  }
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace fdeta::persist
