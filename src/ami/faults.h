// Deterministic fault injection for the AMI reporting plane.
//
// Real AMI meshes are not the perfect in-order, exactly-once channel the
// original MeterNetwork modelled: they lose, duplicate, reorder, delay, and
// corrupt reports (EnThM motivates hierarchical verification precisely
// because metering data arrives unreliably).  A FaultPlan is a seeded,
// fully deterministic composition of those failure channels - drop,
// duplicate, bounded-delay reorder, value corruption, and mesh-wide burst
// outages - that the MeterNetwork applies to every delivery attempt.
//
// Determinism contract: every decision is a pure function of
// (plan seed, consumer, slot, attempt number).  No global stream position is
// consumed, so the same plan produces byte-identical outcomes regardless of
// delivery order, retransmission history, or thread count - the chaos test
// lane (ctest -L chaos) pins this.
//
// Channels compose as stages (FaultStage) that run in order over one
// DeliveryAttempt, each drawing from the attempt's private RNG.  An existing
// attack Interceptor can be lifted into the same chain with
// interceptor_stage(), so MITM tampering and mesh faults share one
// composition model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ami/network.h"
#include "common/rng.h"

namespace fdeta::ami {

/// Tunable rates for the built-in fault channels.  All rates are per
/// delivery attempt (a retransmission re-rolls with a fresh attempt key).
struct FaultPlanConfig {
  /// P(report silently lost in the mesh).
  double drop_rate = 0.0;
  /// P(an accepted report is delivered twice with the same sequence number).
  double duplicate_rate = 0.0;
  /// P(delivery deferred by 1..max_delay_slots on the logical clock).
  double reorder_rate = 0.0;
  /// Upper bound for the reorder channel's delay queue.
  std::size_t max_delay_slots = 4;
  /// P(payload corrupted in flight: negative, absurdly large, or NaN - all
  /// shapes the head-end quarantine must catch).
  double corrupt_rate = 0.0;
  /// Mesh-wide outage windows on the logical clock: every report sent during
  /// slots [k*period, k*period + length) is lost, for all k.  0 disables.
  std::size_t burst_period_slots = 0;
  std::size_t burst_length_slots = 0;
  /// Seed for the per-attempt decision RNG.
  std::uint64_t seed = 0xC4A05u;
};

/// Parses a "key=value,key=value" spec (the CLI's --fault-plan syntax).
/// Keys: drop, dup, reorder, delay, corrupt, burst-every, burst-len, seed.
/// Throws InvalidArgument on an unknown key or malformed value.
FaultPlanConfig parse_fault_plan(const std::string& spec);

/// One delivery attempt flowing through the stage chain.  Stages mutate it:
/// a drop ends the chain, corruption rewrites the payload, duplication adds
/// extra copies, reordering defers delivery on the logical clock.
struct DeliveryAttempt {
  ReadingReport report;
  SlotIndex sent_at = 0;      ///< logical send time (slot clock)
  std::uint32_t attempt = 0;  ///< 0 = first transmission, >0 = retransmit
  bool dropped = false;
  bool corrupted = false;
  std::size_t duplicates = 0;   ///< extra copies to deliver
  std::size_t delay_slots = 0;  ///< 0 = on time
};

/// One composable fault channel.  `rng` is the attempt's private generator:
/// a pure function of (seed, consumer, slot, attempt).
using FaultStage = std::function<void(DeliveryAttempt&, Rng&)>;

/// Built-in channel factories (composed in this order by FaultPlan).
FaultStage burst_outage_stage(std::size_t period_slots,
                              std::size_t length_slots);
FaultStage drop_stage(double rate);
FaultStage corrupt_stage(double rate);
FaultStage duplicate_stage(double rate);
FaultStage reorder_stage(double rate, std::size_t max_delay_slots);

/// Lifts an attack Interceptor into the stage chain: a nullopt drop becomes
/// DeliveryAttempt::dropped, a mutation rewrites the in-flight report.
FaultStage interceptor_stage(Interceptor interceptor);

/// A seeded composition of fault stages.  Copyable; the MeterNetwork owns a
/// copy, so a plan value can be reused across networks and runs.
class FaultPlan {
 public:
  /// Builds the stage chain from `config` (channels with zero rate/period
  /// are elided, so an all-default plan is a no-op).
  explicit FaultPlan(FaultPlanConfig config = {});

  const FaultPlanConfig& config() const { return config_; }

  /// Appends a custom stage after the built-in channels.
  void add_stage(FaultStage stage);

  /// Runs the stage chain over one delivery attempt.  Deterministic: the
  /// outcome depends only on the plan seed and (consumer, slot, attempt).
  DeliveryAttempt apply(const ReadingReport& report, SlotIndex sent_at,
                        std::uint32_t attempt) const;

 private:
  Rng attempt_rng(const ReadingReport& report, std::uint32_t attempt) const;

  FaultPlanConfig config_;
  std::vector<FaultStage> stages_;
};

/// The head-end's collected view materialised for the batch pipeline:
/// readings plus an explicit per-slot missing mask, so downstream consumers
/// can gate on coverage instead of scoring imputed values.
struct CollectedReport {
  /// Missing slots hold the last received reading at the same slot-of-week
  /// position (never an imputed zero); slots never observed at that position
  /// carry 0 and are only usable behind the coverage gate.
  meter::Dataset dataset;
  /// missing[consumer][slot] != 0 for every slot the head-end never accepted.
  std::vector<std::vector<char>> missing;

  /// Per-consumer missing-slot counts for one week (coverage-gate input).
  std::vector<std::uint32_t> week_missing(std::size_t week) const;
};

/// Reads the head-end back into a dataset shaped like `shape` (ids/types are
/// copied from it; values come from the head-end).
CollectedReport collect_reported(const HeadEnd& head_end,
                                 const meter::Dataset& shape);

}  // namespace fdeta::ami
