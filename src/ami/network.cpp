#include "ami/network.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <utility>

#include "ami/faults.h"
#include "common/error.h"
#include "common/sharding.h"
#include "common/thread_pool.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fdeta::ami {

namespace {

// Per-shard metric-name cardinality budget (matches the monitor's): at most
// 64 "ami.shardNN" series; wider fleets alias onto s % 64.
constexpr std::size_t kMaxShardSeries = 64;

std::string shard_metric_name(std::size_t slot, const char* what) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ami.shard%02zu.%s", slot, what);
  return buf;
}

}  // namespace

HeadEnd::HeadEnd(std::size_t consumers, std::size_t slots,
                 obs::MetricsRegistry* metrics, HeadEndConfig config)
    : consumers_(consumers), slots_(slots), config_(config),
      missing_(consumers * slots) {
  require(std::isfinite(config_.max_plausible_kw) &&
              config_.max_plausible_kw > 0.0,
          "HeadEnd: max_plausible_kw must be positive and finite");
  values_.assign(consumers * slots, 0.0);
  received_.assign(consumers * slots, 0);
  sequences_.assign(consumers * slots, 0);
  const std::size_t hint = config_.threads != 0
                               ? config_.threads
                               : shared_pool().thread_count() + 1;
  shard_count_ = resolve_shard_count(config_.shards, consumers, hint);
  shard_locks_ = std::make_unique<std::mutex[]>(shard_count_);
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::default_registry();
  reports_received_ = &registry.counter("ami.reports_received");
  reports_overwritten_ = &registry.counter("ami.reports_overwritten");
  duplicates_suppressed_ = &registry.counter("ami.duplicates_suppressed");
  stale_rejected_ = &registry.counter("ami.reports_stale_rejected");
  quarantined_counter_ = &registry.counter("ami.reports_quarantined");
  missing_gauge_ = &registry.gauge("ami.reports_missing");
  missing_gauge_->set(static_cast<std::int64_t>(missing_count()));
  shard_imbalance_ = &registry.gauge("ami.shard_imbalance_milli");
  const std::size_t instrumented = std::min(shard_count_, kMaxShardSeries);
  shard_pending_.resize(instrumented);
  shard_highwater_.resize(instrumented);
  shard_lock_wait_.resize(instrumented);
  for (std::size_t s = 0; s < instrumented; ++s) {
    shard_pending_[s] =
        &registry.gauge(shard_metric_name(s, "pending_depth"));
    shard_highwater_[s] =
        &registry.gauge(shard_metric_name(s, "pending_highwater"));
    shard_lock_wait_[s] =
        &registry.histogram(shard_metric_name(s, "lock_wait_seconds"));
  }
  shard_received_counts_.assign(shard_count_, 0);
}

ReceiveOutcome HeadEnd::apply(const ReadingReport& report) {
  // Every delivered message is accounted here, whatever its fate, so the
  // plane-level conservation identity received == sent - dropped holds.
  reports_received_->add();

  if (!std::isfinite(report.kw) || report.kw < 0.0 ||
      report.kw > config_.max_plausible_kw) {
    // Corrupt or impossible value: never store it.  The slot stays missing,
    // so the NACK retransmit pass will ask for a clean copy.
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    quarantined_counter_->add();
    return ReceiveOutcome::kQuarantined;
  }

  const std::size_t cell = report.consumer_index * slots_ + report.slot;
  char& seen = received_[cell];
  std::uint32_t& stored = sequences_[cell];
  if (seen) {
    if (report.sequence == stored) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      duplicates_suppressed_->add();
      return ReceiveOutcome::kDuplicate;
    }
    if (report.sequence < stored) {
      // A delayed copy of an older transmission must not clobber the
      // fresher reading (the stale-duplicate bug this path fixes).
      stale_.fetch_add(1, std::memory_order_relaxed);
      stale_rejected_->add();
      return ReceiveOutcome::kStale;
    }
    values_[cell] = report.kw;
    stored = report.sequence;
    reports_overwritten_->add();
    return ReceiveOutcome::kAccepted;
  }

  values_[cell] = report.kw;
  stored = report.sequence;
  seen = 1;
  const std::size_t left =
      missing_.fetch_sub(1, std::memory_order_relaxed) - 1;
  missing_gauge_->set(static_cast<std::int64_t>(left));
  return ReceiveOutcome::kAccepted;
}

ReceiveOutcome HeadEnd::receive(const ReadingReport& report) {
  require(report.consumer_index < consumers_,
          "HeadEnd::receive: consumer out of range");
  require(report.slot < slots_, "HeadEnd::receive: slot out of range");
  std::lock_guard<std::mutex> lock(
      shard_locks_[shard_of(report.consumer_index, shard_count_)]);
  return apply(report);
}

std::vector<ReceiveOutcome> HeadEnd::receive_batch(
    std::span<const ReadingReport> reports) {
  for (const auto& r : reports) {  // validate before mutating any state
    require(r.consumer_index < consumers_,
            "HeadEnd::receive: consumer out of range");
    require(r.slot < slots_, "HeadEnd::receive: slot out of range");
  }

  // Stable bucketing by shard keeps same-consumer reports in batch order,
  // so outcomes and stored state match a serial receive() replay for any
  // shard count x thread count (the sequence race is decided per consumer,
  // never across consumers).
  std::vector<std::vector<std::size_t>> by_shard(shard_count_);
  for (auto& bucket : by_shard) {
    bucket.reserve(reports.size() / shard_count_ + 1);
  }
  for (std::size_t r = 0; r < reports.size(); ++r) {
    by_shard[shard_of(reports[r].consumer_index, shard_count_)].push_back(r);
  }

  std::vector<ReceiveOutcome> outcomes(reports.size(),
                                       ReceiveOutcome::kAccepted);
  parallel_for(
      shard_count_,
      [&](std::size_t s) {
        if (by_shard[s].empty()) return;
        // Per-shard health: time the lock acquisition (contention only) and
        // record the depth this delivery parked on the shard.  Constant work
        // per shard per batch; the per-report loop is untouched.
        const std::size_t m = s % shard_pending_.size();
        const std::int64_t depth =
            static_cast<std::int64_t>(by_shard[s].size());
        shard_pending_[m]->set(depth);
        shard_highwater_[m]->update_max(depth);
        obs::ScopedTimer wait(*shard_lock_wait_[m]);
        std::lock_guard<std::mutex> lock(shard_locks_[s]);
        wait.stop();
        for (const std::size_t r : by_shard[s]) {
          outcomes[r] = apply(reports[r]);
        }
        shard_received_counts_[s] += by_shard[s].size();
        shard_pending_[m]->set(0);
      },
      config_.threads);

  // Shard-imbalance gauge (max/mean cumulative load, x1000; 1000 =
  // perfectly balanced).  The accumulators are quiescent after the barrier.
  std::uint64_t total = 0;
  std::uint64_t max_load = 0;
  for (const std::uint64_t n : shard_received_counts_) {
    total += n;
    max_load = std::max(max_load, n);
  }
  if (total > 0) {
    const double mean =
        static_cast<double>(total) / static_cast<double>(shard_count_);
    shard_imbalance_->set(
        std::llround(1000.0 * static_cast<double>(max_load) / mean));
  }
  return outcomes;
}

bool HeadEnd::has_reading(std::size_t consumer, SlotIndex slot) const {
  require(consumer < consumers_, "HeadEnd::has_reading: out of range");
  require(slot < slots_, "HeadEnd::has_reading: slot out of range");
  return received_[consumer * slots_ + slot] != 0;
}

Kw HeadEnd::reading(std::size_t consumer, SlotIndex slot) const {
  require(has_reading(consumer, slot), "HeadEnd::reading: missing reading");
  return values_[consumer * slots_ + slot];
}

std::vector<Kw> HeadEnd::consumer_readings(std::size_t consumer) const {
  require(consumer < consumers_,
          "HeadEnd::consumer_readings: out of range");
  const std::size_t base = consumer * slots_;
  return {values_.begin() + static_cast<std::ptrdiff_t>(base),
          values_.begin() + static_cast<std::ptrdiff_t>(base + slots_)};
}

std::vector<Kw> HeadEnd::consumer_readings(
    std::size_t consumer, std::vector<char>& missing_mask) const {
  require(consumer < consumers_,
          "HeadEnd::consumer_readings: out of range");
  const std::size_t base = consumer * slots_;
  missing_mask.assign(slots_, 0);
  for (std::size_t t = 0; t < slots_; ++t) {
    if (!received_[base + t]) missing_mask[t] = 1;
  }
  return {values_.begin() + static_cast<std::ptrdiff_t>(base),
          values_.begin() + static_cast<std::ptrdiff_t>(base + slots_)};
}

MeterNetwork::MeterNetwork(const meter::Dataset& actual,
                           obs::MetricsRegistry* metrics,
                           obs::EventLog* events)
    : actual_(&actual) {
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::default_registry();
  sent_counter_ = &registry.counter("ami.messages_sent");
  tampered_counter_ = &registry.counter("ami.messages_tampered");
  dropped_counter_ = &registry.counter("ami.messages_dropped");
  deliveries_counter_ = &registry.counter("ami.deliveries");
  retries_counter_ = &registry.counter("ami.retries");
  late_accepted_counter_ = &registry.counter("ami.late_accepted");
  events_ = events != nullptr ? events : &obs::default_event_log();
}

void MeterNetwork::set_fault_plan(FaultPlan plan) {
  fault_plan_ = std::make_shared<const FaultPlan>(std::move(plan));
}

void MeterNetwork::set_retransmit(RetransmitPolicy policy) {
  require(policy.max_retries == 0 || policy.backoff_base_slots > 0,
          "MeterNetwork::set_retransmit: backoff base must be positive");
  retransmit_ = policy;
}

void MeterNetwork::transmit(HeadEnd& head_end, SlotIndex first,
                            SlotIndex last) {
  obs::TraceSpan span("ami.transmit", "ami");
  require(first <= last && last <= actual_->slot_count(),
          "MeterNetwork::transmit: bad slot range");
  const std::size_t sent_before = messages_sent_;
  const std::size_t tampered_before = messages_tampered_;
  const std::size_t dropped_before = messages_dropped_;
  const std::size_t retried_before = messages_retried_;
  const std::size_t late_before = late_accepted_;

  // Reserve a sequence band for this transmit round: attempt k carries
  // round_base + k, and the next transmit() starts above this band, so its
  // reports always outrank ours (last-write-wins across calls, exactly the
  // pre-sequence plane's behaviour).
  const std::uint32_t round_base = round_;
  round_ += static_cast<std::uint32_t>(retransmit_.max_retries) + 1;

  // Reorder channel: deliveries deferred on the logical slot clock, drained
  // in (due slot, enqueue order) so the replay is deterministic.
  struct Pending {
    SlotIndex due;
    std::uint64_t order;
    ReadingReport report;
  };
  const auto later = [](const Pending& a, const Pending& b) {
    return a.due != b.due ? a.due > b.due : a.order > b.order;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)> delayed(
      later);
  std::uint64_t enqueue_order = 0;

  const auto deliver = [&](const ReadingReport& report, bool late) {
    const ReceiveOutcome outcome = head_end.receive(report);
    if (late && outcome == ReceiveOutcome::kAccepted) ++late_accepted_;
  };
  const auto drain_due = [&](SlotIndex now) {
    while (!delayed.empty() && delayed.top().due <= now) {
      deliver(delayed.top().report, /*late=*/true);
      delayed.pop();
    }
  };

  // One delivery attempt: interceptor chain (the MITM tampers with retries
  // too), then the fault plan's channels.
  const auto send = [&](std::size_t c, SlotIndex t, SlotIndex now,
                        std::uint32_t attempt) {
    ReadingReport report{c, t, actual_->consumer(c).readings[t],
                         round_base + attempt};
    ++messages_sent_;
    bool tampered = false;
    for (const auto& interceptor : interceptors_) {
      const auto out = interceptor(report);
      if (!out.has_value()) {
        ++messages_dropped_;
        return;
      }
      if (out->kw != report.kw || out->slot != report.slot ||
          out->consumer_index != report.consumer_index) {
        tampered = true;
      }
      report = *out;
    }
    if (tampered) ++messages_tampered_;
    if (fault_plan_ == nullptr) {
      deliver(report, /*late=*/false);
      return;
    }
    const DeliveryAttempt outcome = fault_plan_->apply(report, now, attempt);
    if (outcome.dropped) {
      ++messages_dropped_;
      return;
    }
    // Each duplicate copy is another frame the mesh carried, so it counts
    // as sent; all copies share one sequence number and the head-end
    // suppresses the extras.
    messages_sent_ += outcome.duplicates;
    const std::size_t copies = 1 + outcome.duplicates;
    if (outcome.delay_slots > 0) {
      for (std::size_t k = 0; k < copies; ++k) {
        delayed.push({now + outcome.delay_slots, enqueue_order++,
                      outcome.report});
      }
      return;
    }
    for (std::size_t k = 0; k < copies; ++k) {
      deliver(outcome.report, /*late=*/false);
    }
  };

  // Initial pass, slot-major on the logical clock: deferred deliveries come
  // due while later slots transmit, which is how a delayed original can
  // arrive after its own retransmission.
  for (SlotIndex t = first; t < last; ++t) {
    drain_due(t);
    for (std::size_t c = 0; c < actual_->consumer_count(); ++c) {
      send(c, t, /*now=*/t, /*attempt=*/0);
    }
  }

  // NACK rounds: exponential backoff on the slot clock, then ask the
  // head-end which slots are still missing and retransmit only those.
  SlotIndex now = last > first ? last - 1 : first;
  for (std::size_t round = 1; round <= retransmit_.max_retries; ++round) {
    now += static_cast<SlotIndex>(retransmit_.backoff_base_slots)
           << (round - 1);
    drain_due(now);
    bool any_missing = false;
    for (std::size_t c = 0; c < actual_->consumer_count(); ++c) {
      for (SlotIndex t = first; t < last; ++t) {
        if (head_end.has_reading(c, t)) continue;
        any_missing = true;
        ++messages_retried_;
        send(c, t, now, static_cast<std::uint32_t>(round));
      }
    }
    if (!any_missing) break;
  }

  // Final flush: everything still in flight lands now, late.
  while (!delayed.empty()) {
    deliver(delayed.top().report, /*late=*/true);
    delayed.pop();
  }

  deliveries_counter_->add();
  sent_counter_->add(messages_sent_ - sent_before);
  tampered_counter_->add(messages_tampered_ - tampered_before);
  dropped_counter_->add(messages_dropped_ - dropped_before);
  retries_counter_->add(messages_retried_ - retried_before);
  late_accepted_counter_->add(late_accepted_ - late_before);

  if (events_->enabled()) {
    events_->emit("delivery_summary",
                  obs::EventFields{}
                      .u64("first", first)
                      .u64("last", last)
                      .u64("sent", messages_sent_ - sent_before)
                      .u64("tampered", messages_tampered_ - tampered_before)
                      .u64("dropped", messages_dropped_ - dropped_before)
                      .u64("retries", messages_retried_ - retried_before)
                      .u64("late_accepted", late_accepted_ - late_before)
                      .u64("missing_after", head_end.missing_count()));
  }
}

void MeterNetwork::add_interceptor(Interceptor interceptor) {
  require(static_cast<bool>(interceptor),
          "MeterNetwork::add_interceptor: empty interceptor");
  interceptors_.push_back(std::move(interceptor));
}

Interceptor scale_interceptor(std::size_t consumer_index, double factor) {
  require(factor >= 0.0, "scale_interceptor: negative factor");
  return [consumer_index, factor](
             const ReadingReport& report) -> std::optional<ReadingReport> {
    if (report.consumer_index != consumer_index) return report;
    ReadingReport out = report;
    out.kw *= factor;
    return out;
  };
}

Interceptor replace_interceptor(std::size_t consumer_index, SlotIndex first,
                                std::vector<Kw> attack_vector) {
  return [consumer_index, first, attack_vector = std::move(attack_vector)](
             const ReadingReport& report) -> std::optional<ReadingReport> {
    if (report.consumer_index != consumer_index) return report;
    if (report.slot < first || report.slot >= first + attack_vector.size()) {
      return report;
    }
    ReadingReport out = report;
    out.kw = attack_vector[report.slot - first];
    return out;
  };
}

}  // namespace fdeta::ami
