#include "ami/network.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fdeta::ami {

HeadEnd::HeadEnd(std::size_t consumers, std::size_t slots,
                 obs::MetricsRegistry* metrics)
    : slots_(slots), missing_(consumers * slots) {
  values_.assign(consumers, std::vector<Kw>(slots, 0.0));
  received_.assign(consumers, std::vector<char>(slots, 0));
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::default_registry();
  reports_received_ = &registry.counter("ami.reports_received");
  reports_overwritten_ = &registry.counter("ami.reports_overwritten");
  missing_gauge_ = &registry.gauge("ami.reports_missing");
  missing_gauge_->set(static_cast<std::int64_t>(missing_));
}

void HeadEnd::receive(const ReadingReport& report) {
  require(report.consumer_index < values_.size(),
          "HeadEnd::receive: consumer out of range");
  require(report.slot < slots_, "HeadEnd::receive: slot out of range");
  values_[report.consumer_index][report.slot] = report.kw;
  char& seen = received_[report.consumer_index][report.slot];
  if (seen) {
    reports_overwritten_->add();
  } else {
    seen = 1;
    --missing_;
    missing_gauge_->set(static_cast<std::int64_t>(missing_));
  }
  reports_received_->add();
}

bool HeadEnd::has_reading(std::size_t consumer, SlotIndex slot) const {
  require(consumer < values_.size(), "HeadEnd::has_reading: out of range");
  require(slot < slots_, "HeadEnd::has_reading: slot out of range");
  return received_[consumer][slot] != 0;
}

Kw HeadEnd::reading(std::size_t consumer, SlotIndex slot) const {
  require(has_reading(consumer, slot), "HeadEnd::reading: missing reading");
  return values_[consumer][slot];
}

std::vector<Kw> HeadEnd::consumer_readings(std::size_t consumer) const {
  require(consumer < values_.size(),
          "HeadEnd::consumer_readings: out of range");
  return values_[consumer];
}

std::vector<Kw> HeadEnd::consumer_readings(
    std::size_t consumer, std::vector<char>& missing_mask) const {
  require(consumer < values_.size(),
          "HeadEnd::consumer_readings: out of range");
  missing_mask.assign(slots_, 0);
  for (std::size_t t = 0; t < slots_; ++t) {
    if (!received_[consumer][t]) missing_mask[t] = 1;
  }
  return values_[consumer];
}

MeterNetwork::MeterNetwork(const meter::Dataset& actual,
                           obs::MetricsRegistry* metrics)
    : actual_(&actual) {
  obs::MetricsRegistry& registry =
      metrics != nullptr ? *metrics : obs::default_registry();
  sent_counter_ = &registry.counter("ami.messages_sent");
  tampered_counter_ = &registry.counter("ami.messages_tampered");
  dropped_counter_ = &registry.counter("ami.messages_dropped");
  deliveries_counter_ = &registry.counter("ami.deliveries");
}

void MeterNetwork::transmit(HeadEnd& head_end, SlotIndex first,
                            SlotIndex last) {
  obs::TraceSpan span("ami.transmit", "ami");
  require(first <= last && last <= actual_->slot_count(),
          "MeterNetwork::transmit: bad slot range");
  const std::size_t sent_before = messages_sent_;
  const std::size_t tampered_before = messages_tampered_;
  const std::size_t dropped_before = messages_dropped_;
  for (std::size_t c = 0; c < actual_->consumer_count(); ++c) {
    const auto& readings = actual_->consumer(c).readings;
    for (SlotIndex t = first; t < last; ++t) {
      ReadingReport report{c, t, readings[t]};
      ++messages_sent_;
      bool dropped = false;
      bool tampered = false;
      for (const auto& interceptor : interceptors_) {
        const auto out = interceptor(report);
        if (!out.has_value()) {
          dropped = true;
          break;
        }
        if (out->kw != report.kw || out->slot != report.slot ||
            out->consumer_index != report.consumer_index) {
          tampered = true;
        }
        report = *out;
      }
      if (dropped) {
        ++messages_dropped_;
        continue;
      }
      if (tampered) ++messages_tampered_;
      head_end.receive(report);
    }
  }
  deliveries_counter_->add();
  sent_counter_->add(messages_sent_ - sent_before);
  tampered_counter_->add(messages_tampered_ - tampered_before);
  dropped_counter_->add(messages_dropped_ - dropped_before);
}

void MeterNetwork::add_interceptor(Interceptor interceptor) {
  require(static_cast<bool>(interceptor),
          "MeterNetwork::add_interceptor: empty interceptor");
  interceptors_.push_back(std::move(interceptor));
}

Interceptor scale_interceptor(std::size_t consumer_index, double factor) {
  require(factor >= 0.0, "scale_interceptor: negative factor");
  return [consumer_index, factor](
             const ReadingReport& report) -> std::optional<ReadingReport> {
    if (report.consumer_index != consumer_index) return report;
    ReadingReport out = report;
    out.kw *= factor;
    return out;
  };
}

Interceptor replace_interceptor(std::size_t consumer_index, SlotIndex first,
                                std::vector<Kw> attack_vector) {
  return [consumer_index, first, attack_vector = std::move(attack_vector)](
             const ReadingReport& report) -> std::optional<ReadingReport> {
    if (report.consumer_index != consumer_index) return report;
    if (report.slot < first || report.slot >= first + attack_vector.size()) {
      return report;
    }
    ReadingReport out = report;
    out.kw = attack_vector[report.slot - first];
    return out;
  };
}

}  // namespace fdeta::ami
