#include "ami/faults.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"

namespace fdeta::ami {

namespace {

double parse_rate(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double rate = 0.0;
  try {
    rate = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  require(pos == value.size() && rate >= 0.0 && rate <= 1.0,
          "parse_fault_plan: " + key + " must be a rate in [0,1], got '" +
              value + "'");
  return rate;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  require(pos == value.size() && !value.empty(),
          "parse_fault_plan: " + key + " must be a non-negative integer, "
              "got '" + value + "'");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

FaultPlanConfig parse_fault_plan(const std::string& spec) {
  FaultPlanConfig config;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos,
            "parse_fault_plan: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop") {
      config.drop_rate = parse_rate(key, value);
    } else if (key == "dup") {
      config.duplicate_rate = parse_rate(key, value);
    } else if (key == "reorder") {
      config.reorder_rate = parse_rate(key, value);
    } else if (key == "delay") {
      config.max_delay_slots =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "corrupt") {
      config.corrupt_rate = parse_rate(key, value);
    } else if (key == "burst-every") {
      config.burst_period_slots =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "burst-len") {
      config.burst_length_slots =
          static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      config.seed = parse_u64(key, value);
    } else {
      throw InvalidArgument("parse_fault_plan: unknown key '" + key + "'");
    }
  }
  require(config.burst_period_slots == 0 ||
              config.burst_length_slots <= config.burst_period_slots,
          "parse_fault_plan: burst-len must not exceed burst-every");
  return config;
}

FaultStage burst_outage_stage(std::size_t period_slots,
                              std::size_t length_slots) {
  require(period_slots > 0, "burst_outage_stage: period must be positive");
  require(length_slots <= period_slots,
          "burst_outage_stage: length must not exceed period");
  return [period_slots, length_slots](DeliveryAttempt& attempt, Rng&) {
    if (attempt.sent_at % period_slots < length_slots) attempt.dropped = true;
  };
}

FaultStage drop_stage(double rate) {
  require(rate >= 0.0 && rate <= 1.0, "drop_stage: rate out of [0,1]");
  return [rate](DeliveryAttempt& attempt, Rng& rng) {
    if (rng.uniform() < rate) attempt.dropped = true;
  };
}

FaultStage corrupt_stage(double rate) {
  require(rate >= 0.0 && rate <= 1.0, "corrupt_stage: rate out of [0,1]");
  return [rate](DeliveryAttempt& attempt, Rng& rng) {
    if (rng.uniform() >= rate) return;
    attempt.corrupted = true;
    // Three shapes of in-flight bit rot, all outside the legitimate domain
    // (the generator clamps demand to >= 0), so the head-end quarantine can
    // recognise every one of them.
    switch (rng.below(3)) {
      case 0:
        attempt.report.kw = -(attempt.report.kw + 1.0);
        break;
      case 1:
        attempt.report.kw = 1.0e9 * (1.0 + rng.uniform());
        break;
      default:
        attempt.report.kw = std::numeric_limits<double>::quiet_NaN();
        break;
    }
  };
}

FaultStage duplicate_stage(double rate) {
  require(rate >= 0.0 && rate <= 1.0, "duplicate_stage: rate out of [0,1]");
  return [rate](DeliveryAttempt& attempt, Rng& rng) {
    if (rng.uniform() < rate) attempt.duplicates += 1;
  };
}

FaultStage reorder_stage(double rate, std::size_t max_delay_slots) {
  require(rate >= 0.0 && rate <= 1.0, "reorder_stage: rate out of [0,1]");
  require(max_delay_slots > 0, "reorder_stage: max delay must be positive");
  return [rate, max_delay_slots](DeliveryAttempt& attempt, Rng& rng) {
    if (rng.uniform() < rate) {
      attempt.delay_slots = 1 + static_cast<std::size_t>(
                                    rng.below(max_delay_slots));
    }
  };
}

FaultStage interceptor_stage(Interceptor interceptor) {
  require(static_cast<bool>(interceptor),
          "interceptor_stage: empty interceptor");
  return [interceptor = std::move(interceptor)](DeliveryAttempt& attempt,
                                                Rng&) {
    const auto out = interceptor(attempt.report);
    if (!out.has_value()) {
      attempt.dropped = true;
      return;
    }
    attempt.report.consumer_index = out->consumer_index;
    attempt.report.slot = out->slot;
    attempt.report.kw = out->kw;
  };
}

FaultPlan::FaultPlan(FaultPlanConfig config) : config_(config) {
  if (config_.burst_period_slots > 0 && config_.burst_length_slots > 0) {
    stages_.push_back(burst_outage_stage(config_.burst_period_slots,
                                         config_.burst_length_slots));
  }
  if (config_.drop_rate > 0.0) {
    stages_.push_back(drop_stage(config_.drop_rate));
  }
  if (config_.corrupt_rate > 0.0) {
    stages_.push_back(corrupt_stage(config_.corrupt_rate));
  }
  if (config_.duplicate_rate > 0.0) {
    stages_.push_back(duplicate_stage(config_.duplicate_rate));
  }
  if (config_.reorder_rate > 0.0) {
    require(config_.max_delay_slots > 0,
            "FaultPlan: reorder enabled with zero max_delay_slots");
    stages_.push_back(
        reorder_stage(config_.reorder_rate, config_.max_delay_slots));
  }
}

void FaultPlan::add_stage(FaultStage stage) {
  require(static_cast<bool>(stage), "FaultPlan::add_stage: empty stage");
  stages_.push_back(std::move(stage));
}

Rng FaultPlan::attempt_rng(const ReadingReport& report,
                          std::uint32_t attempt) const {
  // Fold (seed, consumer, slot, attempt) into one key by chaining SplitMix64
  // rounds.  The resulting generator is independent of delivery order,
  // thread schedule, and every other attempt's draws.
  std::uint64_t key = config_.seed;
  const std::uint64_t words[3] = {
      static_cast<std::uint64_t>(report.consumer_index),
      static_cast<std::uint64_t>(report.slot),
      static_cast<std::uint64_t>(attempt)};
  for (const std::uint64_t word : words) {
    SplitMix64 mix(key ^ (word + 0x9E3779B97F4A7C15ULL));
    key = mix.next();
  }
  return Rng(key);
}

DeliveryAttempt FaultPlan::apply(const ReadingReport& report,
                                 SlotIndex sent_at,
                                 std::uint32_t attempt) const {
  DeliveryAttempt out;
  out.report = report;
  out.sent_at = sent_at;
  out.attempt = attempt;
  Rng rng = attempt_rng(report, attempt);
  for (const auto& stage : stages_) {
    stage(out, rng);
    if (out.dropped) break;
  }
  return out;
}

std::vector<std::uint32_t> CollectedReport::week_missing(
    std::size_t week) const {
  const auto slots = static_cast<std::size_t>(kSlotsPerWeek);
  std::vector<std::uint32_t> counts(missing.size(), 0);
  for (std::size_t c = 0; c < missing.size(); ++c) {
    const auto& mask = missing[c];
    require((week + 1) * slots <= mask.size(),
            "CollectedReport::week_missing: week out of range");
    for (std::size_t s = 0; s < slots; ++s) {
      if (mask[week * slots + s]) ++counts[c];
    }
  }
  return counts;
}

CollectedReport collect_reported(const HeadEnd& head_end,
                                 const meter::Dataset& shape) {
  require(head_end.consumer_count() == shape.consumer_count(),
          "collect_reported: consumer count mismatch");
  require(head_end.slot_count() == shape.slot_count(),
          "collect_reported: slot count mismatch");
  const auto slots = static_cast<std::size_t>(kSlotsPerWeek);
  CollectedReport out;
  out.missing.reserve(shape.consumer_count());
  std::vector<meter::ConsumerSeries> series;
  series.reserve(shape.consumer_count());
  for (std::size_t c = 0; c < shape.consumer_count(); ++c) {
    std::vector<char> mask;
    std::vector<Kw> values = head_end.consumer_readings(c, mask);
    // Fill gaps with the most recent accepted reading at the same
    // slot-of-week position - the least surprising stand-in for detectors
    // that are not coverage-aware.  Coverage-aware callers consult the mask
    // and never score a gated week at all.
    std::vector<Kw> last(slots, 0.0);
    std::vector<char> seen(slots, 0);
    for (std::size_t t = 0; t < values.size(); ++t) {
      const std::size_t column = t % slots;
      if (!mask[t]) {
        last[column] = values[t];
        seen[column] = 1;
      } else if (seen[column]) {
        values[t] = last[column];
      }
    }
    series.push_back({shape.consumer(c).id, shape.consumer(c).type,
                      std::move(values)});
    out.missing.push_back(std::move(mask));
  }
  out.dataset = meter::Dataset(std::move(series));
  return out;
}

}  // namespace fdeta::ami
