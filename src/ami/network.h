// A simulated AMI reporting plane: smart meters push half-hour readings to
// the utility head-end over a message bus that an insider can tamper with.
//
// The paper's attack model (Section IV) assumes "either the smart meter or
// the communication link has been compromised, and the attacker is now an
// insider in the system".  This module makes that operational: attack
// injections are man-in-the-middle mutations of in-flight reading reports,
// and the head-end's collected view is exactly the reported dataset D' that
// the detectors judge.
//
// Telemetry (obs/metrics.h): per-delivery accounting of the reporting plane
// - ami.messages_sent / ami.messages_tampered / ami.messages_dropped /
// ami.deliveries from the network side, ami.reports_received /
// ami.reports_overwritten and the ami.reports_missing gauge from the
// head-end side.  Pass a MetricsRegistry to isolate an instance; null uses
// the process-wide default registry.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.h"
#include "meter/dataset.h"

namespace fdeta {
namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs
}  // namespace fdeta

namespace fdeta::ami {

/// One meter-to-head-end message.
struct ReadingReport {
  std::size_t consumer_index = 0;
  SlotIndex slot = 0;
  Kw kw = 0.0;
};

/// A man-in-the-middle transformation: returns the (possibly mutated)
/// message to forward, or nullopt to drop it.
using Interceptor =
    std::function<std::optional<ReadingReport>(const ReadingReport&)>;

/// The utility-side collector.  Missing readings stay NaN-free: they are
/// tracked explicitly so the balance layer can treat "no report" distinctly
/// from "zero demand".
class HeadEnd {
 public:
  HeadEnd(std::size_t consumers, std::size_t slots,
          obs::MetricsRegistry* metrics = nullptr);

  void receive(const ReadingReport& report);

  std::size_t consumer_count() const { return received_.size(); }
  std::size_t slot_count() const { return slots_; }

  bool has_reading(std::size_t consumer, SlotIndex slot) const;
  Kw reading(std::size_t consumer, SlotIndex slot) const;

  /// Reported readings for one consumer (missing slots filled with 0).
  /// Prefer the mask overload below: a 0 here is indistinguishable from a
  /// dropped report, and downstream consumers must not impute demand.
  std::vector<Kw> consumer_readings(std::size_t consumer) const;

  /// As above, but also fills `missing_mask` (resized to slot_count()) with
  /// 1 for every slot that never received a report, so callers can count
  /// missing readings instead of imputing 0.
  std::vector<Kw> consumer_readings(std::size_t consumer,
                                    std::vector<char>& missing_mask) const;

  /// Slots (over all consumers) that never received a report.  O(1).
  std::size_t missing_count() const { return missing_; }

 private:
  std::size_t slots_;
  std::vector<std::vector<Kw>> values_;
  std::vector<std::vector<char>> received_;
  std::size_t missing_ = 0;  // slots never reported, kept current by receive()

  obs::Counter* reports_received_ = nullptr;
  obs::Counter* reports_overwritten_ = nullptr;
  obs::Gauge* missing_gauge_ = nullptr;
};

/// The field network: walks a ground-truth dataset, emitting one report per
/// consumer per slot, passing each through the interceptor chain.
class MeterNetwork {
 public:
  explicit MeterNetwork(const meter::Dataset& actual,
                        obs::MetricsRegistry* metrics = nullptr);

  /// Appends an interceptor; interceptors run in insertion order.
  void add_interceptor(Interceptor interceptor);

  /// Transmits all consumers' readings for slots [first, last) to the
  /// head-end.
  void transmit(HeadEnd& head_end, SlotIndex first, SlotIndex last);

  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t messages_tampered() const { return messages_tampered_; }
  std::size_t messages_dropped() const { return messages_dropped_; }

 private:
  const meter::Dataset* actual_;
  std::vector<Interceptor> interceptors_;
  std::size_t messages_sent_ = 0;
  std::size_t messages_tampered_ = 0;
  std::size_t messages_dropped_ = 0;

  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* tampered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* deliveries_counter_ = nullptr;
};

/// Interceptor scaling one consumer's readings by `factor` (< 1 under-
/// reports: Attack Classes 2A/2B from the wire).
Interceptor scale_interceptor(std::size_t consumer_index, double factor);

/// Interceptor replacing one consumer's readings for slots
/// [first, first + vector size) with a precomputed attack vector.
Interceptor replace_interceptor(std::size_t consumer_index, SlotIndex first,
                                std::vector<Kw> attack_vector);

}  // namespace fdeta::ami
