// A simulated AMI reporting plane: smart meters push half-hour readings to
// the utility head-end over a message bus that an insider can tamper with.
//
// The paper's attack model (Section IV) assumes "either the smart meter or
// the communication link has been compromised, and the attacker is now an
// insider in the system".  This module makes that operational: attack
// injections are man-in-the-middle mutations of in-flight reading reports,
// and the head-end's collected view is exactly the reported dataset D' that
// the detectors judge.
//
// The plane is NOT a perfect channel: a FaultPlan (ami/faults.h) can drop,
// duplicate, reorder, delay, and corrupt reports on a logical slot clock.
// The ingest path is hardened against that: every report carries a sequence
// number, the head-end deduplicates (newest-sequence-wins, stale duplicates
// rejected) and quarantines out-of-range values, and the network runs a
// NACK-driven retransmit pass with a bounded retry budget and exponential
// backoff in logical time.
//
// Telemetry (obs/metrics.h): per-delivery accounting of the reporting plane
// - ami.messages_sent / ami.messages_tampered / ami.messages_dropped /
// ami.deliveries / ami.retries / ami.late_accepted from the network side,
// ami.reports_received / ami.reports_overwritten /
// ami.duplicates_suppressed / ami.reports_stale_rejected /
// ami.reports_quarantined and the ami.reports_missing gauge from the
// head-end side.  Pass a MetricsRegistry to isolate an instance; null uses
// the process-wide default registry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/units.h"
#include "meter/dataset.h"

namespace fdeta {
namespace obs {
class Counter;
class EventLog;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs
}  // namespace fdeta

namespace fdeta::ami {

class FaultPlan;

/// One meter-to-head-end message.  `sequence` totally orders the reports a
/// meter emits for one slot (retransmissions and later transmit rounds carry
/// higher numbers), so the head-end can tell a fresh retransmit from a stale
/// duplicate that the mesh delivered late.
struct ReadingReport {
  std::size_t consumer_index = 0;
  SlotIndex slot = 0;
  Kw kw = 0.0;
  std::uint32_t sequence = 0;
};

/// A man-in-the-middle transformation: returns the (possibly mutated)
/// message to forward, or nullopt to drop it.
using Interceptor =
    std::function<std::optional<ReadingReport>(const ReadingReport&)>;

/// What the head-end did with one delivered report.
enum class ReceiveOutcome : std::uint8_t {
  kAccepted,     ///< stored (first report, or newer sequence overwrote)
  kDuplicate,    ///< same sequence already stored; suppressed
  kStale,        ///< older sequence than stored; rejected
  kQuarantined,  ///< non-finite / out-of-range value; never stored
};

/// Ingest-hardening knobs for the head-end.
struct HeadEndConfig {
  /// Reports above this (or negative, or non-finite) are quarantined: the
  /// slot stays missing so the retransmit pass can repair it with a clean
  /// copy.  Legitimate demand is non-negative by construction (the
  /// generator clamps at 0), so the default only rejects impossible values.
  double max_plausible_kw = 1.0e6;
  /// Independent per-consumer state shards, each behind its own lock (0 =
  /// auto-size from the parallelism; see common/sharding.h).  Purely a
  /// concurrency knob: stored readings and tallies are identical for any
  /// value given the same delivery order.
  std::size_t shards = 0;
  /// Parallelism cap for receive_batch() on the shared pool (0 = full pool
  /// width, 1 = serial).
  std::size_t threads = 0;
};

/// The utility-side collector.  Missing readings stay NaN-free: they are
/// tracked explicitly so the balance layer can treat "no report" distinctly
/// from "zero demand".
///
/// Thread-safety: per-consumer state is sharded (consistent hash of the
/// consumer index) with one lock per shard, so concurrent receive() /
/// receive_batch() calls from multiple collector feeds are safe and scale
/// until feeds collide on a shard; tallies are atomic.  Readers
/// (has_reading / reading / consumer_readings) are unsynchronised: quiesce
/// the feeds before reading collected state (the transmit -> collect cycle
/// already alternates phases).
class HeadEnd {
 public:
  HeadEnd(std::size_t consumers, std::size_t slots,
          obs::MetricsRegistry* metrics = nullptr, HeadEndConfig config = {});

  /// Ingests one report.  Newest-sequence-wins: a report whose sequence is
  /// older than the stored one is rejected (kStale), an equal sequence is a
  /// suppressed duplicate, and a corrupt/out-of-range value is quarantined
  /// without touching the stored reading.  ami.reports_received counts every
  /// call regardless of outcome (delivery-side conservation).
  /// Thread-safe: takes the consumer's shard lock.
  ReceiveOutcome receive(const ReadingReport& report);

  /// Ingests one delivery batch, processing shards in parallel on the
  /// shared pool.  Reports for the same consumer apply in batch order
  /// (stable shard bucketing), so the returned outcomes (index-aligned with
  /// `reports`) and all stored state are identical to calling receive() once
  /// per report in batch order - for any shard count x thread count.
  /// Validates every index up front; on failure nothing is applied.
  std::vector<ReceiveOutcome> receive_batch(
      std::span<const ReadingReport> reports);

  std::size_t consumer_count() const { return consumers_; }
  std::size_t slot_count() const { return slots_; }

  /// Resolved shard count (config.shards, or the auto-sized value).
  std::size_t shard_count() const { return shard_count_; }

  bool has_reading(std::size_t consumer, SlotIndex slot) const;
  Kw reading(std::size_t consumer, SlotIndex slot) const;

  /// Reported readings for one consumer (missing slots filled with 0).
  /// Prefer the mask overload below: a 0 here is indistinguishable from a
  /// dropped report, and downstream consumers must not impute demand.
  std::vector<Kw> consumer_readings(std::size_t consumer) const;

  /// As above, but also fills `missing_mask` (resized to slot_count()) with
  /// 1 for every slot that never received a report, so callers can count
  /// missing readings instead of imputing 0.
  std::vector<Kw> consumer_readings(std::size_t consumer,
                                    std::vector<char>& missing_mask) const;

  /// Slots (over all consumers) that never received a report.  O(1).
  std::size_t missing_count() const {
    return missing_.load(std::memory_order_relaxed);
  }

  /// Ingest-hardening tallies (also exported as ami.* counters).
  std::size_t quarantined_count() const {
    return quarantined_.load(std::memory_order_relaxed);
  }
  std::size_t duplicates_suppressed() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  std::size_t stale_rejected() const {
    return stale_.load(std::memory_order_relaxed);
  }

 private:
  /// receive() body, minus locking; the caller holds the consumer's shard
  /// lock.
  ReceiveOutcome apply(const ReadingReport& report);

  std::size_t consumers_;
  std::size_t slots_;
  HeadEndConfig config_;
  // Flat consumer-major arrays ([c * slots_ + t]): one allocation per field
  // for the whole fleet instead of three vectors per consumer.
  std::vector<Kw> values_;
  std::vector<char> received_;
  std::vector<std::uint32_t> sequences_;

  // Shard layer: shard_of(c, shard_count_) owns consumer c's rows above.
  std::size_t shard_count_ = 1;
  std::unique_ptr<std::mutex[]> shard_locks_;

  // Tallies are atomic so concurrent shards keep them exact (relaxed order:
  // they are monotone counts, never used to synchronise state).
  std::atomic<std::size_t> missing_{0};  // kept current by receive()
  std::atomic<std::size_t> quarantined_{0};
  std::atomic<std::size_t> duplicates_{0};
  std::atomic<std::size_t> stale_{0};

  obs::Counter* reports_received_ = nullptr;
  obs::Counter* reports_overwritten_ = nullptr;
  obs::Counter* duplicates_suppressed_ = nullptr;
  obs::Counter* stale_rejected_ = nullptr;
  obs::Counter* quarantined_counter_ = nullptr;
  obs::Gauge* missing_gauge_ = nullptr;

  // Per-shard health series ("ami.shardNN.*"): lock-wait latency, batch
  // depth and high-water per shard, plus a max/mean load-imbalance gauge.
  // Bounded cardinality (at most 64 instrumented slots; wider fleets alias
  // via s % 64); updated only on the batched receive path, one histogram
  // observation and three gauge stores per shard per batch.
  std::vector<obs::Gauge*> shard_pending_;
  std::vector<obs::Gauge*> shard_highwater_;
  std::vector<obs::Histogram*> shard_lock_wait_;
  obs::Gauge* shard_imbalance_ = nullptr;
  /// Cumulative reports applied per shard (guarded by that shard's lock).
  std::vector<std::uint64_t> shard_received_counts_;
};

/// NACK-driven repair budget for transmit(): after the initial pass the
/// network asks the head-end which slots are still missing and retransmits
/// them, up to `max_retries` rounds, waiting `backoff_base_slots << round`
/// logical slots between rounds (exponential backoff on the slot clock).
struct RetransmitPolicy {
  std::size_t max_retries = 0;  ///< 0 = fire-and-forget (legacy behaviour)
  std::size_t backoff_base_slots = 1;
};

/// The field network: walks a ground-truth dataset, emitting one report per
/// consumer per slot, passing each through the interceptor chain and the
/// fault plan (if any), then running the retransmit pass.
class MeterNetwork {
 public:
  explicit MeterNetwork(const meter::Dataset& actual,
                        obs::MetricsRegistry* metrics = nullptr,
                        obs::EventLog* events = nullptr);

  /// Appends an interceptor; interceptors run in insertion order, on
  /// retransmissions too (the MITM sits on the link, not in the meter).
  void add_interceptor(Interceptor interceptor);

  /// Installs a fault plan (ami/faults.h) applied to every delivery attempt
  /// after the interceptor chain.
  void set_fault_plan(FaultPlan plan);

  /// Configures the NACK-driven retransmit pass.
  void set_retransmit(RetransmitPolicy policy);

  /// Transmits all consumers' readings for slots [first, last) to the
  /// head-end: initial slot-major pass on the logical clock (delayed
  /// deliveries drain when due), then up to max_retries NACK rounds for
  /// slots the head-end still reports missing, then a final drain of the
  /// delay queue.  Emits one delivery_summary event per call.
  void transmit(HeadEnd& head_end, SlotIndex first, SlotIndex last);

  std::size_t messages_sent() const { return messages_sent_; }
  std::size_t messages_tampered() const { return messages_tampered_; }
  std::size_t messages_dropped() const { return messages_dropped_; }
  std::size_t messages_retried() const { return messages_retried_; }
  /// Delayed deliveries that still won the sequence race.
  std::size_t late_accepted() const { return late_accepted_; }

 private:
  const meter::Dataset* actual_;
  std::vector<Interceptor> interceptors_;
  std::shared_ptr<const FaultPlan> fault_plan_;
  RetransmitPolicy retransmit_;
  /// Sequence-number base for the next transmit() round; each call reserves
  /// max_retries + 1 numbers per slot so a later call's reports always
  /// outrank an earlier call's (last-write-wins across transmits, preserved
  /// from the pre-sequence plane).
  std::uint32_t round_ = 0;
  std::size_t messages_sent_ = 0;
  std::size_t messages_tampered_ = 0;
  std::size_t messages_dropped_ = 0;
  std::size_t messages_retried_ = 0;
  std::size_t late_accepted_ = 0;

  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* tampered_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* deliveries_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* late_accepted_counter_ = nullptr;
  obs::EventLog* events_ = nullptr;  // never null after construction
};

/// Interceptor scaling one consumer's readings by `factor` (< 1 under-
/// reports: Attack Classes 2A/2B from the wire).
Interceptor scale_interceptor(std::size_t consumer_index, double factor);

/// Interceptor replacing one consumer's readings for slots
/// [first, first + vector size) with a precomputed attack vector.
Interceptor replace_interceptor(std::size_t consumer_index, SlotIndex first,
                                std::vector<Kw> attack_vector);

}  // namespace fdeta::ami
