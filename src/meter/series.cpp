#include "meter/series.h"

#include "common/error.h"

namespace fdeta::meter {

std::span<const Kw> ConsumerSeries::week(std::size_t w) const {
  require(w < week_count(), "ConsumerSeries::week: index out of range");
  return {readings.data() + w * kSlotsPerWeek,
          static_cast<std::size_t>(kSlotsPerWeek)};
}

std::span<const Kw> ConsumerSeries::weeks(std::size_t first,
                                          std::size_t count) const {
  require(first + count <= week_count(),
          "ConsumerSeries::weeks: range out of bounds");
  return {readings.data() + first * kSlotsPerWeek, count * kSlotsPerWeek};
}

stats::Matrix ConsumerSeries::week_matrix(std::size_t first,
                                          std::size_t count) const {
  require(first + count <= week_count(),
          "ConsumerSeries::week_matrix: range out of bounds");
  stats::Matrix x(count, kSlotsPerWeek);
  for (std::size_t w = 0; w < count; ++w) {
    const auto wk = week(first + w);
    for (std::size_t s = 0; s < static_cast<std::size_t>(kSlotsPerWeek); ++s) {
      x(w, s) = wk[s];
    }
  }
  return x;
}

std::span<const Kw> TrainTestSplit::train(const ConsumerSeries& s) const {
  require(s.week_count() >= total_weeks(),
          "TrainTestSplit: series shorter than split");
  return s.weeks(0, train_weeks);
}

std::span<const Kw> TrainTestSplit::test(const ConsumerSeries& s) const {
  require(s.week_count() >= total_weeks(),
          "TrainTestSplit: series shorter than split");
  return s.weeks(train_weeks, test_weeks);
}

std::span<const Kw> TrainTestSplit::test_week(const ConsumerSeries& s,
                                              std::size_t w) const {
  require(w < test_weeks, "TrainTestSplit::test_week: index out of range");
  return s.week(train_weeks + w);
}

}  // namespace fdeta::meter
