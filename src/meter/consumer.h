// Consumer identity and classification, mirroring the CER trial categories
// (Section VIII-A: 404 residential, 36 SME, 60 unclassified by CER).
#pragma once

#include <cstdint>
#include <string_view>

namespace fdeta::meter {

using ConsumerId = std::uint32_t;

enum class ConsumerType : std::uint8_t {
  kResidential,
  kSme,          ///< small/medium enterprise
  kUnclassified,
};

constexpr std::string_view to_string(ConsumerType type) {
  switch (type) {
    case ConsumerType::kResidential: return "residential";
    case ConsumerType::kSme: return "sme";
    case ConsumerType::kUnclassified: return "unclassified";
  }
  return "unknown";
}

}  // namespace fdeta::meter
