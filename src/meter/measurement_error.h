// Smart-meter measurement error (Section VII-A).
//
// The paper justifies trusting meter *measurements* with the EEI study
// (ref [11]): 99.96% of electronic smart-meter readings fall within +/-2% of
// the actual value and 99.91% within +/-0.5%.  This model reproduces that
// error envelope so the robustness benches can verify that (a) detectors are
// calibrated through it and (b) "an attacker cannot leverage measurement
// errors inherent to smart meters to steal a significant amount of
// electricity".
#pragma once

#include "common/rng.h"
#include "meter/dataset.h"

namespace fdeta::meter {

struct MeterAccuracyModel {
  /// Probability a reading falls within the tight band (ref [11]: 99.91%).
  double p_tight = 0.9991;
  /// Probability within the wide band but not the tight one (99.96-99.91%).
  double p_wide = 0.0005;
  double tight_fraction = 0.005;  ///< +/-0.5%
  double wide_fraction = 0.02;    ///< +/-2%
  /// The residual 0.04% of readings: gross errors up to this fraction.
  double gross_fraction = 0.05;
  /// Scales all three bands (1.0 = the ref [11] envelope).
  double scale = 1.0;
};

/// One measured reading: actual demand distorted by the accuracy model.
Kw measure(Kw actual, const MeterAccuracyModel& model, Rng& rng);

/// Applies the error model to every reading of a dataset copy.
Dataset apply_measurement_error(const Dataset& actual,
                                const MeterAccuracyModel& model, Rng& rng);

}  // namespace fdeta::meter
