#include "meter/weekly_stats.h"

#include <algorithm>

#include "common/error.h"
#include "persist/binary_io.h"
#include "stats/descriptive.h"

namespace fdeta::meter {

WeeklyStats weekly_stats(std::span<const Kw> training) {
  require(training.size() % kSlotsPerWeek == 0,
          "weekly_stats: span must be whole weeks");
  const std::size_t weeks = training.size() / kSlotsPerWeek;
  require(weeks >= 2, "weekly_stats: need at least two weeks");

  WeeklyStats out;
  out.means.reserve(weeks);
  out.variances.reserve(weeks);
  for (std::size_t w = 0; w < weeks; ++w) {
    const std::span<const Kw> week{training.data() + w * kSlotsPerWeek,
                                   static_cast<std::size_t>(kSlotsPerWeek)};
    out.means.push_back(stats::mean(week));
    out.variances.push_back(stats::variance(week));
  }
  out.mean_lo = *std::min_element(out.means.begin(), out.means.end());
  out.mean_hi = *std::max_element(out.means.begin(), out.means.end());
  out.var_lo = *std::min_element(out.variances.begin(), out.variances.end());
  out.var_hi = *std::max_element(out.variances.begin(), out.variances.end());
  return out;
}

void save_weekly_stats(const WeeklyStats& stats, persist::Encoder& enc) {
  enc.doubles(stats.means);
  enc.doubles(stats.variances);
  enc.f64(stats.mean_lo);
  enc.f64(stats.mean_hi);
  enc.f64(stats.var_lo);
  enc.f64(stats.var_hi);
}

WeeklyStats load_weekly_stats(persist::Decoder& dec) {
  WeeklyStats out;
  out.means = dec.doubles("weekly means", 1u << 24);
  out.variances = dec.doubles("weekly variances", 1u << 24);
  if (out.means.size() != out.variances.size()) {
    throw DataError("checkpoint: weekly stats mean/variance count mismatch");
  }
  out.mean_lo = dec.f64();
  out.mean_hi = dec.f64();
  out.var_lo = dec.f64();
  out.var_hi = dec.f64();
  return out;
}

}  // namespace fdeta::meter
