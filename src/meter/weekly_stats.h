// Per-week summary statistics over a training span.
//
// The Integrated ARIMA detector (ref [2], Section VII-C/VIII-B1) checks a new
// week's mean and variance against the range observed across training weeks;
// the Integrated ARIMA attack (and the 2A/2B variant) targets exactly those
// bounds: the truncated-normal mean is set to the *max* of weekly means for
// over-reporting (1B) and the *min* for under-reporting (2A/2B).
#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace fdeta::persist {
class Encoder;
class Decoder;
}  // namespace fdeta::persist

namespace fdeta::meter {

struct WeeklyStats {
  std::vector<double> means;      ///< weekly means, one per training week
  std::vector<double> variances;  ///< weekly (sample) variances

  double mean_lo = 0.0;  ///< min of weekly means
  double mean_hi = 0.0;  ///< max of weekly means
  double var_lo = 0.0;   ///< min of weekly variances
  double var_hi = 0.0;   ///< max of weekly variances
};

/// Computes weekly stats over a span whose length is a whole number of
/// weeks (>= 2 weeks required).
WeeklyStats weekly_stats(std::span<const Kw> training);

/// Serialization hooks for model checkpoints (persist/checkpoint.h).
void save_weekly_stats(const WeeklyStats& stats, persist::Encoder& enc);
WeeklyStats load_weekly_stats(persist::Decoder& dec);

}  // namespace fdeta::meter
