// Per-consumer smart-meter series and week-matrix views.
//
// A series holds the *actual* average-demand readings D_C(t) for one
// consumer across the study horizon.  Attack injection produces a separate
// reported series D'_C(t); keeping both explicit mirrors the paper's
// D vs D' notation.
#pragma once

#include <span>
#include <vector>

#include "common/units.h"
#include "meter/consumer.h"
#include "stats/matrix.h"

namespace fdeta::meter {

/// One consumer's demand series at half-hour resolution.
struct ConsumerSeries {
  ConsumerId id = 0;
  ConsumerType type = ConsumerType::kResidential;
  std::vector<Kw> readings;  ///< length = weeks * kSlotsPerWeek

  std::size_t week_count() const { return readings.size() / kSlotsPerWeek; }

  /// View of week `w` (336 readings).  Throws if out of range.
  std::span<const Kw> week(std::size_t w) const;

  /// View of weeks [first, first + count).
  std::span<const Kw> weeks(std::size_t first, std::size_t count) const;

  /// Builds the M x 336 training matrix X of Section VII-D from weeks
  /// [first, first + count).
  stats::Matrix week_matrix(std::size_t first, std::size_t count) const;
};

/// The 60-train / 14-test split of Section VIII-A, parameterised.
struct TrainTestSplit {
  std::size_t train_weeks = 60;
  std::size_t test_weeks = 14;

  std::size_t total_weeks() const { return train_weeks + test_weeks; }

  /// Training portion of a series (first train_weeks weeks).
  std::span<const Kw> train(const ConsumerSeries& s) const;

  /// Test portion of a series (remaining test_weeks weeks).
  std::span<const Kw> test(const ConsumerSeries& s) const;

  /// One week of the test set (index within the test portion).
  std::span<const Kw> test_week(const ConsumerSeries& s, std::size_t w) const;
};

}  // namespace fdeta::meter
