// The smart-meter dataset: a collection of consumer series with a common
// horizon, plus CSV import/export in a CER-like long format.
#pragma once

#include <iosfwd>
#include <optional>
#include <vector>

#include "meter/series.h"

namespace fdeta::meter {

class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of the series; all must share one horizon length.
  explicit Dataset(std::vector<ConsumerSeries> series);

  std::size_t consumer_count() const { return series_.size(); }
  std::size_t week_count() const {
    return series_.empty() ? 0 : series_.front().week_count();
  }
  std::size_t slot_count() const {
    return series_.empty() ? 0 : series_.front().readings.size();
  }

  const std::vector<ConsumerSeries>& consumers() const { return series_; }
  const ConsumerSeries& consumer(std::size_t index) const;
  ConsumerSeries& consumer(std::size_t index);

  /// Index of the consumer with the given id, if present.
  std::optional<std::size_t> index_of(ConsumerId id) const;

  /// Appends a consumer (must match the existing horizon).
  void add(ConsumerSeries series);

  /// Aggregate demand per slot across all consumers: the feeder-level demand
  /// seen by the trusted root balance meter (Section VIII-A assumes the sum
  /// of all consumer readings is checked at the root).
  std::vector<Kw> aggregate_demand() const;

  /// Writes "consumer_id,type,slot,kw" rows.
  void save_csv(std::ostream& out) const;

  /// Parses the save_csv format.  Slots must be dense per consumer.
  static Dataset load_csv(std::istream& in);

 private:
  std::vector<ConsumerSeries> series_;
};

/// Per-type count summary (for README/examples reporting).
struct DatasetSummary {
  std::size_t residential = 0;
  std::size_t sme = 0;
  std::size_t unclassified = 0;
  double mean_kw = 0.0;
  double max_kw = 0.0;
};
DatasetSummary summarize(const Dataset& dataset);

}  // namespace fdeta::meter
