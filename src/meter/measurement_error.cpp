#include "meter/measurement_error.h"

#include <algorithm>

#include "common/error.h"

namespace fdeta::meter {

Kw measure(Kw actual, const MeterAccuracyModel& model, Rng& rng) {
  const double roll = rng.uniform();
  double fraction;
  if (roll < model.p_tight) {
    fraction = rng.uniform(-model.tight_fraction, model.tight_fraction);
  } else if (roll < model.p_tight + model.p_wide) {
    // Within the wide band but outside the tight one (either sign).
    const double magnitude =
        rng.uniform(model.tight_fraction, model.wide_fraction);
    fraction = rng.uniform() < 0.5 ? -magnitude : magnitude;
  } else {
    const double magnitude =
        rng.uniform(model.wide_fraction, model.gross_fraction);
    fraction = rng.uniform() < 0.5 ? -magnitude : magnitude;
  }
  return std::max(0.0, actual * (1.0 + model.scale * fraction));
}

Dataset apply_measurement_error(const Dataset& actual,
                                const MeterAccuracyModel& model, Rng& rng) {
  require(model.p_tight + model.p_wide <= 1.0,
          "apply_measurement_error: probabilities exceed 1");
  Dataset measured = actual;
  for (std::size_t c = 0; c < measured.consumer_count(); ++c) {
    Rng stream = rng.spawn(c);
    for (Kw& v : measured.consumer(c).readings) {
      v = measure(v, model, stream);
    }
  }
  return measured;
}

}  // namespace fdeta::meter
