#include "meter/dataset.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>

#include "common/csv.h"
#include "common/error.h"

namespace fdeta::meter {

Dataset::Dataset(std::vector<ConsumerSeries> series)
    : series_(std::move(series)) {
  if (series_.empty()) return;
  const std::size_t len = series_.front().readings.size();
  for (const auto& s : series_) {
    require(s.readings.size() == len, "Dataset: inconsistent series lengths");
  }
}

const ConsumerSeries& Dataset::consumer(std::size_t index) const {
  require(index < series_.size(), "Dataset::consumer: index out of range");
  return series_[index];
}

ConsumerSeries& Dataset::consumer(std::size_t index) {
  require(index < series_.size(), "Dataset::consumer: index out of range");
  return series_[index];
}

std::optional<std::size_t> Dataset::index_of(ConsumerId id) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].id == id) return i;
  }
  return std::nullopt;
}

void Dataset::add(ConsumerSeries series) {
  if (!series_.empty()) {
    require(series.readings.size() == series_.front().readings.size(),
            "Dataset::add: series length mismatch");
  }
  series_.push_back(std::move(series));
}

std::vector<Kw> Dataset::aggregate_demand() const {
  std::vector<Kw> total(slot_count(), 0.0);
  for (const auto& s : series_) {
    for (std::size_t t = 0; t < total.size(); ++t) total[t] += s.readings[t];
  }
  return total;
}

void Dataset::save_csv(std::ostream& out) const {
  out << "consumer_id,type,slot,kw\n";
  for (const auto& s : series_) {
    for (std::size_t t = 0; t < s.readings.size(); ++t) {
      out << s.id << ',' << static_cast<int>(s.type) << ',' << t << ','
          << s.readings[t] << '\n';
    }
  }
}

Dataset Dataset::load_csv(std::istream& in) {
  const auto lines = read_lines(in);
  require(!lines.empty(), "Dataset::load_csv: empty input");

  std::map<ConsumerId, ConsumerSeries> by_id;
  for (std::size_t i = 1; i < lines.size(); ++i) {  // skip header
    const auto fields = split_csv_line(lines[i]);
    if (fields.size() != 4) {
      throw DataError("Dataset::load_csv: expected 4 fields at line " +
                      std::to_string(i + 1));
    }
    const auto id = static_cast<ConsumerId>(parse_long(fields[0], "consumer_id"));
    const long type_raw = parse_long(fields[1], "type");
    const auto slot = static_cast<std::size_t>(parse_long(fields[2], "slot"));
    const double kw = parse_double(fields[3], "kw");

    auto& series = by_id[id];
    series.id = id;
    if (type_raw < 0 || type_raw > 2) {
      throw DataError("Dataset::load_csv: bad type code at line " +
                      std::to_string(i + 1));
    }
    series.type = static_cast<ConsumerType>(type_raw);
    if (slot != series.readings.size()) {
      throw DataError("Dataset::load_csv: non-dense slots for consumer " +
                      std::to_string(id));
    }
    series.readings.push_back(kw);
  }

  std::vector<ConsumerSeries> all;
  all.reserve(by_id.size());
  for (auto& [id, series] : by_id) all.push_back(std::move(series));
  return Dataset(std::move(all));
}

DatasetSummary summarize(const Dataset& dataset) {
  DatasetSummary s;
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& c : dataset.consumers()) {
    switch (c.type) {
      case ConsumerType::kResidential: ++s.residential; break;
      case ConsumerType::kSme: ++s.sme; break;
      case ConsumerType::kUnclassified: ++s.unclassified; break;
    }
    for (double kw : c.readings) {
      total += kw;
      s.max_kw = std::max(s.max_kw, kw);
      ++n;
    }
  }
  s.mean_kw = n ? total / static_cast<double>(n) : 0.0;
  return s;
}

}  // namespace fdeta::meter
