// A real-time electricity market simulation.
//
// Section VII-A: studying Attack Class 4B "would also require the simulation
// of a real-time electricity market"; the paper leaves that to future work.
// This module provides it: per-slot price clearing between an aggregate
// supply curve and a population of price-responsive consumers
// (Consumer Own Elasticity, ref [26]).
//
// Supply: a convex marginal-cost curve  lambda_s(Q) = base + slope * Q.
// Demand: sum_i baseline_i * (lambda / lambda_ref)^(-elasticity_i), i.e.
// each consumer's ADR scales its baseline by the price it *sees* - which an
// attacker may have forged (Attack Class 4B), shifting the true clearing
// point for everyone.
#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace fdeta::market {

/// Linear marginal-cost supply curve: price at which generators are willing
/// to supply Q kilowatts.
struct SupplyCurve {
  DollarsPerKWh base = 0.05;   ///< price floor at zero quantity
  double slope = 1e-4;         ///< $/kWh per kW of quantity
  DollarsPerKWh price_at(Kw quantity) const {
    return base + slope * quantity;
  }
};

/// One price-responsive participant for a single slot.
struct Participant {
  Kw baseline = 0.0;        ///< demand at the reference price
  double elasticity = 0.5;  ///< own-elasticity (>= 0)
  /// Multiplier applied to the broadcast price before this participant's ADR
  /// sees it (1.0 = honest; > 1 models a 4B-compromised price signal).
  double price_distortion = 1.0;
};

struct ClearingResult {
  DollarsPerKWh price = 0.0;      ///< market-clearing price lambda*
  Kw total_demand = 0.0;          ///< cleared quantity
  std::vector<Kw> demand;         ///< per-participant consumption
};

/// Clears one slot by bisection on  supply(Q(lambda)) = lambda.
/// `reference_price` anchors the elasticity model (the price baselines are
/// quoted at).  Throws NumericalError if no crossing exists in a sane
/// price range.
ClearingResult clear_slot(std::span<const Participant> participants,
                          const SupplyCurve& supply,
                          DollarsPerKWh reference_price);

/// Clears a horizon: `baselines[i]` is participant i's per-slot baseline
/// series (all equal length).  Distortions and elasticities are constant
/// over the horizon.  Returns per-slot prices and per-participant
/// consumption series.
struct MarketRun {
  std::vector<DollarsPerKWh> prices;          // per slot
  std::vector<std::vector<Kw>> consumption;   // [participant][slot]
};
MarketRun run_market(const std::vector<std::vector<Kw>>& baselines,
                     std::span<const double> elasticities,
                     std::span<const double> price_distortions,
                     const SupplyCurve& supply,
                     DollarsPerKWh reference_price);

}  // namespace fdeta::market
