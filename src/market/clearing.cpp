#include "market/clearing.h"

#include <cmath>

#include "common/error.h"

namespace fdeta::market {

namespace {

/// Aggregate demand at broadcast price `lambda` (each participant responds
/// to its possibly-distorted view of the price).
Kw aggregate_demand(std::span<const Participant> participants,
                    DollarsPerKWh lambda, DollarsPerKWh reference_price) {
  Kw total = 0.0;
  for (const Participant& p : participants) {
    const double seen = lambda * p.price_distortion;
    total += p.baseline * std::pow(seen / reference_price, -p.elasticity);
  }
  return total;
}

}  // namespace

ClearingResult clear_slot(std::span<const Participant> participants,
                          const SupplyCurve& supply,
                          DollarsPerKWh reference_price) {
  require(reference_price > 0.0, "clear_slot: reference price must be > 0");
  for (const Participant& p : participants) {
    require(p.baseline >= 0.0 && p.elasticity >= 0.0 &&
                p.price_distortion > 0.0,
            "clear_slot: invalid participant");
  }

  // Excess supply price gap  g(lambda) = lambda - supply_price(D(lambda))
  // is increasing in lambda (demand falls, supply price falls), so bisect.
  auto gap = [&](DollarsPerKWh lambda) {
    return lambda -
           supply.price_at(aggregate_demand(participants, lambda,
                                            reference_price));
  };

  DollarsPerKWh lo = 1e-4;
  DollarsPerKWh hi = reference_price;
  // Grow hi until the gap is positive (price high enough to choke demand).
  int guard = 0;
  while (gap(hi) < 0.0) {
    hi *= 2.0;
    if (++guard > 64) {
      throw NumericalError("clear_slot: no market-clearing price found");
    }
  }
  if (gap(lo) > 0.0) lo = 1e-9;

  for (int iter = 0; iter < 100; ++iter) {
    const DollarsPerKWh mid = 0.5 * (lo + hi);
    if (gap(mid) < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  ClearingResult result;
  result.price = 0.5 * (lo + hi);
  result.demand.reserve(participants.size());
  for (const Participant& p : participants) {
    const double seen = result.price * p.price_distortion;
    const Kw d = p.baseline * std::pow(seen / reference_price, -p.elasticity);
    result.demand.push_back(d);
    result.total_demand += d;
  }
  return result;
}

MarketRun run_market(const std::vector<std::vector<Kw>>& baselines,
                     std::span<const double> elasticities,
                     std::span<const double> price_distortions,
                     const SupplyCurve& supply,
                     DollarsPerKWh reference_price) {
  require(!baselines.empty(), "run_market: no participants");
  require(baselines.size() == elasticities.size() &&
              baselines.size() == price_distortions.size(),
          "run_market: participant array size mismatch");
  const std::size_t slots = baselines.front().size();
  for (const auto& b : baselines) {
    require(b.size() == slots, "run_market: baseline length mismatch");
  }

  MarketRun run;
  run.prices.resize(slots);
  run.consumption.assign(baselines.size(), std::vector<Kw>(slots, 0.0));

  std::vector<Participant> participants(baselines.size());
  for (std::size_t t = 0; t < slots; ++t) {
    for (std::size_t i = 0; i < baselines.size(); ++i) {
      participants[i].baseline = baselines[i][t];
      participants[i].elasticity = elasticities[i];
      participants[i].price_distortion = price_distortions[i];
    }
    const auto cleared = clear_slot(participants, supply, reference_price);
    run.prices[t] = cleared.price;
    for (std::size_t i = 0; i < baselines.size(); ++i) {
      run.consumption[i][t] = cleared.demand[i];
    }
  }
  return run;
}

}  // namespace fdeta::market
