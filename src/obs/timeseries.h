// The time dimension of the telemetry layer: periodic scrapes of a
// MetricsRegistry into a bounded ring of delta frames, windowed rates
// derived from consecutive frames, JSONL series export, a Prometheus text
// exposition of a full snapshot, and the one-line fleet scoreboard the CLI
// prints per frame (`fdeta detect --stats-interval N` live, `fdeta stats`
// post-hoc from a --series-out file).
//
// Determinism contract (the metrics.h rules, extended to the time axis):
// frames are driven by the LOGICAL slot clock during ingest - the caller
// scrapes at fixed slot boundaries, so under a fixed seed the deterministic
// half of every frame (counter deltas, gauges, per-slot rates) is
// byte-identical across shard x thread layouts.  Everything wall-clock
// (uptime, latency-derived p95) or layout-scoped (per-shard series, pool
// counters, shard-imbalance gauges) lives in a separate `env` block that
// to_json()/to_jsonl() can exclude; is_layout_scoped_metric() is the single
// classification rule.  Wall-clock mode (maybe_scrape_wall) exists for a
// live service with no slot clock; its frames make no determinism promise.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace fdeta::obs {

/// Bumped on ANY change to the series JSONL frame layout.
inline constexpr std::uint32_t kSeriesSchemaVersion = 1;

// is_layout_scoped_metric() (obs/metrics.h) is the classification rule for
// which metrics land in the env block.

/// One scrape: deltas against the previous frame plus the windowed rates
/// derived from them.  Split into a deterministic payload (counter deltas,
/// deterministic gauges, logical-clock rates) and an `env` payload
/// (wall-clock and layout-scoped values).
struct SeriesFrame {
  std::uint64_t index = 0;        ///< scrape number, 0-based
  std::uint64_t slot = 0;         ///< logical slot at scrape time
  std::uint64_t slots_delta = 0;  ///< slots since the previous frame (0 in
                                  ///< wall-clock mode)

  // -- deterministic payload -------------------------------------------
  /// Per-counter increase since the previous frame (deterministic counters
  /// only; unchanged counters are still listed, with delta 0).
  std::map<std::string, std::uint64_t> counter_deltas;
  /// Deterministic gauges, absolute values at scrape time.
  std::map<std::string, std::int64_t> gauges;
  /// monitor.readings_ingested delta / slots_delta.
  double readings_per_slot = 0.0;
  /// monitor.alerts_raised delta per logical hour (2 slots = 1 hour).
  double alerts_per_hour = 0.0;
  /// Coverage-gated fraction of scoring attempts in the window:
  /// gated / (gated + evaluated), 0 when nothing was attempted.
  double coverage_gated_fraction = 0.0;
  /// monitor.population_drift_milli_bits at scrape time (0 if absent).
  std::int64_t drift_milli_bits = 0;
  /// monitor.alert_burst_milli at scrape time (0 if absent).
  std::int64_t burst_milli = 0;

  // -- env payload (wall-clock + layout-scoped) ------------------------
  double uptime_seconds = 0.0;
  double wall_delta_seconds = 0.0;  ///< wall seconds since the previous frame
  /// monitor.readings_ingested delta / wall_delta_seconds (0 first frame).
  double readings_per_sec = 0.0;
  /// p95 of the monitor.ingest_batch_seconds observations WITHIN the window
  /// (quantile of the bucket deltas between frames), not cumulative.
  double p95_ingest_seconds = 0.0;
  /// Shard with the largest pending-batch high-water gauge (-1 if no
  /// per-shard series exist) and that gauge's value.
  std::int64_t worst_shard = -1;
  std::int64_t worst_shard_depth = 0;
  /// Layout-scoped counters (deltas) and gauges (absolute).
  std::map<std::string, std::uint64_t> env_counter_deltas;
  std::map<std::string, std::int64_t> env_gauges;

  /// One JSON object (single line, no trailing newline; keys in fixed
  /// order, doubles %.17g).  `include_env` false drops the `env` member -
  /// the byte-identical-across-layouts form.
  std::string to_json(bool include_env = true) const;
};

/// Bounded ring of frames: push() drops the oldest frame once `capacity`
/// is reached, so a long-lived service holds a sliding window, never an
/// unbounded log.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity = 4096);

  void push(SeriesFrame frame);
  const std::deque<SeriesFrame>& frames() const { return frames_; }
  /// Frames evicted by the capacity bound since construction.
  std::uint64_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }

  /// One frame per line, oldest first (each line a complete JSON object).
  std::string to_jsonl(bool include_env = true) const;

 private:
  std::size_t capacity_;
  std::deque<SeriesFrame> frames_;
  std::uint64_t dropped_ = 0;
};

struct MetricsScraperConfig {
  /// Registry to scrape; null = the process-wide default_registry().
  const MetricsRegistry* registry = nullptr;
  /// Slot-driven cadence: maybe_scrape(slot) fires once the slot clock has
  /// advanced at least this far past the previous frame.
  std::uint64_t interval_slots = 336;
  /// Ring bound handed to the TimeSeriesStore.
  std::size_t capacity = 4096;
};

/// Periodically snapshots a MetricsRegistry into delta frames.  Not
/// thread-safe: one scraper is driven from one control loop (the scrape is
/// off the hot path by design - producers never block on it; the snapshot
/// itself takes only the registry's creation/snapshot mutex).
class MetricsScraper {
 public:
  explicit MetricsScraper(MetricsScraperConfig config = {});

  /// Anchors the series at `slot`: captures the baseline snapshot so the
  /// first frame's deltas cover only what streamed after this point.
  /// Without start(), the first scrape baselines against an empty snapshot
  /// (deltas = absolute counter values) at slot 0.
  void start(std::uint64_t slot);

  /// True when `slot` is at least one interval past the previous frame.
  bool due(std::uint64_t slot) const;

  /// Scrapes when due; returns the new frame, or nullptr when not due.
  /// The pointer stays valid until the next push into the store evicts it.
  const SeriesFrame* maybe_scrape(std::uint64_t slot);

  /// Unconditional scrape at `slot` (used for a final partial-window frame;
  /// `slot` must be past the previous frame's slot).
  const SeriesFrame& scrape(std::uint64_t slot);

  /// Wall-clock mode for a live service with no slot clock: scrapes when at
  /// least `min_seconds` of wall time passed since the previous frame.
  /// Frames carry slots_delta = 0 and make no determinism promise.
  const SeriesFrame* maybe_scrape_wall(double min_seconds);

  const TimeSeriesStore& store() const { return store_; }
  std::uint64_t interval_slots() const { return config_.interval_slots; }

 private:
  const SeriesFrame& scrape_now(std::uint64_t slot, std::uint64_t slots_delta);

  MetricsScraperConfig config_;
  TimeSeriesStore store_;
  MetricsSnapshot last_;
  bool started_ = false;
  std::uint64_t last_slot_ = 0;
  double last_uptime_ = 0.0;
  std::uint64_t next_index_ = 0;
};

/// Prometheus text exposition of a full snapshot: `# HELP`/`# TYPE` per
/// metric, names mangled '.' -> '_', histograms as cumulative
/// `_bucket{le="..."}` rows ending in `+Inf` (== `_count`) plus `_sum` and
/// `_count`.  Leads with an fdeta_build_info gauge (version/schema labels)
/// and the process uptime.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Fixed-width header for the live fleet scoreboard.
std::string scoreboard_header();
/// One scoreboard line for `frame` (rates, p95 ingest latency, worst
/// shard, drift/burst gauges).
std::string scoreboard_line(const SeriesFrame& frame);

/// Parses the scalar summary fields of one to_json() line back into a
/// frame (the counter/gauge maps are not reconstructed - the scoreboard
/// does not need them).  Returns nullopt for a line that is not a series
/// frame.
std::optional<SeriesFrame> parse_series_frame(std::string_view line);

}  // namespace fdeta::obs
