// Structured domain-event log: the per-decision forensic record that the
// deliberately cardinality-free metrics registry (obs/metrics.h) refuses to
// hold.  WHY consumer 1004's week 24 fired - its score, threshold and
// direction - and WHICH balance-tree nodes an investigation visited are
// events here, one JSON object per line (JSONL).
//
// Determinism contract: events carry logical time only (week / slot /
// sequence number), never wall-clock, and every field is emitted in the
// caller's insertion order with fixed formatting (%.17g doubles).  A
// fixed-seed run therefore produces a byte-identical log, which the golden
// tests pin.
//
// Schema policy: every line starts {"schema":N,"seq":M,"event":"..."}.  N is
// bumped on ANY change to an existing event's fields or their order; adding
// a new event kind is not a schema change.  The event inventory lives in
// DESIGN.md ("Tracing & event log").
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fdeta::obs {

inline constexpr std::uint32_t kEventSchemaVersion = 1;

/// Escapes `s` for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

/// Append-only JSON object body builder with caller-controlled field order.
/// Method names mirror persist::Encoder (str/u64/i64/f64) so call sites read
/// the same and integer overload ambiguity never arises.
class EventFields {
 public:
  EventFields& str(std::string_view key, std::string_view value);
  EventFields& u64(std::string_view key, std::uint64_t value);
  EventFields& i64(std::string_view key, std::int64_t value);
  /// %.17g (round-trip exact); non-finite values are emitted as the strings
  /// "inf"/"-inf"/"nan" since bare tokens would break JSON parsers.
  EventFields& f64(std::string_view key, double value);
  EventFields& boolean(std::string_view key, bool value);
  /// Pre-serialized JSON (a nested array/object); the caller guarantees
  /// validity.
  EventFields& raw(std::string_view key, std::string_view json);

  /// The accumulated ",\"k\":v,..." body (empty when no fields were added).
  const std::string& body() const { return body_; }

 private:
  void key(std::string_view k);
  std::string body_;
};

/// A bounded-purpose, thread-safe JSONL sink.  Disabled by default: emit()
/// is a single relaxed load and nothing else until enable() is called, so
/// instrumented code can emit unconditionally.
class EventLog {
 public:
  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one line: {"schema":S,"seq":N,"event":"<event>",<fields...>}.
  /// Sequence numbers start at 1 and increase in emission order.  No-op
  /// while disabled.
  void emit(std::string_view event, const EventFields& fields = {});

  std::size_t size() const;
  std::vector<std::string> lines() const;
  /// All lines, each terminated with '\n'.
  std::string to_jsonl() const;
  void write(std::ostream& out) const;
  /// Drops all lines and resets the sequence counter to 1.
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
  std::uint64_t next_seq_ = 1;
};

/// The process-wide log: components not handed an explicit sink emit here.
/// The fdeta CLI enables it for --events-out.
EventLog& default_event_log();

}  // namespace fdeta::obs
