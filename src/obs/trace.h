// Span tracing for latency attribution: where does a fleet sweep spend its
// wall-clock time - pool tasks, pipeline fits, monitor batches, checkpoint
// IO, head-end deliveries?
//
// Design rules (complementing the metrics registry, obs/metrics.h):
//  - Off by default and near-zero cost while off: a disabled TraceSpan is
//    one relaxed atomic load in the constructor and a null check in the
//    destructor - no allocation, no clock read, no lock.
//  - Lock-cheap while on: spans record into a per-thread buffer (one
//    uncontended mutex acquisition per span); buffers drain into a bounded
//    process-wide ring, so a runaway producer overwrites its oldest spans
//    instead of growing without bound.
//  - Span names and categories are static string literals (they are stored
//    as `const char*` and embedded unescaped in the JSON export).  Naming
//    follows the metric scheme: "<component>.<what>", e.g. "pipeline.fit".
//    Never encode a consumer/week into a span name - cardinality lives in
//    the event log (obs/event_log.h), not here.
//  - Export is the Chrome trace-event JSON format ("X" complete events), so
//    a --trace-out file loads directly in Perfetto / chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fdeta::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// The disabled-path check: exactly one relaxed atomic load.
inline bool trace_enabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// One completed span.  `name`/`category` are static literals (never owned).
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t start_ns = 0;     ///< absolute steady-clock nanoseconds
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;          ///< tracer-assigned dense thread id
};

/// The process-wide span collector.  All methods are thread-safe; record()
/// is the only one expected on hot paths (and only while enabled).
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1u << 16;

  static Tracer& instance();

  /// Clears previously collected spans and starts recording.  Bumping the
  /// generation invalidates whatever stale spans still sit in thread-local
  /// buffers from an earlier enable window.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);

  /// Stops recording; already-recorded spans remain until the next enable().
  void disable();

  bool enabled() const { return trace_enabled(); }

  /// Appends one completed span (called by ~TraceSpan).  Drops silently when
  /// recording is off.
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t end_ns);

  /// Drains every thread buffer into the ring and returns the ring's spans
  /// in chronological order (ties: longer span first, so parents precede
  /// their children).  At most ring_capacity spans survive; see dropped().
  std::vector<TraceEvent> collect();

  /// Spans overwritten because the ring was full (since the last enable()).
  std::uint64_t dropped() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}), timestamps in
  /// microseconds relative to the last enable().  Loads in Perfetto.
  std::string chrome_trace_json();

  /// Absolute steady-clock nanoseconds (the span clock).
  static std::uint64_t now_ns();

 private:
  struct ThreadBuffer;

  Tracer() = default;

  const std::shared_ptr<ThreadBuffer>& local_buffer();
  /// Moves `buf`'s spans into the ring.  Caller holds mutex_ THEN buf.mutex
  /// (the global lock order; record() takes only buf.mutex on its fast path
  /// and re-acquires in that order when the buffer fills).
  void drain_into_ring(ThreadBuffer& buf);

  mutable std::mutex mutex_;  // guards everything below
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> ring_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::size_t ring_head_ = 0;  // next overwrite position once full
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_ns_ = 0;  // set at enable(); JSON timestamps are
                                // relative to it
  std::uint32_t next_tid_ = 0;
  std::atomic<std::uint64_t> generation_{0};
};

/// RAII span: times the enclosing scope when tracing is enabled.  Cheap to
/// construct unconditionally - the disabled path does no work beyond the
/// trace_enabled() load.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "fdeta") {
    if (trace_enabled()) {
      name_ = name;
      category_ = category;
      start_ns_ = Tracer::now_ns();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::instance().record(name_, category_, start_ns_,
                                Tracer::now_ns());
    }
  }

 private:
  const char* name_ = nullptr;  // null = disabled at construction
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace fdeta::obs
