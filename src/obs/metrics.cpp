#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace fdeta::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty() || name.front() < 'a' || name.front() > 'z') return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
           c == '.';
  });
}

void check_name(std::string_view name) {
  require(valid_metric_name(name),
          "MetricsRegistry: metric name must match [a-z][a-z0-9_.]*: '" +
              std::string(name) + "'");
}

void atomic_add_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Captured at static initialization so uptime measures from process start,
// not from the first snapshot.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

const char* fdeta_version() { return "0.4.0"; }

double process_uptime_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), buckets_(edges_.size() + 1) {
  require(!edges_.empty(), "Histogram: at least one bucket edge required");
  require(std::is_sorted(edges_.begin(), edges_.end()) &&
              std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
          "Histogram: bucket edges must be strictly increasing");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - edges_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

const std::vector<double>& default_latency_edges_seconds() {
  static const std::vector<double> edges{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
                                         1e-3, 5e-3, 1e-2, 5e-2, 0.1,  0.5,
                                         1.0,  5.0,  10.0};
  return edges;
}

double ScopedTimer::stop() {
  if (sink_ == nullptr) return 0.0;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  sink_->observe(elapsed);
  sink_ = nullptr;
  return elapsed;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double in_bucket = static_cast<double>(buckets[i]);
    const double before = cumulative;
    cumulative += in_bucket;
    if (cumulative < rank) continue;
    if (i >= upper_edges.size()) return upper_edges.back();  // overflow
    const double lower = i == 0 ? 0.0 : upper_edges[i - 1];
    const double upper = upper_edges[i];
    // Clamp so q=0 lands on the first non-empty bucket's lower edge.
    const double within = std::max(0.0, rank - before);
    return lower + (upper - lower) * within / in_bucket;
  }
  // Unreachable when count matches the bucket totals; be defensive anyway.
  return upper_edges.empty() ? 0.0 : upper_edges.back();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

bool is_layout_scoped_metric(std::string_view name) {
  return name.substr(0, 5) == "pool." ||
         name.find("shard") != std::string_view::npos;
}

namespace {

// Map equality over the determinism-scoped entries only.
template <typename Map>
bool same_det_entries(const Map& a, const Map& b) {
  auto it = a.begin();
  auto jt = b.begin();
  while (true) {
    while (it != a.end() && is_layout_scoped_metric(it->first)) ++it;
    while (jt != b.end() && is_layout_scoped_metric(jt->first)) ++jt;
    if (it == a.end() || jt == b.end()) {
      return it == a.end() && jt == b.end();
    }
    if (it->first != jt->first || it->second != jt->second) return false;
    ++it;
    ++jt;
  }
}

}  // namespace

bool MetricsSnapshot::same_counts(const MetricsSnapshot& other) const {
  return same_det_entries(counters, other.counters) &&
         same_det_entries(gauges, other.gauges);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"meta\": {\"schema\": ";
  out += std::to_string(kMetricsSchemaVersion);
  out += ", \"version\": \"";
  out += fdeta_version();
  out += "\", \"uptime_seconds\": " + format_double(uptime_seconds) + "},\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + format_double(h.sum) +
           ", \"p50\": " + format_double(h.quantile(0.50)) +
           ", \"p95\": " + format_double(h.quantile(0.95)) +
           ", \"p99\": " + format_double(h.quantile(0.99)) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.upper_edges.size() ? format_double(h.upper_edges[i])
                                      : std::string("\"inf\"");
      out += ", \"count\": " + std::to_string(h.buckets[i]) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out = "-- metrics " + std::string(48, '-') + "\n";
  char line[256];
  for (const auto& [name, v] : counters) {
    std::snprintf(line, sizeof(line), "counter  %-40s %14llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += line;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(line, sizeof(line), "gauge    %-40s %14lld\n", name.c_str(),
                  static_cast<long long>(v));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    const double mean = h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
    std::snprintf(line, sizeof(line),
                  "hist     %-40s count=%llu sum=%.6gs mean=%.6gs "
                  "p50=%.6gs p95=%.6gs p99=%.6gs\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum, mean, h.quantile(0.50), h.quantile(0.95),
                  h.quantile(0.99));
    out += line;
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  check_name(name);
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  check_name(name);
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_edges) {
  check_name(name);
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_edges.empty()) upper_edges = default_latency_edges_seconds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_edges)))
             .first;
  } else {
    require(upper_edges.empty() || upper_edges == it->second->upper_edges(),
            "MetricsRegistry::histogram: '" + std::string(name) +
                "' already exists with different upper_edges");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.uptime_seconds = process_uptime_seconds();
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.upper_edges = h->upper_edges();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fdeta::obs
