#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace fdeta::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {
// Per-thread buffer size before a drain into the process ring.  Big enough
// that a scoring sweep drains a handful of times, small enough that
// collect() sees recent spans without waiting for a full buffer.
constexpr std::size_t kThreadBufferCapacity = 4096;
}  // namespace

struct Tracer::ThreadBuffer {
  std::mutex mutex;  // acquired after Tracer::mutex_ when both are held
  std::vector<TraceEvent> events;
  std::uint64_t generation = 0;  // enable() window the events belong to
  std::uint32_t tid = 0;
};

Tracer& Tracer::instance() {
  // Leaked singleton: pool worker threads may still finish spans while
  // static destructors run, so the tracer must never be destroyed.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::enable(std::size_t ring_capacity) {
  std::lock_guard lock(mutex_);
  ring_.clear();
  ring_head_ = 0;
  ring_capacity_ = std::max<std::size_t>(1, ring_capacity);
  dropped_ = 0;
  epoch_ns_ = now_ns();
  // Invalidate spans still parked in thread buffers from an earlier window;
  // they self-clear on each thread's next record().
  generation_.fetch_add(1, std::memory_order_release);
  internal::g_trace_enabled.store(true, std::memory_order_release);
}

void Tracer::disable() {
  internal::g_trace_enabled.store(false, std::memory_order_release);
}

const std::shared_ptr<Tracer::ThreadBuffer>& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto fresh = std::make_shared<ThreadBuffer>();
    std::lock_guard lock(mutex_);
    fresh->tid = next_tid_++;
    buffers_.push_back(fresh);
    return fresh;
  }();
  return buffer;
}

void Tracer::drain_into_ring(ThreadBuffer& buf) {
  if (buf.generation != generation_.load(std::memory_order_acquire)) {
    buf.events.clear();  // stale spans from a previous enable() window
    return;
  }
  for (const TraceEvent& e : buf.events) {
    if (ring_.size() < ring_capacity_) {
      ring_.push_back(e);
    } else {
      ring_[ring_head_] = e;
      ring_head_ = (ring_head_ + 1) % ring_capacity_;
      ++dropped_;
    }
  }
  buf.events.clear();
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t end_ns) {
  if (!trace_enabled()) return;  // disabled between span start and finish
  const std::shared_ptr<ThreadBuffer>& buf = local_buffer();

  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = start_ns;
  event.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.tid = buf->tid;

  bool full = false;
  {
    std::lock_guard lock(buf->mutex);
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (buf->generation != gen) {
      buf->events.clear();
      buf->generation = gen;
    }
    buf->events.push_back(event);
    full = buf->events.size() >= kThreadBufferCapacity;
  }
  if (full) {
    // Re-acquire in the global order (tracer state, then buffer).
    std::lock_guard state(mutex_);
    std::lock_guard lock(buf->mutex);
    drain_into_ring(*buf);
  }
}

std::vector<TraceEvent> Tracer::collect() {
  std::lock_guard state(mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard lock(buf->mutex);
    drain_into_ring(*buf);
  }
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Unroll the ring so overwritten windows still come out oldest-first.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.duration_ns > b.duration_ns;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::string Tracer::chrome_trace_json() {
  const std::vector<TraceEvent> events = collect();
  std::uint64_t epoch = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard lock(mutex_);
    epoch = epoch_ns_;
    dropped = dropped_;
  }

  std::string out = "{\"traceEvents\":[";
  char line[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    const double ts_us =
        e.start_ns >= epoch ? static_cast<double>(e.start_ns - epoch) / 1e3
                            : 0.0;
    std::snprintf(line, sizeof(line),
                  "%s\n  {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  first ? "" : ",", e.name, e.category, ts_us,
                  static_cast<double>(e.duration_ns) / 1e3, e.tid);
    out += line;
    first = false;
  }
  out += first ? "]" : "\n]";
  out += ",\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"" +
         std::to_string(dropped) + "\"}}\n";
  return out;
}

}  // namespace fdeta::obs
