// Fleet telemetry: a lock-cheap metrics registry for the control-center
// loop (head-end deliveries, online scoring, pipeline sweeps, pool load).
//
// Design rules:
//  - Hot path is wait-free: Counter/Gauge/Histogram updates are relaxed
//    atomics; instrumented code caches metric pointers at construction so
//    per-reading work never takes the registry lock.
//  - The registry lock guards only metric *creation/lookup* and snapshots.
//  - Reads are snapshot-on-read: snapshot() copies every value into plain
//    structs, so exposition (JSON/text) and test assertions never race the
//    producers.
//  - Counters are monotonic facts (readings ingested, alerts raised) - the
//    deterministic fixed-seed paths make them exactly assertable; latency
//    histograms are the only wall-clock-dependent metrics.
//
// Naming scheme (see DESIGN.md "Telemetry"): "<component>.<what>[_<unit>]",
// lowercase [a-z0-9_.]; one metric name = one fixed time series, never
// per-consumer/per-week names (unbounded cardinality).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fdeta::obs {

/// Library version string stamped into exposition metadata so downstream
/// scrapers can attribute a metrics file to a build.
const char* fdeta_version();

/// Seconds of monotonic (steady) clock since the process started; snapshots
/// capture it so a scraper can distinguish a fresh process from a long-lived
/// one with identical counters.
double process_uptime_seconds();

/// Bumped on ANY change to the JSON exposition layout.  Version history:
///   1 - counters/gauges/histograms maps (PR 2)
///   2 - leading "meta" object (schema/version/uptime) + histogram
///       p50/p95/p99 derived quantiles
inline constexpr std::uint32_t kMetricsSchemaVersion = 2;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can move both ways (queue depth, missing-report backlog),
/// with a CAS max-raise for high-water marks.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void update_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= upper_edges[i]
/// (first matching edge); one extra overflow bucket catches the rest.
/// Edges are frozen at creation, so concurrent observers only touch atomics.
class Histogram {
 public:
  /// `upper_edges` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_edges);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  const std::vector<double>& upper_edges() const { return edges_; }
  /// Per-bucket counts; size upper_edges().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket edges in seconds: 1us .. 10s, decade +
/// half-decade steps - wide enough for a 336-slot KLD score (~us) and a
/// 50k-consumer fit (~s) in the same registry.
const std::vector<double>& default_latency_edges_seconds();

/// Records the elapsed wall time into a histogram on destruction (or at an
/// explicit stop()).  Intended for per-batch / per-sweep latencies.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink)
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now and detaches; returns the elapsed seconds.  Subsequent
  /// stop()/destruction record nothing.
  double stop();

  ~ScopedTimer() { stop(); }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

struct HistogramSnapshot {
  std::vector<double> upper_edges;
  std::vector<std::uint64_t> buckets;  ///< upper_edges.size()+1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Derived quantile (q in [0, 1]) by linear interpolation inside the
  /// containing bucket.  Assumes non-negative observations (these are
  /// latency histograms): bucket 0 spans [0, upper_edges[0]].  Observations
  /// in the overflow bucket clamp to the last finite edge - an honest lower
  /// bound, since the histogram cannot know how far past it they landed.
  /// Returns 0 for an empty histogram.
  double quantile(double q) const;
};

/// True for metric names whose values depend on the shard x thread layout
/// rather than on the ingested data: the shared pool's "pool." series and
/// anything carrying "shard" in its name (per-shard health series, the
/// shard-imbalance gauges).  Layout-scoped metrics are outside the
/// determinism contract: same_counts() skips them and the time-series layer
/// exports them in a frame's `env` block.
bool is_layout_scoped_metric(std::string_view name);

/// A point-in-time copy of every metric in a registry.  Plain data: safe to
/// compare, serialize, and diff long after the producers moved on.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// process_uptime_seconds() at snapshot time (0 for hand-built snapshots).
  double uptime_seconds = 0.0;

  /// Counter value by name; 0 when the counter does not exist.
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value by name; 0 when the gauge does not exist.
  std::int64_t gauge(std::string_view name) const;

  /// True when every counter and gauge (names and values) agree.  Latency
  /// histograms are deliberately excluded: they carry wall-clock time and
  /// can never be deterministic across runs.  Layout-scoped metrics
  /// (is_layout_scoped_metric) are excluded too: per-shard depths and pool
  /// counters legitimately differ between layouts and entry points.
  bool same_counts(const MetricsSnapshot& other) const;

  /// Stable machine-readable exposition (keys sorted by name).
  std::string to_json() const;
  /// Human summary table (one line per metric).
  std::string to_text() const;
};

/// Named-metric owner.  Metric objects have stable addresses for the
/// registry's lifetime; instrumented components cache the pointers once and
/// update lock-free afterwards.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use.  Names must
  /// match [a-z][a-z0-9_.]* and are shared: the same name always yields the
  /// same object.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_edges` applies on first creation (empty = the default latency
  /// edges).  A later lookup with empty or identical edges returns the
  /// existing histogram; a lookup with *different* non-empty edges throws -
  /// two call sites silently sharing one histogram under conflicting bucket
  /// layouts is a bug, never an intent.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_edges = {});

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry: the shared thread pool and any component not
/// given an explicit registry report here.  The fdeta CLI exposes it via
/// --metrics-out.
MetricsRegistry& default_registry();

}  // namespace fdeta::obs
