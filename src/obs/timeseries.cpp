#include "obs/timeseries.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/error.h"

namespace fdeta::obs {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Bucket-edge labels use %g: the default latency edges are short decades
// ("1e-06", "0.5") and the label must be stable, not a 17-digit round trip.
std::string format_edge(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string mangle_prometheus_name(std::string_view name) {
  std::string out(name);
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

void append_counter_map(std::string& out, const char* key,
                        const std::map<std::string, std::uint64_t>& map) {
  out += "\"";
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, v] : map) {
    if (!first) out += ",";
    out += "\"" + name + "\":" + std::to_string(v);
    first = false;
  }
  out += "}";
}

void append_gauge_map(std::string& out, const char* key,
                      const std::map<std::string, std::int64_t>& map) {
  out += "\"";
  out += key;
  out += "\":{";
  bool first = true;
  for (const auto& [name, v] : map) {
    if (!first) out += ",";
    out += "\"" + name + "\":" + std::to_string(v);
    first = false;
  }
  out += "}";
}

std::uint64_t delta_u64(std::uint64_t now, std::uint64_t before) {
  return now >= before ? now - before : 0;
}

/// Finds `"key":` at object-key position (preceded by '{' or ',') and
/// returns the raw number token after it.  Metric names always carry a
/// '.', so plain keys like "slot" cannot collide with map entries.
std::optional<double> find_number(std::string_view line,
                                  std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string_view::npos) {
    if (pos > 0 && (line[pos - 1] == '{' || line[pos - 1] == ',')) {
      const std::size_t start = pos + needle.size();
      char* end = nullptr;
      const std::string token(line.substr(start, 64));
      const double v = std::strtod(token.c_str(), &end);
      if (end == token.c_str()) return std::nullopt;
      return v;
    }
    pos += needle.size();
  }
  return std::nullopt;
}

}  // namespace

std::string SeriesFrame::to_json(bool include_env) const {
  std::string out = "{";
  out += "\"series_schema\":" + std::to_string(kSeriesSchemaVersion);
  out += ",\"frame\":" + std::to_string(index);
  out += ",\"slot\":" + std::to_string(slot);
  out += ",\"slots_delta\":" + std::to_string(slots_delta);
  out += ",";
  append_counter_map(out, "counters", counter_deltas);
  out += ",";
  append_gauge_map(out, "gauges", gauges);
  out += ",\"rates\":{";
  out += "\"readings_per_slot\":" + format_double(readings_per_slot);
  out += ",\"alerts_per_hour\":" + format_double(alerts_per_hour);
  out += ",\"coverage_gated_fraction\":" +
         format_double(coverage_gated_fraction);
  out += ",\"drift_milli_bits\":" + std::to_string(drift_milli_bits);
  out += ",\"burst_milli\":" + std::to_string(burst_milli);
  out += "}";
  if (include_env) {
    out += ",\"env\":{";
    out += "\"uptime_seconds\":" + format_double(uptime_seconds);
    out += ",\"wall_delta_seconds\":" + format_double(wall_delta_seconds);
    out += ",\"readings_per_sec\":" + format_double(readings_per_sec);
    out += ",\"p95_ingest_seconds\":" + format_double(p95_ingest_seconds);
    out += ",\"worst_shard\":" + std::to_string(worst_shard);
    out += ",\"worst_shard_depth\":" + std::to_string(worst_shard_depth);
    out += ",";
    append_counter_map(out, "counters", env_counter_deltas);
    out += ",";
    append_gauge_map(out, "gauges", env_gauges);
    out += "}";
  }
  out += "}";
  return out;
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity) : capacity_(capacity) {
  require(capacity_ > 0, "TimeSeriesStore: capacity must be positive");
}

void TimeSeriesStore::push(SeriesFrame frame) {
  if (frames_.size() == capacity_) {
    frames_.pop_front();
    ++dropped_;
  }
  frames_.push_back(std::move(frame));
}

std::string TimeSeriesStore::to_jsonl(bool include_env) const {
  std::string out;
  for (const SeriesFrame& frame : frames_) {
    out += frame.to_json(include_env);
    out += "\n";
  }
  return out;
}

MetricsScraper::MetricsScraper(MetricsScraperConfig config)
    : config_(config), store_(config.capacity) {
  require(config_.interval_slots > 0,
          "MetricsScraper: interval_slots must be positive");
}

void MetricsScraper::start(std::uint64_t slot) {
  const MetricsRegistry& registry =
      config_.registry != nullptr ? *config_.registry : default_registry();
  last_ = registry.snapshot();
  last_slot_ = slot;
  last_uptime_ = last_.uptime_seconds;
  started_ = true;
}

bool MetricsScraper::due(std::uint64_t slot) const {
  if (!started_) return slot >= config_.interval_slots;
  return slot >= last_slot_ + config_.interval_slots;
}

const SeriesFrame* MetricsScraper::maybe_scrape(std::uint64_t slot) {
  if (!due(slot)) return nullptr;
  return &scrape(slot);
}

const SeriesFrame& MetricsScraper::scrape(std::uint64_t slot) {
  require(slot > last_slot_ || (!started_ && next_index_ == 0),
          "MetricsScraper: slot clock must advance between scrapes");
  return scrape_now(slot, slot - last_slot_);
}

const SeriesFrame* MetricsScraper::maybe_scrape_wall(double min_seconds) {
  const double uptime = process_uptime_seconds();
  if (next_index_ > 0 || started_) {
    if (uptime - last_uptime_ < min_seconds) return nullptr;
  }
  return &scrape_now(last_slot_, /*slots_delta=*/0);
}

const SeriesFrame& MetricsScraper::scrape_now(std::uint64_t slot,
                                              std::uint64_t slots_delta) {
  const MetricsRegistry& registry =
      config_.registry != nullptr ? *config_.registry : default_registry();
  const MetricsSnapshot now = registry.snapshot();

  SeriesFrame frame;
  frame.index = next_index_++;
  frame.slot = slot;
  frame.slots_delta = slots_delta;
  frame.uptime_seconds = now.uptime_seconds;
  frame.wall_delta_seconds =
      started_ || frame.index > 0
          ? std::max(0.0, now.uptime_seconds - last_uptime_)
          : 0.0;

  for (const auto& [name, value] : now.counters) {
    const std::uint64_t delta = delta_u64(value, last_.counter(name));
    if (is_layout_scoped_metric(name)) {
      frame.env_counter_deltas[name] = delta;
    } else {
      frame.counter_deltas[name] = delta;
    }
  }
  for (const auto& [name, value] : now.gauges) {
    if (is_layout_scoped_metric(name)) {
      frame.env_gauges[name] = value;
    } else {
      frame.gauges[name] = value;
    }
  }

  // Windowed rates.  Logical rates divide by the slot clock and stay
  // deterministic; wall rates live in env.
  const std::uint64_t readings =
      frame.counter_deltas.count("monitor.readings_ingested") != 0
          ? frame.counter_deltas.at("monitor.readings_ingested")
          : 0;
  const std::uint64_t alerts =
      frame.counter_deltas.count("monitor.alerts_raised") != 0
          ? frame.counter_deltas.at("monitor.alerts_raised")
          : 0;
  const std::uint64_t evaluated =
      frame.counter_deltas.count("monitor.scores_evaluated") != 0
          ? frame.counter_deltas.at("monitor.scores_evaluated")
          : 0;
  const std::uint64_t gated =
      frame.counter_deltas.count("monitor.scores_coverage_gated") != 0
          ? frame.counter_deltas.at("monitor.scores_coverage_gated")
          : 0;
  if (slots_delta > 0) {
    frame.readings_per_slot =
        static_cast<double>(readings) / static_cast<double>(slots_delta);
    // 30-minute slots: 2 slots per logical hour.
    frame.alerts_per_hour =
        static_cast<double>(alerts) / (static_cast<double>(slots_delta) / 2.0);
  }
  if (evaluated + gated > 0) {
    frame.coverage_gated_fraction = static_cast<double>(gated) /
                                    static_cast<double>(evaluated + gated);
  }
  frame.drift_milli_bits = now.gauge("monitor.population_drift_milli_bits");
  frame.burst_milli = now.gauge("monitor.alert_burst_milli");

  if (frame.wall_delta_seconds > 0.0) {
    frame.readings_per_sec =
        static_cast<double>(readings) / frame.wall_delta_seconds;
  }

  // p95 ingest latency over the window: quantile of the per-bucket deltas
  // between this frame's histogram and the previous one.
  const auto hist = now.histograms.find("monitor.ingest_batch_seconds");
  if (hist != now.histograms.end()) {
    HistogramSnapshot window = hist->second;
    const auto prev = last_.histograms.find("monitor.ingest_batch_seconds");
    if (prev != last_.histograms.end() &&
        prev->second.buckets.size() == window.buckets.size()) {
      for (std::size_t b = 0; b < window.buckets.size(); ++b) {
        window.buckets[b] =
            delta_u64(window.buckets[b], prev->second.buckets[b]);
      }
      window.count = delta_u64(window.count, prev->second.count);
    }
    frame.p95_ingest_seconds = window.quantile(0.95);
  }

  // Worst shard: largest pending-batch high-water gauge across every
  // instrumented component ("monitor.shard07.pending_highwater", ...).
  for (const auto& [name, value] : frame.env_gauges) {
    const std::size_t shard_pos = name.find(".shard");
    if (shard_pos == std::string::npos) continue;
    if (name.size() < 18 ||
        name.compare(name.size() - 18, 18, ".pending_highwater") != 0) {
      continue;
    }
    if (value <= frame.worst_shard_depth && frame.worst_shard >= 0) continue;
    frame.worst_shard_depth = value;
    frame.worst_shard = 0;
    for (std::size_t p = shard_pos + 6; p < name.size(); ++p) {
      if (name[p] < '0' || name[p] > '9') break;
      frame.worst_shard = frame.worst_shard * 10 + (name[p] - '0');
    }
  }

  last_ = now;
  last_slot_ = slot;
  last_uptime_ = now.uptime_seconds;
  started_ = true;
  store_.push(std::move(frame));
  return store_.frames().back();
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "# HELP fdeta_build_info Build metadata for this exposition.\n";
  out += "# TYPE fdeta_build_info gauge\n";
  out += "fdeta_build_info{version=\"";
  out += fdeta_version();
  out += "\",schema=\"" + std::to_string(kMetricsSchemaVersion) + "\"} 1\n";
  out += "# HELP fdeta_process_uptime_seconds Seconds since process start.\n";
  out += "# TYPE fdeta_process_uptime_seconds gauge\n";
  out += "fdeta_process_uptime_seconds " +
         format_double(snapshot.uptime_seconds) + "\n";

  for (const auto& [name, value] : snapshot.counters) {
    const std::string mangled = mangle_prometheus_name(name);
    out += "# HELP " + mangled + " fdeta counter " + name + "\n";
    out += "# TYPE " + mangled + " counter\n";
    out += mangled + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string mangled = mangle_prometheus_name(name);
    out += "# HELP " + mangled + " fdeta gauge " + name + "\n";
    out += "# TYPE " + mangled + " gauge\n";
    out += mangled + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string mangled = mangle_prometheus_name(name);
    out += "# HELP " + mangled + " fdeta histogram " + name + "\n";
    out += "# TYPE " + mangled + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const std::string le = b < h.upper_edges.size()
                                 ? format_edge(h.upper_edges[b])
                                 : std::string("+Inf");
      out += mangled + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += mangled + "_sum " + format_double(h.sum) + "\n";
    out += mangled + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string scoreboard_header() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%5s %8s %9s %10s %9s %7s %7s %7s %8s %11s", "frame", "slot",
                "rdgs/slot", "rdgs/s", "alerts/h", "gated%", "p95ms",
                "drift", "burst", "worst-shard");
  return buf;
}

std::string scoreboard_line(const SeriesFrame& frame) {
  char shard[32];
  if (frame.worst_shard >= 0) {
    std::snprintf(shard, sizeof(shard), "s%02" PRId64 ":%" PRId64,
                  frame.worst_shard, frame.worst_shard_depth);
  } else {
    std::snprintf(shard, sizeof(shard), "-");
  }
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%5" PRIu64 " %8" PRIu64
                " %9.1f %10.0f %9.2f %6.1f%% %7.2f %7" PRId64 " %8" PRId64
                " %11s",
                frame.index, frame.slot, frame.readings_per_slot,
                frame.readings_per_sec, frame.alerts_per_hour,
                100.0 * frame.coverage_gated_fraction,
                1000.0 * frame.p95_ingest_seconds, frame.drift_milli_bits,
                frame.burst_milli, shard);
  return buf;
}

std::optional<SeriesFrame> parse_series_frame(std::string_view line) {
  const auto frame_no = find_number(line, "frame");
  const auto slot = find_number(line, "slot");
  if (!frame_no.has_value() || !slot.has_value()) return std::nullopt;
  SeriesFrame frame;
  frame.index = static_cast<std::uint64_t>(*frame_no);
  frame.slot = static_cast<std::uint64_t>(*slot);
  const auto scalar = [&](std::string_view key, double fallback) {
    const auto v = find_number(line, key);
    return v.has_value() ? *v : fallback;
  };
  frame.slots_delta =
      static_cast<std::uint64_t>(scalar("slots_delta", 0.0));
  frame.readings_per_slot = scalar("readings_per_slot", 0.0);
  frame.alerts_per_hour = scalar("alerts_per_hour", 0.0);
  frame.coverage_gated_fraction = scalar("coverage_gated_fraction", 0.0);
  frame.drift_milli_bits =
      static_cast<std::int64_t>(scalar("drift_milli_bits", 0.0));
  frame.burst_milli = static_cast<std::int64_t>(scalar("burst_milli", 0.0));
  frame.uptime_seconds = scalar("uptime_seconds", 0.0);
  frame.wall_delta_seconds = scalar("wall_delta_seconds", 0.0);
  frame.readings_per_sec = scalar("readings_per_sec", 0.0);
  frame.p95_ingest_seconds = scalar("p95_ingest_seconds", 0.0);
  frame.worst_shard = static_cast<std::int64_t>(scalar("worst_shard", -1.0));
  frame.worst_shard_depth =
      static_cast<std::int64_t>(scalar("worst_shard_depth", 0.0));
  return frame;
}

}  // namespace fdeta::obs
