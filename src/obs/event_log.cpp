#include "obs/event_log.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace fdeta::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void EventFields::key(std::string_view k) {
  body_ += ",\"";
  body_ += json_escape(k);
  body_ += "\":";
}

EventFields& EventFields::str(std::string_view k, std::string_view value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

EventFields& EventFields::u64(std::string_view k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

EventFields& EventFields::i64(std::string_view k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

EventFields& EventFields::f64(std::string_view k, double value) {
  if (!std::isfinite(value)) {
    return str(k, value > 0.0 ? "inf" : (value < 0.0 ? "-inf" : "nan"));
  }
  key(k);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  body_ += buf;
  return *this;
}

EventFields& EventFields::boolean(std::string_view k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

EventFields& EventFields::raw(std::string_view k, std::string_view json) {
  key(k);
  body_ += json;
  return *this;
}

void EventLog::emit(std::string_view event, const EventFields& fields) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  std::string line = "{\"schema\":";
  line += std::to_string(kEventSchemaVersion);
  line += ",\"seq\":";
  line += std::to_string(next_seq_++);
  line += ",\"event\":\"";
  line += json_escape(event);
  line += '"';
  line += fields.body();
  line += '}';
  lines_.push_back(std::move(line));
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mutex_);
  return lines_.size();
}

std::vector<std::string> EventLog::lines() const {
  std::lock_guard lock(mutex_);
  return lines_;
}

std::string EventLog::to_jsonl() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void EventLog::write(std::ostream& out) const { out << to_jsonl(); }

void EventLog::clear() {
  std::lock_guard lock(mutex_);
  lines_.clear();
  next_seq_ = 1;
}

EventLog& default_event_log() {
  static EventLog* log = new EventLog();  // leaked, as Tracer::instance()
  return *log;
}

}  // namespace fdeta::obs
