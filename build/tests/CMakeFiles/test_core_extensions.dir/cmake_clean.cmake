file(REMOVE_RECURSE
  "CMakeFiles/test_core_extensions.dir/test_core_extensions.cpp.o"
  "CMakeFiles/test_core_extensions.dir/test_core_extensions.cpp.o.d"
  "test_core_extensions"
  "test_core_extensions.pdb"
  "test_core_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
