# Empty dependencies file for test_core_extensions.
# This may be replaced when dependencies are built.
