file(REMOVE_RECURSE
  "CMakeFiles/test_stats_normal.dir/test_stats_normal.cpp.o"
  "CMakeFiles/test_stats_normal.dir/test_stats_normal.cpp.o.d"
  "test_stats_normal"
  "test_stats_normal.pdb"
  "test_stats_normal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
