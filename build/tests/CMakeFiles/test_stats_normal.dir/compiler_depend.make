# Empty compiler generated dependencies file for test_stats_normal.
# This may be replaced when dependencies are built.
