# Empty dependencies file for test_timeseries_difference.
# This may be replaced when dependencies are built.
