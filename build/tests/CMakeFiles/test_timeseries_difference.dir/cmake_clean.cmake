file(REMOVE_RECURSE
  "CMakeFiles/test_timeseries_difference.dir/test_timeseries_difference.cpp.o"
  "CMakeFiles/test_timeseries_difference.dir/test_timeseries_difference.cpp.o.d"
  "test_timeseries_difference"
  "test_timeseries_difference.pdb"
  "test_timeseries_difference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeseries_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
