# Empty compiler generated dependencies file for test_timeseries_acf_ar.
# This may be replaced when dependencies are built.
