file(REMOVE_RECURSE
  "CMakeFiles/test_timeseries_acf_ar.dir/test_timeseries_acf_ar.cpp.o"
  "CMakeFiles/test_timeseries_acf_ar.dir/test_timeseries_acf_ar.cpp.o.d"
  "test_timeseries_acf_ar"
  "test_timeseries_acf_ar.pdb"
  "test_timeseries_acf_ar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeseries_acf_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
