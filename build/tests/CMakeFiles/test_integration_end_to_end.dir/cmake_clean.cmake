file(REMOVE_RECURSE
  "CMakeFiles/test_integration_end_to_end.dir/test_integration_end_to_end.cpp.o"
  "CMakeFiles/test_integration_end_to_end.dir/test_integration_end_to_end.cpp.o.d"
  "test_integration_end_to_end"
  "test_integration_end_to_end.pdb"
  "test_integration_end_to_end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
