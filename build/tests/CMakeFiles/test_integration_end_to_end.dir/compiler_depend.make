# Empty compiler generated dependencies file for test_integration_end_to_end.
# This may be replaced when dependencies are built.
