file(REMOVE_RECURSE
  "CMakeFiles/test_common_cli_args.dir/test_common_cli_args.cpp.o"
  "CMakeFiles/test_common_cli_args.dir/test_common_cli_args.cpp.o.d"
  "test_common_cli_args"
  "test_common_cli_args.pdb"
  "test_common_cli_args[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_cli_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
