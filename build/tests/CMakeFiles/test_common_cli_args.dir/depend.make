# Empty dependencies file for test_common_cli_args.
# This may be replaced when dependencies are built.
