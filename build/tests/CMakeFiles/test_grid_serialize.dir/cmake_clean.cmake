file(REMOVE_RECURSE
  "CMakeFiles/test_grid_serialize.dir/test_grid_serialize.cpp.o"
  "CMakeFiles/test_grid_serialize.dir/test_grid_serialize.cpp.o.d"
  "test_grid_serialize"
  "test_grid_serialize.pdb"
  "test_grid_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
