# Empty compiler generated dependencies file for test_grid_losses.
# This may be replaced when dependencies are built.
