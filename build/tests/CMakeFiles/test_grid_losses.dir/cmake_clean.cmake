file(REMOVE_RECURSE
  "CMakeFiles/test_grid_losses.dir/test_grid_losses.cpp.o"
  "CMakeFiles/test_grid_losses.dir/test_grid_losses.cpp.o.d"
  "test_grid_losses"
  "test_grid_losses.pdb"
  "test_grid_losses[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
