file(REMOVE_RECURSE
  "CMakeFiles/test_meter.dir/test_meter.cpp.o"
  "CMakeFiles/test_meter.dir/test_meter.cpp.o.d"
  "test_meter"
  "test_meter.pdb"
  "test_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
