# Empty compiler generated dependencies file for test_meter.
# This may be replaced when dependencies are built.
