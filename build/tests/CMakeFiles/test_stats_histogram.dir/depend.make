# Empty dependencies file for test_stats_histogram.
# This may be replaced when dependencies are built.
