file(REMOVE_RECURSE
  "CMakeFiles/test_stats_histogram.dir/test_stats_histogram.cpp.o"
  "CMakeFiles/test_stats_histogram.dir/test_stats_histogram.cpp.o.d"
  "test_stats_histogram"
  "test_stats_histogram.pdb"
  "test_stats_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
