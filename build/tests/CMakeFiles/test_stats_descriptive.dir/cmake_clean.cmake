file(REMOVE_RECURSE
  "CMakeFiles/test_stats_descriptive.dir/test_stats_descriptive.cpp.o"
  "CMakeFiles/test_stats_descriptive.dir/test_stats_descriptive.cpp.o.d"
  "test_stats_descriptive"
  "test_stats_descriptive.pdb"
  "test_stats_descriptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_descriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
