file(REMOVE_RECURSE
  "CMakeFiles/test_detector_attack_matrix.dir/test_detector_attack_matrix.cpp.o"
  "CMakeFiles/test_detector_attack_matrix.dir/test_detector_attack_matrix.cpp.o.d"
  "test_detector_attack_matrix"
  "test_detector_attack_matrix.pdb"
  "test_detector_attack_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_attack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
