# Empty dependencies file for test_detector_attack_matrix.
# This may be replaced when dependencies are built.
