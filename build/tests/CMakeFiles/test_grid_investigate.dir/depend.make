# Empty dependencies file for test_grid_investigate.
# This may be replaced when dependencies are built.
