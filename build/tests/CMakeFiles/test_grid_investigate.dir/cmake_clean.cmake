file(REMOVE_RECURSE
  "CMakeFiles/test_grid_investigate.dir/test_grid_investigate.cpp.o"
  "CMakeFiles/test_grid_investigate.dir/test_grid_investigate.cpp.o.d"
  "test_grid_investigate"
  "test_grid_investigate.pdb"
  "test_grid_investigate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_investigate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
