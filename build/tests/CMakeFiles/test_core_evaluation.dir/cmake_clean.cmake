file(REMOVE_RECURSE
  "CMakeFiles/test_core_evaluation.dir/test_core_evaluation.cpp.o"
  "CMakeFiles/test_core_evaluation.dir/test_core_evaluation.cpp.o.d"
  "test_core_evaluation"
  "test_core_evaluation.pdb"
  "test_core_evaluation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
