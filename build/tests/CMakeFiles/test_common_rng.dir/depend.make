# Empty dependencies file for test_common_rng.
# This may be replaced when dependencies are built.
