file(REMOVE_RECURSE
  "CMakeFiles/test_common_rng.dir/test_common_rng.cpp.o"
  "CMakeFiles/test_common_rng.dir/test_common_rng.cpp.o.d"
  "test_common_rng"
  "test_common_rng.pdb"
  "test_common_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
