file(REMOVE_RECURSE
  "CMakeFiles/test_grid_balance.dir/test_grid_balance.cpp.o"
  "CMakeFiles/test_grid_balance.dir/test_grid_balance.cpp.o.d"
  "test_grid_balance"
  "test_grid_balance.pdb"
  "test_grid_balance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
