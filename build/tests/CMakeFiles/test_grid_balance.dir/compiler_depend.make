# Empty compiler generated dependencies file for test_grid_balance.
# This may be replaced when dependencies are built.
