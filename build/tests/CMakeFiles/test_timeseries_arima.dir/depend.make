# Empty dependencies file for test_timeseries_arima.
# This may be replaced when dependencies are built.
