file(REMOVE_RECURSE
  "CMakeFiles/test_timeseries_arima.dir/test_timeseries_arima.cpp.o"
  "CMakeFiles/test_timeseries_arima.dir/test_timeseries_arima.cpp.o.d"
  "test_timeseries_arima"
  "test_timeseries_arima.pdb"
  "test_timeseries_arima[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeseries_arima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
