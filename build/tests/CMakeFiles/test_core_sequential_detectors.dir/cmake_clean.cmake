file(REMOVE_RECURSE
  "CMakeFiles/test_core_sequential_detectors.dir/test_core_sequential_detectors.cpp.o"
  "CMakeFiles/test_core_sequential_detectors.dir/test_core_sequential_detectors.cpp.o.d"
  "test_core_sequential_detectors"
  "test_core_sequential_detectors.pdb"
  "test_core_sequential_detectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_sequential_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
