file(REMOVE_RECURSE
  "CMakeFiles/test_core_conditioned_kld.dir/test_core_conditioned_kld.cpp.o"
  "CMakeFiles/test_core_conditioned_kld.dir/test_core_conditioned_kld.cpp.o.d"
  "test_core_conditioned_kld"
  "test_core_conditioned_kld.pdb"
  "test_core_conditioned_kld[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_conditioned_kld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
