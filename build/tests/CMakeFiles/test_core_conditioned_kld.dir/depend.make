# Empty dependencies file for test_core_conditioned_kld.
# This may be replaced when dependencies are built.
