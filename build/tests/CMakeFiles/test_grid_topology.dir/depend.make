# Empty dependencies file for test_grid_topology.
# This may be replaced when dependencies are built.
