file(REMOVE_RECURSE
  "CMakeFiles/test_grid_topology.dir/test_grid_topology.cpp.o"
  "CMakeFiles/test_grid_topology.dir/test_grid_topology.cpp.o.d"
  "test_grid_topology"
  "test_grid_topology.pdb"
  "test_grid_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
