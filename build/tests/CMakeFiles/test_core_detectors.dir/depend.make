# Empty dependencies file for test_core_detectors.
# This may be replaced when dependencies are built.
