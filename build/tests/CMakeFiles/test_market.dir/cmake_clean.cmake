file(REMOVE_RECURSE
  "CMakeFiles/test_market.dir/test_market.cpp.o"
  "CMakeFiles/test_market.dir/test_market.cpp.o.d"
  "test_market"
  "test_market.pdb"
  "test_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
