# Empty compiler generated dependencies file for test_market.
# This may be replaced when dependencies are built.
