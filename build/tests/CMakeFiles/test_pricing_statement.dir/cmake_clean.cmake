file(REMOVE_RECURSE
  "CMakeFiles/test_pricing_statement.dir/test_pricing_statement.cpp.o"
  "CMakeFiles/test_pricing_statement.dir/test_pricing_statement.cpp.o.d"
  "test_pricing_statement"
  "test_pricing_statement.pdb"
  "test_pricing_statement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricing_statement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
