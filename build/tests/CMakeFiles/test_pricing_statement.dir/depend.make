# Empty dependencies file for test_pricing_statement.
# This may be replaced when dependencies are built.
