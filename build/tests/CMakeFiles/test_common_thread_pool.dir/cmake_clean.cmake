file(REMOVE_RECURSE
  "CMakeFiles/test_common_thread_pool.dir/test_common_thread_pool.cpp.o"
  "CMakeFiles/test_common_thread_pool.dir/test_common_thread_pool.cpp.o.d"
  "test_common_thread_pool"
  "test_common_thread_pool.pdb"
  "test_common_thread_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
