# Empty dependencies file for test_common_thread_pool.
# This may be replaced when dependencies are built.
