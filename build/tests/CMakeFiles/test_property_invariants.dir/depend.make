# Empty dependencies file for test_property_invariants.
# This may be replaced when dependencies are built.
