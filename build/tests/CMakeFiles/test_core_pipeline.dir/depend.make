# Empty dependencies file for test_core_pipeline.
# This may be replaced when dependencies are built.
