file(REMOVE_RECURSE
  "CMakeFiles/test_core_pipeline.dir/test_core_pipeline.cpp.o"
  "CMakeFiles/test_core_pipeline.dir/test_core_pipeline.cpp.o.d"
  "test_core_pipeline"
  "test_core_pipeline.pdb"
  "test_core_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
