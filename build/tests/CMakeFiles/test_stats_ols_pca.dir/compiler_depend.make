# Empty compiler generated dependencies file for test_stats_ols_pca.
# This may be replaced when dependencies are built.
