file(REMOVE_RECURSE
  "CMakeFiles/test_stats_ols_pca.dir/test_stats_ols_pca.cpp.o"
  "CMakeFiles/test_stats_ols_pca.dir/test_stats_ols_pca.cpp.o.d"
  "test_stats_ols_pca"
  "test_stats_ols_pca.pdb"
  "test_stats_ols_pca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_ols_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
