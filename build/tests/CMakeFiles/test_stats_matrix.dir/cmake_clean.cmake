file(REMOVE_RECURSE
  "CMakeFiles/test_stats_matrix.dir/test_stats_matrix.cpp.o"
  "CMakeFiles/test_stats_matrix.dir/test_stats_matrix.cpp.o.d"
  "test_stats_matrix"
  "test_stats_matrix.pdb"
  "test_stats_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
