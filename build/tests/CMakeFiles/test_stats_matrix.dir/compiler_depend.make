# Empty compiler generated dependencies file for test_stats_matrix.
# This may be replaced when dependencies are built.
