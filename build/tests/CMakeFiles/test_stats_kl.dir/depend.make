# Empty dependencies file for test_stats_kl.
# This may be replaced when dependencies are built.
