file(REMOVE_RECURSE
  "CMakeFiles/test_stats_kl.dir/test_stats_kl.cpp.o"
  "CMakeFiles/test_stats_kl.dir/test_stats_kl.cpp.o.d"
  "test_stats_kl"
  "test_stats_kl.pdb"
  "test_stats_kl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
