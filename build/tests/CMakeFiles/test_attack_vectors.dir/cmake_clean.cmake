file(REMOVE_RECURSE
  "CMakeFiles/test_attack_vectors.dir/test_attack_vectors.cpp.o"
  "CMakeFiles/test_attack_vectors.dir/test_attack_vectors.cpp.o.d"
  "test_attack_vectors"
  "test_attack_vectors.pdb"
  "test_attack_vectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
