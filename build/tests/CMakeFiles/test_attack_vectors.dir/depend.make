# Empty dependencies file for test_attack_vectors.
# This may be replaced when dependencies are built.
