file(REMOVE_RECURSE
  "CMakeFiles/test_stats_quantile.dir/test_stats_quantile.cpp.o"
  "CMakeFiles/test_stats_quantile.dir/test_stats_quantile.cpp.o.d"
  "test_stats_quantile"
  "test_stats_quantile.pdb"
  "test_stats_quantile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
