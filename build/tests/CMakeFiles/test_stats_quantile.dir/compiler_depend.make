# Empty compiler generated dependencies file for test_stats_quantile.
# This may be replaced when dependencies are built.
