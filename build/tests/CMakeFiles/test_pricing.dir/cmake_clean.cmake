file(REMOVE_RECURSE
  "CMakeFiles/test_pricing.dir/test_pricing.cpp.o"
  "CMakeFiles/test_pricing.dir/test_pricing.cpp.o.d"
  "test_pricing"
  "test_pricing.pdb"
  "test_pricing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
