file(REMOVE_RECURSE
  "CMakeFiles/test_ami.dir/test_ami.cpp.o"
  "CMakeFiles/test_ami.dir/test_ami.cpp.o.d"
  "test_ami"
  "test_ami.pdb"
  "test_ami[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
