# Empty dependencies file for test_ami.
# This may be replaced when dependencies are built.
