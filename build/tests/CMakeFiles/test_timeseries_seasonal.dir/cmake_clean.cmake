file(REMOVE_RECURSE
  "CMakeFiles/test_timeseries_seasonal.dir/test_timeseries_seasonal.cpp.o"
  "CMakeFiles/test_timeseries_seasonal.dir/test_timeseries_seasonal.cpp.o.d"
  "test_timeseries_seasonal"
  "test_timeseries_seasonal.pdb"
  "test_timeseries_seasonal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeseries_seasonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
