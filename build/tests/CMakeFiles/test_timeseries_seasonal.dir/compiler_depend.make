# Empty compiler generated dependencies file for test_timeseries_seasonal.
# This may be replaced when dependencies are built.
