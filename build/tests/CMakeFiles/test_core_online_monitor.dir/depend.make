# Empty dependencies file for test_core_online_monitor.
# This may be replaced when dependencies are built.
