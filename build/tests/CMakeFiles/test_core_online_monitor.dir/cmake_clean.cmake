file(REMOVE_RECURSE
  "CMakeFiles/test_core_online_monitor.dir/test_core_online_monitor.cpp.o"
  "CMakeFiles/test_core_online_monitor.dir/test_core_online_monitor.cpp.o.d"
  "test_core_online_monitor"
  "test_core_online_monitor.pdb"
  "test_core_online_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_online_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
