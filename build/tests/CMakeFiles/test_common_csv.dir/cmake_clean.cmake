file(REMOVE_RECURSE
  "CMakeFiles/test_common_csv.dir/test_common_csv.cpp.o"
  "CMakeFiles/test_common_csv.dir/test_common_csv.cpp.o.d"
  "test_common_csv"
  "test_common_csv.pdb"
  "test_common_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
