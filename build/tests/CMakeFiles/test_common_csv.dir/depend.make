# Empty dependencies file for test_common_csv.
# This may be replaced when dependencies are built.
