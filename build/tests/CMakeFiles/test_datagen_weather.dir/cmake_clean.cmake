file(REMOVE_RECURSE
  "CMakeFiles/test_datagen_weather.dir/test_datagen_weather.cpp.o"
  "CMakeFiles/test_datagen_weather.dir/test_datagen_weather.cpp.o.d"
  "test_datagen_weather"
  "test_datagen_weather.pdb"
  "test_datagen_weather[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datagen_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
