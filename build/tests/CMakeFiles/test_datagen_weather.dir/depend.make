# Empty dependencies file for test_datagen_weather.
# This may be replaced when dependencies are built.
