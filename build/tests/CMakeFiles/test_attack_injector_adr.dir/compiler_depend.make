# Empty compiler generated dependencies file for test_attack_injector_adr.
# This may be replaced when dependencies are built.
