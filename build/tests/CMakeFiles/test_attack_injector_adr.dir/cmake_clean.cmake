file(REMOVE_RECURSE
  "CMakeFiles/test_attack_injector_adr.dir/test_attack_injector_adr.cpp.o"
  "CMakeFiles/test_attack_injector_adr.dir/test_attack_injector_adr.cpp.o.d"
  "test_attack_injector_adr"
  "test_attack_injector_adr.pdb"
  "test_attack_injector_adr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_injector_adr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
