# Empty compiler generated dependencies file for test_attack_class.
# This may be replaced when dependencies are built.
