file(REMOVE_RECURSE
  "CMakeFiles/test_attack_class.dir/test_attack_class.cpp.o"
  "CMakeFiles/test_attack_class.dir/test_attack_class.cpp.o.d"
  "test_attack_class"
  "test_attack_class.pdb"
  "test_attack_class[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
