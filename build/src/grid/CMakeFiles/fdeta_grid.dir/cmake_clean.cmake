file(REMOVE_RECURSE
  "CMakeFiles/fdeta_grid.dir/balance.cpp.o"
  "CMakeFiles/fdeta_grid.dir/balance.cpp.o.d"
  "CMakeFiles/fdeta_grid.dir/investigate.cpp.o"
  "CMakeFiles/fdeta_grid.dir/investigate.cpp.o.d"
  "CMakeFiles/fdeta_grid.dir/losses.cpp.o"
  "CMakeFiles/fdeta_grid.dir/losses.cpp.o.d"
  "CMakeFiles/fdeta_grid.dir/serialize.cpp.o"
  "CMakeFiles/fdeta_grid.dir/serialize.cpp.o.d"
  "CMakeFiles/fdeta_grid.dir/topology.cpp.o"
  "CMakeFiles/fdeta_grid.dir/topology.cpp.o.d"
  "libfdeta_grid.a"
  "libfdeta_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdeta_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
