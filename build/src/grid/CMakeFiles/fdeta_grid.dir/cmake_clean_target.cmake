file(REMOVE_RECURSE
  "libfdeta_grid.a"
)
