
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/balance.cpp" "src/grid/CMakeFiles/fdeta_grid.dir/balance.cpp.o" "gcc" "src/grid/CMakeFiles/fdeta_grid.dir/balance.cpp.o.d"
  "/root/repo/src/grid/investigate.cpp" "src/grid/CMakeFiles/fdeta_grid.dir/investigate.cpp.o" "gcc" "src/grid/CMakeFiles/fdeta_grid.dir/investigate.cpp.o.d"
  "/root/repo/src/grid/losses.cpp" "src/grid/CMakeFiles/fdeta_grid.dir/losses.cpp.o" "gcc" "src/grid/CMakeFiles/fdeta_grid.dir/losses.cpp.o.d"
  "/root/repo/src/grid/serialize.cpp" "src/grid/CMakeFiles/fdeta_grid.dir/serialize.cpp.o" "gcc" "src/grid/CMakeFiles/fdeta_grid.dir/serialize.cpp.o.d"
  "/root/repo/src/grid/topology.cpp" "src/grid/CMakeFiles/fdeta_grid.dir/topology.cpp.o" "gcc" "src/grid/CMakeFiles/fdeta_grid.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/meter/CMakeFiles/fdeta_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fdeta_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fdeta_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
