# Empty dependencies file for fdeta_grid.
# This may be replaced when dependencies are built.
