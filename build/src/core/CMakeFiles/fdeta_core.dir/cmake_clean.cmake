file(REMOVE_RECURSE
  "CMakeFiles/fdeta_core.dir/arima_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/arima_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/conditioned_kld_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/conditioned_kld_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/cusum_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/cusum_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/evaluation.cpp.o"
  "CMakeFiles/fdeta_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/evidence.cpp.o"
  "CMakeFiles/fdeta_core.dir/evidence.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/integrated_arima_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/integrated_arima_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/kld_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/kld_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/online_monitor.cpp.o"
  "CMakeFiles/fdeta_core.dir/online_monitor.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/pca_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/pca_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/pipeline.cpp.o"
  "CMakeFiles/fdeta_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/profile_detector.cpp.o"
  "CMakeFiles/fdeta_core.dir/profile_detector.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/report.cpp.o"
  "CMakeFiles/fdeta_core.dir/report.cpp.o.d"
  "CMakeFiles/fdeta_core.dir/time_to_detection.cpp.o"
  "CMakeFiles/fdeta_core.dir/time_to_detection.cpp.o.d"
  "libfdeta_core.a"
  "libfdeta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdeta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
