
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arima_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/arima_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/arima_detector.cpp.o.d"
  "/root/repo/src/core/conditioned_kld_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/conditioned_kld_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/conditioned_kld_detector.cpp.o.d"
  "/root/repo/src/core/cusum_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/cusum_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/cusum_detector.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/fdeta_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/evidence.cpp" "src/core/CMakeFiles/fdeta_core.dir/evidence.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/evidence.cpp.o.d"
  "/root/repo/src/core/integrated_arima_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/integrated_arima_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/integrated_arima_detector.cpp.o.d"
  "/root/repo/src/core/kld_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/kld_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/kld_detector.cpp.o.d"
  "/root/repo/src/core/online_monitor.cpp" "src/core/CMakeFiles/fdeta_core.dir/online_monitor.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/online_monitor.cpp.o.d"
  "/root/repo/src/core/pca_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/pca_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/pca_detector.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/fdeta_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/profile_detector.cpp" "src/core/CMakeFiles/fdeta_core.dir/profile_detector.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/profile_detector.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/fdeta_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/report.cpp.o.d"
  "/root/repo/src/core/time_to_detection.cpp" "src/core/CMakeFiles/fdeta_core.dir/time_to_detection.cpp.o" "gcc" "src/core/CMakeFiles/fdeta_core.dir/time_to_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/fdeta_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/fdeta_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/fdeta_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/fdeta_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/fdeta_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fdeta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fdeta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
