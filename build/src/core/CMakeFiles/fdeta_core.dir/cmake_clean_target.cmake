file(REMOVE_RECURSE
  "libfdeta_core.a"
)
