# Empty dependencies file for fdeta_core.
# This may be replaced when dependencies are built.
