file(REMOVE_RECURSE
  "libfdeta_pricing.a"
)
