file(REMOVE_RECURSE
  "CMakeFiles/fdeta_pricing.dir/billing.cpp.o"
  "CMakeFiles/fdeta_pricing.dir/billing.cpp.o.d"
  "CMakeFiles/fdeta_pricing.dir/elasticity.cpp.o"
  "CMakeFiles/fdeta_pricing.dir/elasticity.cpp.o.d"
  "CMakeFiles/fdeta_pricing.dir/statement.cpp.o"
  "CMakeFiles/fdeta_pricing.dir/statement.cpp.o.d"
  "CMakeFiles/fdeta_pricing.dir/tariff.cpp.o"
  "CMakeFiles/fdeta_pricing.dir/tariff.cpp.o.d"
  "libfdeta_pricing.a"
  "libfdeta_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdeta_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
