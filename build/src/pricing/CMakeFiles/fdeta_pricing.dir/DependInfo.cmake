
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pricing/billing.cpp" "src/pricing/CMakeFiles/fdeta_pricing.dir/billing.cpp.o" "gcc" "src/pricing/CMakeFiles/fdeta_pricing.dir/billing.cpp.o.d"
  "/root/repo/src/pricing/elasticity.cpp" "src/pricing/CMakeFiles/fdeta_pricing.dir/elasticity.cpp.o" "gcc" "src/pricing/CMakeFiles/fdeta_pricing.dir/elasticity.cpp.o.d"
  "/root/repo/src/pricing/statement.cpp" "src/pricing/CMakeFiles/fdeta_pricing.dir/statement.cpp.o" "gcc" "src/pricing/CMakeFiles/fdeta_pricing.dir/statement.cpp.o.d"
  "/root/repo/src/pricing/tariff.cpp" "src/pricing/CMakeFiles/fdeta_pricing.dir/tariff.cpp.o" "gcc" "src/pricing/CMakeFiles/fdeta_pricing.dir/tariff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fdeta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
