# Empty compiler generated dependencies file for fdeta_pricing.
# This may be replaced when dependencies are built.
