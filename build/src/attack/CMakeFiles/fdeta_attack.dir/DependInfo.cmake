
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/adr_attack.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/adr_attack.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/adr_attack.cpp.o.d"
  "/root/repo/src/attack/arima_attack.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/arima_attack.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/arima_attack.cpp.o.d"
  "/root/repo/src/attack/attack_class.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/attack_class.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/attack_class.cpp.o.d"
  "/root/repo/src/attack/combined_attack.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/combined_attack.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/combined_attack.cpp.o.d"
  "/root/repo/src/attack/injector.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/injector.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/injector.cpp.o.d"
  "/root/repo/src/attack/integrated_arima_attack.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/integrated_arima_attack.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/integrated_arima_attack.cpp.o.d"
  "/root/repo/src/attack/optimal_swap.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/optimal_swap.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/optimal_swap.cpp.o.d"
  "/root/repo/src/attack/propositions.cpp" "src/attack/CMakeFiles/fdeta_attack.dir/propositions.cpp.o" "gcc" "src/attack/CMakeFiles/fdeta_attack.dir/propositions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/fdeta_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/fdeta_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/fdeta_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fdeta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fdeta_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
