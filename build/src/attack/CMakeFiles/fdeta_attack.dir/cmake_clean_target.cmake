file(REMOVE_RECURSE
  "libfdeta_attack.a"
)
