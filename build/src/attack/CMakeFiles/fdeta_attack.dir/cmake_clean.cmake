file(REMOVE_RECURSE
  "CMakeFiles/fdeta_attack.dir/adr_attack.cpp.o"
  "CMakeFiles/fdeta_attack.dir/adr_attack.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/arima_attack.cpp.o"
  "CMakeFiles/fdeta_attack.dir/arima_attack.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/attack_class.cpp.o"
  "CMakeFiles/fdeta_attack.dir/attack_class.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/combined_attack.cpp.o"
  "CMakeFiles/fdeta_attack.dir/combined_attack.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/injector.cpp.o"
  "CMakeFiles/fdeta_attack.dir/injector.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/integrated_arima_attack.cpp.o"
  "CMakeFiles/fdeta_attack.dir/integrated_arima_attack.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/optimal_swap.cpp.o"
  "CMakeFiles/fdeta_attack.dir/optimal_swap.cpp.o.d"
  "CMakeFiles/fdeta_attack.dir/propositions.cpp.o"
  "CMakeFiles/fdeta_attack.dir/propositions.cpp.o.d"
  "libfdeta_attack.a"
  "libfdeta_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdeta_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
